// Ablation studies of the design choices DESIGN.md calls out:
//
//  A. Homology primes — GF(2) alone vs GF(2)+GF(3): the twisted hourglass
//     (an even-winding obstruction) is invisible to GF(2).
//  B. Splitting order — Theorem 4.3 fixes no order; the final verdict and
//     component structure must be order-independent (and are).
//  C. Solver variable ordering — minimum-remaining-values vs static order:
//     both complete, wildly different node counts.

#include <random>

#include "bench_util.h"
#include "core/characterization.h"
#include "core/link_connected.h"
#include "core/obstructions.h"
#include "solver/map_search.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/graph.h"
#include "topology/subdivision.h"

namespace {

using namespace trichroma;

void ablate_primes() {
  benchutil::section("A. homological engine: GF(2) alone vs GF(2)+GF(3)");
  std::printf("%-22s %12s %12s\n", "task", "GF(2) only", "GF(2)+GF(3)");
  const std::vector<Task> tasks = {zoo::hourglass(), zoo::twisted_hourglass(),
                                   zoo::pinwheel(), zoo::set_agreement_32()};
  for (const Task& t : tasks) {
    const bool gf2 = homology_boundary_check(t, {2}).feasible;
    const bool both = homology_boundary_check(t, {2, 3}).feasible;
    std::printf("%-22s %12s %12s\n", t.name.c_str(),
                gf2 ? "feasible" : "REFUTED", both ? "feasible" : "REFUTED");
  }
  std::printf("(the twisted hourglass needs the GF(3) half: its boundary "
              "walk is the square of the waist loop)\n");
}

/// Splits LAPs in a caller-chosen order until link-connected.
Task split_in_order(Task t, const std::function<LapRecord(std::vector<LapRecord>&)>& pick) {
  int guard = 0;
  while (guard++ < 300) {
    auto laps = find_all_laps(t);
    if (laps.empty()) break;
    t = split_lap(t, pick(laps)).task;
  }
  return t;
}

void ablate_split_order() {
  benchutil::section("B. splitting order independence");
  std::printf("%-22s %12s %12s %12s\n", "task", "ascending", "descending",
              "random");
  for (const Task& base :
       {canonicalize(zoo::pinwheel()), canonicalize(zoo::majority_consensus()),
        zoo::hourglass()}) {
    const Task asc = split_in_order(
        base, [](std::vector<LapRecord>& laps) { return laps.front(); });
    const Task desc = split_in_order(
        base, [](std::vector<LapRecord>& laps) { return laps.back(); });
    std::mt19937_64 rng(7);
    const Task rnd = split_in_order(base, [&](std::vector<LapRecord>& laps) {
      std::uniform_int_distribution<std::size_t> pick(0, laps.size() - 1);
      return laps[pick(rng)];
    });
    std::printf("%-22s %9zu cc %9zu cc %9zu cc\n", base.name.c_str(),
                component_count(asc.output), component_count(desc.output),
                component_count(rnd.output));
    // The obstruction verdicts must agree as well.
    const bool a = connectivity_csp(asc).feasible;
    const bool d = connectivity_csp(desc).feasible;
    const bool r = connectivity_csp(rnd).feasible;
    if (a != d || d != r) {
      std::printf("  !! verdicts diverged across split orders\n");
    }
  }
  std::printf("(component counts and CSP verdicts agree across orders)\n");
}

void ablate_ordering() {
  benchutil::section("C. solver variable ordering: MRV vs static");
  std::printf("%-28s %6s %14s %14s\n", "instance", "found", "MRV nodes",
              "static nodes");
  struct Row {
    Task task;
    int radius;
    bool chromatic;
  };
  const std::vector<Row> rows = {
      {zoo::subdivision_task(1), 1, true},
      {zoo::subdivision_task(2), 2, true},
      {zoo::hourglass(), 2, false},
      {zoo::consensus(3), 1, true},
  };
  for (const Row& row : rows) {
    const SubdividedComplex domain =
        chromatic_subdivision(*row.task.pool, row.task.input, row.radius);
    MapSearchOptions mrv;
    mrv.chromatic = row.chromatic;
    MapSearchOptions stat = mrv;
    stat.dynamic_ordering = false;
    stat.node_cap = 5'000'000;
    const MapSearchResult a = find_decision_map(*row.task.pool, domain, row.task, mrv);
    const MapSearchResult b = find_decision_map(*row.task.pool, domain, row.task, stat);
    std::printf("%-28s %6s %14zu %14zu%s\n",
                (row.task.name + "@r" + std::to_string(row.radius)).c_str(),
                a.found ? "yes" : "no", a.nodes_explored, b.nodes_explored,
                b.exhausted ? "" : " (capped)");
    if (a.found != b.found && b.exhausted) {
      std::printf("  !! orderings disagreed on satisfiability\n");
    }
  }
}

void reproduce() {
  benchutil::header("Ablations", "design choices under the knife");
  ablate_primes();
  ablate_split_order();
  ablate_ordering();
}

void BM_HomologyTwoPrimes(benchmark::State& state) {
  const Task t = zoo::pinwheel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(homology_boundary_check(t, {2, 3}).feasible);
  }
}
BENCHMARK(BM_HomologyTwoPrimes);

void BM_HomologyOnePrime(benchmark::State& state) {
  const Task t = zoo::pinwheel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(homology_boundary_check(t, {2}).feasible);
  }
}
BENCHMARK(BM_HomologyOnePrime);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
