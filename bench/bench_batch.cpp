// Batch-driver throughput: the whole 21-task zoo catalog through the
// solvability pipeline at --jobs 1/2/4/8 on the shared work-stealing
// executor. On a multi-core host the jobs sweep shows the wall-clock
// scaling of whole-task parallelism (tasks are embarrassingly parallel; the
// long pole is the slowest single task); on a single-core container the
// rows document that the executor adds no meaningful overhead over the
// sequential loop. The per-report *contents* are identical in every row —
// the determinism contract pinned by batch_driver_test — so this benchmark
// only measures scheduling.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "solver/batch.h"

namespace {

using namespace trichroma;

void BM_ZooBatch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  std::size_t tasks = 0;
  for (auto _ : state) {
    BatchOptions options;
    options.jobs = jobs;
    const BatchResult result = run_batch(options);
    tasks = result.tasks.size();
    benchmark::DoNotOptimize(result.unknown);
  }
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_ZooBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The CI smoke subset: cheap tasks only, for a fast signal that the batch
// path itself (selection, executor fan-out, catalog-order collection) is
// not regressing independently of solver cost.
void BM_ZooBatchSubset(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BatchOptions options;
    options.jobs = jobs;
    options.only = {"identity", "fig3", "hourglass", "pinwheel",
                    "consensus_2"};
    const BatchResult result = run_batch(options);
    benchmark::DoNotOptimize(result.unknown);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_ZooBatchSubset)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  trichroma::benchutil::add_build_type_context();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
