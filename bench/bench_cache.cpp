// Verdict-store benchmarks: what a --cache-dir actually buys.
//
// Three measurements:
//   1. BM_FingerprintCatalogTask — canonical-labeling cost per catalog task
//      (the warm path's fixed overhead; renaming5 and the loop tasks are
//      the expensive rows: big Δ images, and for renaming5 a 5!-element
//      automorphism group driving 120 leaf comparisons).
//   2. BM_DecideSolvableSubsetCold — the solvable catalog subset through
//      the full pipeline publishing into a fresh store each iteration.
//   3. BM_DecideSolvableSubsetWarm — the same subset replayed from a
//      primed store: fingerprint + record read, no engines.
//   4. BM_DeepenSolvableSubset{Cold,Seeded} — the warm-start pair: deepen
//      radius 1 -> 2 with no store state vs. against a store primed at
//      radius 1 (sibling records + ladder/Δ-image artifacts).
//
// The committed BENCH_cache.json pins the warm/cold and seeded/cold ratios
// the README quotes; the CI release job gates cold-vs-warm regressions
// through tools/bench_compare.py like every other suite.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "solver/pipeline.h"
#include "tasks/fingerprint.h"
#include "tasks/zoo.h"

namespace {

using namespace trichroma;

// Every catalog task the pipeline decides SOLVABLE (the warm-speedup
// acceptance subset; unsolvable tasks replay just as well but their cold
// runs are obstruction-bound and cheap, which would understate the win).
const std::vector<std::string>& solvable_subset() {
  static const std::vector<std::string> kSubset = {
      "identity",         "renaming5", "subdivision0", "subdivision1",
      "approx_agreement", "fan6",      "fig3",         "loop_filled",
      "wsb3",             "approx_agreement_2"};
  return kSubset;
}

std::vector<Task> build_subset() {
  std::vector<Task> tasks;
  for (const zoo::CatalogEntry& e : zoo::catalog()) {
    for (const std::string& name : solvable_subset()) {
      if (name == e.name) tasks.push_back(e.build());
    }
  }
  return tasks;
}

std::string fresh_store_dir() {
  static int counter = 0;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("trichroma-bench-cache-" + std::to_string(++counter)))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

void BM_FingerprintCatalogTask(benchmark::State& state) {
  const zoo::CatalogEntry& entry =
      zoo::catalog()[static_cast<std::size_t>(state.range(0))];
  const Task task = entry.build();
  std::size_t leaves = 0;
  for (auto _ : state) {
    const FingerprintResult r = fingerprint_task(task);
    leaves = r.stats.leaves;
    benchmark::DoNotOptimize(r.fingerprint.bytes);
  }
  state.SetLabel(entry.name);
  state.counters["leaves"] = static_cast<double>(leaves);
}
BENCHMARK(BM_FingerprintCatalogTask)
    ->DenseRange(0, 20)
    ->Unit(benchmark::kMicrosecond);

void BM_FingerprintCatalogSweep(benchmark::State& state) {
  std::vector<Task> tasks;
  for (const zoo::CatalogEntry& e : zoo::catalog()) tasks.push_back(e.build());
  for (auto _ : state) {
    for (const Task& t : tasks) {
      benchmark::DoNotOptimize(fingerprint_of(t).bytes);
    }
  }
  state.counters["tasks"] = static_cast<double>(tasks.size());
}
BENCHMARK(BM_FingerprintCatalogSweep)->Unit(benchmark::kMillisecond);

void BM_DecideSolvableSubsetCold(benchmark::State& state) {
  const std::vector<Task> tasks = build_subset();
  for (auto _ : state) {
    state.PauseTiming();
    SolvabilityOptions options;
    options.cache_dir = fresh_store_dir();
    state.ResumeTiming();
    for (const Task& t : tasks) {
      benchmark::DoNotOptimize(run_pipeline(t, options).report.verdict);
    }
    state.PauseTiming();
    std::filesystem::remove_all(options.cache_dir);
    state.ResumeTiming();
  }
  state.counters["tasks"] = static_cast<double>(tasks.size());
}
BENCHMARK(BM_DecideSolvableSubsetCold)->Unit(benchmark::kMillisecond);

void BM_DecideSolvableSubsetWarm(benchmark::State& state) {
  const std::vector<Task> tasks = build_subset();
  SolvabilityOptions options;
  options.cache_dir = fresh_store_dir();
  for (const Task& t : tasks) run_pipeline(t, options);  // prime
  for (auto _ : state) {
    for (const Task& t : tasks) {
      benchmark::DoNotOptimize(run_pipeline(t, options).report.verdict);
    }
  }
  std::filesystem::remove_all(options.cache_dir);
  state.counters["tasks"] = static_cast<double>(tasks.size());
}
BENCHMARK(BM_DecideSolvableSubsetWarm)->Unit(benchmark::kMillisecond);

// The warm-start acceptance pair: deepen the solvable subset from radius 1
// to radius 2. Cold deepen has no store state to resume from — every rung
// of every ladder is rebuilt. Artifact-seeded deepen runs against a store
// primed at radius 1, so each task either replays a budget sibling's
// record (witness within the deeper budget) or seeds its ladder/Δ-image
// artifacts and climbs only the missing rungs. Both force the kLadder
// schedule: racing records are excluded from warm starts by contract, so
// kAuto on a multi-core host would silently measure nothing.
void BM_DeepenSolvableSubsetCold(benchmark::State& state) {
  const std::vector<Task> tasks = build_subset();
  for (auto _ : state) {
    state.PauseTiming();
    SolvabilityOptions options;
    options.schedule = PipelineSchedule::kLadder;
    options.max_radius = 2;
    options.cache_dir = fresh_store_dir();
    state.ResumeTiming();
    for (const Task& t : tasks) {
      benchmark::DoNotOptimize(run_pipeline(t, options).report.verdict);
    }
    state.PauseTiming();
    std::filesystem::remove_all(options.cache_dir);
    state.ResumeTiming();
  }
  state.counters["tasks"] = static_cast<double>(tasks.size());
}
BENCHMARK(BM_DeepenSolvableSubsetCold)->Unit(benchmark::kMillisecond);

void BM_DeepenSolvableSubsetSeeded(benchmark::State& state) {
  const std::vector<Task> tasks = build_subset();
  for (auto _ : state) {
    // Re-prime every iteration: the timed deepen publishes records under
    // the radius-2 digest, which would turn the next iteration into pure
    // exact-key hits and measure replay, not resumption.
    state.PauseTiming();
    SolvabilityOptions prime;
    prime.schedule = PipelineSchedule::kLadder;
    prime.max_radius = 1;
    prime.cache_dir = fresh_store_dir();
    for (const Task& t : tasks) run_pipeline(t, prime);
    SolvabilityOptions options = prime;
    options.max_radius = 2;
    state.ResumeTiming();
    for (const Task& t : tasks) {
      benchmark::DoNotOptimize(run_pipeline(t, options).report.verdict);
    }
    state.PauseTiming();
    std::filesystem::remove_all(options.cache_dir);
    state.ResumeTiming();
  }
  state.counters["tasks"] = static_cast<double>(tasks.size());
}
BENCHMARK(BM_DeepenSolvableSubsetSeeded)->Unit(benchmark::kMillisecond);

// The reference row: the same subset with the store off, to separate the
// cold run's store overhead (fingerprint + publish) from engine cost.
void BM_DecideSolvableSubsetNoCache(benchmark::State& state) {
  const std::vector<Task> tasks = build_subset();
  const SolvabilityOptions options;
  for (auto _ : state) {
    for (const Task& t : tasks) {
      benchmark::DoNotOptimize(run_pipeline(t, options).report.verdict);
    }
  }
  state.counters["tasks"] = static_cast<double>(tasks.size());
}
BENCHMARK(BM_DecideSolvableSubsetNoCache)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  trichroma::benchutil::add_build_type_context();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
