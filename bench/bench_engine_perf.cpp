// Engine micro-benchmarks: subdivision growth, LAP detection, splitting,
// and the decision-map probe cost as a function of the subdivision radius.
//
// The decision-map benchmarks compare the two engine generations:
//   threads = 1  — the seed engine's per-radius probe: recompute Ch^r from
//                  scratch, rebuild every Δ-image and edge mask, search
//                  sequentially;
//   threads = N  — the current engine: SubdivisionLadder (Ch^r memoized,
//                  Ch^{r+1} derived by one subdivide_once), shared
//                  DeltaImageCache (images + edge-mask classes reused across
//                  radii), and the work-splitting parallel backtracker.
// On a multi-core host the thread pool adds wall-clock scaling on
// search-bound instances (see BM_ParallelSearchRace); on a single-core
// container (this repo's CI box) the speedup comes from the caches, and the
// race column documents that thread counts never change the verdict.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/characterization.h"
#include "core/lap.h"
#include "solver/map_search.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace {

using namespace trichroma;

void BM_ChromaticSubdivision(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    VertexPool pool;
    SimplicialComplex base;
    base.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2)});
    const SubdividedComplex sub = chromatic_subdivision(pool, base, rounds);
    benchmark::DoNotOptimize(sub.complex.count(2));
  }
  state.counters["facets"] = static_cast<double>(std::pow(13.0, rounds));
}
BENCHMARK(BM_ChromaticSubdivision)->Arg(1)->Arg(2)->Arg(3);

// The radius sweep 0..R as the seed's decide_solvability ran it: every
// radius recomputes all rounds from scratch (the r-th probe pays r rounds
// again), versus the SubdivisionLadder, where the r-th probe derives Ch^r
// from the memoized Ch^{r-1} in a single subdivide_once step. The delta
// between the two *is* the recomputation of the lower rounds — at R = 2 the
// cold sweep subdivides round 0 three times and round 1 twice.
void BM_SubdivisionSweepCold(benchmark::State& state) {
  const int max_radius = static_cast<int>(state.range(0));
  for (auto _ : state) {
    VertexPool pool;
    SimplicialComplex base;
    base.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2)});
    std::size_t facets = 0;
    for (int r = 0; r <= max_radius; ++r) {
      facets += chromatic_subdivision(pool, base, r).complex.count(2);
    }
    benchmark::DoNotOptimize(facets);
  }
}
BENCHMARK(BM_SubdivisionSweepCold)->Arg(1)->Arg(2)->Arg(3);

void BM_SubdivisionSweepLadder(benchmark::State& state) {
  const int max_radius = static_cast<int>(state.range(0));
  for (auto _ : state) {
    VertexPool pool;
    SimplicialComplex base;
    base.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2)});
    SubdivisionLadder ladder(pool, base);
    std::size_t facets = 0;
    for (int r = 0; r <= max_radius; ++r) {
      facets += ladder.at(r).complex.count(2);
    }
    benchmark::DoNotOptimize(facets);
  }
}
BENCHMARK(BM_SubdivisionSweepLadder)->Arg(1)->Arg(2)->Arg(3);

void BM_LapDetection(benchmark::State& state) {
  const Task task = zoo::pinwheel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_all_laps(task).size());
  }
}
BENCHMARK(BM_LapDetection);

void BM_CharacterizationPipeline(benchmark::State& state) {
  for (auto _ : state) {
    const Task task = zoo::pinwheel();
    const CharacterizationResult result = characterize(task);
    benchmark::DoNotOptimize(result.splits.size());
  }
}
BENCHMARK(BM_CharacterizationPipeline);

// One radius-r possibility probe of the calibration task (subdivision task
// of intrinsic radius 2 — unsatisfiable at radius < 2 with Ch^2-sized Δ
// images, the shape that dominates decide_solvability). Arg(1) selects the
// engine generation described in the file comment: threads == 1 is the seed
// baseline (cold subdivision, cold images, sequential search); threads > 1
// is the current engine (ladder + image/mask cache + parallel search).
void BM_DecisionMapSearch(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Task task = zoo::subdivision_task(2);
  SubdivisionLadder ladder(*task.pool, task.input);
  DeltaImageCache images;
  MapSearchOptions options;
  options.threads = threads;
  if (threads > 1) {
    options.image_cache = &images;
    // Warm the caches once: in decide_solvability the radius-r probe runs
    // after radii 0..r-1 already populated the ladder and the Δ cache.
    find_decision_map(*task.pool, ladder.at(rounds), task, options);
  }
  for (auto _ : state) {
    MapSearchResult result;
    if (threads > 1) {
      result = find_decision_map(*task.pool, ladder.at(rounds), task, options);
    } else {
      const SubdividedComplex domain =
          chromatic_subdivision(*task.pool, task.input, rounds);
      result = find_decision_map(*task.pool, domain, task, options);
    }
    benchmark::DoNotOptimize(result.found);
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_DecisionMapSearch)
    ->Args({0, 1})
    ->Args({0, 4})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({1, 8})
    ->Args({2, 1})
    ->Args({2, 4});

// Pure search scaling: identical warm inputs for every thread count, on a
// search-bound instance (set agreement at radius 1: 385-node exhaustive
// refutation). Isolates the work-splitting backtracker from the caches;
// wall-clock gains require real cores, but found/exhausted is identical for
// every column by the determinism contract.
void BM_ParallelSearchRace(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Task task = zoo::set_agreement_32();
  const SubdividedComplex domain =
      chromatic_subdivision(*task.pool, task.input, 1);
  DeltaImageCache images;
  MapSearchOptions options;
  options.threads = threads;
  options.image_cache = &images;
  find_decision_map(*task.pool, domain, task, options);  // warm the cache
  std::size_t nodes = 0;
  for (auto _ : state) {
    const MapSearchResult result =
        find_decision_map(*task.pool, domain, task, options);
    nodes = result.nodes_explored;
    benchmark::DoNotOptimize(result.exhausted);
  }
  state.counters["threads"] = threads;
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_ParallelSearchRace)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  trichroma::benchutil::add_build_type_context();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
