// Engine micro-benchmarks: subdivision growth, LAP detection, splitting,
// and decision-map search cost as a function of the subdivision radius.

#include <benchmark/benchmark.h>

#include "core/characterization.h"
#include "core/lap.h"
#include "solver/map_search.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace {

using namespace trichroma;

void BM_ChromaticSubdivision(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    VertexPool pool;
    SimplicialComplex base;
    base.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2)});
    const SubdividedComplex sub = chromatic_subdivision(pool, base, rounds);
    benchmark::DoNotOptimize(sub.complex.count(2));
  }
  state.counters["facets"] = static_cast<double>(std::pow(13.0, rounds));
}
BENCHMARK(BM_ChromaticSubdivision)->Arg(1)->Arg(2)->Arg(3);

void BM_LapDetection(benchmark::State& state) {
  const Task task = zoo::pinwheel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_all_laps(task).size());
  }
}
BENCHMARK(BM_LapDetection);

void BM_CharacterizationPipeline(benchmark::State& state) {
  for (auto _ : state) {
    const Task task = zoo::pinwheel();
    const CharacterizationResult result = characterize(task);
    benchmark::DoNotOptimize(result.splits.size());
  }
}
BENCHMARK(BM_CharacterizationPipeline);

void BM_DecisionMapSearch(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  const Task task = zoo::subdivision_task(rounds);
  for (auto _ : state) {
    const SubdividedComplex domain =
        chromatic_subdivision(*task.pool, task.input, rounds);
    MapSearchOptions options;
    const MapSearchResult result =
        find_decision_map(*task.pool, domain, task, options);
    benchmark::DoNotOptimize(result.found);
  }
}
BENCHMARK(BM_DecisionMapSearch)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
