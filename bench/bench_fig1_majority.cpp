// Figure 1 reproduction: the majority consensus task.
//
// Paper claims reproduced here:
//  - the task satisfies the colorless ACT condition (solvable colorlessly);
//  - after canonicalization it has local articulation points;
//  - splitting them disconnects every mixed-input facet's image into two
//    components, separating P0's solo-0 decision from the edge where the
//    other two processes start with input 1;
//  - hence the task is wait-free unsolvable (Theorem 5.1 / Corollary 5.5
//    shape, realized by the post-split connectivity obstruction).

#include "bench_util.h"
#include "core/characterization.h"
#include "core/lap.h"
#include "core/obstructions.h"
#include "solver/solvability.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/graph.h"

namespace {

using namespace trichroma;

void reproduce() {
  benchutil::header("Figure 1", "the majority consensus task");
  const Task task = zoo::majority_consensus();
  std::printf("%s", task.summary().c_str());

  benchutil::section("colorless view");
  // The paper: majority consensus satisfies the colorless ACT condition.
  // Our decidable shadow of that condition — corner connectivity plus the
  // GF(2) boundary check — indeed finds no obstruction on the original
  // task; a simplicial witness needs a deeper subdivision than the bounded
  // search covers (the obstruction is purely chromatic).
  const HomologyObstruction hom = homology_boundary_check(task);
  std::printf("connectivity + homological obstruction on T: %s "
              "(paper: colorless ACT condition holds)\n",
              hom.feasible ? "none found" : "FOUND (unexpected)");
  const MapSearchResult colorless = colorless_probe(task, 1);
  std::printf("color-agnostic witness at r<=1: %s (deeper radii exceed the "
              "exhaustive budget)\n",
              colorless.found ? "found" : "not found");

  benchutil::section("canonicalization and LAPs");
  const Task star = canonicalize(task);
  const auto laps = find_all_laps(star);
  std::printf("canonical T*: %zu output vertices, %zu triangles, LAPs: %zu\n",
              star.output.count(0), star.output.count(2), laps.size());

  benchutil::section("splitting (Theorem 4.3)");
  const CharacterizationResult c = characterize(task);
  std::printf("splits performed: %zu; link-connected: %s\n", c.splits.size(),
              c.link_connected.is_link_connected() ? "yes" : "no");
  std::printf("per-facet image components after splitting:\n");
  const Task& tp = c.link_connected;
  for (const Simplex& sigma : tp.input.simplices(2)) {
    std::printf("  %-55s -> %zu component(s)\n",
                sigma.to_string(*tp.pool).c_str(),
                component_count(tp.delta.image_complex(sigma)));
  }
  std::printf("(paper: the mixed-input output complex falls into two components)\n");

  benchutil::section("verdict");
  const SolvabilityResult verdict = decide_solvability(task);
  std::printf("%s — %s\n", to_string(verdict.verdict), verdict.reason.c_str());
}

void BM_MajorityCharacterize(benchmark::State& state) {
  for (auto _ : state) {
    const CharacterizationResult c = characterize(zoo::majority_consensus());
    benchmark::DoNotOptimize(c.splits.size());
  }
}
BENCHMARK(BM_MajorityCharacterize);

void BM_MajorityConnectivityCsp(benchmark::State& state) {
  const CharacterizationResult c = characterize(zoo::majority_consensus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(connectivity_csp(c.link_connected).feasible);
  }
}
BENCHMARK(BM_MajorityConnectivityCsp);

void BM_MajorityFullVerdict(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide_solvability(zoo::majority_consensus()).verdict);
  }
}
BENCHMARK(BM_MajorityFullVerdict);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
