// Figure 2 / §6.1 reproduction: the hourglass task.
//
// Paper claims reproduced here:
//  - input complex: a single triangle; output complex: the bowtie around
//    P0's output-1 vertex y plus the periphery fan;
//  - y is the unique local articulation point; its link has exactly two
//    components (Fig. 2, right);
//  - the colorless ACT condition holds (a continuous map |I| → |O| exists,
//    witnessed by a color-agnostic decision map), yet the chromatic task is
//    unsolvable;
//  - splitting y (Fig. 2, center-right) reduces the impossibility to a
//    consensus-style disconnection: Corollary 5.5 fires.

#include "bench_util.h"
#include "core/characterization.h"
#include "core/lap.h"
#include "core/obstructions.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"
#include "topology/graph.h"
#include "topology/homology.h"

namespace {

using namespace trichroma;

void reproduce() {
  benchutil::header("Figure 2 / §6.1", "the hourglass task");
  const Task task = zoo::hourglass();
  VertexPool& pool = *task.pool;
  std::printf("%s", task.summary().c_str());

  benchutil::section("output complex (center left)");
  std::printf("%s", task.output.to_string(pool).c_str());
  const BettiNumbers b = betti_numbers(task.output);
  std::printf("Betti numbers: b0=%lld b1=%lld (the waist ring is the hole)\n",
              b.b0, b.b1);

  benchutil::section("the link of y (right)");
  const auto laps = find_all_laps(task);
  for (const LapRecord& lap : laps) {
    std::printf("LAP %s w.r.t. %s; link components:\n",
                pool.name(lap.vertex).c_str(), lap.facet.to_string(pool).c_str());
    for (const auto& comp : lap.link_components) {
      std::printf("  {");
      for (std::size_t i = 0; i < comp.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", pool.name(comp[i]).c_str());
      }
      std::printf("}\n");
    }
  }

  benchutil::section("colorless vs chromatic solvability");
  const MapSearchResult colorless = colorless_probe(task, 2);
  std::printf("color-agnostic decision map: %s (found at some Ch^r, r<=2)\n",
              colorless.found ? "FOUND" : "none");
  const SolvabilityResult verdict = decide_solvability(task);
  std::printf("chromatic verdict: %s\n  %s\n", to_string(verdict.verdict),
              verdict.reason.c_str());

  benchutil::section("after splitting (center right)");
  const CharacterizationResult c = characterize(task);
  std::printf("%s", c.report(pool).c_str());
  std::printf("Corollary 5.5 on T*: %s\n",
              corollary_5_5(c.canonical).fires ? "fires" : "silent");
  std::printf("connectivity CSP on T': %s\n",
              connectivity_csp(c.link_connected).feasible ? "feasible"
                                                          : "INFEASIBLE");
  std::printf("(paper: splitting reduces the proof from 2-set-agreement "
              "hardness to a consensus-style argument)\n");
}

void BM_HourglassLapDetection(benchmark::State& state) {
  const Task task = zoo::hourglass();
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_all_laps(task).size());
  }
}
BENCHMARK(BM_HourglassLapDetection);

void BM_HourglassColorlessProbe(benchmark::State& state) {
  const Task task = zoo::hourglass();
  for (auto _ : state) {
    benchmark::DoNotOptimize(colorless_probe(task, 2).found);
  }
}
BENCHMARK(BM_HourglassColorlessProbe);

void BM_HourglassVerdict(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide_solvability(zoo::hourglass()).verdict);
  }
}
BENCHMARK(BM_HourglassVerdict);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
