// Figures 3–4 reproduction: the canonical-form transformation.
//
// Paper claims reproduced here:
//  - the running-example task has a facet (the "green" one) shared between
//    Δ(σ) and Δ(σ'), so it is not canonical;
//  - the canonical form T* replaces each shared image by one copy per input
//    facet (the product with the input), after which Δ* is one-to-one
//    (Claim 1's precondition) while solvability is unchanged (Theorem 3.1);
//  - canonicalization statistics across the zoo show the output complex
//    growth is bounded by the number of (input facet, image) pairs.

#include "bench_util.h"
#include "solver/solvability.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"

namespace {

using namespace trichroma;

void reproduce() {
  benchutil::header("Figures 3-4", "canonical tasks");
  const Task task = zoo::fig3_running_example();
  VertexPool& pool = *task.pool;
  std::printf("%s", task.summary().c_str());

  benchutil::section("Figure 3: the task and its shared green facet");
  std::printf("output facets:\n%s", task.output.to_string(pool).c_str());
  for (const Simplex& sigma : task.input.simplices(2)) {
    std::printf("Δ(%s):\n", sigma.to_string(pool).c_str());
    for (const Simplex& im : task.delta.facet_images(sigma)) {
      std::printf("  %s\n", im.to_string(pool).c_str());
    }
  }
  std::printf("canonical: %s\n", task.is_canonical() ? "yes" : "no");

  benchutil::section("Figure 4: the canonical form T*");
  const Task star = canonicalize(task);
  std::printf("output facets of O* (the green facet became two):\n%s",
              star.output.to_string(pool).c_str());
  std::printf("canonical: %s\n", star.is_canonical() ? "yes" : "no");

  benchutil::section("Theorem 3.1: solvability is unchanged");
  std::printf("T  verdict: %s\n",
              to_string(decide_solvability(task).verdict));
  std::printf("T* verdict: %s\n",
              to_string(decide_solvability(star).verdict));

  benchutil::section("canonicalization growth across the zoo");
  const std::vector<Task> tasks = {zoo::consensus(3), zoo::majority_consensus(),
                                   zoo::set_agreement_32(), zoo::pinwheel()};
  std::printf("%-22s %14s %14s %10s\n", "task", "|O| triangles", "|O*| triangles",
              "canonical");
  for (const Task& t : tasks) {
    const Task s = canonicalize(t);
    std::printf("%-22s %14zu %14zu %6s->%s\n", t.name.c_str(), t.output.count(2),
                s.output.count(2), t.is_canonical() ? "yes" : "no",
                s.is_canonical() ? "yes" : "no");
  }
}

void BM_CanonicalizeFig3(benchmark::State& state) {
  const Task task = zoo::fig3_running_example();
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonicalize(task).output.count(2));
  }
}
BENCHMARK(BM_CanonicalizeFig3);

void BM_CanonicalizeConsensus(benchmark::State& state) {
  const Task task = zoo::consensus(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonicalize(task).output.count(2));
  }
}
BENCHMARK(BM_CanonicalizeConsensus);

void BM_CanonicalizeSetAgreement(benchmark::State& state) {
  const Task task = zoo::set_agreement_32();
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonicalize(task).output.count(2));
  }
}
BENCHMARK(BM_CanonicalizeSetAgreement);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
