// Figure 5 reproduction: the splitting deformation.
//
// Paper content reproduced here:
//  - a vertex y whose link lk_{Δ(σ)}(y) has r components is replaced by
//    copies y_1..y_r, each inheriting one component (Fig. 5's schematic);
//  - Lemma 4.1: the LAP count w.r.t. σ strictly decreases, and no clean
//    facet regresses;
//  - scaling: splitting cost as a function of link size, measured on the
//    fan-task family and on random pinched complexes.

#include "bench_util.h"
#include "core/link_connected.h"
#include "core/splitting.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/graph.h"

namespace {

using namespace trichroma;

/// A synthetic "pinched star": two fans glued at their centers — the
/// center's link is two disjoint paths, so it is a LAP with two components
/// whose sizes scale with `arm`.
Task pinched_star(int arm) {
  // Build from two fan tasks' worth of triangles sharing the center.
  Task task;
  task.pool = std::make_shared<VertexPool>();
  task.name = "pinched-star-" + std::to_string(arm);
  task.num_processes = 3;
  VertexPool& pool = *task.pool;
  ValuePool& vals = pool.values();
  auto in_vertex = [&](Color c) {
    return pool.vertex(c, vals.of_tuple({vals.of_string("in"), vals.of_int(c)}));
  };
  auto out_vertex = [&](Color c, std::int64_t v) {
    return pool.vertex(c, vals.of_tuple({vals.of_string("out"), vals.of_int(v)}));
  };
  const VertexId x0 = in_vertex(0), x1 = in_vertex(1), x2 = in_vertex(2);
  task.input.add(Simplex{x0, x1, x2});

  const VertexId center = out_vertex(0, 0);
  std::vector<Simplex> triangles;
  std::vector<Simplex> spokes01, spokes02, rim_edges;
  std::vector<Simplex> rim1, rim2;
  for (int side = 0; side < 2; ++side) {
    std::vector<VertexId> rim;
    for (int i = 0; i <= arm; ++i) {
      rim.push_back(out_vertex(i % 2 == 0 ? 1 : 2, 1000 * side + i + 1));
    }
    for (int i = 0; i < arm; ++i) {
      triangles.push_back(Simplex{center, rim[static_cast<std::size_t>(i)],
                                  rim[static_cast<std::size_t>(i + 1)]});
      rim_edges.push_back(Simplex{rim[static_cast<std::size_t>(i)],
                                  rim[static_cast<std::size_t>(i + 1)]});
    }
    for (VertexId v : rim) {
      (pool.color(v) == 1 ? spokes01 : spokes02).push_back(Simplex{center, v});
      (pool.color(v) == 1 ? rim1 : rim2).push_back(Simplex::single(v));
    }
  }
  for (const Simplex& t : triangles) task.output.add(t);
  task.delta.set(Simplex::single(x0), {Simplex::single(center)});
  task.delta.set(Simplex::single(x1), rim1);
  task.delta.set(Simplex::single(x2), rim2);
  task.delta.set(Simplex{x0, x1}, spokes01);
  task.delta.set(Simplex{x0, x2}, spokes02);
  task.delta.set(Simplex{x1, x2}, rim_edges);
  task.delta.set(Simplex{x0, x1, x2}, triangles);
  return task;
}

void reproduce() {
  benchutil::header("Figure 5", "the splitting deformation");
  benchutil::section("splitting a pinched star (two components at the waist)");
  std::printf("%-6s %10s %12s %12s %12s\n", "arm", "link size", "LAPs before",
              "LAPs after", "components");
  for (int arm : {2, 4, 8, 16, 32}) {
    const Task task = pinched_star(arm);
    const auto laps = find_all_laps(task);
    const std::size_t link_size =
        laps.empty() ? 0
                     : laps[0].link_components[0].size() +
                           laps[0].link_components[1].size();
    const LinkConnectedResult lc = make_link_connected(task);
    std::printf("%-6d %10zu %12zu %12zu %12zu\n", arm, link_size, laps.size(),
                find_all_laps(lc.task).size(),
                component_count(lc.task.output));
  }
  std::printf("(the y vertex splits into one copy per component; the two fans\n"
              " separate — exactly Fig. 5's schematic)\n");

  benchutil::section("Lemma 4.1 on the pinwheel: strict decrease, no regressions");
  Task t = canonicalize(zoo::pinwheel());
  std::size_t step = 0;
  while (true) {
    const auto laps = find_all_laps(t);
    std::printf("  step %zu: %zu LAPs\n", step, laps.size());
    if (laps.empty()) break;
    t = split_lap(t, laps.front()).task;
    ++step;
  }
}

void BM_SplitPinchedStar(benchmark::State& state) {
  const Task task = pinched_star(static_cast<int>(state.range(0)));
  const auto laps = find_all_laps(task);
  for (auto _ : state) {
    benchmark::DoNotOptimize(split_lap(task, laps.front()).task.output.count(2));
  }
  state.counters["arm"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SplitPinchedStar)->Arg(4)->Arg(16)->Arg(64);

void BM_MakeLinkConnectedPinwheel(benchmark::State& state) {
  const Task star = canonicalize(zoo::pinwheel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_link_connected(star).history.size());
  }
}
BENCHMARK(BM_MakeLinkConnectedPinwheel);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
