// Figure 6 reproduction: splitting preserves solvability (Lemma 4.2).
//
// The figure illustrates the two cases of the proof (τ ⊆ σ and τ ⊄ σ).
// Executable counterpart: across the zoo and a random-task sweep, the
// solvability evidence must stay consistent through the split pipeline —
// a chromatic decision map for T implies a color-agnostic one for T', and
// an obstruction on T' implies no map for T exists.

#include "bench_util.h"
#include "core/characterization.h"
#include "core/obstructions.h"
#include "protocols/colorless_protocol.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"

namespace {

using namespace trichroma;

void reproduce() {
  benchutil::header("Figure 6", "splitting preserves solvability (Lemma 4.2)");

  benchutil::section("zoo tasks through the pipeline");
  std::printf("%-28s %12s %14s %14s\n", "task", "direct", "T' obstructed",
              "T' colorless");
  const std::vector<Task> tasks = {
      zoo::identity_task(),       zoo::subdivision_task(1),
      zoo::approximate_agreement(2), zoo::renaming(5),
      zoo::consensus(3),          zoo::majority_consensus(),
      zoo::hourglass(),           zoo::pinwheel(),
      zoo::set_agreement_32(),
  };
  for (const Task& t : tasks) {
    SolvabilityOptions options;
    options.max_radius = 1;
    options.use_characterization = false;
    const SolvabilityResult direct = decide_solvability(t, options);
    const CharacterizationResult c = characterize(t);
    const bool obstructed = !connectivity_csp(c.link_connected).feasible ||
                            !homology_boundary_check(c.link_connected).feasible;
    const auto colorless =
        protocols::synthesize_colorless(c.link_connected, 1, 2'000'000);
    std::printf("%-28s %12s %14s %14s\n", t.name.c_str(),
                direct.verdict == Verdict::Solvable ? "solvable" : "no-map(r<=1)",
                obstructed ? "yes" : "no",
                colorless.has_value() ? "solvable" : "no-map(r<=1)");
    // Consistency (Lemma 4.2): never "solvable" on one side and
    // "obstructed" on the other.
    if (direct.verdict == Verdict::Solvable && obstructed) {
      std::printf("  !! INCONSISTENT — Lemma 4.2 violated\n");
    }
    if (colorless.has_value() && obstructed) {
      std::printf("  !! INCONSISTENT — obstruction vs colorless witness\n");
    }
  }

  benchutil::section("random-task sweep");
  int solvable_consistent = 0, obstructed_consistent = 0, inconsistent = 0,
      undecided = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    zoo::RandomTaskParams params;
    params.seed = seed;
    params.num_input_facets = 1 + static_cast<int>(seed % 3);
    const Task t = zoo::random_task(params);
    SolvabilityOptions options;
    options.max_radius = 1;
    options.use_characterization = false;
    const bool direct = decide_solvability(t, options).verdict == Verdict::Solvable;
    const CharacterizationResult c = characterize(t);
    const bool obstructed = !connectivity_csp(c.link_connected).feasible ||
                            !homology_boundary_check(c.link_connected).feasible;
    if (direct && obstructed) {
      ++inconsistent;
    } else if (direct) {
      ++solvable_consistent;
    } else if (obstructed) {
      ++obstructed_consistent;
    } else {
      ++undecided;
    }
  }
  std::printf("seeds: 60  solvable: %d  obstructed: %d  undecided: %d  "
              "INCONSISTENT: %d\n",
              solvable_consistent, obstructed_consistent, undecided, inconsistent);
  std::printf("(Lemma 4.2 holds iff the inconsistent count is 0)\n");
}

void BM_PreservationCheckRandom(benchmark::State& state) {
  zoo::RandomTaskParams params;
  params.seed = 7;
  const Task t = zoo::random_task(params);
  for (auto _ : state) {
    const CharacterizationResult c = characterize(t);
    benchmark::DoNotOptimize(connectivity_csp(c.link_connected).feasible);
  }
}
BENCHMARK(BM_PreservationCheckRandom);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
