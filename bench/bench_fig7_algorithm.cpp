// Figure 7 reproduction: the chromatic agreement algorithm (Lemma 5.3).
//
// Paper claims reproduced here:
//  - the algorithm converts a color-agnostic solution of a link-connected
//    task into a chromatic one using snapshots only;
//  - at least one process is a pivot (Claim 2);
//  - each process returns in time at most proportional to the longest link:
//    we sweep the fan-task family, whose central link is a path of growing
//    length, and report the negotiation-jump counts against the link
//    diameter.

#include "bench_util.h"
#include "protocols/chromatic_agreement.h"
#include "protocols/colorless_protocol.h"
#include "tasks/zoo.h"
#include "topology/graph.h"

namespace {

using namespace trichroma;
using protocols::run_agreement;
using protocols::synthesize_colorless;

struct SweepRow {
  int rim = 0;
  std::size_t link_diameter = 0;
  std::size_t max_jumps = 0;
  double mean_ops = 0;
  int runs = 0;
  int pivots = 0;
  bool all_valid = true;
};

SweepRow sweep_fan(int rim, int seeds) {
  const Task t = zoo::fan_task(rim);
  SweepRow row;
  row.rim = rim;
  // Link diameter of the center vertex (the longest link in the complex).
  const Simplex sigma = t.input.facets().front();
  const SimplicialComplex image = t.delta.image_complex(sigma);
  const VertexId center = t.delta.facet_images(Simplex::single(sigma[0]))[0][0];
  const SimplicialComplex link = image.link(center);
  std::size_t diameter = 0;
  for (VertexId a : link.vertex_ids()) {
    for (VertexId b : link.vertex_ids()) {
      const auto d = path_distance(link, a, b);
      if (d.has_value()) diameter = std::max(diameter, *d);
    }
  }
  row.link_diameter = diameter;

  const auto algorithm = synthesize_colorless(t, 2);
  if (!algorithm.has_value()) {
    row.all_valid = false;
    return row;
  }
  std::vector<std::pair<int, VertexId>> inputs;
  for (int i = 0; i < 3; ++i) inputs.emplace_back(i, sigma[static_cast<std::size_t>(i)]);
  std::size_t total_ops = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    const auto outcomes = run_agreement(t, *algorithm, inputs,
                                        static_cast<std::uint64_t>(seed),
                                        /*spread_anchors=*/true);
    row.all_valid =
        row.all_valid && protocols::outcomes_valid(t, inputs, outcomes);
    ++row.runs;
    for (const auto& o : outcomes) {
      row.max_jumps = std::max(row.max_jumps, o.jumps);
      total_ops += o.operations;
      if (o.pivot) ++row.pivots;
    }
  }
  row.mean_ops = static_cast<double>(total_ops) / (3.0 * row.runs);
  return row;
}

/// Worst-case adversary: the pivot runs alone first, then the two
/// non-pivots proceed in strict lockstep with spread anchors, so both jump
/// concurrently and the negotiation traverses the whole link.
std::size_t lockstep_jumps(int rim) {
  const Task t = zoo::fan_task(rim);
  const auto algorithm = synthesize_colorless(t, 2);
  if (!algorithm.has_value()) return 0;
  const Simplex facet = t.input.facets().front();
  protocols::AgreementShared shared(3, algorithm->rounds);
  std::vector<protocols::AgreementOutcome> outcomes(3);
  std::vector<runtime::ProcessBody> procs;
  for (int i = 0; i < 3; ++i) {
    procs.push_back(protocols::agreement_process(
        shared, t, *algorithm, i, facet[static_cast<std::size_t>(i)],
        outcomes[static_cast<std::size_t>(i)], /*pick_largest=*/i == 1));
  }
  runtime::Executor ex(std::move(procs));
  while (!ex.done(0)) ex.step(runtime::Block{0});
  while (!ex.all_done()) {
    if (!ex.done(1)) ex.step(runtime::Block{1});
    if (!ex.done(2)) ex.step(runtime::Block{2});
  }
  return outcomes[1].jumps + outcomes[2].jumps;
}

void reproduce() {
  benchutil::header("Figure 7", "the chromatic agreement algorithm");
  benchutil::section("fan-task sweep: jumps vs link length");
  std::printf("%-6s %14s %12s %12s %10s %10s %8s\n", "rim", "link diameter",
              "rand jumps", "lockstep", "mean ops", "pivots", "valid");
  for (int rim : {2, 4, 8, 12, 16, 24}) {
    const SweepRow row = sweep_fan(rim, 30);
    std::printf("%-6d %14zu %12zu %12zu %10.1f %8d/%d %8s\n", row.rim,
                row.link_diameter, row.max_jumps, lockstep_jumps(rim),
                row.mean_ops, row.pivots, row.runs,
                row.all_valid ? "yes" : "NO");
  }
  std::printf(
      "(paper: termination time at most proportional to the longest link.\n"
      " Under the random adversary a jump lands adjacent to the partner's\n"
      " last proposal, so counts stay tiny; the lockstep adversary makes\n"
      " both non-pivots move concurrently and realizes the Θ(link) bound.)\n");
}

void BM_AgreementFan(benchmark::State& state) {
  const int rim = static_cast<int>(state.range(0));
  const Task t = zoo::fan_task(rim);
  const auto algorithm = synthesize_colorless(t, 2);
  const Simplex sigma = t.input.facets().front();
  std::vector<std::pair<int, VertexId>> inputs;
  for (int i = 0; i < 3; ++i) inputs.emplace_back(i, sigma[static_cast<std::size_t>(i)]);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_agreement(t, *algorithm, inputs, seed++, true).size());
  }
  state.counters["rim"] = rim;
}
BENCHMARK(BM_AgreementFan)->Arg(4)->Arg(8)->Arg(16);

void BM_SynthesizeColorlessFan(benchmark::State& state) {
  const Task t = zoo::fan_task(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_colorless(t, 2).has_value());
  }
}
BENCHMARK(BM_SynthesizeColorlessFan)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
