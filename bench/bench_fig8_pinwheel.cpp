// Figure 8 / §6.2 reproduction: the pinwheel task.
//
// Paper claims reproduced here:
//  - the pinwheel is a subtask of inputless 2-set agreement keeping all
//    vertex/edge outputs and nine triangles;
//  - unlike the hourglass, it has no continuous map |I| → |O| even
//    colorlessly (the homological engine certifies it);
//  - Corollary 5.5 cannot be applied directly (paths still exist per edge);
//    Corollary 5.6 fires: every cycle in Δ(Skel¹I) goes through a LAP;
//  - splitting the six LAPs yields three disconnected blades, and no blade
//    offers an output vertex to every process — so the task is unsolvable.

#include "bench_util.h"
#include "core/characterization.h"
#include "core/lap.h"
#include "core/obstructions.h"
#include "solver/solvability.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/graph.h"
#include "topology/homology.h"

namespace {

using namespace trichroma;

void reproduce() {
  benchutil::header("Figure 8 / §6.2", "the pinwheel task");
  const Task task = zoo::pinwheel();
  std::printf("%s", task.summary().c_str());

  benchutil::section("the nine kept triangles (value vectors)");
  for (const auto& v : zoo::pinwheel_kept_vectors()) {
    std::printf("  (%d, %d, %d)\n", v[0], v[1], v[2]);
  }
  std::printf("vs 2-set agreement's 21; all 12 edge outputs are kept intact\n");

  benchutil::section("no continuous map, even colorlessly");
  const HomologyObstruction hom = homology_boundary_check(task);
  std::printf("homological boundary check: %s\n  %s\n",
              hom.feasible ? "feasible (?!)" : "INFEASIBLE", hom.detail.c_str());

  benchutil::section("the corollaries");
  const Task star = canonicalize(task);
  std::printf("Corollary 5.5: %s (paper: cannot be used directly)\n",
              corollary_5_5(star).fires ? "fires" : "silent");
  const CorollaryResult c56 = corollary_5_6(star);
  std::printf("Corollary 5.6: %s\n  %s\n", c56.fires ? "FIRES" : "silent",
              c56.detail.c_str());

  benchutil::section("splitting into three blades");
  const CharacterizationResult c = characterize(task);
  std::printf("%s", c.report(*c.canonical.pool).c_str());
  const auto blades = connected_components(c.link_connected.output);
  std::printf("blades: %zu", blades.size());
  for (const auto& blade : blades) std::printf("  |V|=%zu", blade.size());
  std::printf("\n");
  // The §6.2 chain: each blade misses all copies of some process's solo
  // output.
  const Task& tp = c.link_connected;
  VertexPool& pool = *tp.pool;
  for (std::size_t b = 0; b < blades.size(); ++b) {
    std::printf("  blade %zu misses solo outputs of:", b);
    for (VertexId x : tp.input.vertex_ids()) {
      bool present = false;
      for (VertexId v : tp.delta.image_complex(Simplex::single(x)).vertex_ids()) {
        for (VertexId w : blades[b]) {
          if (v == w) present = true;
        }
      }
      if (!present) std::printf(" %s", pool.name(x).c_str());
    }
    std::printf("\n");
  }

  benchutil::section("verdict");
  const SolvabilityResult verdict = decide_solvability(task);
  std::printf("%s — %s\n", to_string(verdict.verdict), verdict.reason.c_str());
}

void BM_PinwheelHomology(benchmark::State& state) {
  const Task task = zoo::pinwheel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(homology_boundary_check(task).feasible);
  }
}
BENCHMARK(BM_PinwheelHomology);

void BM_PinwheelCor56(benchmark::State& state) {
  const Task star = canonicalize(zoo::pinwheel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(corollary_5_6(star).fires);
  }
}
BENCHMARK(BM_PinwheelCor56);

void BM_PinwheelVerdict(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide_solvability(zoo::pinwheel()).verdict);
  }
}
BENCHMARK(BM_PinwheelVerdict);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
