// Cold subdivision-ladder builds, sequential vs parallel. Each iteration
// grows Ch^1..Ch^r of a catalog input from a fresh pool — exactly the work
// a cold probe pays before its first search — so the rows time the
// template-stamping substrate itself: Phase-1 canonical interning (always
// sequential; it is what pins the id order), chunked facet stamping, and
// the canonical-order merge. The parallel rows produce bit-identical
// complexes (tests/topology_parallel_test.cpp); on a multi-core host they
// show the stamping speedup, on the 1-core reference container they bound
// the chunking/merge overhead of threads > 1.

#include <benchmark/benchmark.h>

#include <cstddef>

#include "bench_util.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace {

using namespace trichroma;

// Cold Ch^r tower of the hourglass input (one base triangle: the densest
// per-facet growth, 13^r facets) at radius r = range(0), threads = range(1).
void BM_ColdLadderBuild(benchmark::State& state) {
  const int radius = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  std::size_t facets = 0;
  for (auto _ : state) {
    const Task task = zoo::hourglass();
    const SubdividedComplex top =
        chromatic_subdivision(*task.pool, task.input, radius, threads);
    facets = top.complex.count(top.complex.dimension());
    benchmark::DoNotOptimize(facets);
  }
  state.counters["radius"] = static_cast<double>(radius);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["facets"] = static_cast<double>(facets);
}
BENCHMARK(BM_ColdLadderBuild)
    ->ArgsProduct({{1, 2, 3}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

// The same sweep over a wider base (the 6-facet set-agreement input): more
// base simplices per dimension means more, smaller chunks — the shape the
// facet-weighted chunk boundaries were built for.
void BM_ColdLadderBuildWide(benchmark::State& state) {
  const int radius = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  std::size_t facets = 0;
  for (auto _ : state) {
    const Task task = zoo::set_agreement_32();
    const SubdividedComplex top =
        chromatic_subdivision(*task.pool, task.input, radius, threads);
    facets = top.complex.count(top.complex.dimension());
    benchmark::DoNotOptimize(facets);
  }
  state.counters["radius"] = static_cast<double>(radius);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["facets"] = static_cast<double>(facets);
}
BENCHMARK(BM_ColdLadderBuildWide)
    ->ArgsProduct({{2}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  trichroma::benchutil::add_build_type_context();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
