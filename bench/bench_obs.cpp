// Observability overhead: what the src/obs instrumentation costs on the
// majority-consensus decide path, with tracing off (the shipping default)
// and on. The qualitative claim checked here is the subsystem's contract:
// disabled instrumentation is near-zero — one relaxed/acquire load per
// site — so the solver pays well under 2% for carrying the trace points.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/batch.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"

namespace {

using namespace trichroma;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void reproduce() {
  benchutil::header("Observability", "tracing overhead on the decide path");

  benchutil::section("per-site cost, tracing off");
  // The disabled fast path is a single acquire load; measure it directly.
  constexpr int kSites = 1 << 20;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSites; ++i) {
    TRI_SPAN("bench/disabled");
  }
  const double site_ns = seconds_since(t0) * 1e9 / kSites;
  std::printf("disabled span site: %.2f ns\n", site_ns);

  benchutil::section("sites per decide");
  // Count how many trace events one majority-consensus decide emits.
  obs::trace_start(std::size_t{1} << 18);
  decide_solvability(zoo::majority_consensus());
  obs::trace_stop();
  const std::string trace = obs::trace_to_json();
  std::size_t events = 0;
  for (std::size_t at = trace.find("\"ph\":"); at != std::string::npos;
       at = trace.find("\"ph\":", at + 1)) {
    ++events;
  }
  events += static_cast<std::size_t>(obs::trace_dropped());
  std::printf("trace events per decide (incl. dropped): %zu\n", events);

  benchutil::section("decide wall time, tracing off");
  constexpr int kReps = 20;
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    benchmark::DoNotOptimize(
        decide_solvability(zoo::majority_consensus()).verdict);
  }
  const double decide_ns = seconds_since(t1) * 1e9 / kReps;
  std::printf("decide: %.0f us\n", decide_ns / 1e3);

  benchutil::section("overhead bound");
  // Disabled-tracing overhead is bounded by (sites hit) x (cost per
  // disabled site). The contract is < 2% of the decide path.
  const double overhead =
      static_cast<double>(events) * site_ns / decide_ns * 100.0;
  std::printf("tracing-off overhead bound: %zu sites x %.2f ns = %.3f%% "
              "of decide (%s the 2%% contract)\n",
              events, site_ns, overhead,
              overhead < 2.0 ? "MEETS" : "VIOLATES");

  benchutil::section("bit-parallel counters, always-on cost");
  // The word-parallel search counters (search.propagate.fastpath_skips,
  // search.arena.bytes_reserved, ladder.template.stamps) charge plain
  // locals on the hot path and flush one relaxed fetch_add per
  // deterministic site — per search, per prefix job, per subdivision
  // build — never per node. Their always-on cost is therefore bounded by
  // (flush sites per decide) x (cost per atomic add), held to the same
  // < 2% contract as the trace points.
  // Majority consensus concludes on the impossibility side before any
  // probe runs, so its decide never touches these counters; time a task
  // that climbs the probe ladder instead (the intrinsic-radius-2
  // subdivision task: probes at r = 0, 1, 2, building Ch^r on the way).
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.reset();
  const auto t_probe = std::chrono::steady_clock::now();
  decide_solvability(zoo::subdivision_task(2));
  const double probe_ns = seconds_since(t_probe) * 1e9;
  const std::uint64_t flush_sites =
      registry.counter("map_search.searches").value() +
      registry.counter("map_search.prefix_jobs").value() +
      registry.counter("topology.subdivide.builds").value();
  std::printf("new counters after one decide: fastpath_skips=%llu, "
              "arena_bytes=%llu, template_stamps=%llu\n",
              static_cast<unsigned long long>(
                  registry.counter("search.propagate.fastpath_skips").value()),
              static_cast<unsigned long long>(
                  registry.counter("search.arena.bytes_reserved").value()),
              static_cast<unsigned long long>(
                  registry.counter("ladder.template.stamps").value()));
  obs::Counter& flush = registry.counter("bench.flush");
  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSites; ++i) {
    flush.add(static_cast<std::uint64_t>(i));
  }
  const double add_ns = seconds_since(t2) * 1e9 / kSites;
  const double counter_overhead =
      static_cast<double>(flush_sites) * add_ns / probe_ns * 100.0;
  std::printf("counter flush bound: %llu sites x %.2f ns = %.4f%% of "
              "decide (%s the 2%% contract)\n",
              static_cast<unsigned long long>(flush_sites), add_ns,
              counter_overhead,
              counter_overhead < 2.0 ? "MEETS" : "VIOLATES");

  benchutil::section("histogram/gauge record cost (Telemetry v2)");
  // Telemetry v2's distribution sites are as always-on as the counters:
  // a histogram record is three relaxed fetch_adds plus a bit_width, a
  // gauge set one relaxed store. The hot loops (per-variable CSP domain
  // tallies) batch locally and merge once per CSP, so the charged sites
  // are per-search/per-rung/per-store-file — the same O(flush sites)
  // budget as the counters, under the same < 2% contract.
  obs::Histogram& hist = registry.histogram("bench.hist");
  const auto t3 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSites; ++i) {
    hist.record(static_cast<std::uint64_t>(i));
  }
  const double hist_ns = seconds_since(t3) * 1e9 / kSites;
  obs::Gauge& gauge = registry.gauge("bench.gauge");
  const auto t4 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSites; ++i) {
    gauge.set(i);
  }
  const double gauge_ns = seconds_since(t4) * 1e9 / kSites;
  const double hist_overhead =
      static_cast<double>(flush_sites) * hist_ns / probe_ns * 100.0;
  std::printf("histogram record: %.2f ns, gauge set: %.2f ns\n", hist_ns,
              gauge_ns);
  std::printf("histogram flush bound: %llu sites x %.2f ns = %.4f%% of "
              "decide (%s the 2%% contract)\n",
              static_cast<unsigned long long>(flush_sites), hist_ns,
              hist_overhead, hist_overhead < 2.0 ? "MEETS" : "VIOLATES");
}

void BM_DecideMajorityTraceOff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        decide_solvability(zoo::majority_consensus()).verdict);
  }
}
BENCHMARK(BM_DecideMajorityTraceOff);

void BM_DecideMajorityTraceOn(benchmark::State& state) {
  for (auto _ : state) {
    // A fresh session per iteration so every decide records into empty
    // buffers (steady-state write cost, not the post-overflow drop path);
    // the restart is inside the timed region but is a small constant next
    // to the decide itself.
    obs::trace_start(std::size_t{1} << 16);
    benchmark::DoNotOptimize(
        decide_solvability(zoo::majority_consensus()).verdict);
    obs::trace_stop();
  }
}
BENCHMARK(BM_DecideMajorityTraceOn);

void BM_SpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    TRI_SPAN("bench/span");
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::trace_start(std::size_t{1} << 16);
  std::uint32_t since_restart = 0;
  for (auto _ : state) {
    TRI_SPAN("bench/span");
    if (++since_restart == 30000) {  // refresh before the buffer fills
      state.PauseTiming();
      obs::trace_start(std::size_t{1} << 16);
      since_restart = 0;
      state.ResumeTiming();
    }
  }
  obs::trace_stop();
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter =
      obs::MetricsRegistry::global().counter("bench.counter");
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& hist =
      obs::MetricsRegistry::global().histogram("bench.histogram");
  std::uint64_t v = 0;
  for (auto _ : state) {
    hist.record(v++ & 0xffff);  // cycle through the low buckets
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_GaugeSet(benchmark::State& state) {
  obs::Gauge& gauge = obs::MetricsRegistry::global().gauge("bench.gauge_set");
  std::int64_t v = 0;
  for (auto _ : state) {
    gauge.set(v++);
    benchmark::DoNotOptimize(gauge);
  }
}
BENCHMARK(BM_GaugeSet);

// The BM_BatchHeartbeat pair: the same two-task batch with the heartbeat
// thread off and on (20ms period — 250x tighter than the 5s default).
// The On-Off delta is dominated by the FIXED cost of the writer's
// thread spawn + final-flush join per run_batch call — a few hundred
// microseconds that is independent of batch length, i.e. noise on any
// real batch (seconds to hours). The per-beat cost (render + tmp write
// + rename) happens on the heartbeat thread, off the driver's path.
BatchOptions heartbeat_bench_options() {
  BatchOptions options;
  options.solve.threads = 1;
  options.solve.max_radius = 1;
  options.jobs = 1;
  options.only = {"identity", "consensus_2"};
  return options;
}

void BM_BatchHeartbeatOff(benchmark::State& state) {
  const BatchOptions options = heartbeat_bench_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batch(options).unknown);
  }
}
BENCHMARK(BM_BatchHeartbeatOff);

void BM_BatchHeartbeatOn(benchmark::State& state) {
  BatchOptions options = heartbeat_bench_options();
  options.heartbeat_file =
      (std::filesystem::temp_directory_path() / "trichroma-bench-heartbeat.json")
          .string();
  options.heartbeat_interval_s = 0.02;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batch(options).unknown);
  }
  std::error_code ec;
  std::filesystem::remove(options.heartbeat_file, ec);
}
BENCHMARK(BM_BatchHeartbeatOn);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
