// Racing scheduler vs the sequential ladder: per-task wall-clock of
// run_pipeline at threads = 1 (the classic ladder order) against threads = 2
// (impossibility lane racing the chromatic probe). The win concentrates on
// the solvable subset — the sequential ladder pays for canonicalize + split
// + corollaries before the probe even starts, while the racing scheduler
// lets a radius-0 witness cancel all of that.

#include <chrono>
#include <string>
#include <vector>

#include "bench_util.h"
#include "solver/pipeline.h"
#include "tasks/zoo.h"

namespace {

using namespace trichroma;

double time_pipeline(const Task& task, int threads) {
  SolvabilityOptions options;
  options.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const PipelineResult r = run_pipeline(task, options);
  benchmark::DoNotOptimize(r.report.verdict);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void reproduce() {
  benchutil::header("Racing scheduler",
                    "sequential ladder (threads=1) vs racing (threads=2)");
  std::printf("%-24s %-12s %12s %12s %9s\n", "task", "verdict", "seq ms",
              "race ms", "speedup");
  double seq_solvable = 0.0, race_solvable = 0.0;
  double seq_total = 0.0, race_total = 0.0;
  for (const zoo::CatalogEntry& entry : zoo::catalog()) {
    const Task task = entry.build();
    // Warm once (first touch pays one-off allocator/pool costs), then take
    // the best of three per mode.
    double seq = 1e300, race = 1e300;
    time_pipeline(task, 1);
    for (int i = 0; i < 3; ++i) {
      seq = std::min(seq, time_pipeline(entry.build(), 1));
      race = std::min(race, time_pipeline(entry.build(), 2));
    }
    SolvabilityOptions options;
    options.threads = 1;
    const Verdict verdict = run_pipeline(task, options).report.verdict;
    if (verdict == Verdict::Solvable) {
      seq_solvable += seq;
      race_solvable += race;
    }
    seq_total += seq;
    race_total += race;
    std::printf("%-24s %-12s %12.2f %12.2f %8.2fx\n", entry.name,
                to_string(verdict), seq, race, seq / race);
  }
  std::printf("%-24s %-12s %12.2f %12.2f %8.2fx\n", "TOTAL (solvable)", "",
              seq_solvable, race_solvable, seq_solvable / race_solvable);
  std::printf("%-24s %-12s %12.2f %12.2f %8.2fx\n", "TOTAL (all)", "",
              seq_total, race_total, seq_total / race_total);
}

void BM_SequentialLadderSolvableSubset(benchmark::State& state) {
  for (auto _ : state) {
    for (Task (*build)() : {zoo::identity_task, +[] { return zoo::fan_task(6); },
                            zoo::fig3_running_example}) {
      SolvabilityOptions options;
      options.threads = 1;
      benchmark::DoNotOptimize(run_pipeline(build(), options).report.verdict);
    }
  }
}
BENCHMARK(BM_SequentialLadderSolvableSubset)->Unit(benchmark::kMillisecond);

void BM_RacingSolvableSubset(benchmark::State& state) {
  for (auto _ : state) {
    for (Task (*build)() : {zoo::identity_task, +[] { return zoo::fan_task(6); },
                            zoo::fig3_running_example}) {
      SolvabilityOptions options;
      options.threads = 2;
      benchmark::DoNotOptimize(run_pipeline(build(), options).report.verdict);
    }
  }
}
BENCHMARK(BM_RacingSolvableSubset)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
