// Proposition 5.4 reproduction: two-process tasks are solvable iff there is
// a continuous map |I| → |O| carried by Δ — decided exactly by the
// connectivity CSP (choose a corner per input vertex, connected within each
// edge image). Also exhibits the dimension contrast the paper highlights:
// in dimension one a disconnected link means a disconnected complex, so
// LAPs only become an independent phenomenon with three processes.

#include "bench_util.h"
#include "core/lap.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"
#include "topology/graph.h"

namespace {

using namespace trichroma;

void reproduce() {
  benchutil::header("Proposition 5.4", "two-process solvability");

  benchutil::section("verdicts");
  std::printf("%-28s %-12s %s\n", "task", "verdict", "reason");
  const std::vector<Task> tasks = {
      zoo::consensus_2(),
      zoo::approximate_agreement_2(1),
      zoo::approximate_agreement_2(2),
      zoo::approximate_agreement_2(4),
  };
  for (const Task& t : tasks) {
    const SolvabilityResult r = decide_two_process(t);
    std::printf("%-28s %-12s %.60s...\n", t.name.c_str(), to_string(r.verdict),
                r.reason.c_str());
  }

  benchutil::section("dimension contrast (§1.3)");
  // For two processes, a LAP (vertex with disconnected link) forces the
  // edge image itself to be disconnected — check on 2-proc consensus.
  const Task c2 = zoo::consensus_2();
  std::size_t laps = 0, disconnected_edges = 0, edges = 0;
  for (const Simplex& e : c2.input.simplices(1)) {
    const SimplicialComplex image = c2.delta.image_complex(e);
    ++edges;
    if (!is_connected(image)) ++disconnected_edges;
    for (VertexId v : image.vertex_ids()) {
      const SimplicialComplex lk = image.link(v);
      if (!lk.empty() && !is_connected(lk)) ++laps;
    }
  }
  std::printf("2-proc consensus: %zu input edges, %zu disconnected images, "
              "%zu vertex-level LAPs\n",
              edges, disconnected_edges, laps);
  std::printf("(in dimension 1, obstruction = plain disconnection; the LAP "
              "phenomenon needs dimension 2)\n");
  const Task pin = zoo::pinwheel();
  std::printf("pinwheel (3 processes): output connected: %s, LAPs: %zu\n",
              is_connected(pin.output) ? "yes" : "no", find_all_laps(pin).size());
}

void BM_TwoProcConsensus(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide_two_process(zoo::consensus_2()).verdict);
  }
}
BENCHMARK(BM_TwoProcConsensus);

void BM_TwoProcApproxAgreement(benchmark::State& state) {
  const Task t = zoo::approximate_agreement_2(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide_two_process(t).verdict);
  }
}
BENCHMARK(BM_TwoProcApproxAgreement)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
