// Multi-core scaling suite: the executor's two parallel layers swept over
// worker counts 1/2/4/8. BM_BatchJobs scales whole-task pipelines (the
// embarrassingly parallel layer: one catalog task per executor job);
// BM_PrefixSearchThreads scales one decision-map search (the fine-grained
// layer: DFS-ordered prefix jobs racing under canonical accounting). On a
// multi-core host the curves show real speedup; on the 1-core reference
// container they document that extra workers cost nothing. Either way every
// row computes the identical result — the determinism contract makes the
// thread count a pure scheduling knob, which is what lets this suite
// compare rows at all.

#include <benchmark/benchmark.h>

#include <cstddef>

#include "bench_util.h"
#include "solver/batch.h"
#include "solver/map_search.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace {

using namespace trichroma;

// Whole-zoo batch wall clock at increasing --jobs. The long pole is the
// slowest single task, so speedup saturates well below the job count.
void BM_BatchJobs(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  std::size_t tasks = 0;
  for (auto _ : state) {
    BatchOptions options;
    options.jobs = jobs;
    const BatchResult result = run_batch(options);
    tasks = result.tasks.size();
    benchmark::DoNotOptimize(result.unknown);
  }
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_BatchJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// One hard decision-map search at increasing --threads: the chromatic probe
// of (3,2)-set agreement on Ch^1, node-capped so every row does the same
// canonically-accounted work. Warm caches (shared ladder + image cache), so
// rows time the search itself, not CSP compilation.
void BM_PrefixSearchThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Task task = zoo::set_agreement_32();
  SubdivisionLadder ladder(*task.pool, task.input);
  const SubdividedComplex& domain = ladder.at(1);
  DeltaImageCache images;
  MapSearchOptions options;
  options.chromatic = true;
  options.threads = threads;
  options.node_cap = 300'000;
  options.image_cache = &images;
  // Warm the image/mask caches once so every iteration hits.
  find_decision_map(*task.pool, domain, task, options);
  std::size_t nodes = 0;
  for (auto _ : state) {
    const MapSearchResult res =
        find_decision_map(*task.pool, domain, task, options);
    nodes = res.nodes_explored;
    benchmark::DoNotOptimize(res.found);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_PrefixSearchThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Cold Ch^2 tower build at increasing threads: the third parallel layer
// (chunked template stamping, see bench_ladder.cpp for the full radius
// sweep). Unlike the layers above, the sequential Phase-1 interning bounds
// the achievable speedup (Amdahl), so the curve saturates earlier than the
// search's.
void BM_LadderBuildThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::size_t facets = 0;
  for (auto _ : state) {
    const Task task = zoo::set_agreement_32();
    const SubdividedComplex top =
        chromatic_subdivision(*task.pool, task.input, 2, threads);
    facets = top.complex.count(top.complex.dimension());
    benchmark::DoNotOptimize(facets);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["facets"] = static_cast<double>(facets);
}
BENCHMARK(BM_LadderBuildThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  trichroma::benchutil::add_build_type_context();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
