// Substrate benchmarks: the shared-memory model's reduction stack (§2.1 of
// the paper) measured end to end — primitive objects, the Afek et al.
// register-based snapshot, the Borowsky–Gafni immediate snapshot, and the
// full registers→Ch^r pipeline.

#include <random>

#include "bench_util.h"
#include "protocols/iis.h"
#include "runtime/derived_objects.h"
#include "runtime/system.h"
#include "topology/subdivision.h"

namespace {

using namespace trichroma;
using namespace trichroma::runtime;

ProcessBody afek_workload(AfekSnapshot<int>& snap, int pid, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    typename AfekSnapshot<int>::Update update(snap, pid, r);
    while (!update.done()) {
      co_await Turn{OpPhase::Single};
      update.step();
    }
    typename AfekSnapshot<int>::Scan scan(snap);
    while (!scan.done()) {
      co_await Turn{OpPhase::Single};
      scan.step();
    }
  }
}

ProcessBody bg_workload(BgImmediateSnapshot<int>& obj, int pid) {
  typename BgImmediateSnapshot<int>::WriteSnapshot op(obj, pid, pid);
  while (!op.done()) {
    co_await Turn{OpPhase::Single};
    op.step();
  }
}

void reproduce() {
  benchutil::header("Substrate", "the read/write reduction stack, executable");
  benchutil::section("what runs below the topology");
  std::printf(
      "registers --Afek'93--> atomic snapshot --BG'93--> immediate snapshot\n"
      "          --iterate--> Ch^r views --decision map--> task outputs\n"
      "Tests cross-validate every layer (runtime_derived_test); timings "
      "below.\n");
}

void BM_PrimitiveIisRound(benchmark::State& state) {
  VertexPool pool;
  const VertexId x0 = pool.vertex(0, 0), x1 = pool.vertex(1, 1),
                 x2 = pool.vertex(2, 2);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    protocols::IisShared shared(3, 2);
    std::vector<protocols::IisOutcome> outcomes(3);
    std::vector<ProcessBody> procs;
    procs.push_back(protocols::iis_process(shared, pool, 0, x0, 2, nullptr, outcomes[0]));
    procs.push_back(protocols::iis_process(shared, pool, 1, x1, 2, nullptr, outcomes[1]));
    procs.push_back(protocols::iis_process(shared, pool, 2, x2, 2, nullptr, outcomes[2]));
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed++);
    ex.run_random(rng);
    benchmark::DoNotOptimize(outcomes[0].view);
  }
}
BENCHMARK(BM_PrimitiveIisRound);

void BM_AfekSnapshotWorkload(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    AfekSnapshot<int> snap(3);
    std::vector<ProcessBody> procs;
    for (int i = 0; i < 3; ++i) procs.push_back(afek_workload(snap, i, 3));
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed++);
    ex.run_random(rng, 0.0, 1'000'000);
    benchmark::DoNotOptimize(ex.steps_taken());
  }
}
BENCHMARK(BM_AfekSnapshotWorkload);

void BM_BgImmediateSnapshot(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    BgImmediateSnapshot<int> obj(3);
    std::vector<ProcessBody> procs;
    for (int i = 0; i < 3; ++i) procs.push_back(bg_workload(obj, i));
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed++);
    ex.run_random(rng, 0.0, 1'000'000);
    benchmark::DoNotOptimize(ex.steps_taken());
  }
}
BENCHMARK(BM_BgImmediateSnapshot);

void BM_ExhaustiveIisSchedules(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  VertexPool pool;
  const VertexId x0 = pool.vertex(0, 0), x1 = pool.vertex(1, 1),
                 x2 = pool.vertex(2, 2);
  for (auto _ : state) {
    std::size_t executions = 0;
    for (const auto& schedule : all_iis_schedules({0, 1, 2}, rounds)) {
      const auto outcomes = protocols::run_iis(
          pool, {{0, x0}, {1, x1}, {2, x2}}, rounds, nullptr, schedule);
      executions += outcomes.size();
    }
    benchmark::DoNotOptimize(executions);
  }
  state.counters["schedules"] =
      static_cast<double>(all_iis_schedules({0, 1, 2}, rounds).size());
}
BENCHMARK(BM_ExhaustiveIisSchedules)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
