// Substrate benchmarks: the shared-memory model's reduction stack (§2.1 of
// the paper) measured end to end — primitive objects, the Afek et al.
// register-based snapshot, the Borowsky–Gafni immediate snapshot, and the
// full registers→Ch^r pipeline — plus the *geometry* substrate: the
// compiled (flat CSR + bitmask-link) snapshot vs the hash-set
// SimplicialComplex on the enumeration loops the solver actually runs
// (per-vertex link components, the LAP scan, membership floods).

#include <random>

#include "bench_util.h"
#include "core/lap.h"
#include "protocols/iis.h"
#include "runtime/derived_objects.h"
#include "runtime/system.h"
#include "tasks/zoo.h"
#include "topology/compiled.h"
#include "topology/graph.h"
#include "topology/subdivision.h"

namespace {

using namespace trichroma;
using namespace trichroma::runtime;

ProcessBody afek_workload(AfekSnapshot<int>& snap, int pid, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    typename AfekSnapshot<int>::Update update(snap, pid, r);
    while (!update.done()) {
      co_await Turn{OpPhase::Single};
      update.step();
    }
    typename AfekSnapshot<int>::Scan scan(snap);
    while (!scan.done()) {
      co_await Turn{OpPhase::Single};
      scan.step();
    }
  }
}

ProcessBody bg_workload(BgImmediateSnapshot<int>& obj, int pid) {
  typename BgImmediateSnapshot<int>::WriteSnapshot op(obj, pid, pid);
  while (!op.done()) {
    co_await Turn{OpPhase::Single};
    op.step();
  }
}

void reproduce() {
  benchutil::header("Substrate", "the read/write reduction stack, executable");
  benchutil::section("what runs below the topology");
  std::printf(
      "registers --Afek'93--> atomic snapshot --BG'93--> immediate snapshot\n"
      "          --iterate--> Ch^r views --decision map--> task outputs\n"
      "Tests cross-validate every layer (runtime_derived_test); timings "
      "below.\n");
}

void BM_PrimitiveIisRound(benchmark::State& state) {
  VertexPool pool;
  const VertexId x0 = pool.vertex(0, 0), x1 = pool.vertex(1, 1),
                 x2 = pool.vertex(2, 2);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    protocols::IisShared shared(3, 2);
    std::vector<protocols::IisOutcome> outcomes(3);
    std::vector<ProcessBody> procs;
    procs.push_back(protocols::iis_process(shared, pool, 0, x0, 2, nullptr, outcomes[0]));
    procs.push_back(protocols::iis_process(shared, pool, 1, x1, 2, nullptr, outcomes[1]));
    procs.push_back(protocols::iis_process(shared, pool, 2, x2, 2, nullptr, outcomes[2]));
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed++);
    ex.run_random(rng);
    benchmark::DoNotOptimize(outcomes[0].view);
  }
}
BENCHMARK(BM_PrimitiveIisRound);

void BM_AfekSnapshotWorkload(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    AfekSnapshot<int> snap(3);
    std::vector<ProcessBody> procs;
    for (int i = 0; i < 3; ++i) procs.push_back(afek_workload(snap, i, 3));
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed++);
    ex.run_random(rng, 0.0, 1'000'000);
    benchmark::DoNotOptimize(ex.steps_taken());
  }
}
BENCHMARK(BM_AfekSnapshotWorkload);

void BM_BgImmediateSnapshot(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    BgImmediateSnapshot<int> obj(3);
    std::vector<ProcessBody> procs;
    for (int i = 0; i < 3; ++i) procs.push_back(bg_workload(obj, i));
    Executor ex(std::move(procs));
    std::mt19937_64 rng(seed++);
    ex.run_random(rng, 0.0, 1'000'000);
    benchmark::DoNotOptimize(ex.steps_taken());
  }
}
BENCHMARK(BM_BgImmediateSnapshot);

void BM_ExhaustiveIisSchedules(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  VertexPool pool;
  const VertexId x0 = pool.vertex(0, 0), x1 = pool.vertex(1, 1),
                 x2 = pool.vertex(2, 2);
  for (auto _ : state) {
    std::size_t executions = 0;
    for (const auto& schedule : all_iis_schedules({0, 1, 2}, rounds)) {
      const auto outcomes = protocols::run_iis(
          pool, {{0, x0}, {1, x1}, {2, x2}}, rounds, nullptr, schedule);
      executions += outcomes.size();
    }
    benchmark::DoNotOptimize(executions);
  }
  state.counters["schedules"] =
      static_cast<double>(all_iis_schedules({0, 1, 2}, rounds).size());
}
BENCHMARK(BM_ExhaustiveIisSchedules)->Arg(1)->Arg(2);

// ---------------------------------------------------------------------------
// Geometry substrate: compiled snapshot vs hash-set complex. Each pair runs
// the same enumeration; "Hashed" is the pre-compilation implementation
// (build a SimplicialComplex link / hash every membership probe), "Compiled"
// is the CSR + bitmask path the solver now uses.
// ---------------------------------------------------------------------------

SubdividedComplex subdivided_triangle(VertexPool& pool, int rounds) {
  SimplicialComplex base;
  base.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2)});
  return chromatic_subdivision(pool, base, rounds);
}

// Per-vertex link component counting over Ch^r(σ²) — the inner loop of
// is_link_connected and of the LAP scan.
void BM_LinkComponentsHashed(benchmark::State& state) {
  VertexPool pool;
  const SubdividedComplex sub =
      subdivided_triangle(pool, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t total = 0;
    for (VertexId v : sub.complex.vertex_ids()) {
      const SimplicialComplex link = sub.complex.link(v);
      if (link.empty()) continue;
      total += connected_components(link).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["vertices"] = static_cast<double>(sub.complex.count(0));
}
BENCHMARK(BM_LinkComponentsHashed)->Arg(1)->Arg(2);

void BM_LinkComponentsCompiled(benchmark::State& state) {
  VertexPool pool;
  const SubdividedComplex sub =
      subdivided_triangle(pool, static_cast<int>(state.range(0)));
  const auto& c = *sub.compiled;
  for (auto _ : state) {
    std::size_t total = 0;
    const auto nv = static_cast<CompiledComplex::Local>(c.num_vertices());
    for (CompiledComplex::Local v = 0; v < nv; ++v) {
      if (c.link_empty(v)) continue;
      total += c.link_component_count(v);
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["vertices"] = static_cast<double>(c.num_vertices());
}
BENCHMARK(BM_LinkComponentsCompiled)->Arg(1)->Arg(2);

// The full LAP scan over a task's facet images. "Hashed" replicates the
// pre-compilation find_laps (materialize each link, flood components);
// "Compiled" is core/lap.cpp as shipped. Pinwheel is the paper's LAP
// showcase (six LAPs across the image of its single facet family).
void BM_LapScanHashed(benchmark::State& state) {
  const Task task = zoo::pinwheel();
  const int top = task.input.dimension();
  for (auto _ : state) {
    std::size_t laps = 0;
    for (const Simplex& sigma : task.input.simplices(top)) {
      const SimplicialComplex image = task.delta.image_complex(sigma);
      for (VertexId y : image.vertex_ids()) {
        const SimplicialComplex link = image.link(y);
        if (link.empty()) continue;
        const auto components = connected_components(link);
        if (components.size() < 2) continue;
        ++laps;
        benchmark::DoNotOptimize(components);
      }
    }
    benchmark::DoNotOptimize(laps);
  }
}
BENCHMARK(BM_LapScanHashed);

void BM_LapScanCompiled(benchmark::State& state) {
  const Task task = zoo::pinwheel();
  for (auto _ : state) {
    const auto laps = find_all_laps(task);
    benchmark::DoNotOptimize(laps);
  }
}
BENCHMARK(BM_LapScanCompiled);

// Membership floods: every stored simplex probed once. The hashed side
// hashes a Simplex key per probe; the compiled side binary-searches flat
// tables.
void BM_ContainsFloodHashed(benchmark::State& state) {
  VertexPool pool;
  const SubdividedComplex sub =
      subdivided_triangle(pool, static_cast<int>(state.range(0)));
  const std::vector<Simplex> all = sub.complex.all_simplices();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Simplex& s : all) hits += sub.complex.contains(s);
    benchmark::DoNotOptimize(hits);
  }
  state.counters["simplices"] = static_cast<double>(all.size());
}
BENCHMARK(BM_ContainsFloodHashed)->Arg(1)->Arg(2);

void BM_ContainsFloodCompiled(benchmark::State& state) {
  VertexPool pool;
  const SubdividedComplex sub =
      subdivided_triangle(pool, static_cast<int>(state.range(0)));
  const std::vector<Simplex> all = sub.complex.all_simplices();
  const auto& c = *sub.compiled;
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Simplex& s : all) hits += c.contains(s);
    benchmark::DoNotOptimize(hits);
  }
  state.counters["simplices"] = static_cast<double>(all.size());
}
BENCHMARK(BM_ContainsFloodCompiled)->Arg(1)->Arg(2);

// What freezing costs: compile() from the hash-set form (one sort + CSR
// build per image complex; the subdivision ladder amortizes this by
// emitting into a Builder as it subdivides).
void BM_CompileSnapshot(benchmark::State& state) {
  VertexPool pool;
  const SubdividedComplex sub =
      subdivided_triangle(pool, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = CompiledComplex::compile(sub.complex);
    benchmark::DoNotOptimize(c->num_edges());
  }
}
BENCHMARK(BM_CompileSnapshot)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
