#pragma once
// Shared helpers for the figure-reproduction benches. Each bench binary
// first prints the qualitative content of its paper figure (the part that
// must match the paper), then runs google-benchmark timings of the engines
// involved (our numbers, not the paper's — the paper reports none).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace trichroma::benchutil {

/// Build type of the code under test, stamped into the JSON context as
/// "trichroma_build_type". google-benchmark's own "library_build_type"
/// field describes the *benchmark library* — the system package ships it
/// without NDEBUG, so that field reads "debug" no matter how this repo was
/// compiled. Committed BENCH_*.json files must show release here.
inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

inline void add_build_type_context() {
  benchmark::AddCustomContext("trichroma_build_type", build_type());
}

inline void header(const std::string& figure, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

/// Runs the reproduction printer, then google-benchmark.
template <typename F>
int bench_main(int argc, char** argv, F&& reproduce) {
  reproduce();
  std::printf("\n--- engine timings (google-benchmark) ---\n");
  add_build_type_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace trichroma::benchutil
