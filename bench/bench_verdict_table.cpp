// Headline reproduction: the solvability landscape of every task the paper
// discusses (and the calibration tasks), decided by the Theorem 5.1
// pipeline — a summary "Table 1" the paper itself presents only in prose.

#include "bench_util.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"

namespace {

using namespace trichroma;

void reproduce() {
  benchutil::header("Verdict table", "the full decision procedure on the zoo");
  std::printf("%-32s %-12s %7s %6s %s\n", "task", "verdict", "radius", "viaT'",
              "reason");
  for (const zoo::CatalogEntry& entry : zoo::catalog()) {
    const Task t = entry.build();
    const SolvabilityResult r = decide_solvability(t);
    std::printf("%-32s %-12s %7d %6s %.70s\n", t.name.c_str(),
                to_string(r.verdict), r.radius,
                r.via_characterization ? "yes" : "no", r.reason.c_str());
  }
}

void BM_FullZooVerdicts(benchmark::State& state) {
  for (auto _ : state) {
    int solvable = 0;
    for (const Task& t :
         {zoo::identity_task(), zoo::consensus(3), zoo::hourglass()}) {
      if (decide_solvability(t).verdict == Verdict::Solvable) ++solvable;
    }
    benchmark::DoNotOptimize(solvable);
  }
}
BENCHMARK(BM_FullZooVerdicts);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
