// Headline reproduction: the solvability landscape of every task the paper
// discusses (and the calibration tasks), decided by the Theorem 5.1
// pipeline — a summary "Table 1" the paper itself presents only in prose.

#include "bench_util.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"

namespace {

using namespace trichroma;

void reproduce() {
  benchutil::header("Verdict table", "the full decision procedure on the zoo");
  std::printf("%-32s %-12s %7s %6s %s\n", "task", "verdict", "radius", "viaT'",
              "reason");
  const std::vector<Task> tasks = {
      zoo::identity_task(),
      zoo::renaming(5),
      zoo::subdivision_task(0),
      zoo::subdivision_task(1),
      zoo::approximate_agreement(2),
      zoo::fan_task(6),
      zoo::fig3_running_example(),
      zoo::loop_agreement_filled_triangle(),
      zoo::consensus(3),
      zoo::set_agreement_32(),
      zoo::majority_consensus(),
      zoo::hourglass(),
      zoo::pinwheel(),
      zoo::loop_agreement_hollow_triangle(),
      zoo::loop_agreement_torus(),
      zoo::loop_agreement_projective_plane(),
      zoo::twisted_hourglass(),
      zoo::test_and_set(3),
      zoo::weak_symmetry_breaking(3),
      zoo::consensus_2(),
      zoo::approximate_agreement_2(2),
  };
  for (const Task& t : tasks) {
    const SolvabilityResult r = decide_solvability(t);
    std::printf("%-32s %-12s %7d %6s %.70s\n", t.name.c_str(),
                to_string(r.verdict), r.radius,
                r.via_characterization ? "yes" : "no", r.reason.c_str());
  }
}

void BM_FullZooVerdicts(benchmark::State& state) {
  for (auto _ : state) {
    int solvable = 0;
    for (const Task& t :
         {zoo::identity_task(), zoo::consensus(3), zoo::hourglass()}) {
      if (decide_solvability(t).verdict == Verdict::Solvable) ++solvable;
    }
    benchmark::DoNotOptimize(solvable);
  }
}
BENCHMARK(BM_FullZooVerdicts);

}  // namespace

int main(int argc, char** argv) {
  return trichroma::benchutil::bench_main(argc, argv, reproduce);
}
