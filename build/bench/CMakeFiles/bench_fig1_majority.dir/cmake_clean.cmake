file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_majority.dir/bench_fig1_majority.cpp.o"
  "CMakeFiles/bench_fig1_majority.dir/bench_fig1_majority.cpp.o.d"
  "bench_fig1_majority"
  "bench_fig1_majority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_majority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
