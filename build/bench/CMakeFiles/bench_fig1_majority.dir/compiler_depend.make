# Empty compiler generated dependencies file for bench_fig1_majority.
# This may be replaced when dependencies are built.
