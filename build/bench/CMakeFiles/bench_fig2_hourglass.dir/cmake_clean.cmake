file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hourglass.dir/bench_fig2_hourglass.cpp.o"
  "CMakeFiles/bench_fig2_hourglass.dir/bench_fig2_hourglass.cpp.o.d"
  "bench_fig2_hourglass"
  "bench_fig2_hourglass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hourglass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
