file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_canonical.dir/bench_fig3_canonical.cpp.o"
  "CMakeFiles/bench_fig3_canonical.dir/bench_fig3_canonical.cpp.o.d"
  "bench_fig3_canonical"
  "bench_fig3_canonical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_canonical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
