# Empty dependencies file for bench_fig3_canonical.
# This may be replaced when dependencies are built.
