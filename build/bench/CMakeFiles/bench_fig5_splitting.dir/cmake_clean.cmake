file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_splitting.dir/bench_fig5_splitting.cpp.o"
  "CMakeFiles/bench_fig5_splitting.dir/bench_fig5_splitting.cpp.o.d"
  "bench_fig5_splitting"
  "bench_fig5_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
