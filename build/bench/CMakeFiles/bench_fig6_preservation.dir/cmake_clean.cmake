file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_preservation.dir/bench_fig6_preservation.cpp.o"
  "CMakeFiles/bench_fig6_preservation.dir/bench_fig6_preservation.cpp.o.d"
  "bench_fig6_preservation"
  "bench_fig6_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
