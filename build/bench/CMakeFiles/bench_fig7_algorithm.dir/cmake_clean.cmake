file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_algorithm.dir/bench_fig7_algorithm.cpp.o"
  "CMakeFiles/bench_fig7_algorithm.dir/bench_fig7_algorithm.cpp.o.d"
  "bench_fig7_algorithm"
  "bench_fig7_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
