# Empty dependencies file for bench_fig7_algorithm.
# This may be replaced when dependencies are built.
