file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_pinwheel.dir/bench_fig8_pinwheel.cpp.o"
  "CMakeFiles/bench_fig8_pinwheel.dir/bench_fig8_pinwheel.cpp.o.d"
  "bench_fig8_pinwheel"
  "bench_fig8_pinwheel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_pinwheel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
