# Empty compiler generated dependencies file for bench_fig8_pinwheel.
# This may be replaced when dependencies are built.
