file(REMOVE_RECURSE
  "CMakeFiles/bench_prop54_twoproc.dir/bench_prop54_twoproc.cpp.o"
  "CMakeFiles/bench_prop54_twoproc.dir/bench_prop54_twoproc.cpp.o.d"
  "bench_prop54_twoproc"
  "bench_prop54_twoproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop54_twoproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
