# Empty compiler generated dependencies file for bench_prop54_twoproc.
# This may be replaced when dependencies are built.
