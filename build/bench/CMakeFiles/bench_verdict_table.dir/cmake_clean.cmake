file(REMOVE_RECURSE
  "CMakeFiles/bench_verdict_table.dir/bench_verdict_table.cpp.o"
  "CMakeFiles/bench_verdict_table.dir/bench_verdict_table.cpp.o.d"
  "bench_verdict_table"
  "bench_verdict_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verdict_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
