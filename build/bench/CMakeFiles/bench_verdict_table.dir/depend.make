# Empty dependencies file for bench_verdict_table.
# This may be replaced when dependencies are built.
