file(REMOVE_RECURSE
  "CMakeFiles/example_design_your_task.dir/design_your_task.cpp.o"
  "CMakeFiles/example_design_your_task.dir/design_your_task.cpp.o.d"
  "example_design_your_task"
  "example_design_your_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_your_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
