# Empty dependencies file for example_design_your_task.
# This may be replaced when dependencies are built.
