file(REMOVE_RECURSE
  "CMakeFiles/example_impossibility_tour.dir/impossibility_tour.cpp.o"
  "CMakeFiles/example_impossibility_tour.dir/impossibility_tour.cpp.o.d"
  "example_impossibility_tour"
  "example_impossibility_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_impossibility_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
