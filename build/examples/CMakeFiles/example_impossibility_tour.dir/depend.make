# Empty dependencies file for example_impossibility_tour.
# This may be replaced when dependencies are built.
