file(REMOVE_RECURSE
  "CMakeFiles/example_renaming_run.dir/renaming_run.cpp.o"
  "CMakeFiles/example_renaming_run.dir/renaming_run.cpp.o.d"
  "example_renaming_run"
  "example_renaming_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_renaming_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
