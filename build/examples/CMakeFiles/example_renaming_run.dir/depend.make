# Empty dependencies file for example_renaming_run.
# This may be replaced when dependencies are built.
