file(REMOVE_RECURSE
  "CMakeFiles/example_two_process_analysis.dir/two_process_analysis.cpp.o"
  "CMakeFiles/example_two_process_analysis.dir/two_process_analysis.cpp.o.d"
  "example_two_process_analysis"
  "example_two_process_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_two_process_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
