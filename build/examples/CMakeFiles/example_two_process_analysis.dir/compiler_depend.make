# Empty compiler generated dependencies file for example_two_process_analysis.
# This may be replaced when dependencies are built.
