
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/characterization.cpp" "src/CMakeFiles/trichroma.dir/core/characterization.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/core/characterization.cpp.o.d"
  "/root/repo/src/core/lap.cpp" "src/CMakeFiles/trichroma.dir/core/lap.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/core/lap.cpp.o.d"
  "/root/repo/src/core/link_connected.cpp" "src/CMakeFiles/trichroma.dir/core/link_connected.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/core/link_connected.cpp.o.d"
  "/root/repo/src/core/obstructions.cpp" "src/CMakeFiles/trichroma.dir/core/obstructions.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/core/obstructions.cpp.o.d"
  "/root/repo/src/core/splitting.cpp" "src/CMakeFiles/trichroma.dir/core/splitting.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/core/splitting.cpp.o.d"
  "/root/repo/src/io/task_format.cpp" "src/CMakeFiles/trichroma.dir/io/task_format.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/io/task_format.cpp.o.d"
  "/root/repo/src/protocols/chromatic_agreement.cpp" "src/CMakeFiles/trichroma.dir/protocols/chromatic_agreement.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/protocols/chromatic_agreement.cpp.o.d"
  "/root/repo/src/protocols/colorless_protocol.cpp" "src/CMakeFiles/trichroma.dir/protocols/colorless_protocol.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/protocols/colorless_protocol.cpp.o.d"
  "/root/repo/src/protocols/iis.cpp" "src/CMakeFiles/trichroma.dir/protocols/iis.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/protocols/iis.cpp.o.d"
  "/root/repo/src/protocols/pipeline.cpp" "src/CMakeFiles/trichroma.dir/protocols/pipeline.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/protocols/pipeline.cpp.o.d"
  "/root/repo/src/protocols/verify.cpp" "src/CMakeFiles/trichroma.dir/protocols/verify.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/protocols/verify.cpp.o.d"
  "/root/repo/src/runtime/explore.cpp" "src/CMakeFiles/trichroma.dir/runtime/explore.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/runtime/explore.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/trichroma.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/runtime/scheduler.cpp.o.d"
  "/root/repo/src/runtime/system.cpp" "src/CMakeFiles/trichroma.dir/runtime/system.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/runtime/system.cpp.o.d"
  "/root/repo/src/solver/map_search.cpp" "src/CMakeFiles/trichroma.dir/solver/map_search.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/solver/map_search.cpp.o.d"
  "/root/repo/src/solver/solvability.cpp" "src/CMakeFiles/trichroma.dir/solver/solvability.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/solver/solvability.cpp.o.d"
  "/root/repo/src/tasks/builder.cpp" "src/CMakeFiles/trichroma.dir/tasks/builder.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/tasks/builder.cpp.o.d"
  "/root/repo/src/tasks/canonical.cpp" "src/CMakeFiles/trichroma.dir/tasks/canonical.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/tasks/canonical.cpp.o.d"
  "/root/repo/src/tasks/carrier_map.cpp" "src/CMakeFiles/trichroma.dir/tasks/carrier_map.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/tasks/carrier_map.cpp.o.d"
  "/root/repo/src/tasks/task.cpp" "src/CMakeFiles/trichroma.dir/tasks/task.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/tasks/task.cpp.o.d"
  "/root/repo/src/tasks/zoo_basic.cpp" "src/CMakeFiles/trichroma.dir/tasks/zoo_basic.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/tasks/zoo_basic.cpp.o.d"
  "/root/repo/src/tasks/zoo_loop.cpp" "src/CMakeFiles/trichroma.dir/tasks/zoo_loop.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/tasks/zoo_loop.cpp.o.d"
  "/root/repo/src/tasks/zoo_paper.cpp" "src/CMakeFiles/trichroma.dir/tasks/zoo_paper.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/tasks/zoo_paper.cpp.o.d"
  "/root/repo/src/tasks/zoo_random.cpp" "src/CMakeFiles/trichroma.dir/tasks/zoo_random.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/tasks/zoo_random.cpp.o.d"
  "/root/repo/src/topology/chromatic.cpp" "src/CMakeFiles/trichroma.dir/topology/chromatic.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/topology/chromatic.cpp.o.d"
  "/root/repo/src/topology/complex.cpp" "src/CMakeFiles/trichroma.dir/topology/complex.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/topology/complex.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/CMakeFiles/trichroma.dir/topology/graph.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/topology/graph.cpp.o.d"
  "/root/repo/src/topology/homology.cpp" "src/CMakeFiles/trichroma.dir/topology/homology.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/topology/homology.cpp.o.d"
  "/root/repo/src/topology/subdivision.cpp" "src/CMakeFiles/trichroma.dir/topology/subdivision.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/topology/subdivision.cpp.o.d"
  "/root/repo/src/topology/value.cpp" "src/CMakeFiles/trichroma.dir/topology/value.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/topology/value.cpp.o.d"
  "/root/repo/src/topology/vertex.cpp" "src/CMakeFiles/trichroma.dir/topology/vertex.cpp.o" "gcc" "src/CMakeFiles/trichroma.dir/topology/vertex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
