file(REMOVE_RECURSE
  "libtrichroma.a"
)
