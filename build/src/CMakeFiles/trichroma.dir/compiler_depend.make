# Empty compiler generated dependencies file for trichroma.
# This may be replaced when dependencies are built.
