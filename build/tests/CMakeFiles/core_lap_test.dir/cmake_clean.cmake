file(REMOVE_RECURSE
  "CMakeFiles/core_lap_test.dir/core_lap_test.cpp.o"
  "CMakeFiles/core_lap_test.dir/core_lap_test.cpp.o.d"
  "core_lap_test"
  "core_lap_test.pdb"
  "core_lap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
