# Empty dependencies file for core_lap_test.
# This may be replaced when dependencies are built.
