file(REMOVE_RECURSE
  "CMakeFiles/core_obstructions_test.dir/core_obstructions_test.cpp.o"
  "CMakeFiles/core_obstructions_test.dir/core_obstructions_test.cpp.o.d"
  "core_obstructions_test"
  "core_obstructions_test.pdb"
  "core_obstructions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_obstructions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
