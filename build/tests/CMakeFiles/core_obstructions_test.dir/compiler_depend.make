# Empty compiler generated dependencies file for core_obstructions_test.
# This may be replaced when dependencies are built.
