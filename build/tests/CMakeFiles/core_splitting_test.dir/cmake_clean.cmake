file(REMOVE_RECURSE
  "CMakeFiles/core_splitting_test.dir/core_splitting_test.cpp.o"
  "CMakeFiles/core_splitting_test.dir/core_splitting_test.cpp.o.d"
  "core_splitting_test"
  "core_splitting_test.pdb"
  "core_splitting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_splitting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
