# Empty dependencies file for core_splitting_test.
# This may be replaced when dependencies are built.
