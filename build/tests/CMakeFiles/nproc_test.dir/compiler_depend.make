# Empty compiler generated dependencies file for nproc_test.
# This may be replaced when dependencies are built.
