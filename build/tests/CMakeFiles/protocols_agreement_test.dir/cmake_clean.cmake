file(REMOVE_RECURSE
  "CMakeFiles/protocols_agreement_test.dir/protocols_agreement_test.cpp.o"
  "CMakeFiles/protocols_agreement_test.dir/protocols_agreement_test.cpp.o.d"
  "protocols_agreement_test"
  "protocols_agreement_test.pdb"
  "protocols_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
