# Empty dependencies file for protocols_agreement_test.
# This may be replaced when dependencies are built.
