file(REMOVE_RECURSE
  "CMakeFiles/protocols_iis_test.dir/protocols_iis_test.cpp.o"
  "CMakeFiles/protocols_iis_test.dir/protocols_iis_test.cpp.o.d"
  "protocols_iis_test"
  "protocols_iis_test.pdb"
  "protocols_iis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols_iis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
