# Empty compiler generated dependencies file for protocols_iis_test.
# This may be replaced when dependencies are built.
