file(REMOVE_RECURSE
  "CMakeFiles/runtime_derived_test.dir/runtime_derived_test.cpp.o"
  "CMakeFiles/runtime_derived_test.dir/runtime_derived_test.cpp.o.d"
  "runtime_derived_test"
  "runtime_derived_test.pdb"
  "runtime_derived_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_derived_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
