file(REMOVE_RECURSE
  "CMakeFiles/runtime_explore_test.dir/runtime_explore_test.cpp.o"
  "CMakeFiles/runtime_explore_test.dir/runtime_explore_test.cpp.o.d"
  "runtime_explore_test"
  "runtime_explore_test.pdb"
  "runtime_explore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_explore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
