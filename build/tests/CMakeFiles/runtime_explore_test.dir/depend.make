# Empty dependencies file for runtime_explore_test.
# This may be replaced when dependencies are built.
