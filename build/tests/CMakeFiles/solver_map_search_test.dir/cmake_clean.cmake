file(REMOVE_RECURSE
  "CMakeFiles/solver_map_search_test.dir/solver_map_search_test.cpp.o"
  "CMakeFiles/solver_map_search_test.dir/solver_map_search_test.cpp.o.d"
  "solver_map_search_test"
  "solver_map_search_test.pdb"
  "solver_map_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_map_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
