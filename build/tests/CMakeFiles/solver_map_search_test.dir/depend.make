# Empty dependencies file for solver_map_search_test.
# This may be replaced when dependencies are built.
