file(REMOVE_RECURSE
  "CMakeFiles/solver_solvability_test.dir/solver_solvability_test.cpp.o"
  "CMakeFiles/solver_solvability_test.dir/solver_solvability_test.cpp.o.d"
  "solver_solvability_test"
  "solver_solvability_test.pdb"
  "solver_solvability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_solvability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
