# Empty compiler generated dependencies file for solver_solvability_test.
# This may be replaced when dependencies are built.
