file(REMOVE_RECURSE
  "CMakeFiles/tasks_canonical_test.dir/tasks_canonical_test.cpp.o"
  "CMakeFiles/tasks_canonical_test.dir/tasks_canonical_test.cpp.o.d"
  "tasks_canonical_test"
  "tasks_canonical_test.pdb"
  "tasks_canonical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasks_canonical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
