file(REMOVE_RECURSE
  "CMakeFiles/tasks_carrier_map_test.dir/tasks_carrier_map_test.cpp.o"
  "CMakeFiles/tasks_carrier_map_test.dir/tasks_carrier_map_test.cpp.o.d"
  "tasks_carrier_map_test"
  "tasks_carrier_map_test.pdb"
  "tasks_carrier_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasks_carrier_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
