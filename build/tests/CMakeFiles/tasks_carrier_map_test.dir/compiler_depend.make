# Empty compiler generated dependencies file for tasks_carrier_map_test.
# This may be replaced when dependencies are built.
