file(REMOVE_RECURSE
  "CMakeFiles/tasks_zoo_test.dir/tasks_zoo_test.cpp.o"
  "CMakeFiles/tasks_zoo_test.dir/tasks_zoo_test.cpp.o.d"
  "tasks_zoo_test"
  "tasks_zoo_test.pdb"
  "tasks_zoo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasks_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
