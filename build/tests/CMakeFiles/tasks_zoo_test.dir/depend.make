# Empty dependencies file for tasks_zoo_test.
# This may be replaced when dependencies are built.
