file(REMOVE_RECURSE
  "CMakeFiles/topology_complex_test.dir/topology_complex_test.cpp.o"
  "CMakeFiles/topology_complex_test.dir/topology_complex_test.cpp.o.d"
  "topology_complex_test"
  "topology_complex_test.pdb"
  "topology_complex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_complex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
