# Empty dependencies file for topology_complex_test.
# This may be replaced when dependencies are built.
