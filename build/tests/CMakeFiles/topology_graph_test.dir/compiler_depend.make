# Empty compiler generated dependencies file for topology_graph_test.
# This may be replaced when dependencies are built.
