file(REMOVE_RECURSE
  "CMakeFiles/topology_homology_test.dir/topology_homology_test.cpp.o"
  "CMakeFiles/topology_homology_test.dir/topology_homology_test.cpp.o.d"
  "topology_homology_test"
  "topology_homology_test.pdb"
  "topology_homology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_homology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
