# Empty dependencies file for topology_homology_test.
# This may be replaced when dependencies are built.
