file(REMOVE_RECURSE
  "CMakeFiles/topology_subdivision_test.dir/topology_subdivision_test.cpp.o"
  "CMakeFiles/topology_subdivision_test.dir/topology_subdivision_test.cpp.o.d"
  "topology_subdivision_test"
  "topology_subdivision_test.pdb"
  "topology_subdivision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_subdivision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
