# Empty dependencies file for topology_subdivision_test.
# This may be replaced when dependencies are built.
