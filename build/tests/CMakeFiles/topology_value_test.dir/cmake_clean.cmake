file(REMOVE_RECURSE
  "CMakeFiles/topology_value_test.dir/topology_value_test.cpp.o"
  "CMakeFiles/topology_value_test.dir/topology_value_test.cpp.o.d"
  "topology_value_test"
  "topology_value_test.pdb"
  "topology_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
