# Empty dependencies file for topology_value_test.
# This may be replaced when dependencies are built.
