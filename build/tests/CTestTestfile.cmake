# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/topology_value_test[1]_include.cmake")
include("/root/repo/build/tests/topology_complex_test[1]_include.cmake")
include("/root/repo/build/tests/topology_graph_test[1]_include.cmake")
include("/root/repo/build/tests/topology_homology_test[1]_include.cmake")
include("/root/repo/build/tests/topology_subdivision_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_carrier_map_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_canonical_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_zoo_test[1]_include.cmake")
include("/root/repo/build/tests/core_lap_test[1]_include.cmake")
include("/root/repo/build/tests/core_splitting_test[1]_include.cmake")
include("/root/repo/build/tests/core_obstructions_test[1]_include.cmake")
include("/root/repo/build/tests/solver_map_search_test[1]_include.cmake")
include("/root/repo/build/tests/solver_solvability_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_derived_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_explore_test[1]_include.cmake")
include("/root/repo/build/tests/protocols_iis_test[1]_include.cmake")
include("/root/repo/build/tests/protocols_agreement_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/nproc_test[1]_include.cmake")
