file(REMOVE_RECURSE
  "CMakeFiles/trichroma_cli.dir/trichroma_cli.cpp.o"
  "CMakeFiles/trichroma_cli.dir/trichroma_cli.cpp.o.d"
  "trichroma"
  "trichroma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trichroma_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
