# Empty dependencies file for trichroma_cli.
# This may be replaced when dependencies are built.
