// design_your_task: build a chromatic task from scratch with the public
// API, validate it, run the characterization pipeline, and — if solvable —
// synthesize and execute a wait-free protocol for it.
//
// The task built here: "weak preference agreement". Three processes each
// start with a preferred value in {0, 1}. Each decides one of the values
// {0, 1, 2}, where 2 means "conflict". Rules:
//  - a process running with no opposition (all participants share its
//    preference) must decide the common preference;
//  - when both preferences are present among the participants, every
//    process may decide its own preference or 2;
//  - decisions must always form an output simplex listed below.

#include <cstdio>

#include "protocols/pipeline.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"

using namespace trichroma;

int main() {
  // 1. Describe the task with the value-predicate factory: input/output
  //    value domains per process plus an "allowed" predicate on the
  //    participating processes' values. The factory enumerates all
  //    participation patterns and builds (I, O, Δ).
  zoo::ValueTaskSpec spec;
  spec.name = "weak-preference-agreement";
  spec.num_processes = 3;
  spec.input_domain.assign(3, {0, 1});
  spec.output_domain.assign(3, {0, 1, 2});
  spec.allowed = [](const std::vector<Color>&, const std::vector<std::int64_t>& in,
                    const std::vector<std::int64_t>& out) {
    bool has0 = false, has1 = false;
    for (std::int64_t v : in) (v == 0 ? has0 : has1) = true;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (!has0 || !has1) {
        // No opposition: must decide the common preference.
        if (out[i] != in[0]) return false;
      } else {
        // Conflict allowed: own preference or the conflict marker.
        if (out[i] != in[i] && out[i] != 2) return false;
      }
    }
    return true;
  };
  const Task task = zoo::make_value_task(spec);

  // 2. Validate the carrier-map structure before doing anything else.
  const auto errors = task.validate();
  if (!errors.empty()) {
    std::printf("task is malformed: %s\n", errors.front().c_str());
    return 1;
  }
  std::printf("%s\n", task.summary().c_str());

  // 3. Decide solvability via the paper's characterization.
  const SolvabilityResult verdict = decide_solvability(task);
  std::printf("verdict: %s\nreason:  %s\n\n", to_string(verdict.verdict),
              verdict.reason.c_str());
  if (verdict.verdict != Verdict::Solvable) return 0;

  // 4. A Solvable verdict is constructive: build the end-to-end protocol
  //    stack (canonicalize → split → color-agnostic solution → Figure-7
  //    chromatic completion) and execute it on the simulator.
  const auto solver = protocols::build_end_to_end(task, 2);
  if (!solver.has_value()) {
    std::printf("(direct witness exists but the end-to-end synthesis needs a "
                "deeper radius)\n");
    return 0;
  }
  int valid_runs = 0, total_runs = 0;
  for (const Simplex& facet : task.input.simplices(2)) {
    std::vector<std::pair<int, VertexId>> inputs;
    for (int i = 0; i < 3; ++i) inputs.emplace_back(i, facet[static_cast<std::size_t>(i)]);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const auto run = protocols::run_end_to_end(*solver, task, inputs, seed);
      ++total_runs;
      valid_runs += run.valid ? 1 : 0;
    }
  }
  std::printf("executed the synthesized protocol: %d/%d runs valid\n",
              valid_runs, total_runs);
  return valid_runs == total_runs ? 0 : 1;
}
