// impossibility_tour: the two obstruction types of the paper (§7), on its
// own worked examples.
//
//  1. Local articulation points — chromatic-only, decidable, removable by
//     splitting (hourglass, majority consensus).
//  2. Contractibility-type obstructions — present already colorlessly,
//     undecidable in general, certified here over GF(2) (pinwheel, 2-set
//     agreement, hollow loop agreement).

#include <cstdio>

#include "core/characterization.h"
#include "core/lap.h"
#include "core/obstructions.h"
#include "solver/solvability.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/graph.h"

using namespace trichroma;

namespace {

void analyze(const Task& task) {
  std::printf("=== %s ===\n", task.name.c_str());
  const Task star = canonicalize(task);
  std::printf("LAPs (on T*): %zu\n", find_all_laps(star).size());

  const HomologyObstruction colorless = homology_boundary_check(task);
  std::printf("colorless obstruction on T:  %s\n",
              colorless.feasible ? "none" : colorless.detail.c_str());

  const CharacterizationResult c = characterize(task);
  std::printf("splits: %zu, output components %zu -> %zu\n", c.splits.size(),
              c.output_components_before, c.output_components_after);
  const ConnectivityCsp csp = connectivity_csp(c.link_connected);
  const HomologyObstruction hom = homology_boundary_check(c.link_connected);
  std::printf("post-split: connectivity %s, homology %s\n",
              csp.feasible ? "feasible" : "INFEASIBLE",
              hom.feasible ? "feasible" : "INFEASIBLE");

  const SolvabilityResult verdict = decide_solvability(task);
  std::printf("verdict: %s\n\n", to_string(verdict.verdict));
}

}  // namespace

int main() {
  std::printf("Obstruction type 1: local articulation points\n");
  std::printf("---------------------------------------------\n");
  analyze(zoo::hourglass());
  analyze(zoo::majority_consensus());

  std::printf("Obstruction type 2: contractibility (no continuous map)\n");
  std::printf("-------------------------------------------------------\n");
  analyze(zoo::set_agreement_32());
  analyze(zoo::loop_agreement_hollow_triangle());

  std::printf("Both at once: the pinwheel\n");
  std::printf("--------------------------\n");
  analyze(zoo::pinwheel());

  std::printf("Control group (solvable)\n");
  std::printf("------------------------\n");
  analyze(zoo::subdivision_task(1));
  analyze(zoo::approximate_agreement(2));
  return 0;
}
