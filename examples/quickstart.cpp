// Quickstart: define a chromatic task, run the paper's characterization
// pipeline, and decide wait-free solvability.
//
//   $ example_quickstart
//
// The example builds the hourglass task (Figure 2 of the paper), shows the
// canonical form, splits its local articulation point, and reports the
// solvability verdict with the obstruction that proves it.

#include <cstdio>

#include "core/characterization.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"

int main() {
  using namespace trichroma;

  // 1. Pick a task from the zoo (or build your own Task{pool, I, O, Δ}).
  const Task task = zoo::hourglass();
  std::printf("== %s ==\n%s\n", task.name.c_str(), task.summary().c_str());

  // 2. Run the characterization pipeline: canonicalize, then split local
  //    articulation points until the task is link-connected (Theorem 4.3).
  const CharacterizationResult pipeline = characterize(task);
  std::printf("%s\n", pipeline.report(*task.pool).c_str());

  // 3. Decide solvability (Theorem 5.1 both ways: obstructions on T' for
  //    impossibility, decision-map search for possibility).
  const SolvabilityResult verdict = decide_solvability(task);
  std::printf("verdict: %s\nreason: %s\n", to_string(verdict.verdict),
              verdict.reason.c_str());

  // 4. Contrast with the colorless view: the hourglass satisfies the
  //    colorless ACT condition (a continuous map exists), so a color-
  //    agnostic decision map is findable even though the chromatic task is
  //    unsolvable — the gap the paper's characterization explains.
  const MapSearchResult colorless = colorless_probe(task, 2);
  std::printf("colorless solvable: %s\n", colorless.found ? "yes" : "no");
  return verdict.verdict == Verdict::Unknown ? 1 : 0;
}
