// renaming_run: solve renaming end to end and watch the protocol execute.
//
// Three processes must pick distinct names from {1..5}. The example builds
// the Theorem 5.1 protocol stack and executes it under several adversaries,
// printing each process's journey: pivot or negotiator, how many shared
// memory operations, and the final (always distinct) names.

#include <cstdio>

#include "protocols/pipeline.h"
#include "tasks/zoo.h"

using namespace trichroma;

int main() {
  const Task task = zoo::renaming(5);
  std::printf("%s\n", task.summary().c_str());

  const auto solver = protocols::build_end_to_end(task, 2);
  if (!solver.has_value()) {
    std::printf("no color-agnostic solution found (unexpected)\n");
    return 1;
  }
  std::printf("color-agnostic core synthesized: %d IIS round(s), %zu-entry "
              "decision table\n\n",
              solver->algorithm.rounds, solver->algorithm.decision.size());

  const Simplex facet = task.input.facets().front();
  VertexPool& pool = *task.pool;

  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    std::printf("--- adversary seed %llu ---\n",
                static_cast<unsigned long long>(seed));
    std::vector<std::pair<int, VertexId>> inputs;
    for (int i = 0; i < 3; ++i) inputs.emplace_back(i, facet[static_cast<std::size_t>(i)]);
    const auto run = protocols::run_end_to_end(*solver, task, inputs, seed);
    if (!run.valid) {
      std::printf("INVALID RUN\n");
      return 1;
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      std::printf("  P%d decided %s\n", inputs[i].first,
                  pool.name(*run.decisions[i]).c_str());
    }
    std::printf("  total shared-memory operations: %zu, pivots: %zu, "
                "negotiation jumps: %zu\n",
                run.total_operations, run.pivots, run.total_jumps);
  }

  // Partial participation: only P1 and P2 show up.
  std::printf("\n--- only P1 and P2 participate ---\n");
  std::vector<std::pair<int, VertexId>> pair_inputs{{1, facet[1]}, {2, facet[2]}};
  const auto run = protocols::run_end_to_end(*solver, task, pair_inputs, 3);
  if (!run.valid) {
    std::printf("INVALID RUN\n");
    return 1;
  }
  for (std::size_t i = 0; i < pair_inputs.size(); ++i) {
    std::printf("  P%d decided %s\n", pair_inputs[i].first,
                pool.name(*run.decisions[i]).c_str());
  }
  return 0;
}
