// two_process_analysis: Proposition 5.4 in action.
//
// For two processes, wait-free solvability is *exactly* the existence of a
// continuous map |I| → |O| carried by Δ, decided by a finite connectivity
// check: pick an output vertex per input vertex such that each input
// edge's picks are connected inside that edge's image. The example walks
// consensus (unsolvable) and approximate agreement (solvable), showing the
// witness for the latter.

#include <cstdio>

#include "core/obstructions.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"
#include "topology/graph.h"

using namespace trichroma;

namespace {

void analyze(const Task& task) {
  std::printf("=== %s ===\n", task.name.c_str());
  VertexPool& pool = *task.pool;
  for (const Simplex& e : task.input.simplices(1)) {
    const SimplicialComplex image = task.delta.image_complex(e);
    std::printf("  Δ(%s): %zu edges, %zu component(s)\n",
                e.to_string(pool).c_str(), image.count(1),
                component_count(image));
  }
  const SolvabilityResult verdict = decide_two_process(task);
  std::printf("verdict: %s\n", to_string(verdict.verdict));
  if (verdict.verdict == Verdict::Solvable) {
    const ConnectivityCsp csp = connectivity_csp(task);
    std::printf("witness (corner assignment):\n");
    for (VertexId x : task.input.vertex_ids()) {
      std::printf("  f(%s) = %s\n", pool.name(x).c_str(),
                  pool.name(csp.witness.at(x)).c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  analyze(zoo::consensus_2());
  analyze(zoo::approximate_agreement_2(2));
  analyze(zoo::approximate_agreement_2(4));
  return 0;
}
