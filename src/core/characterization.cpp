#include "core/characterization.h"

#include "tasks/canonical.h"
#include "topology/graph.h"

namespace trichroma {

CharacterizationResult characterize(const Task& task) {
  CharacterizationResult result;
  result.canonical = canonicalize(task);
  result.output_components_before = component_count(result.canonical.output);
  result.output_betti_before = betti_numbers(result.canonical.output);

  LinkConnectedResult lc = make_link_connected(result.canonical);
  result.link_connected = std::move(lc.task);
  result.splits = std::move(lc.history);
  result.output_components_after = component_count(result.link_connected.output);
  result.output_betti_after = betti_numbers(result.link_connected.output);
  return result;
}

std::string CharacterizationResult::report(const VertexPool& pool) const {
  std::string out;
  out += "canonical task T*: " + std::to_string(canonical.output.count(0)) +
         " output vertices, " + std::to_string(canonical.output.count(2)) +
         " output triangles\n";
  out += "splits performed: " + std::to_string(splits.size()) + "\n";
  for (const SplitEvent& s : splits) {
    out += "  split " + pool.name(s.vertex) + " (w.r.t. " +
           s.facet.to_string(pool) + ") into " +
           std::to_string(s.component_count) + " copies\n";
  }
  out += "output complex components: " + std::to_string(output_components_before) +
         " -> " + std::to_string(output_components_after) + "\n";
  out += "output Betti numbers (GF(2)): b0 " +
         std::to_string(output_betti_before.b0) + " -> " +
         std::to_string(output_betti_after.b0) + ", b1 " +
         std::to_string(output_betti_before.b1) + " -> " +
         std::to_string(output_betti_after.b1) + "\n";
  out += std::string("link-connected: ") +
         (link_connected.is_link_connected() ? "yes" : "NO (unexpected)") + "\n";
  return out;
}

}  // namespace trichroma
