#pragma once
// The Theorem 5.1 pipeline: T → canonical T* → link-connected T', plus
// structural diagnostics. T is wait-free solvable iff there is a continuous
// map |I| → |O'| carried by Δ' — which the solver layer then probes from
// both sides (map search for possibility, obstruction engines for
// impossibility).

#include <cstddef>
#include <string>
#include <vector>

#include "core/link_connected.h"
#include "tasks/task.h"
#include "topology/homology.h"

namespace trichroma {

struct CharacterizationResult {
  Task canonical;       ///< T* (Section 3)
  Task link_connected;  ///< T' (Theorem 4.3)
  std::vector<SplitEvent> splits;

  // Shape diagnostics of the output complex before/after splitting.
  std::size_t output_components_before = 0;
  std::size_t output_components_after = 0;
  BettiNumbers output_betti_before;
  BettiNumbers output_betti_after;

  std::string report(const VertexPool& pool) const;
};

/// Runs canonicalization followed by iterated LAP elimination. The returned
/// tasks share the input task's vertex pool.
CharacterizationResult characterize(const Task& task);

}  // namespace trichroma
