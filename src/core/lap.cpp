#include "core/lap.h"

#include <optional>

#include "topology/graph.h"

namespace trichroma {

std::vector<LapRecord> find_laps(const Task& task, const Simplex& sigma) {
  std::vector<LapRecord> out;
  const SimplicialComplex image = task.delta.image_complex(sigma);
  for (VertexId y : image.vertex_ids()) {
    const SimplicialComplex lk = image.link(y);
    if (lk.empty()) continue;
    auto components = connected_components(lk);
    if (components.size() >= 2) {
      out.push_back(LapRecord{sigma, y, std::move(components)});
    }
  }
  return out;
}

std::vector<LapRecord> find_all_laps(const Task& task) {
  std::vector<LapRecord> out;
  const int top = task.input.dimension();
  for (const Simplex& sigma : task.input.simplices(top)) {
    auto laps = find_laps(task, sigma);
    out.insert(out.end(), std::make_move_iterator(laps.begin()),
               std::make_move_iterator(laps.end()));
  }
  return out;
}

std::optional<LapRecord> first_lap(const Task& task, const Simplex& sigma) {
  auto laps = find_laps(task, sigma);
  if (laps.empty()) return std::nullopt;
  return laps.front();
}

}  // namespace trichroma
