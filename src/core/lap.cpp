#include "core/lap.h"

#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "topology/compiled.h"

namespace trichroma {

std::vector<LapRecord> find_laps(const Task& task, const Simplex& sigma) {
  TRI_SPAN("topology/lap_scan");
  static obs::Counter& scans =
      obs::MetricsRegistry::global().counter("topology.lap_scans");
  scans.add();
  std::vector<LapRecord> out;
  // One compiled snapshot per image; the per-vertex scans then run over the
  // link bitmasks instead of materializing a SimplicialComplex link each.
  // Locals are in raw-id order, so the records come out in vertex-id order
  // exactly as the hash-set implementation produced them.
  const auto image = CompiledComplex::compile(task.delta.image_complex(sigma));
  const auto nv = static_cast<CompiledComplex::Local>(image->num_vertices());
  for (CompiledComplex::Local y = 0; y < nv; ++y) {
    if (image->link_empty(y)) continue;
    if (image->link_component_count(y) < 2) continue;
    out.push_back(LapRecord{sigma, image->vertex(y), image->link_components(y)});
  }
  return out;
}

std::vector<LapRecord> find_all_laps(const Task& task) {
  std::vector<LapRecord> out;
  const int top = task.input.dimension();
  for (const Simplex& sigma : task.input.simplices(top)) {
    auto laps = find_laps(task, sigma);
    out.insert(out.end(), std::make_move_iterator(laps.begin()),
               std::make_move_iterator(laps.end()));
  }
  return out;
}

std::optional<LapRecord> first_lap(const Task& task, const Simplex& sigma) {
  auto laps = find_laps(task, sigma);
  if (laps.empty()) return std::nullopt;
  return laps.front();
}

}  // namespace trichroma
