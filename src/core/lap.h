#pragma once
// Local articulation points (Section 4 of the paper).
//
// For an input facet σ, a vertex y ∈ Δ(σ) is a *local articulation point
// w.r.t. σ* (LAP) iff its link lk_{Δ(σ)}(y) has at least two connected
// components. LAPs are the chromatic obstruction the paper isolates: they
// are exactly what the splitting deformation removes.

#include <optional>
#include <vector>

#include "tasks/task.h"
#include "topology/complex.h"

namespace trichroma {

/// One detected local articulation point.
struct LapRecord {
  Simplex facet;    ///< the input facet σ
  VertexId vertex;  ///< the articulation vertex y ∈ Δ(σ)
  /// The connected components C_1, ..., C_r of lk_{Δ(σ)}(y), each as the
  /// sorted list of its vertices, ordered by smallest vertex id.
  std::vector<std::vector<VertexId>> link_components;
};

/// All LAPs of `task` w.r.t. input facet `sigma`, in vertex-id order.
std::vector<LapRecord> find_laps(const Task& task, const Simplex& sigma);

/// All LAPs of `task` across all input facets, facet-major order.
std::vector<LapRecord> find_all_laps(const Task& task);

/// The first LAP w.r.t. `sigma` if any (smallest vertex id).
std::optional<LapRecord> first_lap(const Task& task, const Simplex& sigma);

}  // namespace trichroma
