#include "core/link_connected.h"

#include <stdexcept>

namespace trichroma {

LinkConnectedResult make_link_connected(const Task& canonical_task) {
  if (!canonical_task.is_canonical()) {
    throw std::logic_error("make_link_connected requires a canonical task");
  }
  LinkConnectedResult result;
  result.task = canonical_task;

  // Theorem 4.3's schedule: clean facets one at a time; Lemma 4.1
  // guarantees no facet regresses once cleaned. The guard bounds runaway
  // growth in case of a malformed task.
  const std::size_t guard =
      16 * (result.task.output.count(0) + 4) * (result.task.input.count(2) + result.task.input.count(1) + 4);
  const int top = result.task.input.dimension();
  for (const Simplex& sigma : result.task.input.simplices(top)) {
    while (true) {
      auto lap = first_lap(result.task, sigma);
      if (!lap.has_value()) break;
      if (result.history.size() > guard) {
        throw std::logic_error("make_link_connected: split loop exceeded bound");
      }
      SplitResult split = split_lap(result.task, *lap);
      result.history.push_back(SplitEvent{lap->facet, lap->vertex,
                                          lap->link_components.size(),
                                          split.copies});
      result.task = std::move(split.task);
    }
  }
  return result;
}

VertexId unsplit_vertex(VertexPool& pool, VertexId v) { return split_root(pool, v); }

}  // namespace trichroma
