#pragma once
// Iterated LAP elimination (Theorem 4.3): transforms a canonical task into a
// link-connected task with the same solvability, by repeatedly applying the
// splitting deformation, facet by facet.

#include <string>
#include <vector>

#include "core/lap.h"
#include "core/splitting.h"
#include "tasks/task.h"

namespace trichroma {

struct SplitEvent {
  Simplex facet;                 ///< the facet σ the LAP was detected against
  VertexId vertex;               ///< the split vertex y
  std::size_t component_count;   ///< r = number of link components
  std::vector<VertexId> copies;  ///< the copies y_1 ... y_r
};

struct LinkConnectedResult {
  Task task;                        ///< T' = (I, O', Δ'), link-connected
  std::vector<SplitEvent> history;  ///< every split performed, in order
};

/// Applies Theorem 4.3 to a *canonical* task: repeatedly eliminates LAPs
/// until the task is link-connected. Deterministic: facets in sorted order,
/// within a facet the smallest LAP vertex first.
LinkConnectedResult make_link_connected(const Task& canonical_task);

/// Maps an output vertex of the split task back to the output vertex of the
/// pre-split task it descends from (identity for unsplit vertices). This is
/// the translation A_y → A in Lemma 4.2's easy direction.
VertexId unsplit_vertex(VertexPool& pool, VertexId v);

}  // namespace trichroma
