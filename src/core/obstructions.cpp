#include "core/obstructions.h"

#include <algorithm>
#include <array>
#include <tuple>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/lap.h"
#include "topology/graph.h"
#include "topology/homology.h"

namespace trichroma {

namespace {

/// Node of a LAP-split graph: an output vertex together with a copy index
/// (0 for non-LAP vertices, 1-based link-component index for LAPs).
using SplitNode = std::pair<VertexId, int>;

/// Per-facet LAP component lookup: lap vertex y → (link vertex z → 1-based
/// index of the component of lk_{Δ(σ)}(y) containing z).
using LapComponents =
    std::unordered_map<VertexId, std::unordered_map<VertexId, int, VertexIdHash>,
                       VertexIdHash>;

LapComponents lap_components(const Task& task, const Simplex& sigma) {
  LapComponents out;
  for (const LapRecord& lap : find_laps(task, sigma)) {
    auto& comp = out[lap.vertex];
    for (std::size_t i = 0; i < lap.link_components.size(); ++i) {
      for (VertexId z : lap.link_components[i]) {
        comp.emplace(z, static_cast<int>(i + 1));
      }
    }
  }
  return out;
}

/// Union-find over split nodes, built from the edges of a 1-complex with
/// every LAP "virtually split" per link component: traversing a LAP is only
/// possible within one component, which models crossing-free paths.
class SplitGraph {
 public:
  SplitGraph(const SimplicialComplex& k, const LapComponents& laps) {
    for (const Simplex& e : k.simplices(1)) {
      const SplitNode a = resolve(e[0], e[1], laps);
      const SplitNode b = resolve(e[1], e[0], laps);
      unite(index(a), index(b));
      ++edges_;
    }
    // Isolated vertices (no incident edges) still need nodes so endpoint
    // queries succeed; a LAP isolated in `k` gets a single neutral copy.
    for (VertexId v : k.vertex_ids()) {
      copies_of(v);
    }
  }

  /// All copies of `v` present in the graph.
  std::vector<SplitNode> copies_of(VertexId v) {
    std::vector<SplitNode> out;
    for (auto& [node, idx] : nodes_) {
      (void)idx;
      if (node.first == v) out.push_back(node);
    }
    if (out.empty()) {
      index(SplitNode{v, 0});
      out.push_back(SplitNode{v, 0});
    }
    return out;
  }

  bool connected(const SplitNode& a, const SplitNode& b) {
    return find(index(a)) == find(index(b));
  }

  /// Number of independent cycles: E - N + C.
  long long cycle_rank() {
    std::vector<int> roots;
    for (auto& [node, idx] : nodes_) {
      (void)node;
      roots.push_back(find(idx));
    }
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    return static_cast<long long>(edges_) - static_cast<long long>(nodes_.size()) +
           static_cast<long long>(roots.size());
  }

 private:
  static SplitNode resolve(VertexId v, VertexId neighbor, const LapComponents& laps) {
    auto it = laps.find(v);
    if (it == laps.end()) return {v, 0};
    return {v, it->second.at(neighbor)};
  }

  int index(const SplitNode& n) {
    auto it = nodes_.find(n);
    if (it != nodes_.end()) return it->second;
    const int idx = static_cast<int>(parent_.size());
    parent_.push_back(idx);
    nodes_.emplace(n, idx);
    return idx;
  }

  int find(int i) {
    while (parent_[static_cast<std::size_t>(i)] != i) {
      parent_[static_cast<std::size_t>(i)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(i)])];
      i = parent_[static_cast<std::size_t>(i)];
    }
    return i;
  }

  void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

  std::map<SplitNode, int> nodes_;
  std::vector<int> parent_;
  std::size_t edges_ = 0;
};

}  // namespace

CorollaryResult corollary_5_5(const Task& task) {
  const VertexPool& pool = *task.pool;
  const int top = task.input.dimension();
  for (const Simplex& sigma : task.input.simplices(top)) {
    const LapComponents laps = lap_components(task, sigma);
    for (const Simplex& e : sigma.faces()) {
      if (e.dim() != 1) continue;
      const VertexId x = e[0], xp = e[1];
      SplitGraph graph(task.delta.image_complex(e), laps);
      bool some_pair_connected = false;
      for (VertexId y : task.delta.image_complex(Simplex::single(x)).vertex_ids()) {
        for (VertexId yp :
             task.delta.image_complex(Simplex::single(xp)).vertex_ids()) {
          for (const SplitNode& a : graph.copies_of(y)) {
            for (const SplitNode& b : graph.copies_of(yp)) {
              if (graph.connected(a, b)) some_pair_connected = true;
            }
          }
        }
      }
      if (!some_pair_connected) {
        CorollaryResult result;
        result.fires = true;
        result.detail = "facet " + sigma.to_string(pool) + ", edge " +
                        e.to_string(pool) +
                        ": every path between the solo images crosses a LAP";
        return result;
      }
    }
  }
  return {};
}

CorollaryResult corollary_5_6(const Task& task) {
  // Stated for a single-facet (single input triangle) task.
  const int top = task.input.dimension();
  const auto facets = task.input.simplices(top);
  if (facets.size() != 1 || top < 2) return {};
  const Simplex& sigma = facets.front();
  const VertexPool& pool = *task.pool;

  const LapComponents laps = lap_components(task, sigma);
  if (laps.empty()) return {};

  // Δ(Skel¹σ): the union of the edge images.
  SimplicialComplex skel_image;
  std::vector<Simplex> edges;
  for (const Simplex& e : sigma.faces()) {
    if (e.dim() == 1) {
      edges.push_back(e);
      skel_image.add_all(task.delta.image_complex(e));
    }
  }
  SplitGraph whole(skel_image, laps);
  if (whole.cycle_rank() > 0) {
    return {};  // a crossing-free cycle exists: the corollary's premise fails
  }

  // Every cycle crosses a LAP. The boundary walk must additionally close up
  // crossing-free: corner choices connected within each edge image.
  std::vector<SplitGraph> edge_graphs;
  edge_graphs.reserve(edges.size());
  for (const Simplex& e : edges) {
    edge_graphs.emplace_back(task.delta.image_complex(e), laps);
  }
  std::vector<std::vector<SplitNode>> corner_choices;
  for (VertexId x : sigma) {
    std::vector<SplitNode> choices;
    for (VertexId y : task.delta.image_complex(Simplex::single(x)).vertex_ids()) {
      auto copies = whole.copies_of(y);
      choices.insert(choices.end(), copies.begin(), copies.end());
    }
    corner_choices.push_back(std::move(choices));
  }
  // Exhaustive search over corner assignments (domains are tiny).
  std::vector<SplitNode> pick(sigma.size());
  std::function<bool(std::size_t)> feasible = [&](std::size_t i) -> bool {
    if (i == sigma.size()) return true;
    for (const SplitNode& node : corner_choices[i]) {
      pick[i] = node;
      bool ok = true;
      for (std::size_t j = 0; j < i && ok; ++j) {
        // Find the edge graph joining corners i and j.
        for (std::size_t k = 0; k < edges.size(); ++k) {
          if (edges[k].contains(sigma[i]) && edges[k].contains(sigma[j])) {
            if (!edge_graphs[k].connected(pick[i], pick[j])) ok = false;
          }
        }
      }
      if (ok && feasible(i + 1)) return true;
    }
    return false;
  };
  if (feasible(0)) return {};

  CorollaryResult result;
  result.fires = true;
  result.detail = "facet " + sigma.to_string(pool) +
                  ": every cycle in Δ(Skel¹I) crosses a LAP and no "
                  "crossing-free boundary walk closes up";
  return result;
}

namespace {

/// Shared enumeration machinery for the corner-assignment engines. Calls
/// `accept` once per assignment that satisfies all per-edge connectivity
/// constraints; stops early if `accept` returns true.
struct CornerSearch {
  const Task& task;
  std::vector<VertexId> inputs;                 // input vertices, fixed order
  std::unordered_map<VertexId, std::size_t, VertexIdHash> input_index;
  std::vector<std::vector<VertexId>> domains;   // Δ(x) vertices per input
  // Per input edge: the image complex and each image vertex's component id.
  struct EdgeInfo {
    Simplex edge;
    SimplicialComplex image;
    std::unordered_map<VertexId, int, VertexIdHash> component;
  };
  std::vector<EdgeInfo> edge_infos;
  // edges_touching[i] = indices into edge_infos of edges whose *second*
  // endpoint (in input order) is inputs[i].
  std::vector<std::vector<std::size_t>> edges_touching;

  std::size_t nodes_explored = 0;
  std::size_t node_cap = kDefaultCornerNodeCap;
  const std::atomic<bool>* cancel = nullptr;
  bool exhausted = true;
  bool cancelled = false;

  explicit CornerSearch(const Task& t) : task(t) {
    inputs = task.input.vertex_ids();
    for (std::size_t i = 0; i < inputs.size(); ++i) input_index.emplace(inputs[i], i);
    for (VertexId x : inputs) {
      domains.push_back(
          task.delta.image_complex(Simplex::single(x)).vertex_ids());
    }
    for (const Simplex& e : task.input.simplices(1)) {
      EdgeInfo info;
      info.edge = e;
      info.image = task.delta.image_complex(e);
      const auto comps = connected_components(info.image);
      for (std::size_t c = 0; c < comps.size(); ++c) {
        for (VertexId v : comps[c]) info.component.emplace(v, static_cast<int>(c));
      }
      edge_infos.push_back(std::move(info));
    }
    edges_touching.resize(inputs.size());
    for (std::size_t k = 0; k < edge_infos.size(); ++k) {
      const Simplex& e = edge_infos[k].edge;
      const std::size_t i = input_index.at(e[0]), j = input_index.at(e[1]);
      edges_touching[std::max(i, j)].push_back(k);
    }
  }

  /// DFS over assignments; `accept(assignment)` is called for complete,
  /// edge-consistent assignments and may return true to stop the search.
  bool search(
      const std::function<bool(const std::vector<VertexId>&)>& accept) {
    std::vector<VertexId> assign(inputs.size(), VertexId{0});
    return dfs(0, assign, accept);
  }

 private:
  bool dfs(std::size_t i, std::vector<VertexId>& assign,
           const std::function<bool(const std::vector<VertexId>&)>& accept) {
    if (i == inputs.size()) return accept(assign);
    for (VertexId candidate : domains[i]) {
      if (++nodes_explored > node_cap) {
        exhausted = false;
        return false;
      }
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        exhausted = false;
        cancelled = true;
        return false;
      }
      assign[i] = candidate;
      bool ok = true;
      for (std::size_t k : edges_touching[i]) {
        const EdgeInfo& info = edge_infos[k];
        const std::size_t a = input_index.at(info.edge[0]);
        const std::size_t b = input_index.at(info.edge[1]);
        const VertexId va = assign[a], vb = assign[b];
        auto ca = info.component.find(va), cb = info.component.find(vb);
        if (ca == info.component.end() || cb == info.component.end() ||
            ca->second != cb->second) {
          ok = false;
          break;
        }
      }
      if (ok && dfs(i + 1, assign, accept)) return true;
    }
    return false;
  }
};

}  // namespace

ConnectivityCsp connectivity_csp(const Task& task, std::size_t node_cap,
                                 const std::atomic<bool>* cancel) {
  ConnectivityCsp result;
  CornerSearch search(task);
  search.node_cap = node_cap;
  search.cancel = cancel;
  const bool found = search.search([&](const std::vector<VertexId>& assign) {
    for (std::size_t i = 0; i < search.inputs.size(); ++i) {
      result.witness.emplace(search.inputs[i], assign[i]);
    }
    return true;
  });
  result.feasible = found;
  result.exhausted = search.exhausted;
  result.cancelled = search.cancelled;
  result.nodes_explored = search.nodes_explored;
  if (!found) {
    result.detail = search.exhausted
                        ? "no corner assignment is component-consistent on "
                          "every input edge"
                        : "search capped before exhausting assignments";
  }
  return result;
}

HomologyObstruction homology_boundary_check(const Task& task,
                                            const std::vector<long long>& primes,
                                            std::size_t node_cap,
                                            const std::atomic<bool>* cancel) {
  HomologyObstruction result;
  CornerSearch search(task);
  search.node_cap = node_cap;
  search.cancel = cancel;
  const VertexPool& pool = *task.pool;

  // Pre-compute, per input facet, its boundary edges in cyclic order
  // (v0→v1, v1→v2, v2→v0), each edge's oriented cycle basis, and the facet
  // image. The boundary loop is checked over GF(2) *and* GF(3): a loop
  // extending over the input disk bounds over every field, and GF(3)
  // catches even-winding ("torsion-type") failures GF(2) is blind to.
  struct FacetInfo {
    Simplex facet;
    SimplicialComplex image;
    // (edge-info index, from-vertex, to-vertex) in coherent cyclic order.
    std::vector<std::tuple<std::size_t, VertexId, VertexId>> boundary;
    std::vector<OrientedChain> generators;
  };
  std::vector<FacetInfo> facet_infos;
  // The boundary-loop analysis is specific to 2-dimensional facets (the
  // paper's three-process setting); for other dimensions the check reduces
  // to the connectivity CSP, which is sound for any n.
  const int top = task.input.dimension();
  if (top == 2) {
    for (const Simplex& sigma : task.input.simplices(top)) {
      FacetInfo info;
      info.facet = sigma;
      info.image = task.delta.image_complex(sigma);
      const std::array<std::pair<VertexId, VertexId>, 3> order{
          std::pair{sigma[0], sigma[1]}, std::pair{sigma[1], sigma[2]},
          std::pair{sigma[2], sigma[0]}};
      for (const auto& [from, to] : order) {
        const Simplex e{from, to};
        for (std::size_t k = 0; k < search.edge_infos.size(); ++k) {
          if (search.edge_infos[k].edge == e) {
            info.boundary.emplace_back(k, from, to);
            for (OrientedChain& c :
                 oriented_cycle_basis(search.edge_infos[k].image)) {
              info.generators.push_back(std::move(c));
            }
          }
        }
      }
      facet_infos.push_back(std::move(info));
    }
  }

  std::string last_failure;
  const bool found = search.search([&](const std::vector<VertexId>& assign) {
    for (const FacetInfo& info : facet_infos) {
      // Boundary loop: corner-to-corner shortest paths inside each edge
      // image, concatenated head-to-tail (any path works; other choices
      // differ by edge-image cycles, which are in the generator span).
      OrientedChain loop;
      for (const auto& [k, from, to] : info.boundary) {
        const auto& einfo = search.edge_infos[k];
        const VertexId a = assign[search.input_index.at(from)];
        const VertexId b = assign[search.input_index.at(to)];
        auto path = lex_min_shortest_path(einfo.image, a, b);
        if (!path.has_value()) return false;  // defensive; CSP ensured this
        loop = oriented_add(loop, oriented_path_chain(*path));
      }
      if (!is_oriented_cycle(loop)) {
        last_failure = "boundary walk of facet " + info.facet.to_string(pool) +
                       " does not close into a cycle";
        return false;
      }
      for (const long long p : primes) {
        if (!loop.empty() && !bounds_modulo_p(info.image, loop, info.generators, p)) {
          last_failure = "boundary loop of facet " + info.facet.to_string(pool) +
                         " never bounds over GF(" + std::to_string(p) + ")";
          return false;
        }
      }
    }
    return true;
  });
  result.feasible = found;
  result.exhausted = search.exhausted;
  result.cancelled = search.cancelled;
  result.nodes_explored = search.nodes_explored;
  if (!found) {
    result.detail = last_failure.empty()
                        ? "no corner assignment passes the connectivity CSP"
                        : last_failure;
  }
  return result;
}

}  // namespace trichroma
