#pragma once
// Impossibility engines.
//
// Existence of a continuous map |I| → |O'| carried by Δ' is undecidable in
// general, so impossibility is certified by *sound* decidable conditions:
//
//  1. corollary_5_5 — the paper's Corollary 5.5, verbatim: some input facet
//     σ has an edge {x, x'} such that every path between Δ(x) and Δ(x') in
//     Δ({x, x'}) crosses through a LAP w.r.t. σ (three consecutive vertices
//     w1, y, w2 with w1, w2 in different components of lk_{Δ(σ)}(y)).
//
//  2. corollary_5_6 — the paper's Corollary 5.6 for single-facet inputs:
//     every cycle in Δ(Skel¹ I) goes through a LAP, certified by showing the
//     LAP-split graph of Δ(Skel¹ σ) is a forest AND no crossing-free
//     carrier-respecting boundary walk can close up.
//
//  3. connectivity_csp — the 1-dimensional shadow of a continuous map:
//     choose f(x) ∈ Δ(x) for every input vertex such that for every input
//     edge {x, x'}, f(x) and f(x') lie in one connected component of
//     Δ({x, x'}). Infeasibility proves unsolvability. For two-process tasks
//     this is exact (Proposition 5.4): feasible ⟺ solvable.
//
//  4. homology_boundary_check — the contractibility-type obstruction: for
//     every CSP-feasible corner assignment and every input facet σ, the
//     boundary loop (corner-to-corner paths inside the edge images) must be
//     null-homologous over GF(2) in Δ(σ), modulo cycles supported in the
//     edge images. A loop extending over the input disk is null-homotopic,
//     hence bounds over every coefficient field, so "never bounds" is a
//     sound impossibility certificate (catches 2-set agreement, pinwheel,
//     non-contractible loop agreement).
//
// Engines 3 and 4 are most powerful on the *split, link-connected* task T′
// (Theorem 5.1 reduces solvability of T to colorless solvability of T′);
// engines 1 and 2 are the paper's pre-split statements.

#include <atomic>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "tasks/task.h"

namespace trichroma {

struct CorollaryResult {
  bool fires = false;  ///< true ⇒ the task is wait-free unsolvable
  std::string detail;
};

CorollaryResult corollary_5_5(const Task& task);
CorollaryResult corollary_5_6(const Task& task);

/// Default backtracking budget for the corner-assignment engines; far above
/// anything the zoo needs (the largest zoo CSP explores a few hundred nodes).
constexpr std::size_t kDefaultCornerNodeCap = 2'000'000;

struct ConnectivityCsp {
  bool feasible = false;
  bool exhausted = true;  ///< false if the search hit its node cap
  bool cancelled = false;  ///< stopped by the caller's cancellation flag
  /// Corner-assignment backtracking nodes visited.
  std::size_t nodes_explored = 0;
  /// A satisfying corner assignment x ↦ f(x), when feasible.
  std::unordered_map<VertexId, VertexId, VertexIdHash> witness;
  std::string detail;
};

/// `node_cap` bounds the corner-assignment backtracking; `cancel` (borrowed,
/// may be null) is polled at every node and stops the search cooperatively,
/// reporting exhausted = false and cancelled = true.
ConnectivityCsp connectivity_csp(const Task& task,
                                 std::size_t node_cap = kDefaultCornerNodeCap,
                                 const std::atomic<bool>* cancel = nullptr);

struct HomologyObstruction {
  bool feasible = false;  ///< some corner assignment passes every facet
  bool exhausted = true;
  bool cancelled = false;  ///< stopped by the caller's cancellation flag
  /// Corner-assignment backtracking nodes visited.
  std::size_t nodes_explored = 0;
  std::string detail;
};

/// `primes`: the coefficient fields the boundary loop is required to bound
/// over. Any prime yields a sound certificate; {2, 3} (the default) also
/// catches even-winding failures that GF(2) alone cannot see (see
/// zoo::twisted_hourglass and the ablation bench). Budget and cancellation
/// as in connectivity_csp.
HomologyObstruction homology_boundary_check(
    const Task& task, const std::vector<long long>& primes = {2, 3},
    std::size_t node_cap = kDefaultCornerNodeCap,
    const std::atomic<bool>* cancel = nullptr);

}  // namespace trichroma
