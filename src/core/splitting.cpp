#include "core/splitting.h"

#include <cassert>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace trichroma {

VertexId split_copy(VertexPool& pool, VertexId y, int i) {
  ValuePool& vals = pool.values();
  const ValueId value =
      vals.of_tuple({vals.of_string("split"), vals.of_int(static_cast<std::int64_t>(raw(y))),
                     vals.of_int(i)});
  return pool.vertex(pool.color(y), value);
}

bool is_split_vertex(const VertexPool& pool, VertexId v) {
  const ValuePool& vals = pool.values();
  const ValueId val = pool.value(v);
  if (vals.kind(val) != ValuePool::Kind::Tuple) return false;
  const auto elems = vals.elements(val);
  return elems.size() == 3 && vals.kind(elems[0]) == ValuePool::Kind::Str &&
         vals.as_string(elems[0]) == "split";
}

VertexId split_parent(VertexPool& pool, VertexId v) {
  if (!is_split_vertex(pool, v)) {
    throw std::logic_error("vertex is not a split copy");
  }
  const auto elems = pool.values().elements(pool.value(v));
  return VertexId{static_cast<std::uint32_t>(pool.values().as_int(elems[1]))};
}

VertexId split_root(VertexPool& pool, VertexId v) {
  while (is_split_vertex(pool, v)) v = split_parent(pool, v);
  return v;
}

SplitResult split_lap(const Task& task, const LapRecord& lap) {
  VertexPool& pool = *task.pool;
  const VertexId y = lap.vertex;
  const Simplex& sigma = lap.facet;
  const int r = static_cast<int>(lap.link_components.size());
  assert(r >= 2);

  // Component index (1-based) of each link vertex.
  std::unordered_map<VertexId, int, VertexIdHash> component_of;
  for (int i = 0; i < r; ++i) {
    for (VertexId z : lap.link_components[static_cast<std::size_t>(i)]) {
      component_of.emplace(z, i + 1);
    }
  }

  SplitResult result;
  result.original = y;
  for (int i = 1; i <= r; ++i) result.copies.push_back(split_copy(pool, y, i));

  Task& ty = result.task;
  ty.pool = task.pool;
  ty.name = task.name + "/split(" + pool.name(y) + ")";
  ty.num_processes = task.num_processes;
  ty.input = task.input;

  // Pass 1: rewire every facet image except the solo case ρ = {y} on
  // vertices of σ, which needs the images of the containing simplices and is
  // resolved in pass 2.
  std::vector<Simplex> deferred_solo_inputs;
  std::unordered_map<Simplex, std::vector<Simplex>, SimplexHash> new_images;

  task.input.for_each([&](const Simplex& tau) {
    const bool tau_in_sigma = sigma.contains_all(tau);
    std::vector<Simplex>& images = new_images[tau];
    for (const Simplex& rho : task.delta.facet_images(tau)) {
      if (!rho.contains(y)) {
        images.push_back(rho);
        continue;
      }
      if (tau_in_sigma) {
        const Simplex rest = rho.without(y);
        if (rest.empty()) {
          deferred_solo_inputs.push_back(tau);
          continue;
        }
        // All of ρ \ {y} lies in one link component (ρ ∈ Δ(τ) ⊆ Δ(σ), so
        // ρ \ {y} is a simplex of lk_{Δ(σ)}(y)).
        auto it = component_of.find(rest[0]);
        if (it == component_of.end()) {
          throw std::logic_error("split_lap: link vertex missing a component");
        }
        const int i = it->second;
        for (VertexId z : rest) {
          if (component_of.at(z) != i) {
            throw std::logic_error("split_lap: facet straddles link components");
          }
        }
        images.push_back(rest.with(result.copies[static_cast<std::size_t>(i - 1)]));
      } else {
        // τ ⊄ σ: one rewired facet per copy.
        const Simplex rest = rho.without(y);
        for (VertexId yi : result.copies) {
          images.push_back(rest.with(yi));
        }
      }
    }
  });

  // Pass 2: solo decisions of y on input vertices of σ. The paper keeps
  // "one copy per connected component" available to the solo decider (cf.
  // the pinwheel discussion in §6.2); we include every copy that appears in
  // the image of at least one containing input simplex. This preserves
  // solvability in both directions — a real protocol's solo copy is forced
  // by its neighbors into every containing edge's component, hence lies in
  // this union, and collapsing copies always maps back — at the price of
  // vertex-level monotonicity, which split tasks may violate (as does the
  // paper's own construction). Downstream engines re-derive the effective
  // per-edge solo constraints themselves.
  for (const Simplex& x : deferred_solo_inputs) {
    std::set<VertexId> allowed;
    task.input.for_each([&](const Simplex& tau) {
      if (tau == x || !tau.contains_all(x)) return;
      if (!task.delta.image_complex(tau).contains_vertex(y)) return;
      for (const Simplex& im : new_images.at(tau)) {
        for (VertexId v : im) {
          if (std::find(result.copies.begin(), result.copies.end(), v) !=
              result.copies.end()) {
            allowed.insert(v);
          }
        }
      }
    });
    if (allowed.empty()) {
      // y appears in no larger image: only possible if the original task
      // already violated monotonicity at x.
      throw std::logic_error(
          "split_lap: solo-decided LAP missing from every containing image");
    }
    for (VertexId yi : allowed) {
      new_images[x].push_back(Simplex::single(yi));
    }
  }

  for (auto& [tau, images] : new_images) {
    for (const Simplex& im : images) ty.output.add(im);
    ty.delta.set(tau, std::move(images));
  }
  return result;
}

}  // namespace trichroma
