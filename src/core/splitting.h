#pragma once
// The splitting deformation (Section 4.1 of the paper).
//
// Given a canonical task T = (I, O, Δ) and a LAP y w.r.t. input facet σ
// whose link lk_{Δ(σ)}(y) has components C_1, ..., C_r, the deformation
// produces T_y = (I, O_y, Δ_y):
//
//  - y is replaced by fresh copies y_1, ..., y_r (same color);
//  - facets ρ ∈ Δ(τ) with y ∉ ρ are kept unchanged;
//  - for τ ⊆ σ, a facet ρ ∋ y is rewired to the *single* copy y_i of the
//    component C_i containing ρ \ {y} (the paper's "must have z, z' ∈ C_i");
//    the solo case ρ = {y} inherits the copies common to every containing
//    simplex's image, preserving monotonicity;
//  - for τ ⊄ σ, a facet ρ ∋ y is replaced by one copy *per* component
//    (all y_i), since the task being canonical guarantees ρ ∉ Δ(σ).
//
// Lemma 4.1: this strictly decreases the number of LAPs w.r.t. σ and never
// creates LAPs w.r.t. facets that had none. Lemma 4.2: it preserves
// solvability in both directions. Both are verified by tests.

#include <vector>

#include "core/lap.h"
#include "tasks/task.h"

namespace trichroma {

struct SplitResult {
  Task task;                     ///< T_y, sharing the original vertex pool
  VertexId original;             ///< the split vertex y
  std::vector<VertexId> copies;  ///< y_1, ..., y_r in component order
};

/// Applies the splitting deformation for `lap` (as returned by find_laps on
/// `task`). Precondition: `task` is canonical (Task::is_canonical()).
SplitResult split_lap(const Task& task, const LapRecord& lap);

/// Interns the i-th split copy (1-based) of `y`: (color(y), ("split", value(y), i)).
VertexId split_copy(VertexPool& pool, VertexId y, int i);

/// True iff `v` is a split copy produced by `split_copy`.
bool is_split_vertex(const VertexPool& pool, VertexId v);

/// The vertex a split copy was made from (one level of unwrapping).
VertexId split_parent(VertexPool& pool, VertexId v);

/// Fully unwraps nested split copies back to the original output vertex.
VertexId split_root(VertexPool& pool, VertexId v);

}  // namespace trichroma
