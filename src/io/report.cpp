#include "io/report.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace trichroma::io {

namespace {

std::string quote(const std::string& s) { return "\"" + json_escape(s) + "\""; }

std::string num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

std::string bool_str(bool b) { return b ? "true" : "false"; }

std::string u64_array_inline(const std::vector<std::uint64_t>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += (i == 0 ? "" : ", ");
    out += std::to_string(values[i]);
  }
  out += "]";
  return out;
}

// Single-line rendering of a count-valued histogram (trimmed base-2
// buckets, see obs::Histogram::bucket_index). One line so diff noise from a
// distribution change stays one line per histogram.
std::string hist_inline(std::uint64_t count, std::uint64_t sum,
                        const std::vector<std::uint64_t>& buckets) {
  return "{ \"count\": " + std::to_string(count) +
         ", \"sum\": " + std::to_string(sum) +
         ", \"buckets\": " + u64_array_inline(buckets) + " }";
}

// Tiny builder so the emitter stays declarative: fields are appended in
// order, commas and indentation handled in one place.
class Builder {
 public:
  std::string finish() && { return std::move(out_); }

  void open(const std::string& key, char bracket) {
    begin_value(key);
    out_ += bracket;
    out_ += '\n';
    ++depth_;
    first_ = true;
  }
  void close(char bracket) {
    --depth_;
    if (first_) {
      // Nothing was emitted: collapse to "{}" / "[]" on the opening line.
      out_.pop_back();
    } else {
      out_ += '\n';
      indent();
    }
    out_ += bracket;
    first_ = false;
  }
  void field(const std::string& key, const std::string& rendered) {
    begin_value(key);
    out_ += rendered;
  }

 private:
  void begin_value(const std::string& key) {
    if (!first_) out_ += ",\n";
    first_ = false;
    indent();
    if (!key.empty()) out_ += quote(key) + ": ";
  }
  void indent() { out_.append(static_cast<std::size_t>(depth_) * 2, ' '); }

  std::string out_;
  int depth_ = 0;
  bool first_ = true;
};

void emit_engine(Builder& b, const EngineReport& e,
                 const ReportJsonOptions& options) {
  b.open("", '{');
  b.field("name", quote(e.name));
  b.field("side", quote(to_string(e.side)));
  b.field("status", quote(to_string(e.status)));
  b.field("precedence", std::to_string(e.precedence));
  b.field("verdict", e.status == EngineStatus::Conclusive
                         ? quote(to_string(e.verdict))
                         : "null");
  b.field("reason", quote(e.reason));
  b.field("detail", quote(e.detail));
  b.field("radius_reached", std::to_string(e.radius_reached));
  b.field("witness_radius", std::to_string(e.witness_radius));
  b.field("nodes_explored", std::to_string(e.nodes_explored));
  b.open("image_cache", '{');
  b.field("hits", std::to_string(e.image_cache_hits));
  b.field("misses", std::to_string(e.image_cache_misses));
  b.close('}');
  b.open("edge_masks", '{');
  b.field("hits", std::to_string(e.edge_mask_hits));
  b.field("misses", std::to_string(e.edge_mask_misses));
  b.close('}');
  b.open("capped", '[');
  for (const std::string& c : e.capped) b.field("", quote(c));
  b.close(']');
  b.open("domain_overflow", '[');
  for (const std::string& c : e.overflowed) b.field("", quote(c));
  b.close(']');
  // v9: deterministic probe distributions. domain_sizes is the base-2
  // bucketed distribution of CSP candidate-domain sizes over every rung
  // this engine searched; level_facets[r] is the top-dimensional facet
  // count of Ch^r for each ladder level it climbed. Both are pure
  // functions of the task under the "exact"/"ladder" schedules.
  b.field("domain_sizes", hist_inline(e.domain_size_count, e.domain_size_sum,
                                      e.domain_size_hist));
  b.field("level_facets", u64_array_inline(e.level_facets));
  b.field("wall_ms", num(options.redact_timings ? 0.0 : e.wall_ms));
  b.close('}');
}

}  // namespace

// v7: the "cache" field gained the "artifacts" value (warm start from a
// stored sibling record or ladder/Δ-image artifacts) and the metrics cache
// line gained "seeded_levels". The grep contract below is unchanged.
// v8: metrics gained the "ladder" sub-object (parallel-build telemetry:
// chunks stamped, merge wall time, Δ-population stripe contention). Like
// "executor" it is scheduling-dependent and zeroed under redact_timings.
// v9: per-run attribution. Engines gained the deterministic "domain_sizes"
// histogram and "level_facets" ladder profile; a top-level "run" object
// carries the phase latency breakdown (zeroed under redact_timings), the
// cache tier + seeded levels (on a `"cache":` line, see the grep contract),
// and deterministic rollups of the new per-engine distributions.
const char* report_schema() { return "trichroma.pipeline-report/9"; }

std::string to_json(const PipelineReport& report,
                    const ReportJsonOptions& options) {
  Builder b;
  b.open("", '{');
  b.field("schema", quote(report_schema()));

  b.open("task", '{');
  b.field("name", quote(report.task_name));
  b.field("num_processes", std::to_string(report.num_processes));
  b.field("input_facets", std::to_string(report.input_facets));
  b.field("output_facets", std::to_string(report.output_facets));
  b.close('}');

  b.open("options", '{');
  b.field("max_radius", std::to_string(report.options.max_radius));
  b.field("node_cap", std::to_string(report.options.node_cap));
  b.field("use_characterization",
          bool_str(report.options.use_characterization));
  b.field("reuse_subdivisions", bool_str(report.options.reuse_subdivisions));
  b.field("reuse_images", bool_str(report.options.reuse_images));
  b.close('}');

  // Schema v3 dropped the options' thread fields: every solver quantity in
  // this report is thread-count independent (canonical prefix accounting),
  // so recording the worker count only created spurious diffs between
  // otherwise identical runs. The resolved lane schedule replaces them.
  b.field("schedule", quote(report.schedule));
  // Schema v6: the verdict-store outcome. Deliberately a single line (as is
  // the metrics "cache" rollup below) so byte-comparisons between warm and
  // cold runs can filter every cache-dependent field with one
  // `grep -v '"cache":'` — no other report key contains that token
  // ("image_cache" renders as `"image_cache":`, which does not match).
  b.field("cache", quote(report.cache));
  b.field("verdict", quote(to_string(report.verdict)));
  b.field("reason", quote(report.reason));
  b.field("radius", std::to_string(report.radius));
  b.field("via_characterization", bool_str(report.via_characterization));
  // Explicit tri-state-avoiding marker: the characterization payload being
  // absent is semantically different from it not having been attempted (at
  // >= 2 threads the probe can win the race before the lane finishes).
  // Consumers dispatching on "computed" never have to treat a missing or
  // null field as meaningful.
  b.field("characterization", quote(report.characterization_computed
                                        ? "computed"
                                        : "not-computed"));
  b.field("total_wall_ms",
          num(options.redact_timings ? 0.0 : report.total_wall_ms));

  // Schema v9 "run": per-run attribution. "phases" is wall-clock (zeroed
  // under redact_timings, phases a run never entered stay 0); "cache" is
  // tier + seeded levels on a single `"cache":` line (grep contract, see
  // the top-level field); the rollups are sums/concatenations of the
  // deterministic per-engine distributions, byte-identical at every
  // --jobs/--threads combination under the "exact"/"ladder" schedules.
  b.open("run", '{');
  b.open("phases", '{');
  b.field("consult_ms",
          num(options.redact_timings ? 0.0 : report.phase_consult_ms));
  b.field("engines_ms",
          num(options.redact_timings ? 0.0 : report.phase_engines_ms));
  b.field("publish_ms",
          num(options.redact_timings ? 0.0 : report.phase_publish_ms));
  b.close('}');
  b.field("cache", "{ \"tier\": " + quote(report.cache) +
                       ", \"seeded_levels\": " +
                       std::to_string(report.cache_seeded_levels) + " }");
  std::uint64_t ds_count = 0, ds_sum = 0;
  std::vector<std::uint64_t> ds_buckets;
  const std::vector<std::uint64_t>* ladder_levels = nullptr;
  for (const EngineReport& e : report.engines) {
    ds_count += e.domain_size_count;
    ds_sum += e.domain_size_sum;
    if (e.domain_size_hist.size() > ds_buckets.size()) {
      ds_buckets.resize(e.domain_size_hist.size(), 0);
    }
    for (std::size_t i = 0; i < e.domain_size_hist.size(); ++i) {
      ds_buckets[i] += e.domain_size_hist[i];
    }
    // First engine in canonical order that climbed the ladder (the
    // chromatic probe under the standard schedules).
    if (ladder_levels == nullptr && !e.level_facets.empty()) {
      ladder_levels = &e.level_facets;
    }
  }
  b.field("domain_sizes", hist_inline(ds_count, ds_sum, ds_buckets));
  b.field("ladder_levels",
          u64_array_inline(ladder_levels ? *ladder_levels
                                         : std::vector<std::uint64_t>{}));
  b.close('}');

  // Schema v4 "metrics": rollups computed here from the per-engine fields —
  // they are sums of deterministic quantities, so they stay byte-identical
  // at every thread count. The executor sub-object is the one scheduling-
  // dependent part and is redacted with the wall clocks.
  std::size_t nodes_total = 0, img_hits = 0, img_misses = 0;
  std::size_t mask_hits = 0, mask_misses = 0;
  for (const EngineReport& e : report.engines) {
    nodes_total += e.nodes_explored;
    img_hits += e.image_cache_hits;
    img_misses += e.image_cache_misses;
    mask_hits += e.edge_mask_hits;
    mask_misses += e.edge_mask_misses;
  }
  const ExecutorStats exec =
      options.redact_timings ? ExecutorStats{} : report.executor_stats;
  b.open("metrics", '{');
  b.field("nodes_explored_total", std::to_string(nodes_total));
  b.open("image_cache", '{');
  b.field("hits", std::to_string(img_hits));
  b.field("misses", std::to_string(img_misses));
  b.close('}');
  b.open("edge_masks", '{');
  b.field("hits", std::to_string(mask_hits));
  b.field("misses", std::to_string(mask_misses));
  b.close('}');
  b.open("executor", '{');
  b.field("jobs_run", std::to_string(exec.jobs_run));
  b.field("steals", std::to_string(exec.steals));
  b.field("injections", std::to_string(exec.injections));
  b.field("max_queue_depth", std::to_string(exec.max_queue_depth));
  b.field("help_runs", std::to_string(exec.help_runs));
  b.close('}');
  const PipelineReport::LadderBuildStats ladder =
      options.redact_timings ? PipelineReport::LadderBuildStats{}
                             : report.ladder_stats;
  b.open("ladder", '{');
  b.field("parallel_chunks", std::to_string(ladder.parallel_chunks));
  b.field("merge_ns", std::to_string(ladder.merge_ns));
  b.field("stripe_contention", std::to_string(ladder.stripe_contention));
  b.close('}');
  // One line by construction (see the top-level "cache" field).
  b.field("cache", "{ \"hits\": " + std::to_string(report.cache_hits) +
                       ", \"misses\": " + std::to_string(report.cache_misses) +
                       ", \"seeded_levels\": " +
                       std::to_string(report.cache_seeded_levels) +
                       ", \"store_bytes\": " +
                       std::to_string(report.cache_store_bytes) + " }");
  b.close('}');

  b.open("engines", '[');
  for (const EngineReport& e : report.engines) emit_engine(b, e, options);
  b.close(']');

  b.close('}');
  std::string out = std::move(b).finish();
  out += '\n';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  out << content;
  if (!out) {
    throw std::runtime_error("write failed: " + path);
  }
}

}  // namespace trichroma::io
