#pragma once
// Structured JSON rendering of a pipeline run (solver/pipeline.h).
//
// The schema is versioned: every document carries
//   "schema": "trichroma.pipeline-report/9"
// and consumers should dispatch on it. Version 9 added per-run
// attribution (Telemetry v2): each engine carries its deterministic
// "domain_sizes" histogram (base-2 bucketed CSP candidate-domain sizes,
// rendered `{ "count", "sum", "buckets": [..] }` on one line) and
// "level_facets" ladder profile (top-dimensional facet count of Ch^r per
// level climbed), and a top-level "run" object carries the phase latency
// breakdown ("phases": consult/engines/publish wall clocks, zeroed under
// redact_timings), the cache tier + seeded levels (a single `"cache":`
// line, same grep contract as below), and deterministic rollups of the
// per-engine distributions. Version 6 added the verdict-store
// surface: a top-level "cache": "off" | "hit" | "miss" marker and a
// "cache" rollup inside "metrics" ({ "hits", "misses", "store_bytes" }).
// Both render on single lines containing the token `"cache":` — and no
// other key produces that token — so warm-vs-cold byte comparisons can
// strip every cache-dependent field with `grep -v '"cache":'`. A cache-hit
// report is byte-identical to the cold run it replays apart from those
// lines (wall clocks are zero in the record; redact_timings zeroes them in
// cold runs). Version 5 added the per-engine
// "domain_overflow" array (probe rungs whose CSP exceeded the 64-value
// word-parallel domain width — a representation limit distinct from a
// budget cap) and the executor's "help_runs" counter (tasks drained inline
// by a blocked wait()). Version 4 added the "metrics"
// section: deterministic rollups over the engines (node and cache totals,
// identical at every thread count) plus the shared executor's scheduling
// telemetry, which IS timing-dependent and is therefore zeroed under
// `redact_timings` exactly like the wall clocks. Version 3 dropped the
// options' "threads"/"threads_resolved" fields (every solver quantity in
// the report is thread-count independent since the canonical prefix
// accounting; the worker count only produced spurious diffs) and added the
// resolved lane "schedule". Version 2 was v1 + the explicit
// "characterization" marker — previously an absent payload was
// indistinguishable from a lane that never ran:
//
//   {
//     "schema": "trichroma.pipeline-report/9",
//     "task": { "name", "num_processes", "input_facets", "output_facets" },
//     "options": { "max_radius", "node_cap", "use_characterization",
//                  "reuse_subdivisions", "reuse_images" },
//     "schedule": "exact" | "ladder" | "racing",
//     "cache": "off" | "hit" | "miss",
//     "verdict": "SOLVABLE" | "UNSOLVABLE" | "UNKNOWN",
//     "reason": string,
//     "radius": int,                  // -1 when no map search witness
//     "via_characterization": bool,
//     "characterization": "computed" | "not-computed",
//         // whether the characterization lane finished; "not-computed"
//         // covers both the disabled route and a lane cancelled by the
//         // winning probe at threads >= 2
//     "total_wall_ms": number,
//     "run": {
//       "phases": { "consult_ms", "engines_ms", "publish_ms" },
//           // wall clocks, zeroed under redact_timings; phases a run
//           // never entered stay 0 (e.g. engines on a cache hit)
//       "cache": { "tier": "off"|"hit"|"artifacts"|"miss",
//                  "seeded_levels": int },   // one `"cache":` line
//       "domain_sizes": { "count", "sum", "buckets": [..] },
//           // merged over engines; deterministic
//       "ladder_levels": [ int ]
//           // Ch^r top-facet counts from the first engine that climbed
//     },
//     "metrics": {
//       "nodes_explored_total": int,   // sum over engines (deterministic)
//       "image_cache": { "hits", "misses" },   // sums over engines
//       "edge_masks": { "hits", "misses" },    // sums over engines
//       "executor": { "jobs_run", "steals", "injections",
//                     "max_queue_depth", "help_runs" },
//           // scheduling telemetry: nondeterministic, zeroed under
//           // redact_timings (deltas over the run; max_queue_depth is the
//           // pool's cumulative high-water mark)
//       "cache": { "hits", "misses", "store_bytes" }
//           // verdict-store rollup, rendered on one line (see above)
//     },
//     "engines": [ {
//       "name", "side", "status", "precedence",
//       "verdict": string | null,     // only conclusive engines
//       "reason", "detail",
//       "radius_reached", "witness_radius",
//       "nodes_explored",
//       "image_cache": { "hits", "misses" },
//       "edge_masks": { "hits", "misses" },
//       "capped": [ string ],
//       "domain_overflow": [ string ],
//       "domain_sizes": { "count", "sum", "buckets": [..] },  // one line
//       "level_facets": [ int ],                              // one line
//       "wall_ms": number
//     } ]
//   }
//
// The emitter is hand-rolled (no third-party JSON dependency) and produces
// deterministic, stably ordered output — with `redact_timings` the document
// is byte-for-byte reproducible at every thread count under the "exact"
// and "ladder" schedules (the batch driver relies on this), and at
// threads = 1 under "racing", which is what the golden test pins.

#include <string>

#include "solver/pipeline.h"

namespace trichroma::io {

struct ReportJsonOptions {
  /// Zero every wall-clock field, for golden-file comparisons.
  bool redact_timings = false;
};

/// The schema identifier emitted by (this version of) to_json.
const char* report_schema();

/// Renders `report` as pretty-printed JSON (2-space indent, trailing
/// newline).
std::string to_json(const PipelineReport& report,
                    const ReportJsonOptions& options = {});

/// Escapes a string for embedding in JSON (without the surrounding quotes).
std::string json_escape(const std::string& s);

/// Writes `content` to `path`, throwing std::runtime_error on failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace trichroma::io
