#include "io/store.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "obs/metrics.h"
#include "topology/compiled.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace trichroma::io {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Record bodies are line-oriented `key=value`; values are percent-escaped
// so reasons/details with newlines or '%' survive the round trip.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case '\n':
        out += "%0A";
        break;
      case '\r':
        out += "%0D";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool unescape(const std::string& s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      *out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) return false;
    const auto nib = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = nib(s[i + 1]);
    const int lo = nib(s[i + 2]);
    if (hi < 0 || lo < 0) return false;
    *out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return true;
}

void kv(std::string& out, const std::string& key, const std::string& value) {
  out += key;
  out += '=';
  out += escape(value);
  out += '\n';
}

void kv_u(std::string& out, const std::string& key, std::uint64_t value) {
  kv(out, key, std::to_string(value));
}

void kv_i(std::string& out, const std::string& key, long long value) {
  kv(out, key, std::to_string(value));
}

/// Map-backed reader with a sticky error flag: every missing key or parse
/// failure flips `ok` and the caller checks once at the end. Keeps the
/// "any anomaly is a miss" contract one `if` instead of thirty.
class RecordReader {
 public:
  explicit RecordReader(const std::string& body) {
    std::size_t start = 0;
    while (start < body.size()) {
      std::size_t end = body.find('\n', start);
      if (end == std::string::npos) end = body.size();
      const std::string line = body.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos) {
        ok = false;
        return;
      }
      fields_[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }

  std::string str(const std::string& key) {
    auto it = fields_.find(key);
    std::string out;
    if (it == fields_.end() || !unescape(it->second, &out)) ok = false;
    return out;
  }

  std::uint64_t u64(const std::string& key) {
    const std::string raw = str(key);
    if (!ok) return 0;
    if (raw.empty()) {
      ok = false;
      return 0;
    }
    std::uint64_t out = 0;
    for (const char c : raw) {
      if (c < '0' || c > '9') {
        ok = false;
        return 0;
      }
      out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return out;
  }

  long long i64(const std::string& key) {
    std::string raw = str(key);
    if (!ok) return 0;
    bool neg = false;
    if (!raw.empty() && raw[0] == '-') {
      neg = true;
      raw.erase(raw.begin());
    }
    if (raw.empty()) {
      ok = false;
      return 0;
    }
    long long out = 0;
    for (const char c : raw) {
      if (c < '0' || c > '9') {
        ok = false;
        return 0;
      }
      out = out * 10 + (c - '0');
    }
    return neg ? -out : out;
  }

  bool boolean(const std::string& key) {
    const std::string raw = str(key);
    if (raw == "1") return true;
    if (raw == "0") return false;
    ok = false;
    return false;
  }

  bool ok = true;

 private:
  std::map<std::string, std::string> fields_;
};

bool parse_verdict_str(const std::string& s, Verdict* out) {
  if (s == "SOLVABLE") *out = Verdict::Solvable;
  else if (s == "UNSOLVABLE") *out = Verdict::Unsolvable;
  else if (s == "UNKNOWN") *out = Verdict::Unknown;
  else return false;
  return true;
}

bool parse_side(const std::string& s, EngineSide* out) {
  if (s == "exact") *out = EngineSide::Exact;
  else if (s == "impossibility") *out = EngineSide::Impossibility;
  else if (s == "possibility") *out = EngineSide::Possibility;
  else if (s == "support") *out = EngineSide::Support;
  else return false;
  return true;
}

bool parse_status(const std::string& s, EngineStatus* out) {
  if (s == "conclusive") *out = EngineStatus::Conclusive;
  else if (s == "inconclusive") *out = EngineStatus::Inconclusive;
  else if (s == "completed") *out = EngineStatus::Completed;
  else if (s == "cancelled") *out = EngineStatus::Cancelled;
  else if (s == "skipped") *out = EngineStatus::Skipped;
  else return false;
  return true;
}

}  // namespace

std::string options_digest(const SolvabilityOptions& options,
                           const std::string& resolved_schedule) {
  std::string key;
  kv_i(key, "max_radius", options.max_radius);
  kv_u(key, "node_cap", options.node_cap);
  kv(key, "use_characterization", options.use_characterization ? "1" : "0");
  kv(key, "reuse_subdivisions", options.reuse_subdivisions ? "1" : "0");
  kv(key, "reuse_images", options.reuse_images ? "1" : "0");
  kv(key, "schedule", resolved_schedule);
  return hex64(fnv1a64(key.data(), key.size()));
}

std::string wrap_record(const std::string& kind, const std::string& body) {
  std::string out = kStoreSchema;
  out += ' ';
  out += kind;
  out += '\n';
  out += "len:" + std::to_string(body.size()) +
         " fnv64:" + hex64(fnv1a64(body.data(), body.size())) + '\n';
  out += body;
  return out;
}

bool unwrap_record(const std::string& file_contents, const std::string& kind,
                   std::string* body) {
  const std::size_t nl1 = file_contents.find('\n');
  if (nl1 == std::string::npos) return false;
  if (file_contents.substr(0, nl1) != std::string(kStoreSchema) + " " + kind) {
    return false;
  }
  const std::size_t nl2 = file_contents.find('\n', nl1 + 1);
  if (nl2 == std::string::npos) return false;
  const std::string header = file_contents.substr(nl1 + 1, nl2 - nl1 - 1);
  std::size_t len = 0;
  char digest[17] = {0};
  if (std::sscanf(header.c_str(), "len:%zu fnv64:%16s", &len, digest) != 2) {
    return false;
  }
  if (file_contents.size() - (nl2 + 1) != len) return false;
  const char* payload = file_contents.data() + nl2 + 1;
  if (hex64(fnv1a64(payload, len)) != digest) return false;
  body->assign(payload, len);
  return true;
}

std::string serialize_verdict_record(const PipelineReport& report,
                                     const VerdictRecordBudget& budget) {
  std::string out;
  kv(out, "format", kVerdictRecordSchema);
  kv_i(out, "budget.max_radius", budget.max_radius);
  kv_u(out, "budget.node_cap", budget.node_cap);
  kv(out, "budget.use_characterization",
     budget.use_characterization ? "1" : "0");
  kv(out, "budget.reuse_subdivisions", budget.reuse_subdivisions ? "1" : "0");
  kv(out, "budget.reuse_images", budget.reuse_images ? "1" : "0");
  kv(out, "task_name", report.task_name);
  kv_i(out, "num_processes", report.num_processes);
  kv_u(out, "input_facets", report.input_facets);
  kv_u(out, "output_facets", report.output_facets);
  kv(out, "schedule", report.schedule);
  kv(out, "verdict", to_string(report.verdict));
  kv(out, "reason", report.reason);
  kv_i(out, "radius", report.radius);
  kv(out, "via_characterization", report.via_characterization ? "1" : "0");
  kv(out, "characterization_computed",
     report.characterization_computed ? "1" : "0");
  kv_u(out, "engines", report.engines.size());
  for (std::size_t i = 0; i < report.engines.size(); ++i) {
    const EngineReport& e = report.engines[i];
    const std::string p = "e" + std::to_string(i) + ".";
    kv(out, p + "name", e.name);
    kv(out, p + "side", to_string(e.side));
    kv(out, p + "status", to_string(e.status));
    kv_i(out, p + "precedence", e.precedence);
    kv(out, p + "verdict", to_string(e.verdict));
    kv(out, p + "reason", e.reason);
    kv(out, p + "detail", e.detail);
    kv_i(out, p + "radius_reached", e.radius_reached);
    kv_i(out, p + "witness_radius", e.witness_radius);
    kv_u(out, p + "nodes_explored", e.nodes_explored);
    kv_u(out, p + "image_cache_hits", e.image_cache_hits);
    kv_u(out, p + "image_cache_misses", e.image_cache_misses);
    kv_u(out, p + "edge_mask_hits", e.edge_mask_hits);
    kv_u(out, p + "edge_mask_misses", e.edge_mask_misses);
    kv_u(out, p + "capped", e.capped.size());
    for (std::size_t j = 0; j < e.capped.size(); ++j) {
      kv(out, p + "capped." + std::to_string(j), e.capped[j]);
    }
    kv_u(out, p + "overflowed", e.overflowed.size());
    for (std::size_t j = 0; j < e.overflowed.size(); ++j) {
      kv(out, p + "overflowed." + std::to_string(j), e.overflowed[j]);
    }
    // Record format v3: the deterministic probe distributions. They feed
    // the report's "run" rollups, so replayed hits must carry byte-equal
    // values or warm runs would diverge from cold ones.
    kv_u(out, p + "domain_size_count", e.domain_size_count);
    kv_u(out, p + "domain_size_sum", e.domain_size_sum);
    kv_u(out, p + "domain_size_hist", e.domain_size_hist.size());
    for (std::size_t j = 0; j < e.domain_size_hist.size(); ++j) {
      kv_u(out, p + "domain_size_hist." + std::to_string(j),
           e.domain_size_hist[j]);
    }
    kv_u(out, p + "level_facets", e.level_facets.size());
    for (std::size_t j = 0; j < e.level_facets.size(); ++j) {
      kv_u(out, p + "level_facets." + std::to_string(j), e.level_facets[j]);
    }
  }
  return out;
}

bool parse_verdict_record(const std::string& body, PipelineReport* report,
                          VerdictRecordBudget* budget) {
  RecordReader r(body);
  if (!r.ok) return false;
  if (r.str("format") != kVerdictRecordSchema) return false;

  VerdictRecordBudget b;
  b.max_radius = static_cast<int>(r.i64("budget.max_radius"));
  b.node_cap = r.u64("budget.node_cap");
  b.use_characterization = r.boolean("budget.use_characterization");
  b.reuse_subdivisions = r.boolean("budget.reuse_subdivisions");
  b.reuse_images = r.boolean("budget.reuse_images");

  PipelineReport out;  // build fully before committing anything
  out.task_name = r.str("task_name");
  out.num_processes = static_cast<int>(r.i64("num_processes"));
  out.input_facets = static_cast<std::size_t>(r.u64("input_facets"));
  out.output_facets = static_cast<std::size_t>(r.u64("output_facets"));
  out.schedule = r.str("schedule");
  if (!parse_verdict_str(r.str("verdict"), &out.verdict)) return false;
  out.reason = r.str("reason");
  out.radius = static_cast<int>(r.i64("radius"));
  out.via_characterization = r.boolean("via_characterization");
  out.characterization_computed = r.boolean("characterization_computed");
  const std::uint64_t engines = r.u64("engines");
  if (!r.ok || engines > 64) return false;
  out.engines.resize(engines);
  for (std::size_t i = 0; i < engines; ++i) {
    EngineReport& e = out.engines[i];
    const std::string p = "e" + std::to_string(i) + ".";
    e.name = r.str(p + "name");
    if (!parse_side(r.str(p + "side"), &e.side)) return false;
    if (!parse_status(r.str(p + "status"), &e.status)) return false;
    e.precedence = static_cast<int>(r.i64(p + "precedence"));
    if (!parse_verdict_str(r.str(p + "verdict"), &e.verdict)) return false;
    e.reason = r.str(p + "reason");
    e.detail = r.str(p + "detail");
    e.radius_reached = static_cast<int>(r.i64(p + "radius_reached"));
    e.witness_radius = static_cast<int>(r.i64(p + "witness_radius"));
    e.nodes_explored = static_cast<std::size_t>(r.u64(p + "nodes_explored"));
    e.image_cache_hits =
        static_cast<std::size_t>(r.u64(p + "image_cache_hits"));
    e.image_cache_misses =
        static_cast<std::size_t>(r.u64(p + "image_cache_misses"));
    e.edge_mask_hits = static_cast<std::size_t>(r.u64(p + "edge_mask_hits"));
    e.edge_mask_misses =
        static_cast<std::size_t>(r.u64(p + "edge_mask_misses"));
    const std::uint64_t capped = r.u64(p + "capped");
    if (!r.ok || capped > 1024) return false;
    for (std::size_t j = 0; j < capped; ++j) {
      e.capped.push_back(r.str(p + "capped." + std::to_string(j)));
    }
    const std::uint64_t overflowed = r.u64(p + "overflowed");
    if (!r.ok || overflowed > 1024) return false;
    for (std::size_t j = 0; j < overflowed; ++j) {
      e.overflowed.push_back(r.str(p + "overflowed." + std::to_string(j)));
    }
    e.domain_size_count = r.u64(p + "domain_size_count");
    e.domain_size_sum = r.u64(p + "domain_size_sum");
    const std::uint64_t hist_buckets = r.u64(p + "domain_size_hist");
    if (!r.ok || hist_buckets > 64) return false;
    for (std::size_t j = 0; j < hist_buckets; ++j) {
      e.domain_size_hist.push_back(
          r.u64(p + "domain_size_hist." + std::to_string(j)));
    }
    const std::uint64_t level_facets = r.u64(p + "level_facets");
    if (!r.ok || level_facets > 64) return false;
    for (std::size_t j = 0; j < level_facets; ++j) {
      e.level_facets.push_back(r.u64(p + "level_facets." + std::to_string(j)));
    }
    e.wall_ms = 0.0;  // wall clocks are never stored
  }
  if (!r.ok) return false;

  // Commit: record-carried fields only. Options, cache markers, wall
  // clocks, and executor stats stay with the caller / stay zero.
  report->task_name = std::move(out.task_name);
  report->num_processes = out.num_processes;
  report->input_facets = out.input_facets;
  report->output_facets = out.output_facets;
  report->schedule = std::move(out.schedule);
  report->verdict = out.verdict;
  report->reason = std::move(out.reason);
  report->radius = out.radius;
  report->via_characterization = out.via_characterization;
  report->characterization_computed = out.characterization_computed;
  report->total_wall_ms = 0.0;
  report->executor_stats = ExecutorStats{};
  report->engines = std::move(out.engines);
  if (budget != nullptr) *budget = b;
  return true;
}

// --- VerdictStore ---------------------------------------------------------

VerdictStore::VerdictStore(std::string root) : root_(std::move(root)) {}

std::string VerdictStore::entry_dir(const TaskFingerprint& fp) const {
  return root_ + "/" + fp.hex_prefix(2) + "/" + fp.hex();
}

bool VerdictStore::write_file(const std::string& dir,
                              const std::string& filename,
                              const std::string& contents) const {
  try {
    fs::create_directories(dir);
    static std::atomic<std::uint64_t> seq{0};
#ifndef _WIN32
    const long long pid = static_cast<long long>(::getpid());
#else
    const long long pid = 0;
#endif
    const std::string tmp = dir + "/.tmp-" + std::to_string(pid) + "-" +
                            std::to_string(seq.fetch_add(1)) + "-" + filename;
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return false;
      out.write(contents.data(),
                static_cast<std::streamsize>(contents.size()));
      if (!out) {
        out.close();
        std::error_code ec;
        fs::remove(tmp, ec);
        return false;
      }
    }
    std::error_code ec;
    fs::rename(tmp, dir + "/" + filename, ec);
    if (ec) {
      fs::remove(tmp, ec);
      return false;
    }
    bytes_written_.fetch_add(contents.size(), std::memory_order_relaxed);
    static obs::Histogram& write_bytes =
        obs::MetricsRegistry::global().histogram("cache.store.write_bytes");
    write_bytes.record(contents.size());
    return true;
  } catch (...) {
    return false;
  }
}

namespace {

bool read_file(const std::string& path, std::string* out) {
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in && !in.eof()) return false;
    *out = std::move(buf).str();
    static obs::Histogram& read_bytes =
        obs::MetricsRegistry::global().histogram("cache.store.read_bytes");
    read_bytes.record(out->size());
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

bool VerdictStore::load_verdict(const TaskFingerprint& fp,
                                const std::string& opt_digest,
                                PipelineReport* report) const {
  std::string raw;
  if (!read_file(entry_dir(fp) + "/verdict-" + opt_digest + ".rec", &raw)) {
    return false;
  }
  std::string body;
  if (!unwrap_record(raw, "verdict", &body)) return false;
  return parse_verdict_record(body, report);
}

bool VerdictStore::store_verdict(const TaskFingerprint& fp,
                                 const std::string& opt_digest,
                                 const PipelineReport& report,
                                 const VerdictRecordBudget& budget) const {
  const std::string wrapped =
      wrap_record("verdict", serialize_verdict_record(report, budget));
  return write_file(entry_dir(fp), "verdict-" + opt_digest + ".rec", wrapped);
}

std::vector<SiblingVerdict> VerdictStore::scan_siblings(
    const TaskFingerprint& fp) const {
  std::vector<SiblingVerdict> out;
  try {
    const fs::path dir = entry_dir(fp);
    std::vector<std::string> names;
    std::error_code ec;
    fs::directory_iterator it(dir, ec), end;
    for (; !ec && it != end; it.increment(ec)) {
      const std::string name = it->path().filename().string();
      // "verdict-" + 16 hex digest chars + ".rec"
      if (name.size() == 8 + 16 + 4 && name.rfind("verdict-", 0) == 0 &&
          name.compare(name.size() - 4, 4, ".rec") == 0) {
        names.push_back(name);
      }
    }
    // Digest order: the scan result (and hence warm-start selection) must
    // not depend on directory iteration order.
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      std::string raw, body;
      if (!read_file((dir / name).string(), &raw)) continue;
      if (!unwrap_record(raw, "verdict", &body)) continue;
      SiblingVerdict sibling;
      sibling.opt_digest = name.substr(8, 16);
      if (!parse_verdict_record(body, &sibling.report, &sibling.budget)) {
        continue;
      }
      out.push_back(std::move(sibling));
    }
  } catch (...) {
    // best-effort: whatever parsed so far
  }
  return out;
}

bool VerdictStore::store_artifact(const TaskFingerprint& fp,
                                  const std::string& name,
                                  const std::string& body) const {
  return write_file(entry_dir(fp), name + ".art", wrap_record(name, body));
}

bool VerdictStore::load_artifact(const TaskFingerprint& fp,
                                 const std::string& name,
                                 std::string* body) const {
  std::string raw;
  if (!read_file(entry_dir(fp) + "/" + name + ".art", &raw)) return false;
  return unwrap_record(raw, name, body);
}

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Entry directories are exactly two levels below the root: <shard>/<fp>.
template <typename Fn>
void for_each_entry_dir(const std::string& root, Fn&& fn) {
  std::error_code ec;
  fs::directory_iterator shards(root, ec), end;
  for (; !ec && shards != end; shards.increment(ec)) {
    if (!shards->is_directory()) continue;
    std::error_code ec2;
    fs::directory_iterator entries(shards->path(), ec2), end2;
    for (; !ec2 && entries != end2; entries.increment(ec2)) {
      if (entries->is_directory()) fn(entries->path());
    }
  }
}

}  // namespace

VerdictStore::Stats VerdictStore::stats() const {
  Stats out;
  try {
    for_each_entry_dir(root_, [&out](const fs::path& entry) {
      ++out.entries;
      std::error_code ec;
      fs::directory_iterator files(entry, ec), end;
      for (; !ec && files != end; files.increment(ec)) {
        if (!files->is_regular_file()) continue;
        std::error_code size_ec;
        const std::uint64_t bytes = files->file_size(size_ec);
        if (size_ec) continue;
        const std::string name = files->path().filename().string();
        if (name.rfind("verdict-", 0) == 0 && ends_with(name, ".rec")) {
          ++out.verdict_records;
          out.verdict_bytes += bytes;
        } else if (ends_with(name, ".art")) {
          ++out.artifact_files;
          out.artifact_bytes += bytes;
        } else {
          ++out.other_files;
          out.other_bytes += bytes;
        }
      }
    });
  } catch (...) {
    // best-effort
  }
  return out;
}

VerdictStore::PruneResult VerdictStore::prune(std::uint64_t max_bytes) const {
  PruneResult out;
  try {
    struct Entry {
      fs::file_time_type newest;  // most recent write anywhere in the entry
      std::string path;
      std::uint64_t bytes = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    for_each_entry_dir(root_, [&entries, &total](const fs::path& dir) {
      Entry e;
      e.path = dir.string();
      e.newest = fs::file_time_type::min();
      std::error_code ec;
      fs::directory_iterator files(dir, ec), end;
      for (; !ec && files != end; files.increment(ec)) {
        if (!files->is_regular_file()) continue;
        std::error_code fec;
        const std::uint64_t bytes = files->file_size(fec);
        if (!fec) e.bytes += bytes;
        const fs::file_time_type t = files->last_write_time(fec);
        if (!fec && t > e.newest) e.newest = t;
      }
      total += e.bytes;
      entries.push_back(std::move(e));
    });
    // Oldest entries first; path as the deterministic tiebreak. Whole-entry
    // eviction keeps each surviving verdict next to its artifacts.
    std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                                 const Entry& b) {
      return std::tie(a.newest, a.path) < std::tie(b.newest, b.path);
    });
    for (const Entry& e : entries) {
      if (total <= max_bytes) break;
      std::error_code ec;
      fs::remove_all(e.path, ec);
      if (ec) continue;
      // Drop the now-empty shard directory if this was its last entry.
      fs::remove(fs::path(e.path).parent_path(), ec);
      total -= e.bytes;
      ++out.evicted_entries;
      out.evicted_bytes += e.bytes;
    }
    out.remaining_bytes = total;
  } catch (...) {
    // best-effort
  }
  return out;
}

// --- artifact codecs ------------------------------------------------------

namespace {

/// Base-complex vertex ids of `task`'s input in canonical order, i.e. the
/// shared ordinal space isomorphic tasks serialize through.
std::vector<VertexId> canonical_input_vertices(
    const Task& task, const CanonicalLabeling& labeling) {
  std::vector<VertexId> verts = task.input.vertex_ids();
  std::sort(verts.begin(), verts.end(),
            [&labeling](VertexId a, VertexId b) {
              return labeling.index_of(a) < labeling.index_of(b);
            });
  return verts;
}

void render_ordinals(std::string& out, const std::vector<int>& xs) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(xs[i]);
  }
}

bool parse_ordinals(const std::string& s, std::size_t limit,
                    std::vector<int>* out) {
  out->clear();
  if (s.empty()) return false;
  int cur = 0;
  bool have = false;
  for (const char c : s) {
    if (c == ',') {
      if (!have) return false;
      out->push_back(cur);
      cur = 0;
      have = false;
      continue;
    }
    if (c < '0' || c > '9') return false;
    cur = cur * 10 + (c - '0');
    if (static_cast<std::size_t>(cur) >= limit + 1) return false;
    have = true;
  }
  if (!have) return false;
  out->push_back(cur);
  for (const int v : *out) {
    if (static_cast<std::size_t>(v) >= limit) return false;
  }
  return true;
}

std::vector<std::string> split_lines(const std::string& body) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    lines.push_back(body.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string serialize_ladder_levels(
    const Task& task, const CanonicalLabeling& labeling,
    const std::vector<std::shared_ptr<const SubdividedComplex>>& levels) {
  const std::vector<VertexId> base = canonical_input_vertices(task, labeling);
  std::unordered_map<VertexId, int, VertexIdHash> base_ord;
  for (std::size_t i = 0; i < base.size(); ++i) {
    base_ord.emplace(base[i], static_cast<int>(i));
  }

  std::string out = "ladder-levels/2\n";
  out += "levels=" + std::to_string(levels.size()) + "\n";
  out += "base=" + std::to_string(base.size()) + "\n";

  // prev_ord: vertex -> ordinal at the previous level. Level 0 ordinals are
  // the canonical base indices; each serialized level defines the next.
  std::unordered_map<VertexId, int, VertexIdHash> prev_ord = base_ord;
  const ValuePool& values = task.pool->values();

  for (std::size_t r = 1; r < levels.size(); ++r) {
    const SubdividedComplex& level = *levels[r];
    // Decode each vertex's view (set of previous-level vertices) from its
    // interned value: Tuple("view", Set(Int(raw(prev))...)).
    struct Row {
      Color color;
      std::vector<int> view;     // prev-level ordinals, sorted
      std::vector<int> carrier;  // base ordinals, sorted
      VertexId id;
    };
    std::vector<Row> rows;
    for (VertexId v : level.complex.vertex_ids()) {
      Row row;
      row.id = v;
      row.color = task.pool->color(v);
      const ValueId val = task.pool->value(v);
      const auto elems = values.elements(val);
      for (const ValueId member : values.elements(elems[1])) {
        const VertexId w =
            static_cast<VertexId>(static_cast<std::uint32_t>(
                values.as_int(member)));
        row.view.push_back(prev_ord.at(w));
      }
      std::sort(row.view.begin(), row.view.end());
      for (VertexId w : level.carrier.at(v)) {
        row.carrier.push_back(base_ord.at(w));
      }
      std::sort(row.carrier.begin(), row.carrier.end());
      rows.push_back(std::move(row));
    }
    // Format v2: rows in the writer's intern order (ascending vertex id).
    // Loading re-interns row by row, so a same-task load reproduces the
    // cold build's pool ids exactly — the warm-start determinism contract.
    // The order is still content-determined for any reader: cold towers
    // intern in the canonical stamp order of subdivide_once.
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return raw(a.id) < raw(b.id);
    });
    std::unordered_map<VertexId, int, VertexIdHash> this_ord;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      this_ord.emplace(rows[i].id, static_cast<int>(i));
    }
    out += "level=" + std::to_string(r) + " verts=" +
           std::to_string(rows.size()) + "\n";
    for (const Row& row : rows) {
      out += "v " + std::to_string(row.color) + " ";
      render_ordinals(out, row.view);
      out += " ";
      render_ordinals(out, row.carrier);
      out += "\n";
    }
    std::vector<std::vector<int>> facets;
    for (const Simplex& f : level.complex.facets()) {
      std::vector<int> row;
      for (VertexId v : f) row.push_back(this_ord.at(v));
      std::sort(row.begin(), row.end());
      facets.push_back(std::move(row));
    }
    std::sort(facets.begin(), facets.end());
    out += "facets=" + std::to_string(facets.size()) + "\n";
    for (const auto& f : facets) {
      out += "f ";
      render_ordinals(out, f);
      out += "\n";
    }
    prev_ord = std::move(this_ord);
  }
  return out;
}

std::size_t ladder_levels_count(const std::string& body) {
  const std::size_t nl1 = body.find('\n');
  if (nl1 == std::string::npos) return 0;
  if (body.substr(0, nl1) != "ladder-levels/2") return 0;
  std::size_t num_levels = 0;
  if (std::sscanf(body.c_str() + nl1 + 1, "levels=%zu", &num_levels) != 1) {
    return 0;
  }
  return num_levels;
}

bool load_ladder_levels(const Task& task, const CanonicalLabeling& labeling,
                        const std::string& body,
                        std::vector<SubdividedComplex>* out,
                        std::size_t max_levels) {
  try {
    const std::vector<std::string> lines = split_lines(body);
    std::size_t at = 0;
    const auto next = [&lines, &at]() -> const std::string* {
      return at < lines.size() ? &lines[at++] : nullptr;
    };
    const std::string* line = next();
    if (line == nullptr || *line != "ladder-levels/2") return false;
    line = next();
    std::size_t num_levels = 0;
    if (line == nullptr ||
        std::sscanf(line->c_str(), "levels=%zu", &num_levels) != 1) {
      return false;
    }
    const std::vector<VertexId> base =
        canonical_input_vertices(task, labeling);
    line = next();
    std::size_t base_count = 0;
    if (line == nullptr ||
        std::sscanf(line->c_str(), "base=%zu", &base_count) != 1 ||
        base_count != base.size()) {
      return false;
    }
    if (num_levels == 0 || num_levels > 16) return false;
    const std::size_t use_levels = std::min(num_levels, max_levels);
    if (use_levels == 0) return false;

    out->clear();
    out->push_back(identity_subdivision(task.input));
    ValuePool& values = task.pool->values();
    const ValueId view_tag = values.of_string("view");
    std::vector<VertexId> prev_ids = base;

    for (std::size_t r = 1; r < use_levels; ++r) {
      line = next();
      std::size_t level_no = 0, verts = 0;
      if (line == nullptr || std::sscanf(line->c_str(), "level=%zu verts=%zu",
                                         &level_no, &verts) != 2 ||
          level_no != r || verts == 0 || verts > 5'000'000) {
        return false;
      }
      std::vector<VertexId> ids;
      ids.reserve(verts);
      SubdividedComplex level;
      for (std::size_t i = 0; i < verts; ++i) {
        line = next();
        if (line == nullptr || line->size() < 2 || (*line)[0] != 'v' ||
            (*line)[1] != ' ') {
          return false;
        }
        // "v <color> <view ordinals> <carrier ordinals>"
        const std::string rest = line->substr(2);
        const std::size_t sp1 = rest.find(' ');
        if (sp1 == std::string::npos) return false;
        const std::size_t sp2 = rest.find(' ', sp1 + 1);
        if (sp2 == std::string::npos) return false;
        int color = 0;
        if (std::sscanf(rest.substr(0, sp1).c_str(), "%d", &color) != 1) {
          return false;
        }
        std::vector<int> view, carrier;
        if (!parse_ordinals(rest.substr(sp1 + 1, sp2 - sp1 - 1),
                            prev_ids.size(), &view) ||
            !parse_ordinals(rest.substr(sp2 + 1), base.size(), &carrier)) {
          return false;
        }
        std::vector<ValueId> members;
        members.reserve(view.size());
        for (const int ord : view) {
          members.push_back(values.of_int(static_cast<std::int64_t>(
              raw(prev_ids[static_cast<std::size_t>(ord)]))));
        }
        const ValueId view_value =
            values.of_tuple({view_tag, values.of_set(std::move(members))});
        const VertexId id =
            task.pool->vertex(static_cast<Color>(color), view_value);
        ids.push_back(id);
        std::vector<VertexId> carrier_verts;
        carrier_verts.reserve(carrier.size());
        for (const int ord : carrier) {
          carrier_verts.push_back(base[static_cast<std::size_t>(ord)]);
        }
        level.carrier[id] = Simplex(std::move(carrier_verts));
      }
      line = next();
      std::size_t facets = 0;
      if (line == nullptr ||
          std::sscanf(line->c_str(), "facets=%zu", &facets) != 1 ||
          facets == 0 || facets > 50'000'000) {
        return false;
      }
      for (std::size_t f = 0; f < facets; ++f) {
        line = next();
        if (line == nullptr || line->size() < 2 || (*line)[0] != 'f' ||
            (*line)[1] != ' ') {
          return false;
        }
        std::vector<int> ords;
        if (!parse_ordinals(line->substr(2), ids.size(), &ords)) return false;
        std::vector<VertexId> fv;
        fv.reserve(ords.size());
        for (const int ord : ords) {
          fv.push_back(ids[static_cast<std::size_t>(ord)]);
        }
        level.complex.add(Simplex(std::move(fv)));
      }
      level.compiled = CompiledComplex::compile(level.complex);
      out->push_back(std::move(level));
      prev_ids = std::move(ids);
    }
    if (use_levels < num_levels) return true;  // deeper tail left unread
    return at == lines.size() ||
           (at == lines.size() - 1 && lines.back().empty());
  } catch (...) {
    return false;
  }
}

std::string serialize_delta_images(const Task& task,
                                   const CanonicalLabeling& labeling) {
  const auto idx = [&labeling](const Simplex& s) {
    std::vector<int> out;
    out.reserve(s.size());
    for (VertexId v : s) out.push_back(labeling.index_of(v));
    std::sort(out.begin(), out.end());
    return out;
  };
  std::vector<std::pair<std::vector<int>, std::vector<std::vector<int>>>>
      rows;
  for (const Simplex& sigma : task.delta.domain()) {
    std::vector<std::vector<int>> images;
    for (const Simplex& tau : task.delta.facet_images(sigma)) {
      images.push_back(idx(tau));
    }
    std::sort(images.begin(), images.end());
    rows.emplace_back(idx(sigma), std::move(images));
  }
  std::sort(rows.begin(), rows.end());
  std::string out = "delta-images/1\n";
  out += "rows=" + std::to_string(rows.size()) + "\n";
  for (const auto& [src, images] : rows) {
    out += "d ";
    render_ordinals(out, src);
    out += " >";
    for (const auto& img : images) {
      out += " ";
      render_ordinals(out, img);
    }
    out += "\n";
  }
  return out;
}

bool load_delta_images(
    [[maybe_unused]] const Task& task, const CanonicalLabeling& labeling,
    const std::string& body,
    std::vector<std::pair<Simplex, std::vector<Simplex>>>* out) {
  try {
    // Canonical index -> this task's vertex id, over input ∪ output.
    const std::vector<VertexId>& order = labeling.order;
    const std::vector<std::string> lines = split_lines(body);
    if (lines.empty() || lines[0] != "delta-images/1") return false;
    std::size_t rows = 0;
    if (lines.size() < 2 ||
        std::sscanf(lines[1].c_str(), "rows=%zu", &rows) != 1) {
      return false;
    }
    out->clear();
    std::size_t at = 2;
    const auto to_simplex = [&order](const std::string& s,
                                     Simplex* simplex) -> bool {
      std::vector<int> ords;
      if (!parse_ordinals(s, order.size(), &ords)) return false;
      std::vector<VertexId> verts;
      verts.reserve(ords.size());
      for (const int ord : ords) {
        verts.push_back(order[static_cast<std::size_t>(ord)]);
      }
      *simplex = Simplex(std::move(verts));
      return true;
    };
    for (std::size_t i = 0; i < rows; ++i) {
      if (at >= lines.size()) return false;
      const std::string& line = lines[at++];
      if (line.size() < 2 || line[0] != 'd' || line[1] != ' ') return false;
      const std::size_t sep = line.find(" >");
      if (sep == std::string::npos) return false;
      Simplex src;
      if (!to_simplex(line.substr(2, sep - 2), &src)) return false;
      std::vector<Simplex> images;
      std::size_t pos = sep + 2;
      while (pos < line.size()) {
        if (line[pos] != ' ') return false;
        ++pos;
        std::size_t end = line.find(' ', pos);
        if (end == std::string::npos) end = line.size();
        Simplex img;
        if (!to_simplex(line.substr(pos, end - pos), &img)) return false;
        images.push_back(std::move(img));
        pos = end;
      }
      if (images.empty()) return false;
      out->emplace_back(std::move(src), std::move(images));
    }
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace trichroma::io
