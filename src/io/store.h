#pragma once
// Content-addressed verdict/artifact store, keyed by canonical task
// fingerprints (tasks/fingerprint.h).
//
// Layout: one directory per task under the store root, sharded by the
// fingerprint's first hex byte —
//
//   <root>/<fp[0:2]>/<fp>/verdict-<options-digest>.rec
//   <root>/<fp[0:2]>/<fp>/ladder.levels.art
//   <root>/<fp[0:2]>/<fp>/delta.images.art
//
// Verdict records hold the deterministic slice of a PipelineReport (task
// shape, schedule, verdict, reason, radius, characterization markers, and
// every engine entry minus wall clocks). They are keyed by the fingerprint
// AND an options digest: the verdict, the engine statuses, and even the
// node counts are functions of the budget (max_radius, node_cap, route
// flags) and of the *resolved* schedule ("ladder" reports and "racing"
// reports differ by contract), so records for different budgets never
// alias. Worker-thread counts are deliberately NOT part of the key — every
// stored quantity is thread-count independent (see solver/pipeline.h), and
// that is precisely what makes a cache hit byte-identical to the cold run
// it replays.
//
// Artifacts are serialized in the *canonical index space* of the labeling:
// a ladder tower or Δ-image table written by one task loads against any
// chromatically isomorphic task, because both sides translate through
// their own canonical labeling.
//
// Durability contract: writes go to a temp file in the entry directory and
// are renamed into place (atomic on POSIX), every file carries the store
// schema line plus a length + FNV-1a-64 checksum header, and *any* anomaly
// on the read side — missing file, truncation, checksum mismatch, version
// mismatch, malformed body — is a cache miss, never a crash. The store is
// best-effort by design: an unwritable directory degrades to cache-off.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "solver/pipeline.h"
#include "tasks/fingerprint.h"
#include "tasks/task.h"
#include "topology/subdivision.h"

namespace trichroma::io {

/// Store-level schema: first token of every file the store writes. Bump on
/// any container-format change so old stores read as misses.
inline constexpr char kStoreSchema[] = "trichroma.store/1";

/// Verdict-record body format version (inside the container). v2 added the
/// budget knobs the record was produced under, so a sibling scan can tell
/// which stored run differs from the live one in `--max-radius` alone.
inline constexpr char kVerdictRecordSchema[] = "trichroma.verdict-record/3";

/// Digest of the budget fields + resolved schedule a verdict depends on.
/// 16 hex characters (FNV-1a 64 over a canonical rendering).
std::string options_digest(const SolvabilityOptions& options,
                           const std::string& resolved_schedule);

/// The budget knobs a verdict record was produced under (record schema v2).
/// Together with the resolved schedule (stored in the report slice) these
/// reconstruct the record's options digest — the warm-start sibling scan
/// compares them field by field against the live budget instead.
struct VerdictRecordBudget {
  int max_radius = 0;
  std::uint64_t node_cap = 0;
  bool use_characterization = true;
  bool reuse_subdivisions = true;
  bool reuse_images = true;
};

/// One stored verdict record found by the fingerprint-scoped sibling scan.
struct SiblingVerdict {
  std::string opt_digest;       ///< digest the record is keyed under
  VerdictRecordBudget budget;   ///< budget knobs it was produced under
  PipelineReport report;        ///< record-carried report slice
};

/// FNV-1a 64-bit (exposed for tests).
std::uint64_t fnv1a64(const void* data, std::size_t size);

class VerdictStore {
 public:
  /// Opens (lazily creates) a store rooted at `root`. Never throws; a
  /// hostile root simply makes every operation return false.
  explicit VerdictStore(std::string root);

  const std::string& root() const { return root_; }

  /// `<root>/<fp[0:2]>/<fp>` — the entry directory for one task class.
  std::string entry_dir(const TaskFingerprint& fp) const;

  /// Loads the verdict record for (fp, options_digest). On hit, overwrites
  /// the record-carried fields of `report` (task shape, schedule, verdict,
  /// reason, radius, characterization markers, engines; wall clocks and
  /// executor stats zeroed) and returns true. Options and cache fields of
  /// `report` are left to the caller. Any anomaly returns false.
  bool load_verdict(const TaskFingerprint& fp, const std::string& opt_digest,
                    PipelineReport* report) const;

  /// Atomically publishes the verdict record for (fp, options_digest),
  /// stamped with the budget knobs it was produced under. Returns false
  /// (without throwing) on any I/O failure.
  bool store_verdict(const TaskFingerprint& fp, const std::string& opt_digest,
                     const PipelineReport& report,
                     const VerdictRecordBudget& budget = {}) const;

  /// Enumerates every readable verdict record in the task's entry directory
  /// across options digests, in digest order. Unreadable or stale-format
  /// records are silently skipped; a missing entry yields an empty vector.
  /// This is the warm-start sibling scan: on a verdict miss the pipeline
  /// looks here for a stored run that differs from the live budget in
  /// `max_radius` alone.
  std::vector<SiblingVerdict> scan_siblings(const TaskFingerprint& fp) const;

  /// Raw artifact plumbing. `name` is a flat file label ("ladder.levels");
  /// bodies are wrapped in the same checksummed container as records.
  bool store_artifact(const TaskFingerprint& fp, const std::string& name,
                      const std::string& body) const;
  bool load_artifact(const TaskFingerprint& fp, const std::string& name,
                     std::string* body) const;

  /// Bytes successfully written through this handle (records + artifacts,
  /// container headers included) — the `cache.store_bytes` counter source.
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  /// Store-wide accounting for `trichroma cache stats`.
  struct Stats {
    std::uint64_t entries = 0;          ///< task entry directories
    std::uint64_t verdict_records = 0;
    std::uint64_t verdict_bytes = 0;
    std::uint64_t artifact_files = 0;
    std::uint64_t artifact_bytes = 0;
    std::uint64_t other_files = 0;      ///< stray temp/foreign files
    std::uint64_t other_bytes = 0;
    std::uint64_t total_bytes() const {
      return verdict_bytes + artifact_bytes + other_bytes;
    }
  };

  /// Walks the store and counts files/bytes per kind. Never throws; an
  /// unreadable root yields all-zero stats.
  Stats stats() const;

  struct PruneResult {
    std::uint64_t evicted_entries = 0;
    std::uint64_t evicted_bytes = 0;
    std::uint64_t remaining_bytes = 0;
  };

  /// Evicts whole task entries, least-recently-written first, until the
  /// store holds at most `max_bytes`. Eviction is entry-granular by design:
  /// a verdict record and the artifacts it warm-starts from live in the
  /// same entry directory, so no surviving verdict is ever stranded without
  /// its artifacts. Never throws.
  PruneResult prune(std::uint64_t max_bytes) const;

 private:
  bool write_file(const std::string& dir, const std::string& filename,
                  const std::string& contents) const;

  std::string root_;
  // Atomic so concurrent pipelines may share one handle; all other state is
  // immutable after construction.
  mutable std::atomic<std::uint64_t> bytes_written_{0};
};

// --- record/artifact codecs, exposed for tests ----------------------------

/// Wraps `body` in the store container: schema + kind line, length +
/// checksum line, then the body bytes verbatim.
std::string wrap_record(const std::string& kind, const std::string& body);

/// Validates a container of the given kind; extracts the body. False on
/// any mismatch (schema, kind, length, checksum).
bool unwrap_record(const std::string& file_contents, const std::string& kind,
                   std::string* body);

/// Serializes the deterministic slice of a report (plus the budget knobs it
/// was produced under) as a verdict-record body.
std::string serialize_verdict_record(const PipelineReport& report,
                                     const VerdictRecordBudget& budget = {});

/// Parses a verdict-record body. False on version mismatch or malformed
/// fields; on success overwrites the record-carried fields of `report` and,
/// when `budget` is non-null, the stored budget knobs.
bool parse_verdict_record(const std::string& body, PipelineReport* report,
                          VerdictRecordBudget* budget = nullptr);

/// Serializes ladder levels Ch^1..Ch^R of `task`'s input complex relative
/// to `labeling`'s canonical index space. `levels[r]` must be Ch^r
/// (levels[0], the identity subdivision, is derivable and not serialized).
/// Format v2: each level's rows are written in the writer's intern order
/// (ascending vertex id), so a same-task load re-interns every subdivision
/// vertex in exactly the cold build order — the warm-start determinism
/// contract. View/carrier/facet ordinals are canonical (prev-level row
/// index resp. base index), so the body still loads against any
/// chromatically isomorphic task.
std::string serialize_ladder_levels(
    const Task& task, const CanonicalLabeling& labeling,
    const std::vector<std::shared_ptr<const SubdividedComplex>>& levels);

/// Number of levels a ladder-levels body records (counting the implicit
/// level 0); 0 on a malformed header. The artifact depth ratchet: a stored
/// tower is only overwritten by a strictly deeper one.
std::size_t ladder_levels_count(const std::string& body);

/// Reconstructs ladder levels against `task` (any task chromatically
/// isomorphic to the serializer's, with `labeling` ITS canonical labeling).
/// Interns subdivision vertices into task.pool with exactly the encoding
/// subdivide_once uses, so the result is facet-for-facet equal to a cold
/// chromatic_subdivision of this task. `out[0]` is the identity
/// subdivision; false on any malformed input. At most `max_levels` levels
/// are materialized (a deeper stored tower is truncated, not rejected —
/// interning vertices beyond the live budget would perturb pool state).
bool load_ladder_levels(const Task& task, const CanonicalLabeling& labeling,
                        const std::string& body,
                        std::vector<SubdividedComplex>* out,
                        std::size_t max_levels = SIZE_MAX);

/// Serializes the Δ carrier map in canonical index space.
std::string serialize_delta_images(const Task& task,
                                   const CanonicalLabeling& labeling);

/// Reconstructs Δ rows against an isomorphic task: (domain simplex, image
/// facets) pairs over `task`'s own vertex ids.
bool load_delta_images(
    const Task& task, const CanonicalLabeling& labeling,
    const std::string& body,
    std::vector<std::pair<Simplex, std::vector<Simplex>>>* out);

}  // namespace trichroma::io
