#include "io/task_format.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace trichroma::io {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // comment until end of line
    tokens.push_back(tok);
  }
  return tokens;
}

bool is_integer(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

/// Parses `P<color>:<value>` into an interned vertex with the given tag.
VertexId parse_vertex(VertexPool& pool, const std::string& token,
                      const std::string& tag, int num_processes, int line) {
  if (token.size() < 4 || token[0] != 'P') {
    throw ParseError(line, "expected P<color>:<value>, got '" + token + "'");
  }
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos || colon < 2) {
    throw ParseError(line, "missing ':' in vertex '" + token + "'");
  }
  const std::string color_str = token.substr(1, colon - 1);
  if (!is_integer(color_str)) {
    throw ParseError(line, "bad color in vertex '" + token + "'");
  }
  const int color = std::stoi(color_str);
  if (color < 0 || color >= num_processes) {
    throw ParseError(line, "color out of range in vertex '" + token + "'");
  }
  const std::string value = token.substr(colon + 1);
  if (value.empty()) {
    throw ParseError(line, "empty value in vertex '" + token + "'");
  }
  ValuePool& vals = pool.values();
  const ValueId payload =
      is_integer(value) ? vals.of_int(std::stoll(value)) : vals.of_string(value);
  return pool.vertex(static_cast<Color>(color),
                     vals.of_tuple({vals.of_string(tag), payload}));
}

Simplex parse_simplex(VertexPool& pool, const std::vector<std::string>& tokens,
                      std::size_t begin, std::size_t end, const std::string& tag,
                      int num_processes, int line) {
  std::vector<VertexId> vertices;
  for (std::size_t i = begin; i < end; ++i) {
    vertices.push_back(parse_vertex(pool, tokens[i], tag, num_processes, line));
  }
  if (vertices.empty()) throw ParseError(line, "empty simplex");
  return Simplex(std::move(vertices));
}

}  // namespace

Task parse_task(const std::string& text) {
  Task task;
  task.pool = std::make_shared<VertexPool>();
  task.num_processes = 0;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_task = false;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "task") {
      if (tokens.size() != 2) throw ParseError(line_no, "task expects one name");
      task.name = tokens[1];
      saw_task = true;
    } else if (keyword == "processes") {
      if (tokens.size() != 2 || !is_integer(tokens[1])) {
        throw ParseError(line_no, "processes expects one integer");
      }
      task.num_processes = std::stoi(tokens[1]);
      if (task.num_processes < 1 || task.num_processes > 8) {
        throw ParseError(line_no, "process count out of range");
      }
    } else if (keyword == "input") {
      if (task.num_processes == 0) {
        throw ParseError(line_no, "'processes' must precede 'input'");
      }
      task.input.add(parse_simplex(*task.pool, tokens, 1, tokens.size(), "in",
                                   task.num_processes, line_no));
    } else if (keyword == "delta") {
      if (task.num_processes == 0) {
        throw ParseError(line_no, "'processes' must precede 'delta'");
      }
      // delta <in simplex> -> <out simplex> [| <out simplex> ...]
      std::size_t arrow = 0;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (tokens[i] == "->") arrow = i;
      }
      if (arrow == 0) throw ParseError(line_no, "delta line missing '->'");
      const Simplex input = parse_simplex(*task.pool, tokens, 1, arrow, "in",
                                          task.num_processes, line_no);
      if (!task.input.contains(input)) {
        throw ParseError(line_no,
                         "delta's input simplex is not part of the input "
                         "complex (declare its facet with 'input' first)");
      }
      std::size_t begin = arrow + 1;
      std::vector<Simplex> images;
      for (std::size_t i = begin; i <= tokens.size(); ++i) {
        if (i == tokens.size() || tokens[i] == "|") {
          if (i == begin) throw ParseError(line_no, "empty image simplex");
          Simplex image = parse_simplex(*task.pool, tokens, begin, i, "out",
                                        task.num_processes, line_no);
          if (image.size() != input.size()) {
            throw ParseError(line_no, "image dimension differs from input's");
          }
          task.output.add(image);
          images.push_back(std::move(image));
          begin = i + 1;
        }
      }
      for (const Simplex& im : images) task.delta.add(input, im);
    } else {
      throw ParseError(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_task) throw ParseError(line_no, "missing 'task' header");
  if (task.input.empty()) throw ParseError(line_no, "no input facets");
  return task;
}

namespace {

/// Renders a vertex as a format token. Tagged ("in"/"out") payloads print
/// verbatim; anything else falls back to the raw vertex id.
std::string vertex_token(const VertexPool& pool, VertexId v) {
  const ValuePool& vals = pool.values();
  std::string out = "P" + std::to_string(pool.color(v)) + ":";
  const ValueId val = pool.value(v);
  if (vals.kind(val) == ValuePool::Kind::Tuple) {
    const auto elems = vals.elements(val);
    if (elems.size() == 2 && vals.kind(elems[0]) == ValuePool::Kind::Str) {
      if (vals.kind(elems[1]) == ValuePool::Kind::Int) {
        return out + std::to_string(vals.as_int(elems[1]));
      }
      if (vals.kind(elems[1]) == ValuePool::Kind::Str) {
        return out + vals.as_string(elems[1]);
      }
    }
  }
  return out + "v" + std::to_string(raw(v));
}

std::string simplex_tokens(const VertexPool& pool, const Simplex& s) {
  // Order by color so the rendering is independent of interning order
  // (serialize ∘ parse is then a fixed point).
  std::vector<VertexId> verts = s.vertices();
  std::sort(verts.begin(), verts.end(), [&](VertexId a, VertexId b) {
    return pool.color(a) < pool.color(b);
  });
  std::string out;
  for (std::size_t i = 0; i < verts.size(); ++i) {
    if (i > 0) out += " ";
    out += vertex_token(pool, verts[i]);
  }
  return out;
}

}  // namespace

std::string serialize_task(const Task& task) {
  const VertexPool& pool = *task.pool;
  std::string out;
  std::string name = task.name.empty() ? "unnamed" : task.name;
  for (char& c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) c = '-';
  }
  out += "task " + name + "\n";
  out += "processes " + std::to_string(task.num_processes) + "\n";
  for (const Simplex& f : task.input.facets()) {
    out += "input " + simplex_tokens(pool, f) + "\n";
  }
  for (const Simplex& tau : task.delta.domain()) {
    const auto& images = task.delta.facet_images(tau);
    if (images.empty()) continue;
    out += "delta " + simplex_tokens(pool, tau) + " ->";
    for (std::size_t i = 0; i < images.size(); ++i) {
      if (i > 0) out += " |";
      out += " " + simplex_tokens(pool, images[i]);
    }
    out += "\n";
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string to_dot(const VertexPool& pool, const SimplicialComplex& complex,
                   const std::string& graph_name) {
  static const char* kPalette[] = {"lightcoral", "lightskyblue", "palegreen",
                                   "gold",       "plum",         "khaki"};
  std::string out = "graph \"" + graph_name + "\" {\n";
  out += "  // triangles:\n";
  for (const Simplex& t : complex.simplices(2)) {
    out += "  // " + t.to_string(pool) + "\n";
  }
  out += "  node [style=filled];\n";
  for (VertexId v : complex.vertex_ids()) {
    const int c = pool.color(v) < 0 ? 5 : pool.color(v) % 5;
    out += "  v" + std::to_string(raw(v)) + " [label=\"" + pool.name(v) +
           "\", fillcolor=" + kPalette[c] + "];\n";
  }
  for (const Simplex& e : complex.simplices(1)) {
    out += "  v" + std::to_string(raw(e[0])) + " -- v" + std::to_string(raw(e[1])) +
           ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace trichroma::io
