#pragma once
// Text format for tasks: parse and serialize (I, O, Δ) triples.
//
// The format is line-oriented; `#` starts a comment. A task is:
//
//     task <name>
//     processes <n>
//     input <simplex>            # one per input facet (closure is implied)
//     delta <simplex> -> <simplex> [| <simplex> ...]
//
// where <simplex> is a space-separated list of `P<color>:<value>` vertices,
// e.g. `P0:0 P1:1 P2:x`. Values are integers or bare identifiers. Δ must be
// given for every input simplex (every dimension); the output complex is
// derived as the closure of all images (the reachable part). Example:
//
//     task binary-consensus-2
//     processes 2
//     input P0:0 P1:0
//     input P0:0 P1:1
//     delta P0:0 -> P0:d0
//     delta P0:0 P1:1 -> P0:d0 P1:d0 | P0:d1 P1:d1
//     ...
//
// Parsing reports precise line numbers on errors. Round-tripping through
// serialize/parse preserves the task up to vertex renaming (values are kept
// verbatim).

#include <stdexcept>
#include <string>

#include "tasks/task.h"

namespace trichroma::io {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses a task description. Throws ParseError on malformed input. The
/// returned task owns a fresh VertexPool; input vertices get ("in", value)
/// payloads and output vertices ("out", value) payloads, matching the zoo's
/// conventions.
Task parse_task(const std::string& text);

/// Serializes a task into the text format (inverse of parse_task up to
/// formatting). Requires every vertex value to be a tagged ("in"/"out")
/// int or string, which holds for parsed and zoo tasks; other tasks are
/// serialized with a positional fallback naming.
std::string serialize_task(const Task& task);

/// Reads a whole file; convenience for the CLI.
std::string read_file(const std::string& path);

/// GraphViz (DOT) rendering of a 2-dimensional complex: vertices labeled
/// and colored by process id, edges drawn once; triangles listed in a
/// comment header (DOT has no native 2-cells).
std::string to_dot(const VertexPool& pool, const SimplicialComplex& complex,
                   const std::string& graph_name);

}  // namespace trichroma::io
