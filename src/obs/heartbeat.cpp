#include "obs/heartbeat.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include <filesystem>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace trichroma::obs {

namespace fs = std::filesystem;

void atomic_write_file(const std::string& path, const std::string& content) {
  // Sibling temp name: rename(2) is only atomic within a filesystem, so the
  // staging file must live next to the target. The per-process sequence
  // keeps concurrent writers (heartbeat thread + final flush on the main
  // thread, or a forked child) from clobbering each other's staging files.
  static std::atomic<std::uint64_t> seq{0};
  const fs::path target(path);
  const fs::path dir = target.has_parent_path() ? target.parent_path() : fs::path(".");
#if defined(__linux__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  const fs::path tmp =
      dir / (".tmp-" + std::to_string(pid) + "-" +
             std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) + "-" +
             target.filename().string());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("atomic_write_file: cannot open " + tmp.string());
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::error_code ignored;
      fs::remove(tmp, ignored);
      throw std::runtime_error("atomic_write_file: short write to " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw std::runtime_error("atomic_write_file: rename to " + path + " failed: " +
                             ec.message());
  }
}

std::uint64_t resident_set_bytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt, in pages.
  std::ifstream statm("/proc/self/statm");
  std::uint64_t size_pages = 0, resident_pages = 0;
  if (!(statm >> size_pages >> resident_pages)) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

PeriodicSnapshotWriter::PeriodicSnapshotWriter(std::string path, double interval_s,
                                               std::function<std::string()> body)
    : path_(std::move(path)),
      interval_(std::chrono::nanoseconds(
          std::max<std::int64_t>(1'000'000,  // 1ms floor: 0 would spin
                                 static_cast<std::int64_t>(interval_s * 1e9)))),
      body_(std::move(body)) {
  thread_ = std::thread([this] { loop(); });
}

PeriodicSnapshotWriter::~PeriodicSnapshotWriter() { stop(); }

void PeriodicSnapshotWriter::write_now() {
  atomic_write_file(path_, body_());
  writes_.fetch_add(1, std::memory_order_relaxed);
}

void PeriodicSnapshotWriter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final flush so a finished run's file reflects its end state. Failures
  // are swallowed: monitoring must never take down the monitored run.
  try {
    write_now();
  } catch (const std::exception&) {
  }
}

void PeriodicSnapshotWriter::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) return;
    lock.unlock();
    try {
      write_now();
    } catch (const std::exception&) {
      // Transient I/O failure (full disk, vanished directory): keep ticking.
    }
    lock.lock();
  }
}

std::string render_heartbeat(std::uint64_t seq, std::uint64_t uptime_ms,
                             const HeartbeatProgress& progress,
                             const MetricsRegistry& registry) {
  std::string out = "{\n  \"schema\": \"trichroma.heartbeat/1\",\n";
  out += "  \"seq\": " + std::to_string(seq) + ",\n";
  out += "  \"uptime_ms\": " + std::to_string(uptime_ms) + ",\n";
  out += "  \"rss_bytes\": " + std::to_string(resident_set_bytes()) + ",\n";
  out += "  \"progress\": { \"done\": " + std::to_string(progress.done) +
         ", \"total\": " + std::to_string(progress.total) + " },\n";
  // Inline the registry document, re-indented two spaces; it already ends
  // with "}\n", so the heartbeat's closing brace lands on its own line.
  out += "  \"metrics\": ";
  const std::string metrics = registry.to_json();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out.push_back(metrics[i]);
    if (metrics[i] == '\n' && i + 1 < metrics.size()) out += "  ";
  }
  out += "}\n";
  return out;
}

HeartbeatWriter::HeartbeatWriter(std::string path, double interval_s,
                                 std::function<HeartbeatProgress()> progress,
                                 const MetricsRegistry& registry)
    : start_(std::chrono::steady_clock::now()),
      writer_(std::move(path), interval_s,
              [this, progress = std::move(progress), &registry] {
                const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start_);
                return render_heartbeat(
                    seq_.fetch_add(1, std::memory_order_relaxed) + 1,
                    static_cast<std::uint64_t>(uptime.count()),
                    progress ? progress() : HeartbeatProgress{}, registry);
              }) {}

}  // namespace trichroma::obs
