#pragma once
// Long-run liveness snapshots: a background thread that periodically renders
// a JSON document and publishes it with a rename-atomic write, so an
// hour-long batch can be monitored mid-flight (`tail`/`jq` the file) and a
// SIGKILLed run still leaves a valid, parseable snapshot — readers can never
// observe a torn file, only the previous complete one.
//
// Two layers:
//   * PeriodicSnapshotWriter — the generic interval thread + atomic
//     publication. The body callback runs on the writer thread; it must be
//     safe to call concurrently with the instrumented workload (the registry
//     snapshots are, being relaxed-atomic reads under the registry mutex).
//     Also reused for `batch --trace-dir` metrics.json, which previously
//     appeared only at the end of the run.
//   * HeartbeatWriter — the batch heartbeat body: schema'd JSON with a
//     monotonic sequence number, uptime, resident-set size, caller-supplied
//     progress (tasks done / total) and the full metrics registry snapshot.
//
// Heartbeat document (schema trichroma.heartbeat/1):
//   {
//     "schema": "trichroma.heartbeat/1",
//     "seq": 3,                // ticks written, 1-based; final flush included
//     "uptime_ms": 12345,
//     "rss_bytes": 104857600,  // 0 where /proc/self/statm is unavailable
//     "progress": { "done": 17, "total": 21 },
//     "metrics": { ...MetricsRegistry::to_json() document, inlined... }
//   }
//
// Nothing here is deterministic and nothing feeds back into reports; the
// obs layer stays dependency-free (no io/, no solver/).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace trichroma::obs {

/// Writes `content` to `path` atomically: the bytes land in a sibling
/// temporary file (".tmp-<pid>-<unique>") which is then renamed over `path`.
/// rename(2) within a directory is atomic, so readers see either the old
/// complete file or the new one, never a prefix. Throws std::runtime_error
/// on I/O failure.
void atomic_write_file(const std::string& path, const std::string& content);

/// Resident-set size of the calling process in bytes, read from
/// /proc/self/statm; 0 on platforms without it.
std::uint64_t resident_set_bytes();

/// Interval thread that publishes `body()` to `path` atomically every
/// `interval_s` seconds, plus one final flush from stop()/the destructor —
/// so the file always reflects the end state of a run that finished, and
/// the last completed tick of one that was killed.
class PeriodicSnapshotWriter {
 public:
  /// Starts the thread immediately; the first write happens after one
  /// interval (call write_now() for an eager initial snapshot). `interval_s`
  /// is clamped to at least 1ms.
  PeriodicSnapshotWriter(std::string path, double interval_s,
                         std::function<std::string()> body);
  ~PeriodicSnapshotWriter();

  PeriodicSnapshotWriter(const PeriodicSnapshotWriter&) = delete;
  PeriodicSnapshotWriter& operator=(const PeriodicSnapshotWriter&) = delete;

  /// Renders and publishes one snapshot on the calling thread.
  void write_now();

  /// Stops the interval thread and publishes one final snapshot.
  /// Idempotent; also run by the destructor. Write failures during ticks
  /// and the final flush are swallowed (a heartbeat must never take down
  /// the run it is monitoring).
  void stop();

  /// Ticks successfully published so far (including write_now calls).
  std::uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 private:
  void loop();

  const std::string path_;
  const std::chrono::nanoseconds interval_;
  const std::function<std::string()> body_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::atomic<std::uint64_t> writes_{0};
  std::thread thread_;
};

/// Caller-supplied progress for a heartbeat: tasks completed vs. scheduled.
struct HeartbeatProgress {
  std::uint64_t done = 0;
  std::uint64_t total = 0;
};

/// Renders one heartbeat document (see the header comment) from the given
/// registry. Split out from HeartbeatWriter so tests can exercise the body
/// against a private registry, and so forked children can render without
/// touching the parent's (possibly mid-lock) global registry.
std::string render_heartbeat(std::uint64_t seq, std::uint64_t uptime_ms,
                             const HeartbeatProgress& progress,
                             const MetricsRegistry& registry);

/// The batch heartbeat: a PeriodicSnapshotWriter whose body is
/// render_heartbeat over the global registry plus a caller-owned progress
/// callback (read on the writer thread — return values from atomics).
class HeartbeatWriter {
 public:
  HeartbeatWriter(std::string path, double interval_s,
                  std::function<HeartbeatProgress()> progress,
                  const MetricsRegistry& registry = MetricsRegistry::global());

  /// Final flush + thread join; idempotent.
  void stop() { writer_.stop(); }
  std::uint64_t writes() const { return writer_.writes(); }

 private:
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> seq_{0};
  PeriodicSnapshotWriter writer_;
};

}  // namespace trichroma::obs
