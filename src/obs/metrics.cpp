#include "obs/metrics.h"

namespace trichroma::obs {

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: worker threads may bump counters during static
  // destruction (the executor's global pool is leaked for the same reason).
  static MetricsRegistry* instance = new MetricsRegistry;
  return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  // std::map iterates in key order, so the snapshot is already sorted.
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
}

std::string MetricsRegistry::to_json() const {
  const auto counters = snapshot();
  std::string out = "{\n  \"schema\": \"trichroma.metrics/1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(value);
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace trichroma::obs
