#include "obs/metrics.h"

#include <stdexcept>

namespace trichroma::obs {

namespace {

/// Buckets after the last non-zero one carry no information (boundaries are
/// fixed), so renderers emit the prefix only. Returns the count of buckets
/// to render; at least 1 so empty histograms still show a bucket.
std::size_t trimmed_buckets(const HistogramSnapshot& h) {
  std::size_t n = Histogram::kBuckets;
  while (n > 1 && h.buckets[n - 1] == 0) --n;
  return n;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: worker threads may bump counters during static
  // destruction (the executor's global pool is leaked for the same reason).
  static MetricsRegistry* instance = new MetricsRegistry;
  return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0)
    throw std::logic_error("metrics: '" + name +
                           "' already registered as another instrument kind");
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0)
    throw std::logic_error("metrics: '" + name +
                           "' already registered as another instrument kind");
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0)
    throw std::logic_error("metrics: '" + name +
                           "' already registered as another instrument kind");
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  // std::map iterates in key order, so the snapshot is already sorted.
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::snapshot_gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::snapshot_histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot snap;
    snap.count = hist->count();
    snap.sum = hist->sum();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
      snap.buckets[i] = hist->bucket(i);
    out.emplace_back(name, snap);
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

std::string MetricsRegistry::to_json() const {
  const auto counters = snapshot();
  const auto gauges = snapshot_gauges();
  const auto histograms = snapshot_histograms();
  std::string out = "{\n  \"schema\": \"trichroma.metrics/2\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": { \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) + ", \"buckets\": [";
    const std::size_t n = trimmed_buckets(h);
    for (std::size_t i = 0; i < n; ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "] }";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string prometheus_name(const std::string& path) {
  std::string out = "trichroma_";
  out.reserve(out.size() + path.size());
  for (char c : path) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

/// Claims `metric` for the instrument at `path`, failing loudly when a
/// previously claimed instrument sanitized to the same series name —
/// silently merging two counters would corrupt both.
void claim(std::map<std::string, std::string>& claimed, const std::string& metric,
           const std::string& path) {
  auto [it, inserted] = claimed.emplace(metric, path);
  if (!inserted && it->second != path)
    throw std::runtime_error("to_prometheus: name collision: '" + it->second +
                             "' and '" + path + "' both map to '" + metric + "'");
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  const auto counters = snapshot();
  const auto gauges = snapshot_gauges();
  const auto histograms = snapshot_histograms();

  // Claim every emitted series name up front so a collision aborts before
  // any partial text is produced. Histograms claim their synthesized
  // _bucket/_sum/_count series too: a counter named "x_sum" colliding with
  // a histogram named "x" is just as much a merge hazard.
  std::map<std::string, std::string> claimed;
  for (const auto& [path, value] : counters) {
    (void)value;
    claim(claimed, prometheus_name(path), path);
  }
  for (const auto& [path, value] : gauges) {
    (void)value;
    claim(claimed, prometheus_name(path), path);
  }
  for (const auto& [path, h] : histograms) {
    (void)h;
    const std::string base = prometheus_name(path);
    claim(claimed, base, path);
    claim(claimed, base + "_bucket", path);
    claim(claimed, base + "_sum", path);
    claim(claimed, base + "_count", path);
  }

  std::string out;
  for (const auto& [path, value] : counters) {
    const std::string name = prometheus_name(path);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [path, value] : gauges) {
    const std::string name = prometheus_name(path);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [path, h] : histograms) {
    const std::string name = prometheus_name(path);
    out += "# TYPE " + name + " histogram\n";
    // Cumulative buckets, trimmed after the last non-zero finite bucket
    // (fixed boundaries make the omitted tail redundant); the +Inf bucket is
    // mandatory and always equals _count.
    std::uint64_t cumulative = 0;
    const std::size_t n = trimmed_buckets(h);
    for (std::size_t i = 0; i < n && i < Histogram::kFiniteBuckets; ++i) {
      cumulative += h.buckets[i];
      out += name + "_bucket{le=\"" +
             std::to_string(Histogram::bucket_upper_bound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace trichroma::obs
