#pragma once
// Process-wide metrics: a registry of named monotonic counters, gauges and
// log-bucketed histograms the solver layers report into as they work (cache
// hits, subdivisions built, CSP domain sizes, job latencies, ...). All three
// instrument kinds share the interned-reference idiom: look the instrument up
// once by its dotted path (the reference stays valid for the registry's
// lifetime), then record through plain relaxed atomics — always on, cheap
// enough for warm paths; genuinely hot paths batch locally and flush once
// (see map_search.cpp's per-CSP domain histogram).
//
// Naming scheme: dotted lower-case paths, layer first —
//   executor.*      the work-stealing pool (also exposed as ExecutorStats)
//   map_search.*    find_decision_map (prefix jobs, cap hits, nodes)
//   search.*        search-shape distributions (CSP domain sizes, ...)
//   pipeline.*      lane scheduling, engine outcomes, run latencies
//   topology.*      substrate builds (subdivide, compile, lap scans)
//   ladder.*        subdivision-ladder shape (per-level facet counts)
//   cache.*         DeltaImageCache images/masks and the verdict store
//   batch.*         the batch driver
// Trace span names use slash-separated paths instead ("map_search/prefix");
// the dot/slash split keeps counter tracks and timeline spans visually
// distinct in Perfetto.
//
// Histogram determinism: buckets are fixed base-2 boundaries (upper bound of
// bucket i is 2^i), so the bucket vector is a pure function of the recorded
// multiset — recording the same values in any order, from any number of
// threads, yields identical counts (relaxed adds commute). That is what lets
// count-valued histograms (domain sizes, ladder level sizes) be re-derived
// deterministically for reports; see Histogram::bucket_index.
//
// Determinism boundary: *registry* values never feed back into solver
// decisions and never enter the deterministic report fields; they surface
// only through `--metrics`, `batch --trace-dir` metrics.json, heartbeats and
// the trace export's metadata event. The deterministic histograms embedded
// in reports (report.h) are accumulated separately inside the engines and
// merely reuse Histogram::bucket_index for identical bucketing.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace trichroma::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time level (queue depth, resident set, ...). Last write wins;
/// no aggregation beyond that, so gauges are pure observability.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-boundary base-2 log histogram over non-negative integer samples.
/// Bucket i < kFiniteBuckets holds samples with value <= 2^i (cumulatively:
/// the first bucket whose upper bound admits the value); the last bucket is
/// the +Inf overflow. Record is a handful of relaxed fetch_adds — lock-free,
/// wait-free, and order-independent, so identical sample multisets produce
/// identical snapshots at every thread count.
class Histogram {
 public:
  static constexpr std::size_t kFiniteBuckets = 32;   // upper bounds 2^0..2^31
  static constexpr std::size_t kBuckets = kFiniteBuckets + 1;  // + the +Inf bucket

  /// The bucket `value` lands in: 0 for value <= 1, otherwise the smallest i
  /// with value <= 2^i, clamped to the +Inf bucket. Pure function — shared
  /// with the deterministic report rollups so registry histograms and report
  /// histograms bucket identically.
  static constexpr std::size_t bucket_index(std::uint64_t value) {
    if (value <= 1) return 0;
    const std::size_t i = static_cast<std::size_t>(std::bit_width(value - 1));
    return i < kFiniteBuckets ? i : kFiniteBuckets;
  }

  /// Upper bound of finite bucket i (2^i). The +Inf bucket has no finite
  /// bound; callers render it as "+Inf".
  static constexpr std::uint64_t bucket_upper_bound(std::size_t i) {
    return std::uint64_t{1} << i;
  }

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Bulk merge of a locally accumulated bucket vector (hot paths tally into
  /// a plain array and flush once, paying kBuckets adds per flush instead of
  /// three per sample). `bucket_counts[i]` samples land in bucket i; `sum`
  /// and `count` are the corresponding value total and sample count.
  void merge(const std::array<std::uint64_t, kBuckets>& bucket_counts,
             std::uint64_t count, std::uint64_t sum) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (bucket_counts[i] != 0)
        buckets_[i].fetch_add(bucket_counts[i], std::memory_order_relaxed);
    }
    sum_.fetch_add(sum, std::memory_order_relaxed);
    count_.fetch_add(count, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Point-in-time copy of one histogram, for rendering.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
};

class MetricsRegistry {
 public:
  /// The process-wide registry every layer reports into.
  static MetricsRegistry& global();

  /// The counter named `name`, created on first use. The reference stays
  /// valid for the registry's lifetime — cache it on hot paths.
  Counter& counter(const std::string& name);

  /// The gauge named `name`, created on first use (same lifetime contract).
  Gauge& gauge(const std::string& name);

  /// The histogram named `name`, created on first use (same lifetime
  /// contract). A name registered as one instrument kind cannot be reused
  /// as another; that throws std::logic_error at lookup.
  Histogram& histogram(const std::string& name);

  /// All counters, sorted by name (deterministic rendering order).
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;
  /// All gauges, sorted by name.
  std::vector<std::pair<std::string, std::int64_t>> snapshot_gauges() const;
  /// All histograms, sorted by name.
  std::vector<std::pair<std::string, HistogramSnapshot>> snapshot_histograms()
      const;

  /// Zeroes every instrument (all stay registered).
  void reset();

  /// {"schema": "trichroma.metrics/2", "counters": {...}, "gauges": {...},
  ///  "histograms": {name: {"count", "sum", "buckets": [...]}, ...}},
  /// names sorted, pretty-printed, trailing newline. Histogram bucket arrays
  /// are trimmed after the last non-zero bucket (the boundaries are fixed,
  /// so the prefix is self-describing).
  std::string to_json() const;

  /// Prometheus text exposition (version 0.0.4) of every instrument.
  /// Dotted/hyphenated paths are sanitized to `trichroma_`-prefixed metric
  /// names ([a-zA-Z0-9_] with every other byte mapped to '_'); histograms
  /// render the conventional cumulative `_bucket{le="..."}` series plus
  /// `_sum` and `_count`. Two distinct instrument names that sanitize to the
  /// same metric name — or to colliding `_bucket`/`_sum`/`_count` series —
  /// throw std::runtime_error naming both, instead of silently merging.
  std::string to_prometheus() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// `path` sanitized into a Prometheus metric name: "trichroma_" + the path
/// with every byte outside [a-zA-Z0-9_] replaced by '_'. Exposed for the
/// lint tooling and tests.
std::string prometheus_name(const std::string& path);

}  // namespace trichroma::obs
