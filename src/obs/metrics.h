#pragma once
// Process-wide metrics: a registry of named monotonic counters the solver
// layers bump as they work (cache hits, subdivisions built, prefix jobs
// dispatched, ...). Counters are plain relaxed atomics — always on, cheap
// enough for warm paths; callers on genuinely hot paths cache the Counter&
// once (the reference stays valid for the registry's lifetime) instead of
// paying the name lookup per event.
//
// Naming scheme: dotted lower-case paths, layer first —
//   executor.*      the work-stealing pool (also exposed as ExecutorStats)
//   map_search.*    find_decision_map (prefix jobs, cap hits, nodes)
//   pipeline.*      lane scheduling and engine outcomes
//   topology.*      substrate builds (subdivide, compile, lap scans)
//   cache.*         DeltaImageCache images and edge-mask memo
//   batch.*         the batch driver
// Trace span names use slash-separated paths instead ("map_search/prefix");
// the dot/slash split keeps counter tracks and timeline spans visually
// distinct in Perfetto.
//
// Determinism boundary: registry values never feed back into solver
// decisions and never enter the deterministic report fields; they surface
// only through `trichroma batch --trace-dir` metrics.json and the trace
// export's metadata event.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace trichroma::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry every layer reports into.
  static MetricsRegistry& global();

  /// The counter named `name`, created on first use. The reference stays
  /// valid for the registry's lifetime — cache it on hot paths.
  Counter& counter(const std::string& name);

  /// All counters, sorted by name (deterministic rendering order).
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  /// Zeroes every counter (counters stay registered).
  void reset();

  /// {"schema": "trichroma.metrics/1", "counters": {name: value, ...}},
  /// names sorted, pretty-printed, trailing newline.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

}  // namespace trichroma::obs
