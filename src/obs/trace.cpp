#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"

namespace trichroma::obs {

namespace trace_detail {

std::atomic<bool> g_enabled{false};

namespace {
constexpr std::size_t kNameCap = 48;
}  // namespace

/// One fixed-size trace record. Names are copied (truncated to kNameCap-1)
/// so dynamically composed span names need no allocation or lifetime.
struct TraceEvent {
  char name[kNameCap];
  std::uint64_t ts_ns = 0;
  double value = 0.0;  // 'C' events only
  char phase = '?';    // 'B', 'E', 'C', 'i'
};

/// Single-producer event buffer: only the owning thread writes; the
/// exporter reads events below the released `size`. Never wraps — a full
/// buffer drops (whole spans at a time, see open_span) and counts.
struct ThreadBuffer {
  ThreadBuffer(std::size_t capacity, std::uint32_t tid)
      : events(capacity), tid(tid) {}

  std::vector<TraceEvent> events;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> generation{0};
  std::size_t reserved = 0;  // owner thread only: slots promised to open spans
  std::uint32_t tid;
};

namespace {

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<std::uint64_t> generation{1};
  std::atomic<std::uint64_t> epoch_ns{0};
  std::size_t capacity = std::size_t{1} << 16;
};

BufferRegistry& registry() {
  // Leaked on purpose: pool threads may trace during static destruction.
  static BufferRegistry* instance = new BufferRegistry;
  return *instance;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadBuffer* local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> tls;
  if (tls == nullptr) {
    BufferRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    tls = std::make_shared<ThreadBuffer>(
        reg.capacity, static_cast<std::uint32_t>(reg.buffers.size() + 1));
    reg.buffers.push_back(tls);
  }
  return tls.get();
}

/// Owner-side session check: a buffer last written under an older
/// generation starts this session empty. Owner thread only.
void refresh(ThreadBuffer* buffer) {
  const std::uint64_t gen =
      registry().generation.load(std::memory_order_acquire);
  if (buffer->generation.load(std::memory_order_relaxed) == gen) return;
  buffer->size.store(0, std::memory_order_relaxed);
  buffer->dropped.store(0, std::memory_order_relaxed);
  buffer->reserved = 0;
  buffer->generation.store(gen, std::memory_order_release);
}

/// Appends one event and publishes it (release on size pairs with the
/// exporter's acquire). Caller guarantees capacity.
void write_event(ThreadBuffer* buffer, char phase, const char* name,
                 std::uint64_t ts_ns, double value) {
  const std::size_t i = buffer->size.load(std::memory_order_relaxed);
  TraceEvent& e = buffer->events[i];
  std::snprintf(e.name, kNameCap, "%s", name);
  e.ts_ns = ts_ns;
  e.value = value;
  e.phase = phase;
  buffer->size.store(i + 1, std::memory_order_release);
}

/// Single-slot point event ('i'/'C'); drops when full.
void write_point(char phase, const char* name, double value) {
  ThreadBuffer* buffer = local_buffer();
  refresh(buffer);
  if (buffer->size.load(std::memory_order_relaxed) + buffer->reserved + 1 >
      buffer->events.size()) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  write_event(buffer, phase, name, steady_now_ns(), value);
}

std::string escape_name(const char* name) {
  std::string out;
  for (const char* p = name; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (*p == '"' || *p == '\\') {
      out += '\\';
      out += *p;
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += *p;
    }
  }
  return out;
}

}  // namespace

bool open_span(SpanHandle& handle) {
  ThreadBuffer* buffer = local_buffer();
  refresh(buffer);
  // Reserve both slots up front: the close is then guaranteed to record the
  // matching 'E' for every recorded 'B' (spans drop whole, never half).
  if (buffer->size.load(std::memory_order_relaxed) + buffer->reserved + 2 >
      buffer->events.size()) {
    buffer->dropped.fetch_add(2, std::memory_order_relaxed);
    return false;
  }
  buffer->reserved += 2;
  handle.buffer = buffer;
  handle.generation = buffer->generation.load(std::memory_order_relaxed);
  handle.start_ns = steady_now_ns();
  return true;
}

namespace {

void close_with_name(const SpanHandle& handle, const char* name) {
  ThreadBuffer* buffer = handle.buffer;
  if (buffer->generation.load(std::memory_order_relaxed) !=
      handle.generation) {
    // The session restarted while this span was open; its begin slot is
    // gone with the old generation, so recording the pair would orphan it.
    return;
  }
  if (buffer->reserved >= 2) buffer->reserved -= 2;
  write_event(buffer, 'B', name, handle.start_ns, 0.0);
  write_event(buffer, 'E', name, steady_now_ns(), 0.0);
}

}  // namespace

void close_span(const SpanHandle& handle, const char* name) {
  close_with_name(handle, name);
}

void close_span(const SpanHandle& handle, const char* prefix,
                const char* suffix) {
  char buf[kNameCap];
  std::snprintf(buf, sizeof(buf), "%s%s", prefix, suffix);
  close_with_name(handle, buf);
}

void close_span(const SpanHandle& handle, const char* prefix, long long n) {
  char buf[kNameCap];
  std::snprintf(buf, sizeof(buf), "%s%lld", prefix, n);
  close_with_name(handle, buf);
}

}  // namespace trace_detail

using trace_detail::ThreadBuffer;
using trace_detail::TraceEvent;

void trace_start(std::size_t per_thread_capacity) {
  trace_detail::BufferRegistry& reg = trace_detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.capacity = per_thread_capacity == 0 ? 1 : per_thread_capacity;
  for (const std::shared_ptr<ThreadBuffer>& buffer : reg.buffers) {
    // Safe only because sessions never overlap instrumented work in flight
    // (see trace.h): owners observe the resize through the generation bump.
    buffer->events.assign(reg.capacity, TraceEvent{});
    buffer->size.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
  reg.epoch_ns.store(trace_detail::steady_now_ns(), std::memory_order_relaxed);
  reg.generation.fetch_add(1, std::memory_order_release);
  trace_detail::g_enabled.store(true, std::memory_order_release);
}

void trace_stop() {
  trace_detail::g_enabled.store(false, std::memory_order_release);
}

std::uint64_t trace_dropped() {
  trace_detail::BufferRegistry& reg = trace_detail::registry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  const std::uint64_t gen = reg.generation.load(std::memory_order_acquire);
  std::uint64_t total = 0;
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    if (buffer->generation.load(std::memory_order_acquire) != gen) continue;
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::string trace_to_json() {
  trace_detail::BufferRegistry& reg = trace_detail::registry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  const std::uint64_t gen = reg.generation.load(std::memory_order_acquire);
  const std::uint64_t epoch = reg.epoch_ns.load(std::memory_order_relaxed);

  auto ts_us = [epoch](std::uint64_t ts_ns) {
    return ts_ns >= epoch ? static_cast<double>(ts_ns - epoch) / 1000.0 : 0.0;
  };

  std::string events;
  std::uint64_t dropped_total = 0;
  std::uint64_t last_ts_ns = epoch;
  bool first = true;
  char line[256];
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    if (buffer->generation.load(std::memory_order_acquire) != gen) continue;
    dropped_total += buffer->dropped.load(std::memory_order_relaxed);
    const std::size_t n = buffer->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = buffer->events[i];
      if (e.ts_ns > last_ts_ns) last_ts_ns = e.ts_ns;
      const std::string name = trace_detail::escape_name(e.name);
      switch (e.phase) {
        case 'C':
          std::snprintf(line, sizeof(line),
                        "    {\"name\": \"%s\", \"cat\": \"trichroma\", "
                        "\"ph\": \"C\", \"ts\": %.3f, \"pid\": 1, \"tid\": %u, "
                        "\"args\": {\"value\": %.3f}}",
                        name.c_str(), ts_us(e.ts_ns), buffer->tid, e.value);
          break;
        case 'i':
          std::snprintf(line, sizeof(line),
                        "    {\"name\": \"%s\", \"cat\": \"trichroma\", "
                        "\"ph\": \"i\", \"ts\": %.3f, \"pid\": 1, \"tid\": %u, "
                        "\"s\": \"t\"}",
                        name.c_str(), ts_us(e.ts_ns), buffer->tid);
          break;
        default:  // 'B' / 'E'
          std::snprintf(line, sizeof(line),
                        "    {\"name\": \"%s\", \"cat\": \"trichroma\", "
                        "\"ph\": \"%c\", \"ts\": %.3f, \"pid\": 1, \"tid\": %u}",
                        name.c_str(), e.phase, ts_us(e.ts_ns), buffer->tid);
      }
      events += first ? "\n" : ",\n";
      first = false;
      events += line;
    }
  }

  // Trailing metadata instant: the metrics-registry snapshot, so one file
  // carries both the timeline and the counter totals behind it.
  std::string metrics_args;
  for (const auto& [name, value] : MetricsRegistry::global().snapshot()) {
    if (!metrics_args.empty()) metrics_args += ", ";
    metrics_args +=
        "\"" + trace_detail::escape_name(name.c_str()) + "\": " + std::to_string(value);
  }
  std::snprintf(line, sizeof(line),
                "    {\"name\": \"metrics\", \"cat\": \"trichroma\", "
                "\"ph\": \"i\", \"ts\": %.3f, \"pid\": 1, \"tid\": 0, "
                "\"s\": \"g\", \"args\": {",
                ts_us(last_ts_ns));
  events += first ? "\n" : ",\n";
  events += line;
  events += metrics_args + "}}";

  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\"dropped_events\": \"" +
         std::to_string(dropped_total) + "\"},\n";
  out += "  \"traceEvents\": [" + events + "\n  ]\n}\n";
  return out;
}

void trace_write(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << trace_to_json();
  if (!out) throw std::runtime_error("write failed: " + path);
}

void trace_instant(const char* name) {
  if (!trace_enabled()) return;
  trace_detail::write_point('i', name, 0.0);
}

void trace_instant(const char* prefix, const char* suffix) {
  if (!trace_enabled()) return;
  char buf[trace_detail::kNameCap];
  std::snprintf(buf, sizeof(buf), "%s%s", prefix, suffix);
  trace_detail::write_point('i', buf, 0.0);
}

void trace_counter(const char* name, double value) {
  if (!trace_enabled()) return;
  trace_detail::write_point('C', name, value);
}

}  // namespace trichroma::obs
