#pragma once
// Low-overhead tracing: per-thread event buffers with RAII spans, exported
// as Chrome trace-event (catapult) JSON — load the file in chrome://tracing
// or https://ui.perfetto.dev to see where a run spends its time across the
// executor, the decision-map searches, the pipeline lanes and the topology
// substrate.
//
// Cost model. Tracing is disabled by default and every instrumentation site
// guards on ONE relaxed-ish atomic load: a TRI_SPAN with tracing off is a
// load plus a branch (no clock read, no name formatting, no allocation), so
// instrumented hot paths stay within noise of uninstrumented ones
// (bench/bench_obs.cpp pins < 2%). With tracing on, a span costs two clock
// reads and two fixed-size event writes into a thread-local buffer.
//
// Buffering. Each thread owns a single-producer buffer of fixed-size
// events; only the owning thread writes, and the exporter reads up to the
// atomically published size (release/acquire on `size`), so collection is
// data-race-free without locks on the hot path. Spans RESERVE their two
// slots (begin + end) at open and write both at close — begin with the
// recorded start timestamp, end with the close timestamp — which guarantees
// that every 'B' event in a buffer has its matching 'E': a span that does
// not fit drops whole, bumping the dropped counter, never half. Buffers are
// bounded (default 65536 events/thread) and never wrap; a full buffer drops
// new events and reports the count in the exported JSON's "otherData".
//
// Sessions. trace_start() resets all buffers and bumps a global generation;
// events recorded under an older generation are never exported, and a span
// closing across a restart discards itself. Start/stop/export must not
// overlap instrumented work in flight (the CLI traces around one whole
// command; tests quiesce the executor between sessions).
//
// Determinism boundary. Tracing output is pure observability: nothing read
// from these buffers feeds back into any solver decision, and the
// deterministic report fields (io/report.h) never include trace data.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace trichroma::obs {

namespace trace_detail {

extern std::atomic<bool> g_enabled;

struct ThreadBuffer;

/// Owner-thread handle for one open span: the buffer with two reserved
/// slots, the start timestamp, and the session generation at open.
struct SpanHandle {
  ThreadBuffer* buffer = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t generation = 0;
};

bool open_span(SpanHandle& handle);
void close_span(const SpanHandle& handle, const char* name);
void close_span(const SpanHandle& handle, const char* prefix, const char* suffix);
void close_span(const SpanHandle& handle, const char* prefix, long long n);

}  // namespace trace_detail

/// True while a trace session is collecting. One acquire load; every
/// instrumentation site keys off this.
inline bool trace_enabled() {
  return trace_detail::g_enabled.load(std::memory_order_acquire);
}

/// Starts a fresh session: clears every thread buffer, re-arms collection.
/// New threads allocate buffers of `per_thread_capacity` events; existing
/// buffers are resized to it. Must not overlap instrumented work in flight.
void trace_start(std::size_t per_thread_capacity = std::size_t{1} << 16);

/// Stops collection. Buffered events stay available for export until the
/// next trace_start.
void trace_stop();

/// Chrome trace-event JSON of everything collected this session, one
/// "traceEvents" array across all threads plus a trailing instant event
/// carrying the metrics-registry snapshot.
std::string trace_to_json();

/// trace_to_json written to `path` (throws std::runtime_error on failure).
void trace_write(const std::string& path);

/// Events dropped this session because a thread buffer was full.
std::uint64_t trace_dropped();

/// Point event ('i' phase) on the calling thread's timeline.
void trace_instant(const char* name);
void trace_instant(const char* prefix, const char* suffix);

/// Counter sample ('C' phase): a named value Perfetto renders as a track.
void trace_counter(const char* name, double value);

/// RAII span: records a 'B'/'E' pair around its scope. Composed names
/// ("engine/" + name, "probe/r=" + 2) are formatted only when tracing is
/// enabled, at close.
class Span {
 public:
  explicit Span(const char* name) : name_(name) {
    if (trace_enabled()) active_ = trace_detail::open_span(handle_);
  }
  Span(const char* prefix, const char* suffix) : name_(prefix), suffix_(suffix) {
    if (trace_enabled()) active_ = trace_detail::open_span(handle_);
  }
  Span(const char* prefix, long long n)
      : name_(prefix), number_(n), has_number_(true) {
    if (trace_enabled()) active_ = trace_detail::open_span(handle_);
  }
  ~Span() {
    if (!active_) return;
    if (has_number_) {
      trace_detail::close_span(handle_, name_, number_);
    } else if (suffix_ != nullptr) {
      trace_detail::close_span(handle_, name_, suffix_);
    } else {
      trace_detail::close_span(handle_, name_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  trace_detail::SpanHandle handle_;
  const char* name_;
  const char* suffix_ = nullptr;
  long long number_ = 0;
  bool has_number_ = false;
  bool active_ = false;
};

#define TRI_SPAN_CONCAT_INNER(a, b) a##b
#define TRI_SPAN_CONCAT(a, b) TRI_SPAN_CONCAT_INNER(a, b)
/// Scoped span; accepts the Span constructor forms:
///   TRI_SPAN("map_search/prefix");
///   TRI_SPAN("engine/", engine_name);
///   TRI_SPAN("probe/r=", static_cast<long long>(r));
#define TRI_SPAN(...) \
  ::trichroma::obs::Span TRI_SPAN_CONCAT(tri_span_, __COUNTER__)(__VA_ARGS__)

}  // namespace trichroma::obs
