#include "obs/trace_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace trichroma::obs {

namespace {

/// One parsed trace event (the fields the analytics need).
struct Event {
  std::string name;
  char phase = '?';
  double ts_us = 0.0;
  std::uint32_t tid = 0;
  std::string args;  // raw text of the args object, braces stripped
};

/// A completed span.
struct Span {
  std::string name;
  double start_us = 0.0;
  double end_us = 0.0;
  std::uint32_t tid = 0;
  double dur_us() const { return end_us - start_us; }
};

/// Extracts the string value of `"key": "..."` inside `obj`, or "" when the
/// key is absent. Handles the exporter's escaping (\\, \", \uXXXX left
/// verbatim — names are compared byte-wise, which is stable either way).
std::string find_string(const std::string& obj, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  while (pos < obj.size() && obj[pos] == ' ') ++pos;
  if (pos >= obj.size() || obj[pos] != '"') return "";
  ++pos;
  std::string out;
  while (pos < obj.size() && obj[pos] != '"') {
    if (obj[pos] == '\\' && pos + 1 < obj.size()) {
      out.push_back(obj[pos + 1]);
      pos += 2;
    } else {
      out.push_back(obj[pos]);
      ++pos;
    }
  }
  return out;
}

/// Extracts the numeric value of `"key": <number>` inside `obj`; `fallback`
/// when absent or non-numeric.
double find_number(const std::string& obj, const char* key, double fallback) {
  const std::string needle = std::string("\"") + key + "\":";
  std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return fallback;
  pos += needle.size();
  while (pos < obj.size() && obj[pos] == ' ') ++pos;
  const char* start = obj.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  return end == start ? fallback : v;
}

/// The raw text between the braces of `"key": { ... }`, or "" when absent.
/// Good enough for the exporter's flat args objects (no nested braces).
std::string find_object(const std::string& obj, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return "";
  pos = obj.find('{', pos + needle.size());
  if (pos == std::string::npos) return "";
  const std::size_t close = obj.find('}', pos);
  if (close == std::string::npos) return "";
  return obj.substr(pos + 1, close - pos - 1);
}

/// Splits the "traceEvents" array into per-event object substrings. The
/// events themselves may contain one nested object ("args"), so a brace
/// depth counter — with string-literal skipping — finds the boundaries.
std::vector<std::string> split_events(const std::string& json) {
  const std::size_t arr = json.find("\"traceEvents\"");
  if (arr == std::string::npos)
    throw std::runtime_error("trace-stats: no \"traceEvents\" array in input");
  std::size_t pos = json.find('[', arr);
  if (pos == std::string::npos)
    throw std::runtime_error("trace-stats: malformed traceEvents array");
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  bool in_string = false;
  for (std::size_t i = pos + 1; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth++ == 0) start = i;
    } else if (c == '}') {
      if (--depth == 0) out.push_back(json.substr(start, i - start + 1));
    } else if (c == ']' && depth == 0) {
      return out;
    }
  }
  return out;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank: the smallest value with at least p of the mass at or
  // below it. Deterministic, no interpolation.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

void append_line(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
  out += '\n';
}

}  // namespace

TraceStats analyze_trace(const std::string& trace_json) {
  TraceStats stats;
  const std::vector<std::string> raw = split_events(trace_json);

  std::vector<Event> events;
  events.reserve(raw.size());
  for (const std::string& obj : raw) {
    Event e;
    e.name = find_string(obj, "name");
    const std::string ph = find_string(obj, "ph");
    e.phase = ph.empty() ? '?' : ph[0];
    e.ts_us = find_number(obj, "ts", 0.0);
    e.tid = static_cast<std::uint32_t>(find_number(obj, "tid", 0.0));
    e.args = find_object(obj, "args");
    events.push_back(std::move(e));
  }
  stats.events = events.size();

  // Pair B/E per tid. Fast path: our exporter writes E immediately after
  // its B in the same tid stream. Fallback: a per-tid stack of open names,
  // for traces from other producers where nesting is in timestamp order.
  std::vector<Span> spans;
  std::map<std::uint32_t, std::vector<std::size_t>> open;  // tid -> event idx stack
  double first_us = 0.0, last_us = 0.0;
  bool any_ts = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.phase == 'B' || e.phase == 'E' || e.phase == 'i' || e.phase == 'C' ||
        e.phase == 'X') {
      if (!any_ts) {
        first_us = last_us = e.ts_us;
        any_ts = true;
      } else {
        first_us = std::min(first_us, e.ts_us);
        last_us = std::max(last_us, e.ts_us);
      }
    }
    if (e.phase == 'B') {
      open[e.tid].push_back(i);
    } else if (e.phase == 'E') {
      auto& stack = open[e.tid];
      // Prefer the innermost open span with a matching name (tolerates
      // producers that emit unmatched Es).
      for (std::size_t s = stack.size(); s-- > 0;) {
        const Event& b = events[stack[s]];
        if (b.name == e.name) {
          spans.push_back(Span{b.name, b.ts_us, e.ts_us, e.tid});
          stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(s));
          break;
        }
      }
    } else if (e.phase == 'X') {
      // Complete events (other producers): ts + dur.
      const double dur = find_number(raw[i], "dur", 0.0);
      spans.push_back(Span{e.name, e.ts_us, e.ts_us + dur, e.tid});
      if (e.ts_us + dur > last_us) last_us = e.ts_us + dur;
    } else if (e.phase == 'i' && e.name == "metrics" && !e.args.empty()) {
      // The exporter's trailing registry snapshot: "name": value pairs.
      std::size_t pos = 0;
      while ((pos = e.args.find('"', pos)) != std::string::npos) {
        const std::size_t close = e.args.find('"', pos + 1);
        if (close == std::string::npos) break;
        const std::string key = e.args.substr(pos + 1, close - pos - 1);
        const std::size_t colon = e.args.find(':', close);
        if (colon == std::string::npos) break;
        stats.counters[key] = static_cast<std::uint64_t>(
            std::strtoull(e.args.c_str() + colon + 1, nullptr, 10));
        pos = e.args.find(',', colon);
        if (pos == std::string::npos) break;
      }
    }
  }
  stats.spans_paired = spans.size();
  stats.wall_ms = any_ts ? (last_us - first_us) / 1000.0 : 0.0;

  // Per-name aggregates.
  std::map<std::string, std::vector<double>> durations;  // ms, per name
  for (const Span& s : spans) durations[s.name].push_back(s.dur_us() / 1000.0);
  for (auto& [name, ds] : durations) {
    std::sort(ds.begin(), ds.end());
    SpanAggregate agg;
    agg.name = name;
    agg.count = ds.size();
    for (double d : ds) agg.total_ms += d;
    agg.p50_ms = percentile(ds, 0.50);
    agg.p99_ms = percentile(ds, 0.99);
    agg.max_ms = ds.back();
    stats.spans.push_back(std::move(agg));
  }
  std::sort(stats.spans.begin(), stats.spans.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.name < b.name;
            });

  // Critical path of the slowest pipeline run: starting from that run's
  // interval, repeatedly descend into the longest span strictly contained
  // in the current one (any tid — a run's cost may live in executor jobs).
  std::size_t current = spans.size();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name != "pipeline/run") continue;
    if (current == spans.size() || spans[i].dur_us() > spans[current].dur_us())
      current = i;
  }
  std::vector<char> used(spans.size(), 0);
  while (current != spans.size()) {
    used[current] = 1;
    const Span& cur = spans[current];
    stats.critical_path.push_back(
        CriticalPathStep{cur.name, cur.start_us / 1000.0, cur.dur_us() / 1000.0});
    std::size_t best = spans.size();
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (used[i]) continue;
      const Span& s = spans[i];
      if (s.start_us < cur.start_us || s.end_us > cur.end_us) continue;
      if (s.dur_us() >= cur.dur_us()) continue;  // identical-interval twin, not a child
      if (best == spans.size() || s.dur_us() > spans[best].dur_us()) best = i;
    }
    current = best;
  }

  // Per-worker executor utilization over the trace's wall extent.
  std::map<std::uint32_t, WorkerUtilization> workers;
  for (const Span& s : spans) {
    if (s.name != "executor/job") continue;
    WorkerUtilization& w = workers[s.tid];
    w.tid = s.tid;
    w.jobs += 1;
    w.busy_ms += s.dur_us() / 1000.0;
  }
  for (auto& [tid, w] : workers) {
    w.utilization = stats.wall_ms > 0.0 ? w.busy_ms / stats.wall_ms : 0.0;
    stats.workers.push_back(w);
  }
  return stats;
}

std::string format_trace_stats(const TraceStats& stats) {
  std::string out;
  append_line(out, "trace: %llu events, %llu spans, %.3f ms wall",
              static_cast<unsigned long long>(stats.events),
              static_cast<unsigned long long>(stats.spans_paired), stats.wall_ms);
  out += '\n';
  append_line(out, "%-36s %8s %12s %10s %10s %10s", "span", "count", "total_ms",
              "p50_ms", "p99_ms", "max_ms");
  for (const SpanAggregate& s : stats.spans) {
    append_line(out, "%-36s %8llu %12.3f %10.3f %10.3f %10.3f", s.name.c_str(),
                static_cast<unsigned long long>(s.count), s.total_ms, s.p50_ms,
                s.p99_ms, s.max_ms);
  }
  if (!stats.critical_path.empty()) {
    out += '\n';
    append_line(out, "critical path (slowest pipeline/run, %.3f ms):",
                stats.critical_path.front().dur_ms);
    const double run_ms = stats.critical_path.front().dur_ms;
    for (const CriticalPathStep& step : stats.critical_path) {
      append_line(out, "  %-34s %10.3f ms  %5.1f%%", step.name.c_str(),
                  step.dur_ms, run_ms > 0.0 ? 100.0 * step.dur_ms / run_ms : 0.0);
    }
  }
  if (!stats.workers.empty()) {
    out += '\n';
    append_line(out, "executor workers:");
    append_line(out, "  %-6s %8s %12s %12s", "tid", "jobs", "busy_ms", "util");
    for (const WorkerUtilization& w : stats.workers) {
      append_line(out, "  %-6u %8llu %12.3f %11.1f%%", w.tid,
                  static_cast<unsigned long long>(w.jobs), w.busy_ms,
                  100.0 * w.utilization);
    }
  }
  if (!stats.counters.empty()) {
    out += '\n';
    append_line(out, "registry counters embedded in trace: %llu",
                static_cast<unsigned long long>(stats.counters.size()));
  }
  return out;
}

}  // namespace trichroma::obs
