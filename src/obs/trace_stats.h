#pragma once
// Trace analytics: turn a recorded Chrome trace (obs/trace.h's
// trace_to_json output, or any trace in the same flat one-object-per-event
// shape) into answers — per-span-name aggregates, the critical path of the
// slowest pipeline run, and per-worker executor utilization. Backs the
// `trichroma trace-stats` subcommand.
//
// The analyzer exploits an exporter invariant: spans write both their 'B'
// and 'E' slots at close time, so within one tid's event stream every 'B'
// is immediately followed by its matching 'E' (spans drop whole, never
// half). A per-tid name-matching stack backstops traces from other
// producers. The trailing "metrics" instant (the registry snapshot the
// exporter embeds) is parsed into `counters`, so one file supports
// span-count vs. counter cross-checks — e.g. `pipeline/run` spans must
// equal the `pipeline.runs` counter on a fully captured trace.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace trichroma::obs {

/// Aggregate over every completed span with one name.
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double p50_ms = 0.0;  ///< nearest-rank percentiles over span durations
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// One link of the slowest pipeline run's critical path: the longest span
/// strictly contained in its parent's interval, recursively.
struct CriticalPathStep {
  std::string name;
  double start_ms = 0.0;  ///< relative to the trace epoch
  double dur_ms = 0.0;
};

/// Executor-thread busy time: the summed `executor/job` span durations of
/// one tid over the trace's wall-clock extent.
struct WorkerUtilization {
  std::uint32_t tid = 0;
  std::uint64_t jobs = 0;
  double busy_ms = 0.0;
  double utilization = 0.0;  ///< busy_ms / wall_ms, in [0, 1] give or take clock skew
};

struct TraceStats {
  std::uint64_t events = 0;        ///< trace events parsed (all phases)
  std::uint64_t spans_paired = 0;  ///< completed B/E pairs
  double wall_ms = 0.0;            ///< last timestamp minus first
  std::vector<SpanAggregate> spans;  ///< sorted by total_ms descending
  /// Critical path of the slowest "pipeline/run" span (empty when the trace
  /// has none): the run itself first, then its longest contained span, then
  /// that span's longest contained span, and so on across all tids.
  std::vector<CriticalPathStep> critical_path;
  std::vector<WorkerUtilization> workers;  ///< tids with executor/job spans
  /// The embedded registry snapshot ("metrics" instant args), when present.
  std::map<std::string, std::uint64_t> counters;
};

/// Parses `trace_json` (Chrome trace-event JSON with a "traceEvents" array)
/// and computes the aggregates above. Throws std::runtime_error when the
/// document has no parseable traceEvents array.
TraceStats analyze_trace(const std::string& trace_json);

/// Human-readable rendering of the stats (the trace-stats subcommand body).
std::string format_trace_stats(const TraceStats& stats);

}  // namespace trichroma::obs
