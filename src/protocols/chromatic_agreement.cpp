#include "protocols/chromatic_agreement.h"

#include <algorithm>
#include <stdexcept>

#include "topology/graph.h"

namespace trichroma::protocols {

using runtime::OpPhase;
using runtime::Turn;

namespace {

Simplex simplex_from_scan(const std::vector<std::pair<int, VertexId>>& pairs) {
  std::vector<VertexId> vertices;
  vertices.reserve(pairs.size());
  for (const auto& [pid, v] : pairs) {
    (void)pid;
    vertices.push_back(v);
  }
  return Simplex(std::move(vertices));
}

/// Smallest (or largest) own-color vertex completing `partial` to a simplex
/// of Δ(τ).
std::optional<VertexId> pick_completion(const Task& task, const Simplex& tau,
                                        Color me, const Simplex& partial,
                                        bool pick_largest) {
  std::optional<VertexId> found;
  for (VertexId cand : task.delta.image_complex(tau).vertex_ids()) {
    if (task.pool->color(cand) != me) continue;
    if (!task.delta.allows(tau, partial.with(cand))) continue;
    if (!pick_largest) return cand;  // vertex_ids() is sorted ascending
    found = cand;
  }
  return found;
}

}  // namespace

runtime::ProcessBody agreement_process(AgreementShared& shared, const Task& task,
                                       const ColorlessAlgorithm& algorithm, int pid,
                                       VertexId input, AgreementOutcome& out,
                                       bool pick_largest) {
  VertexPool& pool = *task.pool;
  ValuePool& values = pool.values();
  const Color me = pool.color(input);
  std::size_t& ops = out.operations;

  // (1) Announce the input.
  co_await Turn{OpPhase::Single};
  shared.m_in.update(pid, input);
  ++ops;

  // (2) Run the color-agnostic algorithm A_C: IIS rounds + decision map.
  const ValueId view_tag = values.of_string("view");
  VertexId current = input;
  for (int r = 0; r < algorithm.rounds; ++r) {
    co_await Turn{OpPhase::IsWrite};
    shared.iis.objects[static_cast<std::size_t>(r)].write(pid, raw(current));
    ++ops;
    co_await Turn{OpPhase::IsRead};
    const auto seen = shared.iis.objects[static_cast<std::size_t>(r)].snap();
    ++ops;
    std::vector<ValueId> members;
    members.reserve(seen.size());
    for (const auto& [who, value] : seen) {
      (void)who;
      members.push_back(values.of_int(static_cast<std::int64_t>(value)));
    }
    current = pool.vertex(
        me, values.of_tuple({view_tag, values.of_set(std::move(members))}));
  }
  if (!algorithm.decision.defined(current)) {
    throw std::logic_error("A_C decision map undefined on a reachable view");
  }
  const VertexId y = algorithm.decision.apply(current);

  // (3) Publish the color-agnostic output; snapshot into a view V_i.
  co_await Turn{OpPhase::Single};
  shared.m_cless.update(pid, y);
  ++ops;
  co_await Turn{OpPhase::Single};
  std::vector<VertexId> my_view;
  for (const auto& [who, v] : shared.m_cless.scan_present()) {
    (void)who;
    my_view.push_back(v);
  }
  ++ops;
  std::sort(my_view.begin(), my_view.end(),
            [](VertexId a, VertexId b) { return raw(a) < raw(b); });
  my_view.erase(std::unique(my_view.begin(), my_view.end()), my_view.end());

  // (4) Publish the view; snapshot all views.
  co_await Turn{OpPhase::Single};
  shared.m_snap.update(pid, my_view);
  ++ops;
  co_await Turn{OpPhase::Single};
  const auto all_views = shared.m_snap.scan_present();
  ++ops;

  // (5) The core: minimal non-empty view (views are comparable).
  std::vector<VertexId> core;
  for (const auto& [who, view] : all_views) {
    (void)who;
    if (!view.empty() && (core.empty() || view.size() < core.size())) core = view;
  }

  // (6) Pivot: an own-color vertex in the core is the decision.
  for (VertexId v : core) {
    if (pool.color(v) == me) {
      out.pivot = true;
      out.decision = v;
      co_return;
    }
  }

  std::optional<VertexId> anchor;  // the paper's v_i
  if (core.size() == 2) {
    // (7a) Read the participants.
    co_await Turn{OpPhase::Single};
    Simplex tau = simplex_from_scan(shared.m_in.scan_present());
    ++ops;
    // (7b) Complete the 2-core to a facet of Δ(τ) with an own-color vertex.
    anchor = pick_completion(task, tau, me, Simplex{core[0], core[1]}, pick_largest);
    if (!anchor.has_value()) {
      throw std::logic_error("no own-color completion of a 2-core (Lemma 5.3)");
    }
    // (7c) Publish and scan.
    co_await Turn{OpPhase::Single};
    shared.m_decisions.update(pid, {*anchor, *anchor, core});
    ++ops;
    co_await Turn{OpPhase::Single};
    const auto entries = shared.m_decisions.scan_present();
    ++ops;
    // (7d) Alone: decide.
    if (entries.size() == 1) {
      out.decision = *anchor;
      co_return;
    }
    // (7e) Otherwise the other entry carries a singleton core; adopt it.
    for (const auto& [who, entry] : entries) {
      if (who == pid) continue;
      if (entry.core.size() != 1) {
        throw std::logic_error("two distinct 2-cores cannot coexist (Claim 2)");
      }
      core = entry.core;
    }
  }

  // (8) Singleton core.
  if (core.size() != 1) {
    throw std::logic_error("non-pivot reached (8) without a singleton core");
  }
  const VertexId vstar = core[0];

  // (9) Read the participants.
  co_await Turn{OpPhase::Single};
  Simplex tau = simplex_from_scan(shared.m_in.scan_present());
  ++ops;

  // (10) Pick an own-color neighbor of v* if (7) was not executed.
  if (!anchor.has_value()) {
    anchor = pick_completion(task, tau, me, Simplex::single(vstar), pick_largest);
    if (!anchor.has_value()) {
      throw std::logic_error("no own-color neighbor of the core vertex (Lemma 5.3)");
    }
  }

  // (11) Publish and scan.
  co_await Turn{OpPhase::Single};
  shared.m_decisions.update(pid, {*anchor, *anchor, core});
  ++ops;
  co_await Turn{OpPhase::Single};
  auto entries = shared.m_decisions.scan_present();
  ++ops;

  // (12) Alone: decide.
  if (entries.size() == 1) {
    out.decision = *anchor;
    co_return;
  }

  // (13) Negotiate with the other non-pivot along the canonical path Π in
  // the link of v*. Deviation (b): re-scan M_in so both negotiators compute
  // the link with the same participant set.
  int other_pid = -1;
  AgreementShared::DecisionEntry other;
  for (const auto& [who, entry] : entries) {
    if (who != pid) {
      other_pid = who;
      other = entry;
    }
  }
  co_await Turn{OpPhase::Single};
  tau = simplex_from_scan(shared.m_in.scan_present());
  ++ops;
  const SimplicialComplex link = task.delta.image_complex(tau).link(vstar);
  const auto pi = lex_min_shortest_path_symmetric(link, *anchor, other.anchor);
  if (!pi.has_value()) {
    throw std::logic_error("no link path between anchors (task not link-connected?)");
  }

  // (14) Jump toward the other process until the proposals span a link
  // edge. The new proposal is the neighbor of the other's proposal on Π *on
  // the side of our current proposal* — i.e. inside the sub-path between
  // the two prior proposals, which is what makes the distance strictly
  // decrease (the proof of Lemma 5.3). Orienting toward our original
  // anchor instead diverges: under a lockstep adversary the two proposals
  // cross and then oscillate forever.
  VertexId proposal = *anchor;
  VertexId other_proposal = other.proposal;
  while (!link.contains(Simplex{proposal, other_proposal})) {
    ++out.jumps;
    const auto it = std::find(pi->begin(), pi->end(), other_proposal);
    const auto mine = std::find(pi->begin(), pi->end(), proposal);
    if (it == pi->end() || mine == pi->end()) {
      throw std::logic_error("a proposal left the agreed path");
    }
    const std::size_t k = static_cast<std::size_t>(it - pi->begin());
    const std::size_t my_k = static_cast<std::size_t>(mine - pi->begin());
    if (k == my_k) {
      throw std::logic_error("proposals collided despite distinct colors");
    }
    proposal = (*pi)[my_k < k ? k - 1 : k + 1];
    co_await Turn{OpPhase::Single};
    shared.m_decisions.update(pid, {*anchor, proposal, core});
    ++ops;
    co_await Turn{OpPhase::Single};
    entries = shared.m_decisions.scan_present();
    ++ops;
    for (const auto& [who, entry] : entries) {
      if (who == other_pid) other_proposal = entry.proposal;
    }
  }

  // (15) The proposals span an edge of the link: decide.
  out.decision = proposal;
}

std::vector<AgreementOutcome> run_agreement(
    const Task& task, const ColorlessAlgorithm& algorithm,
    const std::vector<std::pair<int, VertexId>>& inputs, std::uint64_t seed,
    bool spread_anchors) {
  int max_pid = 0;
  for (const auto& [pid, input] : inputs) {
    (void)input;
    max_pid = std::max(max_pid, pid);
  }
  AgreementShared shared(max_pid + 1, algorithm.rounds);
  std::vector<AgreementOutcome> outcomes(inputs.size());
  std::vector<runtime::ProcessBody> processes(static_cast<std::size_t>(max_pid + 1));
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& [pid, input] = inputs[i];
    const bool pick_largest = spread_anchors && (pid % 2 == 1);
    processes[static_cast<std::size_t>(pid)] = agreement_process(
        shared, task, algorithm, pid, input, outcomes[i], pick_largest);
  }
  runtime::Executor executor(std::move(processes));
  std::mt19937_64 rng(seed);
  executor.run_random(rng);
  return outcomes;
}

bool outcomes_valid(const Task& task,
                    const std::vector<std::pair<int, VertexId>>& inputs,
                    const std::vector<AgreementOutcome>& outcomes) {
  const VertexPool& pool = *task.pool;
  std::vector<VertexId> in_verts, decisions;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& [pid, input] = inputs[i];
    if (!outcomes[i].decision.has_value()) return false;
    const VertexId d = *outcomes[i].decision;
    if (pool.color(d) != static_cast<Color>(pid)) return false;
    if (pool.color(input) != static_cast<Color>(pid)) return false;
    in_verts.push_back(input);
    decisions.push_back(d);
  }
  const Simplex tau{Simplex(std::move(in_verts))};
  const Simplex out{Simplex(std::move(decisions))};
  return task.output.contains(out) && task.delta.allows(tau, out);
}

}  // namespace trichroma::protocols
