#pragma once
// The paper's Figure-7 algorithm (Lemma 5.3): turning a color-agnostic
// solution of a *link-connected* task into a properly chromatic one using
// only standard synchronization (snapshots), with no topological machinery
// at run time.
//
// Protocol sketch for process p_i with input x_i:
//   (1)  announce the input in M_in;
//   (2)  run the color-agnostic algorithm A_C, obtaining y_i (any color);
//   (3,4) publish y_i in M_cless, snapshot it into a view V_i, publish V_i
//        in M_snap and snapshot the views;
//   (5)  the *core* V* = the minimal non-empty view (views are comparable);
//   (6)  pivots — processes whose color appears in V* — decide that vertex;
//   (7)  a non-pivot with a two-vertex core picks its own-color vertex
//        completing the core to a facet of Δ(τ), publishes it in
//        M_decisions, and decides it if it is alone; otherwise it adopts
//        the smaller (singleton) core it discovered;
//   (8-12) a non-pivot with singleton core {v*} picks an own-color neighbor
//        of v* allowed by Δ(τ), publishes, and decides it if alone;
//   (13-15) two non-pivots negotiate by "jumping" toward each other along
//        the canonical shortest path Π in lk_{Δ(τ)}(v*) until their
//        proposals form an edge of the link — then all three decisions lie
//        on one facet.
//
// Implementation deviations from the paper's pseudocode (documented in
// DESIGN.md): (a) the guard in line (10) is "v_i still unset" (the paper's
// "v_i ≠ ⊥" contradicts its own comment); (b) before computing Π in (13)
// the processes re-scan M_in, so both negotiators determine the link with
// the same participant set τ (with the paper's stale τ from line (9), the
// two processes can compute Π in different links).

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "protocols/colorless_protocol.h"
#include "protocols/iis.h"
#include "runtime/shared_memory.h"
#include "runtime/system.h"
#include "tasks/task.h"

namespace trichroma::protocols {

/// Shared memory of the Figure-7 algorithm.
struct AgreementShared {
  explicit AgreementShared(int n, int colorless_rounds)
      : m_in(n), m_cless(n), m_snap(n), m_decisions(n), iis(n, colorless_rounds) {}

  struct DecisionEntry {
    VertexId anchor{};             ///< v_i: fixed first proposal (determines Π)
    VertexId proposal{};           ///< current proposal v'
    std::vector<VertexId> core;    ///< V* at the time of writing
  };

  runtime::SnapshotObject<VertexId> m_in;
  runtime::SnapshotObject<VertexId> m_cless;
  runtime::SnapshotObject<std::vector<VertexId>> m_snap;
  runtime::SnapshotObject<DecisionEntry> m_decisions;
  IisShared iis;  ///< substrate for A_C
};

struct AgreementOutcome {
  std::optional<VertexId> decision;
  bool pivot = false;          ///< decided in step (6)
  std::size_t operations = 0;  ///< shared-memory operations performed
  std::size_t jumps = 0;       ///< iterations of the negotiation loop (14)
};

/// The algorithm coroutine for process `pid` with input vertex `input`.
/// `task` must be link-connected (T' of the characterization pipeline);
/// `algorithm` is a color-agnostic solution of `task`. `pick_largest`
/// flips the (arbitrary, per Lemma 5.3) own-color vertex selection in
/// steps (7b)/(10) from smallest-id to largest-id — a testing hook that
/// spreads the negotiation anchors apart to exercise the link-jumping
/// loop (14) on long links.
runtime::ProcessBody agreement_process(AgreementShared& shared, const Task& task,
                                       const ColorlessAlgorithm& algorithm, int pid,
                                       VertexId input, AgreementOutcome& out,
                                       bool pick_largest = false);

/// Runs the algorithm for the given participants under a seeded random
/// adversary; returns outcomes indexed like `inputs`. When `spread_anchors`
/// is set, odd pids use the largest-id pick policy.
std::vector<AgreementOutcome> run_agreement(
    const Task& task, const ColorlessAlgorithm& algorithm,
    const std::vector<std::pair<int, VertexId>>& inputs, std::uint64_t seed,
    bool spread_anchors = false);

/// Validates an outcome set: every participant decided a vertex of its own
/// color and the decisions form a simplex of Δ(input simplex).
bool outcomes_valid(const Task& task,
                    const std::vector<std::pair<int, VertexId>>& inputs,
                    const std::vector<AgreementOutcome>& outcomes);

}  // namespace trichroma::protocols
