#include "protocols/colorless_protocol.h"

#include "topology/subdivision.h"

namespace trichroma::protocols {

std::optional<ColorlessAlgorithm> synthesize_colorless(const Task& task,
                                                       int max_radius,
                                                       std::size_t node_cap) {
  MapSearchOptions options;
  options.chromatic = false;
  options.node_cap = node_cap;
  for (int r = 0; r <= max_radius; ++r) {
    const SubdividedComplex domain =
        chromatic_subdivision(*task.pool, task.input, r);
    MapSearchResult result = find_decision_map(*task.pool, domain, task, options);
    if (result.found) {
      ColorlessAlgorithm alg;
      alg.rounds = r;
      alg.decision = std::move(result.map);
      return alg;
    }
  }
  return std::nullopt;
}

}  // namespace trichroma::protocols
