#pragma once
// Color-agnostic ("colorless") protocols: the A_C consumed by the paper's
// Figure-7 algorithm (Lemma 5.3).
//
// A color-agnostic algorithm for a task lets processes starting on an input
// simplex σ decide output vertices that all lie on one simplex of Δ(σ) —
// but a process may land on a vertex whose color is not its own. We obtain
// one constructively: the solver searches for a color-agnostic decision map
// δ : Ch^r(I) → O carried by Δ, and the protocol is "run r IIS rounds,
// decide δ(view)".

#include <optional>

#include "solver/map_search.h"
#include "tasks/task.h"

namespace trichroma::protocols {

/// A synthesized color-agnostic algorithm: r rounds of IIS followed by a
/// (not necessarily color-preserving) decision map.
struct ColorlessAlgorithm {
  int rounds = 0;
  VertexMap decision;  ///< defined on every vertex of Ch^rounds(task.input)
};

/// Searches radii 0..max_radius for a color-agnostic decision map on
/// `task`. Returns nullopt if none is found within the budget.
std::optional<ColorlessAlgorithm> synthesize_colorless(
    const Task& task, int max_radius, std::size_t node_cap = 20'000'000);

}  // namespace trichroma::protocols
