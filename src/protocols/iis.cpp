#include "protocols/iis.h"

namespace trichroma::protocols {

using runtime::OpPhase;
using runtime::Turn;

runtime::ProcessBody iis_process(IisShared& shared, VertexPool& pool, int pid,
                                 VertexId input, int rounds,
                                 const VertexMap* decision_map, IisOutcome& out) {
  ValuePool& values = pool.values();
  const ValueId view_tag = values.of_string("view");
  const Color color = pool.color(input);

  VertexId current = input;
  for (int r = 0; r < rounds; ++r) {
    co_await Turn{OpPhase::IsWrite};
    shared.objects[static_cast<std::size_t>(r)].write(pid, raw(current));
    co_await Turn{OpPhase::IsRead};
    const auto seen = shared.objects[static_cast<std::size_t>(r)].snap();
    // Intern the view exactly like topology/subdivision.h: the vertex for
    // (my color, set of vertices seen).
    std::vector<ValueId> members;
    members.reserve(seen.size());
    for (const auto& [who, value] : seen) {
      (void)who;
      members.push_back(values.of_int(static_cast<std::int64_t>(value)));
    }
    current = pool.vertex(
        color, values.of_tuple({view_tag, values.of_set(std::move(members))}));
  }
  out.view = current;
  if (decision_map != nullptr && decision_map->defined(current)) {
    out.decision = decision_map->apply(current);
  }
}

std::vector<IisOutcome> run_iis(VertexPool& pool,
                                const std::vector<std::pair<int, VertexId>>& inputs,
                                int rounds, const VertexMap* decision_map,
                                const runtime::Schedule& schedule) {
  int max_pid = 0;
  for (const auto& [pid, input] : inputs) {
    (void)input;
    max_pid = std::max(max_pid, pid);
  }
  IisShared shared(max_pid + 1, rounds);
  std::vector<IisOutcome> outcomes(inputs.size());
  std::vector<runtime::ProcessBody> processes(static_cast<std::size_t>(max_pid + 1));
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& [pid, input] = inputs[i];
    processes[static_cast<std::size_t>(pid)] = iis_process(
        shared, pool, pid, input, rounds, decision_map, outcomes[i]);
  }
  runtime::Executor executor(std::move(processes));
  executor.run(schedule);
  return outcomes;
}

}  // namespace trichroma::protocols
