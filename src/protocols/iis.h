#pragma once
// The full-information iterated immediate snapshot (IIS) protocol.
//
// Each round, a process writes its current knowledge into a fresh one-shot
// immediate-snapshot object and takes the immediate snapshot; its knowledge
// becomes the view (set of values seen). After r rounds the views of all
// processes form a facet of Ch^r(I), the r-fold standard chromatic
// subdivision — the protocol vertex is interned with exactly the same
// ("view", {ids}) encoding as topology/subdivision.h, so the combinatorial
// subdivision and the operational protocol coincide vertex-for-vertex (a
// property the tests verify by exhaustive schedule enumeration).
//
// Supplying a decision map (a solver witness δ : Ch^r(I) → O) turns the
// protocol into a wait-free solution of the task: decide δ(final view).

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/shared_memory.h"
#include "runtime/system.h"
#include "topology/chromatic.h"
#include "topology/vertex.h"

namespace trichroma::protocols {

/// One immediate-snapshot object per round, shared by the participants.
struct IisShared {
  IisShared(int n, int rounds) {
    for (int r = 0; r < rounds; ++r) objects.emplace_back(n);
  }
  std::vector<runtime::ImmediateSnapshotObject<std::uint32_t>> objects;
};

struct IisOutcome {
  std::optional<VertexId> view;      ///< final Ch^r(I) vertex
  std::optional<VertexId> decision;  ///< δ(view) when a map was supplied
};

/// The protocol coroutine for one process. All references must outlive the
/// execution. `decision_map` may be null (full-information only).
runtime::ProcessBody iis_process(IisShared& shared, VertexPool& pool, int pid,
                                 VertexId input, int rounds,
                                 const VertexMap* decision_map, IisOutcome& out);

/// Runs the IIS protocol for the given (pid, input vertex) participants
/// under `schedule` (falling back to round-robin when it runs out), and
/// returns their outcomes indexed like `inputs`.
std::vector<IisOutcome> run_iis(VertexPool& pool,
                                const std::vector<std::pair<int, VertexId>>& inputs,
                                int rounds, const VertexMap* decision_map,
                                const runtime::Schedule& schedule);

}  // namespace trichroma::protocols
