#include "protocols/pipeline.h"

#include "core/splitting.h"
#include "tasks/canonical.h"

namespace trichroma::protocols {

std::optional<EndToEndSolver> build_end_to_end(const Task& task, int max_radius,
                                               std::size_t node_cap) {
  EndToEndSolver solver;
  solver.characterization = characterize(task);
  auto algorithm = synthesize_colorless(solver.characterization.link_connected,
                                        max_radius, node_cap);
  if (!algorithm.has_value()) return std::nullopt;
  solver.algorithm = std::move(*algorithm);
  return solver;
}

EndToEndRun run_end_to_end(const EndToEndSolver& solver, const Task& original,
                           const std::vector<std::pair<int, VertexId>>& inputs,
                           std::uint64_t seed) {
  const Task& tp = solver.characterization.link_connected;
  VertexPool& pool = *tp.pool;
  EndToEndRun run;

  const auto outcomes = run_agreement(tp, solver.algorithm, inputs, seed);
  if (!outcomes_valid(tp, inputs, outcomes)) return run;

  // Translate back: collapse split copies (Lemma 4.2's easy direction),
  // then drop the echoed input (Theorem 3.1's easy direction).
  std::vector<VertexId> in_verts, decisions;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    run.total_operations += outcomes[i].operations;
    run.total_jumps += outcomes[i].jumps;
    if (outcomes[i].pivot) ++run.pivots;
    const VertexId canonical_vertex = unsplit_vertex(pool, *outcomes[i].decision);
    const VertexId original_vertex = canonical_output_part(pool, canonical_vertex);
    run.decisions.push_back(original_vertex);
    in_verts.push_back(inputs[i].second);
    decisions.push_back(original_vertex);
  }
  const Simplex tau{Simplex(std::move(in_verts))};
  const Simplex out{Simplex(std::move(decisions))};
  run.valid = original.output.contains(out) && original.delta.allows(tau, out);
  return run;
}

}  // namespace trichroma::protocols
