#pragma once
// End-to-end executable form of Theorem 5.1.
//
// Given a general task T, build_end_to_end runs the characterization
// pipeline (T → canonical T* → link-connected T'), synthesizes a
// color-agnostic solution of T' with the solver, and packages the paper's
// Figure-7 algorithm around it. run_end_to_end then *executes* the whole
// stack on the shared-memory simulator for a chosen set of participants and
// translates the decisions back to the original task (splitting collapses
// copies, canonicalization drops the echoed input), verifying the final
// outputs against the original Δ. This closes the loop:
//
//   solver verdict → runnable protocol → simulated execution → Δ-check.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/characterization.h"
#include "protocols/chromatic_agreement.h"
#include "protocols/colorless_protocol.h"
#include "tasks/task.h"

namespace trichroma::protocols {

struct EndToEndSolver {
  CharacterizationResult characterization;
  ColorlessAlgorithm algorithm;  ///< color-agnostic solution of T'
};

/// Builds the solver stack; nullopt when no color-agnostic decision map for
/// T' is found within `max_radius` (the task may be unsolvable — check the
/// obstruction engines).
std::optional<EndToEndSolver> build_end_to_end(const Task& task, int max_radius,
                                               std::size_t node_cap = 20'000'000);

struct EndToEndRun {
  bool valid = false;  ///< decisions are chromatic and allowed by Δ of T
  std::vector<std::optional<VertexId>> decisions;  ///< in original O, per input
  std::size_t total_operations = 0;
  std::size_t total_jumps = 0;
  std::size_t pivots = 0;
};

/// Executes the stack for the participants `inputs` (pid, input vertex of
/// the original task) under a seeded random adversary.
EndToEndRun run_end_to_end(const EndToEndSolver& solver, const Task& original,
                           const std::vector<std::pair<int, VertexId>>& inputs,
                           std::uint64_t seed);

}  // namespace trichroma::protocols
