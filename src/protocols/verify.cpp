#include "protocols/verify.h"

#include <set>

#include "protocols/iis.h"

namespace trichroma::protocols {

VerificationResult verify_decision_map(const Task& task, const VertexMap& decision,
                                       int rounds, std::size_t max_executions) {
  VerificationResult result;
  VertexPool& pool = *task.pool;

  // Deduplicate participant configurations across facets (faces shared by
  // two facets would otherwise be verified twice).
  std::set<Simplex> configurations;
  task.input.for_each([&](const Simplex& tau) { configurations.insert(tau); });

  for (const Simplex& tau : configurations) {
    std::vector<int> pids;
    std::vector<std::pair<int, VertexId>> inputs;
    for (VertexId v : tau) {
      pids.push_back(pool.color(v));
      inputs.emplace_back(pool.color(v), v);
    }
    for (const auto& schedule : runtime::all_iis_schedules(pids, rounds)) {
      if (result.executions >= max_executions) return result;
      ++result.executions;
      const auto outcomes = run_iis(pool, inputs, rounds, &decision, schedule);
      std::vector<VertexId> decided;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].decision.has_value()) {
          result.ok = false;
          result.first_failure = "no decision for P" +
                                 std::to_string(inputs[i].first) + " on input " +
                                 tau.to_string(pool);
          return result;
        }
        if (pool.color(*outcomes[i].decision) !=
            static_cast<Color>(inputs[i].first)) {
          result.ok = false;
          result.first_failure = "wrong-color decision on input " +
                                 tau.to_string(pool);
          return result;
        }
        decided.push_back(*outcomes[i].decision);
      }
      const Simplex out{Simplex(std::move(decided))};
      if (!task.output.contains(out) || !task.delta.allows(tau, out)) {
        result.ok = false;
        result.first_failure = "decisions " + out.to_string(pool) +
                               " violate Δ(" + tau.to_string(pool) + ")";
        return result;
      }
    }
  }
  return result;
}

}  // namespace trichroma::protocols
