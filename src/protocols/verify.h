#pragma once
// Exhaustive protocol verification: model-check a decision map against
// *every* iterated-immediate-snapshot execution.
//
// A decision map δ : Ch^r(I) → O is a protocol; by the correspondence
// between IIS schedules and ordered set partitions, the executions with a
// fixed participant set P and r rounds are exactly the |OP(P)|^r block
// schedules (13^r for three participants). verify_decision_map runs every
// one of them on the shared-memory simulator for every participant subset
// of every input facet, and checks the decided simplex against Δ. This is
// an *independent* end-to-end check of a solver witness: it exercises the
// runtime, the IIS protocol, and the view-interning correspondence rather
// than re-reading the map.

#include <cstdint>
#include <string>

#include "tasks/task.h"
#include "topology/chromatic.h"

namespace trichroma::protocols {

struct VerificationResult {
  bool ok = true;
  std::size_t executions = 0;       ///< schedules actually run
  std::string first_failure;        ///< human-readable, when !ok
};

/// Exhaustively verifies `decision` (defined on the vertices of Ch^rounds
/// of the task's input complex, chromatic) as a protocol for `task`.
/// `max_executions` bounds the total work (13^r per facet-subset grows
/// fast); exceeding it stops early with ok = true and the count reached.
VerificationResult verify_decision_map(const Task& task, const VertexMap& decision,
                                       int rounds,
                                       std::size_t max_executions = 200000);

}  // namespace trichroma::protocols
