#pragma once
// Cooperative cancellation: the one-way flag shared by the executor's job
// groups and the solver's analysis engines. A scheduler trips the flag;
// workers poll it at natural yield points (search-node flushes, probe-radius
// boundaries, task pickup) and unwind promptly. Lives in runtime/ because
// the executor hands one to every JobGroup; solver/engine.h re-exports it.

#include <atomic>

namespace trichroma {

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }
  /// The raw flag, for plumbing into MapSearchOptions / connectivity_csp.
  const std::atomic<bool>* flag() const { return &stop_; }

 private:
  std::atomic<bool> stop_{false};
};

}  // namespace trichroma
