#pragma once
// Derived shared objects: the reductions the paper invokes "without loss of
// generality" (§2.1), implemented as wait-free algorithms instead of
// primitives.
//
//  - AfekSnapshot: an atomic snapshot built from single-writer registers by
//    the classic double-collect-with-helping algorithm (Afek, Attiya,
//    Dolev, Gafni, Merritt, Shavit; JACM '93). A scan returns either after
//    two identical collects ("clean double collect") or by borrowing the
//    scan embedded in a register that changed twice during the scan — the
//    second change's embedded scan lies entirely within the scan interval.
//  - BgImmediateSnapshot: a one-shot immediate snapshot built from atomic
//    snapshots by the Borowsky–Gafni levels algorithm (STOC '93): a process
//    descends one level at a time, announcing (value, level), and returns
//    the set of processes at or below its level once that set is at least
//    as large as the level.
//
// Both are exposed as *operation state machines*: construct the operation,
// then repeatedly `co_await Turn{Single}; op.step();` until `op.done()`.
// Each step performs exactly one primitive atomic access, so the cooperative
// scheduler interleaves the derived algorithms at their true atomicity —
// which is exactly what the correctness tests exercise.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/shared_memory.h"

namespace trichroma::runtime {

template <typename T>
class AfekSnapshot {
 public:
  struct Cell {
    T value{};
    std::uint64_t seq = 0;  ///< per-writer sequence number
    /// The scan embedded in this write (the "help" for interfered scanners).
    std::vector<std::optional<T>> embedded;
  };

  explicit AfekSnapshot(int n) : regs_(n) {}
  int size() const { return regs_.size(); }

  /// One scan operation. Each step() is a single register read.
  class Scan {
   public:
    explicit Scan(AfekSnapshot& object)
        : object_(object),
          n_(static_cast<std::size_t>(object.size())),
          previous_(n_),
          current_(n_),
          baseline_seq_(n_, 0),
          moved_(n_, 0) {}

    bool done() const { return done_; }

    /// Performs the next register read; call only while !done().
    void step() {
      if (done_) throw std::logic_error("Scan already finished");
      current_[next_] = object_.regs_.read(static_cast<int>(next_));
      ++next_;
      if (next_ < n_) return;
      // A collect just completed; decide what to do with it.
      next_ = 0;
      if (!have_first_collect_) {
        previous_ = current_;
        have_first_collect_ = true;
        for (std::size_t j = 0; j < n_; ++j) {
          baseline_seq_[j] = seq_of(previous_[j]);
        }
        return;
      }
      bool identical = true;
      for (std::size_t j = 0; j < n_; ++j) {
        if (seq_of(previous_[j]) != seq_of(current_[j])) {
          identical = false;
          // A register that changed twice since the scan began carries an
          // embedded scan taken entirely within our interval: borrow it.
          if (seq_of(current_[j]) > baseline_seq_[j]) {
            if (++moved_[j] >= 2 && current_[j].has_value()) {
              result_ = current_[j]->embedded;
              done_ = true;
              return;
            }
          }
        }
      }
      if (identical) {  // clean double collect
        result_.clear();
        for (std::size_t j = 0; j < n_; ++j) {
          if (current_[j].has_value()) {
            result_.push_back(current_[j]->value);
          } else {
            result_.push_back(std::nullopt);
          }
        }
        done_ = true;
        return;
      }
      previous_ = current_;
    }

    /// The snapshot, one optional per process slot.
    const std::vector<std::optional<T>>& result() const {
      if (!done_) throw std::logic_error("Scan not finished");
      return result_;
    }

   private:
    static std::uint64_t seq_of(const std::optional<Cell>& c) {
      return c.has_value() ? c->seq : 0;
    }

    AfekSnapshot& object_;
    std::size_t n_;
    std::size_t next_ = 0;
    bool have_first_collect_ = false;
    std::vector<std::optional<Cell>> previous_, current_;
    std::vector<std::uint64_t> baseline_seq_;
    std::vector<int> moved_;
    std::vector<std::optional<T>> result_;
    bool done_ = false;

    // result_ may hold optionals directly when borrowed.
    static_assert(std::is_copy_constructible_v<T>);
  };

  /// One update operation: an embedded Scan followed by a single write.
  class Update {
   public:
    Update(AfekSnapshot& object, int pid, T value)
        : object_(object), pid_(pid), value_(std::move(value)), scan_(object) {}

    bool done() const { return done_; }

    void step() {
      if (done_) throw std::logic_error("Update already finished");
      if (!scan_.done()) {
        scan_.step();
        return;
      }
      // Single atomic write of (value, seq+1, embedded scan).
      const auto& slot = object_.regs_.read(pid_);
      Cell cell;
      cell.value = value_;
      cell.seq = (slot.has_value() ? slot->seq : 0) + 1;
      cell.embedded = scan_.result();
      object_.regs_.write(pid_, std::move(cell));
      done_ = true;
    }

   private:
    AfekSnapshot& object_;
    int pid_;
    T value_;
    Scan scan_;
    bool done_ = false;
  };

 private:
  RegisterFile<Cell> regs_;
};

/// One-shot immediate snapshot from atomic snapshots (Borowsky–Gafni).
template <typename T>
class BgImmediateSnapshot {
 public:
  explicit BgImmediateSnapshot(int n) : snap_(n), n_(n) {}
  int size() const { return n_; }

  /// The write-snapshot operation: alternating update / scan steps, one
  /// level per iteration, until the level condition holds.
  class WriteSnapshot {
   public:
    WriteSnapshot(BgImmediateSnapshot& object, int pid, T value)
        : object_(object), pid_(pid), value_(std::move(value)),
          level_(object.n_ + 1) {}

    bool done() const { return done_; }

    void step() {
      if (done_) throw std::logic_error("WriteSnapshot already finished");
      if (!pending_scan_) {
        // Descend a level and announce.
        --level_;
        object_.snap_.update(pid_, std::make_pair(value_, level_));
        pending_scan_ = true;
        return;
      }
      pending_scan_ = false;
      const auto contents = object_.snap_.scan_present();
      std::vector<std::pair<int, T>> at_or_below;
      for (const auto& [who, entry] : contents) {
        if (entry.second <= level_) at_or_below.emplace_back(who, entry.first);
      }
      if (static_cast<int>(at_or_below.size()) >= level_) {
        view_ = std::move(at_or_below);
        done_ = true;
      }
    }

    /// The immediate-snapshot view, as (pid, value) pairs.
    const std::vector<std::pair<int, T>>& view() const {
      if (!done_) throw std::logic_error("WriteSnapshot not finished");
      return view_;
    }

   private:
    BgImmediateSnapshot& object_;
    int pid_;
    T value_;
    int level_;
    bool pending_scan_ = false;
    bool done_ = false;
    std::vector<std::pair<int, T>> view_;
  };

 private:
  SnapshotObject<std::pair<T, int>> snap_;
  int n_;
};

}  // namespace trichroma::runtime
