#include "runtime/executor.h"

#include <cassert>
#include <thread>
#include <utility>

namespace trichroma {

namespace exec_detail {

// Shared state of one JobGroup. Kept alive by the handle, by tickets in
// flight, and by the parent's child list (pruned when the handle dies), so
// a stale ticket can never dangle. The invariants:
//   * `queue` holds submitted-but-unstarted closures (FIFO).
//   * `outstanding` counts this group's AND every descendant group's
//     queued+running tasks; it is incremented along the whole ancestor
//     chain at submit and decremented along it at completion.
//   * `epoch` bumps (under `mutex`) on every subtree event a waiter could
//     care about — new task, task finished — and `cv` is notified, so
//     wait() can sleep without missing work it should help with.
// Core mutexes are never held two at a time (ancestor walks lock one link
// per step), which rules out lock-order inversions by construction.
struct GroupCore {
  explicit GroupCore(Executor& ex) : executor(&ex) {}

  Executor* executor;
  std::shared_ptr<GroupCore> parent;  // null for roots

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::shared_ptr<GroupCore>> children;
  std::size_t outstanding = 0;  // subtree tasks queued or running
  std::uint64_t epoch = 0;
  std::exception_ptr first_error;
  bool error_reported = false;

  CancellationToken token;

  /// Bumps the event epoch of this core and every ancestor, waking waiters.
  static void signal_chain(GroupCore* core) {
    for (GroupCore* c = core; c != nullptr; c = c->parent.get()) {
      std::lock_guard<std::mutex> lock(c->mutex);
      ++c->epoch;
      c->cv.notify_all();
    }
  }

  static void add_outstanding(GroupCore* core) {
    for (GroupCore* c = core; c != nullptr; c = c->parent.get()) {
      std::lock_guard<std::mutex> lock(c->mutex);
      ++c->outstanding;
      ++c->epoch;
      c->cv.notify_all();
    }
  }

  static void finish_one(GroupCore* core) {
    for (GroupCore* c = core; c != nullptr; c = c->parent.get()) {
      std::lock_guard<std::mutex> lock(c->mutex);
      assert(c->outstanding > 0);
      --c->outstanding;
      ++c->epoch;
      c->cv.notify_all();
    }
  }

  /// Pops one queued task from this group or (depth-first) any descendant.
  /// Returns the owning core alongside the closure so completion is charged
  /// to the right group.
  static bool pop_subtree(const std::shared_ptr<GroupCore>& core,
                          std::shared_ptr<GroupCore>* from,
                          std::function<void()>* fn) {
    std::vector<std::shared_ptr<GroupCore>> kids;
    {
      std::lock_guard<std::mutex> lock(core->mutex);
      if (!core->queue.empty()) {
        *fn = std::move(core->queue.front());
        core->queue.pop_front();
        *from = core;
        return true;
      }
      kids = core->children;
    }
    for (const auto& kid : kids) {
      if (pop_subtree(kid, from, fn)) return true;
    }
    return false;
  }

  /// Runs one popped task: skipped outright when the group is cancelled,
  /// otherwise executed with the first exception captured (which also
  /// cancels the rest of the group — its siblings would only burn budget).
  static void run_task(const std::shared_ptr<GroupCore>& core,
                       std::function<void()> fn) {
    if (!core->token.stop_requested()) {
      try {
        fn();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(core->mutex);
          if (core->first_error == nullptr) {
            core->first_error = std::current_exception();
          }
        }
        core->token.request_stop();
      }
    }
    finish_one(core.get());
  }

  /// Pops one task addressed by a ticket (this group only; workers don't
  /// recurse — descendants post their own tickets). No-op when stale.
  static void run_ticket(const std::shared_ptr<GroupCore>& core) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(core->mutex);
      if (core->queue.empty()) return;  // a helper beat us to it
      fn = std::move(core->queue.front());
      core->queue.pop_front();
    }
    run_task(core, std::move(fn));
  }

  void cancel_tree() {
    token.request_stop();
    std::vector<std::shared_ptr<GroupCore>> kids;
    {
      std::lock_guard<std::mutex> lock(mutex);
      kids = children;
    }
    for (const auto& kid : kids) kid->cancel_tree();
  }

  /// Blocks until the subtree is drained, helping with queued work.
  void wait_all(const std::shared_ptr<GroupCore>& self) {
    assert(self.get() == this);
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (outstanding == 0) return;
      }
      std::shared_ptr<GroupCore> from;
      std::function<void()> fn;
      if (pop_subtree(self, &from, &fn)) {
        run_task(from, std::move(fn));
        continue;
      }
      // Nothing to help with: every subtree task is running elsewhere.
      // Sleep until the next subtree event (completion or new work).
      std::unique_lock<std::mutex> lock(mutex);
      if (outstanding == 0) return;
      const std::uint64_t seen = epoch;
      cv.wait(lock, [&] { return epoch != seen; });
    }
  }
};

struct WorkerSlot {
  std::mutex mutex;
  std::deque<Executor::Ticket> deque;
  std::thread thread;
};

namespace {
struct TlsBinding {
  Executor* owner = nullptr;
  int index = -1;
};
thread_local TlsBinding tls_binding;
}  // namespace

}  // namespace exec_detail

using exec_detail::GroupCore;
using exec_detail::WorkerSlot;

// ---------------------------------------------------------------------------
// JobGroup
// ---------------------------------------------------------------------------

JobGroup::JobGroup(Executor& executor, JobGroup* parent)
    : core_(std::make_shared<GroupCore>(executor)) {
  if (parent != nullptr) {
    assert(&executor == parent->core_->executor);
    core_->parent = parent->core_;
    {
      std::lock_guard<std::mutex> lock(parent->core_->mutex);
      parent->core_->children.push_back(core_);
    }
    if (parent->core_->token.stop_requested()) core_->token.request_stop();
  }
}

JobGroup::~JobGroup() {
  core_->wait_all(core_);
  if (core_->parent != nullptr) {
    std::lock_guard<std::mutex> lock(core_->parent->mutex);
    auto& siblings = core_->parent->children;
    for (auto it = siblings.begin(); it != siblings.end(); ++it) {
      if (it->get() == core_.get()) {
        siblings.erase(it);
        break;
      }
    }
  }
}

void JobGroup::submit(std::function<void()> fn) {
  if (core_->token.stop_requested()) return;
  {
    std::lock_guard<std::mutex> lock(core_->mutex);
    core_->queue.push_back(std::move(fn));
  }
  GroupCore::add_outstanding(core_.get());
  core_->executor->post_ticket(core_);
}

void JobGroup::wait() {
  core_->wait_all(core_);
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(core_->mutex);
    if (!core_->error_reported && core_->first_error != nullptr) {
      core_->error_reported = true;
      err = core_->first_error;
    }
  }
  if (err != nullptr) std::rethrow_exception(err);
}

void JobGroup::cancel() { core_->cancel_tree(); }

bool JobGroup::cancelled() const { return core_->token.stop_requested(); }

CancellationToken& JobGroup::token() { return core_->token; }

const std::atomic<bool>* JobGroup::cancel_flag() const {
  return core_->token.flag();
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Executor::Executor(int workers) {
  slots_.reserve(kMaxWorkers);
  for (int i = 0; i < kMaxWorkers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  ensure_workers(workers);
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stopping_ = true;
    sleep_cv_.notify_all();
  }
  const int spawned = spawned_.load();
  for (int i = 0; i < spawned; ++i) {
    if (slots_[static_cast<std::size_t>(i)]->thread.joinable()) {
      slots_[static_cast<std::size_t>(i)]->thread.join();
    }
  }
}

Executor& Executor::global() {
  // Leaked on purpose: worker threads must not be joined from static
  // destructors (tasks could still reference other statics).
  static Executor* instance = new Executor(0);
  return *instance;
}

void Executor::ensure_workers(int n) {
  if (n > kMaxWorkers) n = kMaxWorkers;
  if (n <= spawned_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(pool_mutex_);
  int spawned = spawned_.load(std::memory_order_relaxed);
  while (spawned < n) {
    slots_[static_cast<std::size_t>(spawned)]->thread =
        std::thread([this, spawned] { worker_loop(spawned); });
    ++spawned;
    spawned_.store(spawned, std::memory_order_release);
  }
}

int Executor::workers_spawned() const {
  return spawned_.load(std::memory_order_acquire);
}

int Executor::current_worker_index() const {
  const exec_detail::TlsBinding& tls = exec_detail::tls_binding;
  return tls.owner == this ? tls.index : -1;
}

void Executor::post_ticket(Ticket core) {
  const int self = current_worker_index();
  if (self >= 0) {
    WorkerSlot& slot = *slots_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.deque.push_back(std::move(core));
  } else if (spawned_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    inject_.push_back(std::move(core));
  } else {
    // No workers: nobody would ever drain a ticket, and the submitting
    // thread's wait() pops straight from the group queue. Drop it.
    return;
  }
  std::lock_guard<std::mutex> lock(sleep_mutex_);
  ++work_version_;
  sleep_cv_.notify_all();
}

Executor::Ticket Executor::next_ticket(int self) {
  WorkerSlot& own = *slots_[static_cast<std::size_t>(self)];
  {
    // Own deque: back (LIFO — the task most recently queued here).
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      Ticket t = std::move(own.deque.back());
      own.deque.pop_back();
      return t;
    }
  }
  {
    // Injection deque: front (FIFO across external submitters).
    std::lock_guard<std::mutex> lock(inject_mutex_);
    if (!inject_.empty()) {
      Ticket t = std::move(inject_.front());
      inject_.pop_front();
      return t;
    }
  }
  // Steal: front of the other workers' deques, round-robin from self+1.
  const int spawned = spawned_.load(std::memory_order_acquire);
  for (int d = 1; d < spawned; ++d) {
    const int victim = (self + d) % spawned;
    WorkerSlot& slot = *slots_[static_cast<std::size_t>(victim)];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.deque.empty()) {
      Ticket t = std::move(slot.deque.front());
      slot.deque.pop_front();
      return t;
    }
  }
  return nullptr;
}

void Executor::worker_loop(int index) {
  exec_detail::tls_binding = {this, index};
  for (;;) {
    if (Ticket t = next_ticket(index)) {
      GroupCore::run_ticket(t);
      continue;
    }
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      if (stopping_) return;
      seen = work_version_;
    }
    // Re-scan after recording the version: a ticket posted in between bumps
    // the version, so the wait below cannot miss it.
    if (Ticket t = next_ticket(index)) {
      GroupCore::run_ticket(t);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [&] { return stopping_ || work_version_ != seen; });
    if (stopping_) return;
  }
}

}  // namespace trichroma
