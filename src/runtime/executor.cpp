#include "runtime/executor.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace trichroma {

namespace {

/// Lock-free max: lifts `value` into `slot` if it is a new high-water mark.
void raise_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

namespace exec_detail {

// Shared state of one JobGroup. Kept alive by the handle, by tickets in
// flight, and by the parent's child list (pruned when the handle dies), so
// a stale ticket can never dangle. The invariants:
//   * `queue` holds submitted-but-unstarted closures (FIFO).
//   * `outstanding` counts this group's AND every descendant group's
//     queued+running tasks; it is incremented along the whole ancestor
//     chain at submit and decremented along it at completion.
//   * `epoch` bumps (under `mutex`) on every subtree event a waiter could
//     care about — new task, task finished — and `cv` is notified, so
//     wait() can sleep without missing work it should help with.
// Core mutexes are never held two at a time (ancestor walks lock one link
// per step), which rules out lock-order inversions by construction.
struct GroupCore {
  explicit GroupCore(Executor& ex) : executor(&ex) {}

  Executor* executor;
  std::shared_ptr<GroupCore> parent;  // null for roots

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::shared_ptr<GroupCore>> children;
  std::size_t outstanding = 0;  // subtree tasks queued or running
  std::uint64_t epoch = 0;
  std::exception_ptr first_error;
  bool error_reported = false;

  CancellationToken token;

  /// Bumps the event epoch of this core and every ancestor, waking waiters.
  static void signal_chain(GroupCore* core) {
    for (GroupCore* c = core; c != nullptr; c = c->parent.get()) {
      std::lock_guard<std::mutex> lock(c->mutex);
      ++c->epoch;
      c->cv.notify_all();
    }
  }

  static void add_outstanding(GroupCore* core) {
    for (GroupCore* c = core; c != nullptr; c = c->parent.get()) {
      std::lock_guard<std::mutex> lock(c->mutex);
      ++c->outstanding;
      ++c->epoch;
      c->cv.notify_all();
    }
  }

  static void finish_one(GroupCore* core) {
    for (GroupCore* c = core; c != nullptr; c = c->parent.get()) {
      std::lock_guard<std::mutex> lock(c->mutex);
      assert(c->outstanding > 0);
      --c->outstanding;
      ++c->epoch;
      c->cv.notify_all();
    }
  }

  /// Pops one queued task from this group or (depth-first) any descendant.
  /// Returns the owning core alongside the closure so completion is charged
  /// to the right group.
  static bool pop_subtree(const std::shared_ptr<GroupCore>& core,
                          std::shared_ptr<GroupCore>* from,
                          std::function<void()>* fn) {
    std::vector<std::shared_ptr<GroupCore>> kids;
    {
      std::lock_guard<std::mutex> lock(core->mutex);
      if (!core->queue.empty()) {
        *fn = std::move(core->queue.front());
        core->queue.pop_front();
        *from = core;
        return true;
      }
      kids = core->children;
    }
    for (const auto& kid : kids) {
      if (pop_subtree(kid, from, fn)) return true;
    }
    return false;
  }

  /// Runs one popped task: skipped outright when the group is cancelled,
  /// otherwise executed with the first exception captured (which also
  /// cancels the rest of the group — its siblings would only burn budget).
  static void run_task(const std::shared_ptr<GroupCore>& core,
                       std::function<void()> fn) {
    if (!core->token.stop_requested()) {
      // Spans the job body whether a pool worker won the ticket or a
      // helping waiter drained it inline — both are job executions. The
      // latency histogram covers the same extent (pool jobs are chunky —
      // ladder chunks, search prefixes — so two clock reads per job stay
      // far inside the obs overhead contract; see bench_obs).
      TRI_SPAN("executor/job");
      static obs::Histogram& latency =
          obs::MetricsRegistry::global().histogram("executor.job_latency_ns");
      const auto job_start = std::chrono::steady_clock::now();
      try {
        fn();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(core->mutex);
          if (core->first_error == nullptr) {
            core->first_error = std::current_exception();
          }
        }
        core->token.request_stop();
      }
      latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - job_start)
              .count()));
    }
    finish_one(core.get());
  }

  /// Pops the task addressed by a ticket (this group only; workers don't
  /// recurse — descendants post their own tickets). Returns whether a
  /// closure was actually popped (false = stale ticket: a helper beat us).
  /// Split from execution so the caller can count the job BEFORE it runs —
  /// running it first would let wait() observe completion (finish_one)
  /// ahead of the counter update.
  static bool pop_ticket(const std::shared_ptr<GroupCore>& core,
                         std::function<void()>& fn) {
    std::lock_guard<std::mutex> lock(core->mutex);
    if (core->queue.empty()) return false;
    fn = std::move(core->queue.front());
    core->queue.pop_front();
    return true;
  }

  void cancel_tree() {
    token.request_stop();
    std::vector<std::shared_ptr<GroupCore>> kids;
    {
      std::lock_guard<std::mutex> lock(mutex);
      kids = children;
    }
    for (const auto& kid : kids) kid->cancel_tree();
  }

  /// Blocks until the subtree is drained, helping with queued work.
  void wait_all(const std::shared_ptr<GroupCore>& self) {
    assert(self.get() == this);
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (outstanding == 0) return;
      }
      std::shared_ptr<GroupCore> from;
      std::function<void()> fn;
      if (pop_subtree(self, &from, &fn)) {
        executor->help_runs_.fetch_add(1, std::memory_order_relaxed);
        run_task(from, std::move(fn));
        continue;
      }
      // Nothing to help with: every subtree task is running elsewhere.
      // Sleep until the next subtree event (completion or new work).
      std::unique_lock<std::mutex> lock(mutex);
      if (outstanding == 0) return;
      const std::uint64_t seen = epoch;
      cv.wait(lock, [&] { return epoch != seen; });
    }
  }
};

struct WorkerSlot {
  std::mutex mutex;
  std::deque<Executor::Ticket> deque;
  std::thread thread;
};

namespace {
struct TlsBinding {
  Executor* owner = nullptr;
  int index = -1;
};
thread_local TlsBinding tls_binding;
}  // namespace

}  // namespace exec_detail

using exec_detail::GroupCore;
using exec_detail::WorkerSlot;

// ---------------------------------------------------------------------------
// JobGroup
// ---------------------------------------------------------------------------

JobGroup::JobGroup(Executor& executor, JobGroup* parent)
    : core_(std::make_shared<GroupCore>(executor)) {
  if (parent != nullptr) {
    assert(&executor == parent->core_->executor);
    core_->parent = parent->core_;
    {
      std::lock_guard<std::mutex> lock(parent->core_->mutex);
      parent->core_->children.push_back(core_);
    }
    if (parent->core_->token.stop_requested()) core_->token.request_stop();
  }
}

JobGroup::~JobGroup() {
  core_->wait_all(core_);
  if (core_->parent != nullptr) {
    std::lock_guard<std::mutex> lock(core_->parent->mutex);
    auto& siblings = core_->parent->children;
    for (auto it = siblings.begin(); it != siblings.end(); ++it) {
      if (it->get() == core_.get()) {
        siblings.erase(it);
        break;
      }
    }
  }
}

void JobGroup::submit(std::function<void()> fn) {
  if (core_->token.stop_requested()) return;
  {
    std::lock_guard<std::mutex> lock(core_->mutex);
    core_->queue.push_back(std::move(fn));
  }
  GroupCore::add_outstanding(core_.get());
  core_->executor->post_ticket(core_);
}

void JobGroup::wait() {
  core_->wait_all(core_);
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(core_->mutex);
    if (!core_->error_reported && core_->first_error != nullptr) {
      core_->error_reported = true;
      err = core_->first_error;
    }
  }
  if (err != nullptr) std::rethrow_exception(err);
}

void JobGroup::cancel() { core_->cancel_tree(); }

bool JobGroup::cancelled() const { return core_->token.stop_requested(); }

CancellationToken& JobGroup::token() { return core_->token; }

const std::atomic<bool>* JobGroup::cancel_flag() const {
  return core_->token.flag();
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Executor::Executor(int workers) {
  slots_.reserve(kMaxWorkers);
  for (int i = 0; i < kMaxWorkers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  ensure_workers(workers);
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stopping_ = true;
    sleep_cv_.notify_all();
  }
  const int spawned = spawned_.load();
  for (int i = 0; i < spawned; ++i) {
    if (slots_[static_cast<std::size_t>(i)]->thread.joinable()) {
      slots_[static_cast<std::size_t>(i)]->thread.join();
    }
  }
}

Executor& Executor::global() {
  // Leaked on purpose: worker threads must not be joined from static
  // destructors (tasks could still reference other statics).
  static Executor* instance = new Executor(0);
  return *instance;
}

void Executor::ensure_workers(int n) {
  if (n > kMaxWorkers) n = kMaxWorkers;
  if (n <= spawned_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(pool_mutex_);
  int spawned = spawned_.load(std::memory_order_relaxed);
  while (spawned < n) {
    slots_[static_cast<std::size_t>(spawned)]->thread =
        std::thread([this, spawned] { worker_loop(spawned); });
    ++spawned;
    spawned_.store(spawned, std::memory_order_release);
  }
}

int Executor::workers_spawned() const {
  return spawned_.load(std::memory_order_acquire);
}

std::size_t Executor::recommended_chunks(int workers, std::size_t items) {
  if (items == 0) return 0;
  if (workers <= 1) return 1;
  // 4 chunks per worker: coarse enough that per-chunk overhead (a builder, a
  // hash set, a JobGroup ticket) stays negligible, fine enough that one slow
  // chunk cannot serialize the tail.
  const std::size_t target =
      static_cast<std::size_t>(workers > kMaxWorkers ? kMaxWorkers : workers) * 4;
  return target < items ? target : items;
}

int Executor::current_worker_index() const {
  const exec_detail::TlsBinding& tls = exec_detail::tls_binding;
  return tls.owner == this ? tls.index : -1;
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.jobs_run = jobs_run_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.injections = injections_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.help_runs = help_runs_.load(std::memory_order_relaxed);
  return s;
}

void Executor::reset_stats() {
  jobs_run_.store(0, std::memory_order_relaxed);
  steals_.store(0, std::memory_order_relaxed);
  injections_.store(0, std::memory_order_relaxed);
  max_queue_depth_.store(0, std::memory_order_relaxed);
  help_runs_.store(0, std::memory_order_relaxed);
}

void Executor::post_ticket(Ticket core) {
  const int self = current_worker_index();
  std::size_t depth = 0;
  if (self >= 0) {
    WorkerSlot& slot = *slots_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.deque.push_back(std::move(core));
    depth = slot.deque.size();
  } else if (spawned_.load(std::memory_order_acquire) > 0) {
    {
      std::lock_guard<std::mutex> lock(inject_mutex_);
      inject_.push_back(std::move(core));
      depth = inject_.size();
    }
    injections_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& injected =
        obs::MetricsRegistry::global().counter("executor.injections");
    injected.add();
  } else {
    // No workers: nobody would ever drain a ticket, and the submitting
    // thread's wait() pops straight from the group queue. Drop it.
    return;
  }
  raise_max(max_queue_depth_, depth);
  // Point-in-time depth of whichever queue took the ticket; last write wins,
  // which is the right semantics for a sampled gauge.
  static obs::Gauge& queue_depth =
      obs::MetricsRegistry::global().gauge("executor.queue_depth");
  queue_depth.set(static_cast<std::int64_t>(depth));
  if (obs::trace_enabled()) {
    char name[32];
    if (self >= 0) {
      std::snprintf(name, sizeof(name), "executor/queue/w%d", self);
    } else {
      std::snprintf(name, sizeof(name), "executor/queue/inject");
    }
    obs::trace_counter(name, static_cast<double>(depth));
  }
  std::lock_guard<std::mutex> lock(sleep_mutex_);
  ++work_version_;
  sleep_cv_.notify_all();
}

Executor::Ticket Executor::next_ticket(int self) {
  WorkerSlot& own = *slots_[static_cast<std::size_t>(self)];
  {
    // Own deque: back (LIFO — the task most recently queued here).
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      Ticket t = std::move(own.deque.back());
      own.deque.pop_back();
      return t;
    }
  }
  {
    // Injection deque: front (FIFO across external submitters).
    std::lock_guard<std::mutex> lock(inject_mutex_);
    if (!inject_.empty()) {
      Ticket t = std::move(inject_.front());
      inject_.pop_front();
      return t;
    }
  }
  // Steal: front of the other workers' deques, round-robin from self+1.
  const int spawned = spawned_.load(std::memory_order_acquire);
  for (int d = 1; d < spawned; ++d) {
    const int victim = (self + d) % spawned;
    WorkerSlot& slot = *slots_[static_cast<std::size_t>(victim)];
    bool stolen = false;
    Ticket t;
    {
      std::lock_guard<std::mutex> lock(slot.mutex);
      if (!slot.deque.empty()) {
        t = std::move(slot.deque.front());
        slot.deque.pop_front();
        stolen = true;
      }
    }
    if (stolen) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& steals =
          obs::MetricsRegistry::global().counter("executor.steals");
      steals.add();
      obs::trace_instant("executor/steal");
      return t;
    }
  }
  return nullptr;
}

void Executor::worker_loop(int index) {
  exec_detail::tls_binding = {this, index};
  static obs::Counter& jobs =
      obs::MetricsRegistry::global().counter("executor.jobs_run");
  const auto run = [&](const Ticket& t) {
    std::function<void()> fn;
    if (GroupCore::pop_ticket(t, fn)) {
      // Counted at pop, not completion: the pop precedes this job's
      // finish_one under the group mutex, so every counted job is visible
      // to a waiter by the time wait() unblocks.
      jobs_run_.fetch_add(1, std::memory_order_relaxed);
      jobs.add();
      GroupCore::run_task(t, std::move(fn));
    }
  };
  for (;;) {
    if (Ticket t = next_ticket(index)) {
      run(t);
      continue;
    }
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      if (stopping_) return;
      seen = work_version_;
    }
    // Re-scan after recording the version: a ticket posted in between bumps
    // the version, so the wait below cannot miss it.
    if (Ticket t = next_ticket(index)) {
      run(t);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [&] { return stopping_ || work_version_ != seen; });
    if (stopping_) return;
  }
}

}  // namespace trichroma
