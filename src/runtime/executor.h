#pragma once
// The shared work-stealing executor: one persistent worker pool serving
// every parallel layer of the solver (prefix jobs inside find_decision_map,
// the racing pipeline's impossibility lane, whole-task batch jobs).
//
// Job model. Work is submitted through a JobGroup — a hierarchical handle
// that owns a queue of closures, a CancellationToken, and the first
// exception any of its tasks threw. `wait()` blocks until every task of the
// group (and of its child groups) finished, *helping* while it waits: a
// blocked waiter pops and runs tasks from its own subtree, so nesting
// groups on a small pool (or on no pool at all) can never deadlock —
// zero-worker executors simply run everything inline in wait(). `cancel()`
// trips the group's token, propagates to child groups, and makes
// queued-but-unstarted tasks complete as no-ops; running tasks are expected
// to poll `token()` cooperatively.
//
// Stealing layout. Each worker owns a deque of *tickets* in the Chase–Lev
// access pattern — the owner pushes and pops at the back (LIFO, keeps the
// working set hot), thieves and the injection path take from the front
// (FIFO, steals the oldest = usually largest work). A ticket is only a
// reference to a group ("this group has a task for you"): the closures
// themselves live in the group's own FIFO queue, so a stale ticket — its
// task already executed by a helping waiter or another thief — pops
// nothing and is dropped. The indirection is what makes help-while-waiting
// safe: waiters never touch the deques, only group queues, and tickets
// never dangle (they hold shared_ptrs to the group core). Submissions from
// non-worker threads go to a global injection deque that every worker
// checks between steals.
//
// Determinism. The executor itself promises nothing about ordering; the
// solver's determinism contract is enforced a layer up (map_search's
// canonical prefix accounting, the pipeline's precedence merge, the batch
// driver's catalog-order output), which is exactly what makes stealing
// safe to use underneath.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/cancellation.h"

namespace trichroma {

class Executor;

/// Scheduling-telemetry snapshot (Executor::stats). Values are cumulative
/// since construction or the last reset_stats(). Pure observability: none
/// of these feed back into scheduling, and all are nondeterministic across
/// runs (reports redact them under redact_timings).
struct ExecutorStats {
  std::uint64_t jobs_run = 0;    ///< tickets that executed a queued closure
  std::uint64_t steals = 0;      ///< tickets taken from another worker's deque
  std::uint64_t injections = 0;  ///< tickets routed via the injection deque
  std::uint64_t max_queue_depth = 0;  ///< high-water mark of any one deque
  /// Tasks drained inline by a blocked wait() (help-while-waiting) instead
  /// of by a pool worker's ticket. Disjoint from jobs_run.
  std::uint64_t help_runs = 0;
};

namespace exec_detail {
struct GroupCore;
struct WorkerSlot;
}  // namespace exec_detail

/// Hierarchical handle for a batch of related tasks. Not thread-safe as a
/// handle (submit/wait/cancel from the owning thread); the tasks themselves
/// run anywhere.
class JobGroup {
 public:
  /// A root group on `executor`, or a child of `parent` (cancel propagates
  /// parent → child; wait on the parent covers the child's tasks). A child
  /// of an already-cancelled parent starts cancelled.
  explicit JobGroup(Executor& executor, JobGroup* parent = nullptr);
  /// Waits for outstanding tasks (exceptions are swallowed here — call
  /// wait() yourself to observe them) and detaches from the parent.
  ~JobGroup();

  JobGroup(const JobGroup&) = delete;
  JobGroup& operator=(const JobGroup&) = delete;

  /// Enqueues a task. If the group is already cancelled the task is dropped
  /// (it still counts as "submitted then skipped", not an error).
  void submit(std::function<void()> fn);

  /// Blocks until every task submitted to this group and its descendants
  /// has finished, running queued subtree tasks inline while blocked.
  /// Rethrows the first exception captured from a task (once).
  void wait();

  /// Requests cooperative stop: trips the token here and in every child
  /// group, and turns queued-but-unstarted tasks into no-ops.
  void cancel();

  bool cancelled() const;
  CancellationToken& token();
  const std::atomic<bool>* cancel_flag() const;

 private:
  std::shared_ptr<exec_detail::GroupCore> core_;
};

/// The pool. One process-wide instance (global()) is shared by the solver;
/// tests construct private ones. Workers are started lazily via
/// ensure_workers and live until destruction — repeated submissions reuse
/// them, which is the point (no per-call spawn/join).
class Executor {
 public:
  /// Starts with `workers` threads (0 = none; wait() then runs everything
  /// inline on the calling thread).
  explicit Executor(int workers = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide pool used by the solver layers.
  static Executor& global();

  /// Grows the pool so at least `n` workers exist (clamped to kMaxWorkers;
  /// never shrinks). Cheap when already satisfied.
  void ensure_workers(int n);
  int workers_spawned() const;

  /// Index of the calling worker thread in THIS executor, or -1.
  int current_worker_index() const;

  /// Cumulative scheduling telemetry. Racing reads while work is in flight
  /// are fine (each field is individually atomic); for exact values quiesce
  /// first (wait() on every group).
  ExecutorStats stats() const;
  /// Zeroes the telemetry — call between batches to scope stats to one run.
  void reset_stats();

  static constexpr int kMaxWorkers = 64;

  /// Chunk-count heuristic for data-parallel fan-out (the chunked
  /// subdivision build, the striped Δ-image population): enough chunks per
  /// worker that stealing can smooth imbalance, capped at the item count. A
  /// pure function of (workers, items) — never of runtime load — so the
  /// decomposition is reproducible; and because every consumer merges chunks
  /// in deterministic order, the chunk count itself never reaches a report.
  static std::size_t recommended_chunks(int workers, std::size_t items);

 private:
  friend class JobGroup;
  friend struct exec_detail::GroupCore;
  friend struct exec_detail::WorkerSlot;

  using Ticket = std::shared_ptr<exec_detail::GroupCore>;

  /// Routes a ticket for one queued task: the submitting worker's own deque
  /// (back) or the injection deque, then wakes a sleeper.
  void post_ticket(Ticket core);
  Ticket next_ticket(int self);
  void worker_loop(int index);

  mutable std::mutex pool_mutex_;  // guards spawning
  std::vector<std::unique_ptr<exec_detail::WorkerSlot>> slots_;
  std::atomic<int> spawned_{0};

  // Telemetry (relaxed; bumped at ticket granularity, where a mutex has
  // just been taken anyway — see stats()).
  std::atomic<std::uint64_t> jobs_run_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> injections_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> help_runs_{0};

  std::mutex inject_mutex_;
  std::deque<Ticket> inject_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::uint64_t work_version_ = 0;  // guarded by sleep_mutex_
  bool stopping_ = false;           // guarded by sleep_mutex_
};

}  // namespace trichroma
