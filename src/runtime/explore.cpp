#include "runtime/explore.h"

#include <stdexcept>

namespace trichroma::runtime {

namespace {

struct Explorer {
  const std::function<std::vector<ProcessBody>()>& factory;
  const std::function<void()>& on_complete;
  const ExploreOptions& options;
  ExploreStats stats;
  Schedule path;

  /// The scheduler choices available in the state reached by `path`.
  /// Replays from scratch, then inspects the executor.
  std::vector<Block> choices_after_replay() {
    Executor ex(factory());
    for (const Block& block : path) ex.step(block);
    if (ex.all_done()) return {};
    std::vector<Block> choices;
    std::vector<int> is_writers;
    for (int pid : ex.enabled()) {
      choices.push_back(Block{pid});
      if (ex.pending(pid) == OpPhase::IsWrite) is_writers.push_back(pid);
    }
    // All subsets of size >= 2 of the IS-write-ready processes.
    const std::size_t n = is_writers.size();
    for (std::size_t mask = 1; n >= 2 && mask < (1u << n); ++mask) {
      if (__builtin_popcount(static_cast<unsigned>(mask)) < 2) continue;
      Block block;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) block.push_back(is_writers[i]);
      }
      choices.push_back(std::move(block));
    }
    return choices;
  }

  void dfs() {
    if (!stats.exhaustive) return;
    if (path.size() > options.max_steps) {
      throw std::runtime_error("explore: schedule length bound exceeded "
                               "(non-terminating protocol?)");
    }
    const auto choices = choices_after_replay();
    if (choices.empty()) {
      // Complete execution: replay once more so the captured outputs hold
      // this execution's results when the callback runs.
      if (stats.executions >= options.max_executions) {
        stats.exhaustive = false;
        return;
      }
      ++stats.executions;
      Executor ex(factory());
      for (const Block& block : path) ex.step(block);
      on_complete();
      return;
    }
    for (const Block& choice : choices) {
      path.push_back(choice);
      dfs();
      path.pop_back();
      if (!stats.exhaustive) return;
    }
  }
};

}  // namespace

ExploreStats explore_all_executions(
    const std::function<std::vector<ProcessBody>()>& factory,
    const std::function<void()>& on_complete, const ExploreOptions& options) {
  Explorer explorer{factory, on_complete, options, {}, {}};
  explorer.dfs();
  return explorer.stats;
}

}  // namespace trichroma::runtime
