#pragma once
// Stateless model checking: exhaustive enumeration of every asynchronous
// interleaving of a protocol.
//
// The scheduler's choice points are (a) which enabled process takes its
// next single atomic step and (b) which non-empty subset of the processes
// poised at an immediate-snapshot write goes together as one concurrency
// block. Enumerating all choices at every point visits every execution the
// model admits — for one round of one-shot immediate snapshot by three
// processes that is exactly the 13 ordered set partitions, which the tests
// use to validate the explorer itself.
//
// Protocols are deterministic, so executions are replayed from scratch
// along each schedule prefix (classic stateless exploration): the factory
// must return a *fresh* protocol instance (including fresh shared objects
// and cleared output slots) on every call.

#include <cstdint>
#include <functional>

#include "runtime/system.h"

namespace trichroma::runtime {

struct ExploreStats {
  std::size_t executions = 0;  ///< complete executions visited
  bool exhaustive = true;      ///< false if a cap stopped the enumeration
};

struct ExploreOptions {
  std::size_t max_executions = 1'000'000;
  std::size_t max_steps = 10'000;  ///< per-execution schedule length bound
};

/// Enumerates every execution of the protocol produced by `factory`.
/// `on_complete` runs after each finished execution — the factory's captured
/// output slots hold that execution's results at that moment.
ExploreStats explore_all_executions(
    const std::function<std::vector<ProcessBody>()>& factory,
    const std::function<void()>& on_complete, const ExploreOptions& options = {});

}  // namespace trichroma::runtime
