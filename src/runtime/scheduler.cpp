#include "runtime/scheduler.h"

#include <stdexcept>

namespace trichroma::runtime {

void ProcessBody::resume() {
  if (done()) {
    throw std::logic_error("resume() on a finished process");
  }
  handle_.resume();
  if (handle_.done() && handle_.promise().exception) {
    std::rethrow_exception(handle_.promise().exception);
  }
}

}  // namespace trichroma::runtime
