#pragma once
// Cooperative single-threaded simulation of asynchronous processes.
//
// A protocol process is a C++20 coroutine (ProcessBody). Every atomic
// shared-memory operation is announced with `co_await Turn{phase}` and its
// effect is executed in the code immediately following the co_await: since
// only one coroutine segment runs at a time, everything between two
// suspension points is atomic. The scheduler (see runtime/system.h) decides
// which process takes the next step, which makes the full set of
// asynchronous interleavings — the object the topological model quantifies
// over — enumerable and replayable.
//
// Immediate snapshot needs block-level atomicity ("write, then snapshot
// immediately, with concurrent processes' writes visible"), so an IS
// operation announces two phases: IsWrite then IsRead. A scheduler block
// {p1, ..., pk} resumes all members' write phases first, then all read
// phases — exactly the ordered-partition semantics that generates the
// standard chromatic subdivision.

#include <coroutine>
#include <exception>
#include <utility>

namespace trichroma::runtime {

enum class OpPhase {
  None,     ///< process not yet primed or already finished
  Single,   ///< a one-shot atomic operation (read/write/update/scan)
  IsWrite,  ///< first half of an immediate-snapshot operation
  IsRead,   ///< second half of an immediate-snapshot operation
};

class ProcessBody {
 public:
  struct promise_type {
    OpPhase pending = OpPhase::None;
    std::exception_ptr exception;

    ProcessBody get_return_object() {
      return ProcessBody(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  ProcessBody() = default;
  explicit ProcessBody(Handle h) : handle_(h) {}
  ProcessBody(ProcessBody&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  ProcessBody& operator=(ProcessBody&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ProcessBody(const ProcessBody&) = delete;
  ProcessBody& operator=(const ProcessBody&) = delete;
  ~ProcessBody() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return !handle_ || handle_.done(); }

  /// Phase of the operation the process will perform on its next resume.
  OpPhase pending() const {
    return done() ? OpPhase::None : handle_.promise().pending;
  }

  /// Runs the process to its next suspension point (executing the pending
  /// operation's effect). Rethrows any exception the body raised.
  void resume();

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_ = nullptr;
};

/// Awaitable announcing the next atomic operation's phase.
struct Turn {
  OpPhase phase = OpPhase::Single;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<ProcessBody::promise_type> h) const noexcept {
    h.promise().pending = phase;
  }
  void await_resume() const noexcept {}
};

}  // namespace trichroma::runtime
