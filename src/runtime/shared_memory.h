#pragma once
// Shared-memory objects of the read/write model (Section 2.1 of the paper).
//
// These are plain single-threaded data structures; atomicity comes from the
// cooperative scheduler (everything a coroutine does between suspension
// points is one atomic step). Protocol code announces an operation with
// `co_await Turn{...}` and then calls the object's effect method:
//
//   co_await Turn{OpPhase::Single};
//   snapshot.update(pid, value);           // atomic update
//
//   co_await Turn{OpPhase::Single};
//   auto view = snapshot.scan();           // atomic scan
//
//   co_await Turn{OpPhase::IsWrite};
//   is.write(pid, value);                  // immediate snapshot: write...
//   co_await Turn{OpPhase::IsRead};
//   auto view = is.snap();                 // ...then snapshot, block-atomic

#include <optional>
#include <vector>

namespace trichroma::runtime {

/// n single-writer multi-reader atomic registers R[0..n-1].
template <typename T>
class RegisterFile {
 public:
  explicit RegisterFile(int n) : slots_(static_cast<std::size_t>(n)) {}

  void write(int pid, T value) { slots_[static_cast<std::size_t>(pid)] = std::move(value); }
  const std::optional<T>& read(int pid) const { return slots_[static_cast<std::size_t>(pid)]; }
  int size() const { return static_cast<int>(slots_.size()); }

 private:
  std::vector<std::optional<T>> slots_;
};

/// An atomic snapshot object: update(i, v) writes process i's segment;
/// scan() returns all segments at once. (The paper's `update`/`scan`.)
template <typename T>
class SnapshotObject {
 public:
  explicit SnapshotObject(int n) : slots_(static_cast<std::size_t>(n)) {}

  void update(int pid, T value) { slots_[static_cast<std::size_t>(pid)] = std::move(value); }

  /// The current contents of every segment (empty optionals for processes
  /// that have not updated yet).
  std::vector<std::optional<T>> scan() const { return slots_; }

  /// Scan filtered to the non-empty segments, as (pid, value) pairs.
  std::vector<std::pair<int, T>> scan_present() const {
    std::vector<std::pair<int, T>> out;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].has_value()) out.emplace_back(static_cast<int>(i), *slots_[i]);
    }
    return out;
  }

  int size() const { return static_cast<int>(slots_.size()); }

 private:
  std::vector<std::optional<T>> slots_;
};

/// A one-shot immediate-snapshot object: write_i(v) immediately followed by
/// an atomic snapshot, with processes scheduled in the same block seeing
/// each other's writes. The scheduler guarantees the write phases of a
/// block precede its read phases.
template <typename T>
class ImmediateSnapshotObject {
 public:
  explicit ImmediateSnapshotObject(int n) : slots_(static_cast<std::size_t>(n)) {}

  void write(int pid, T value) { slots_[static_cast<std::size_t>(pid)] = std::move(value); }

  /// The snapshot half: everything written so far, as (pid, value) pairs.
  std::vector<std::pair<int, T>> snap() const {
    std::vector<std::pair<int, T>> out;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].has_value()) out.emplace_back(static_cast<int>(i), *slots_[i]);
    }
    return out;
  }

  int size() const { return static_cast<int>(slots_.size()); }

 private:
  std::vector<std::optional<T>> slots_;
};

}  // namespace trichroma::runtime
