#include "runtime/system.h"

#include <algorithm>
#include <stdexcept>

namespace trichroma::runtime {

Executor::Executor(std::vector<ProcessBody> processes)
    : processes_(std::move(processes)) {
  // Prime every process: run it to its first announced operation (only
  // local initialization happens before the first co_await).
  for (auto& p : processes_) {
    if (!p.done()) p.resume();
  }
}

bool Executor::all_done() const {
  for (const auto& p : processes_) {
    if (!p.done()) return false;
  }
  return true;
}

std::vector<int> Executor::enabled() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (!processes_[i].done()) out.push_back(static_cast<int>(i));
  }
  return out;
}

void Executor::step(const Block& block) {
  if (block.empty()) throw std::logic_error("empty scheduler block");
  for (int pid : block) {
    if (pid < 0 || pid >= process_count()) {
      throw std::logic_error("scheduler block names an unknown process");
    }
    if (done(pid)) throw std::logic_error("scheduler block names a finished process");
  }
  ++steps_;
  if (block.size() == 1 && pending(block[0]) == OpPhase::Single) {
    processes_[static_cast<std::size_t>(block[0])].resume();
    return;
  }
  // Immediate-snapshot block: all members must be at a write phase.
  for (int pid : block) {
    if (pending(pid) != OpPhase::IsWrite) {
      throw std::logic_error(
          "multi-process (or IS) block requires every member at an "
          "immediate-snapshot write");
    }
  }
  for (int pid : block) {  // all writes...
    processes_[static_cast<std::size_t>(pid)].resume();
    if (pending(pid) != OpPhase::IsRead) {
      throw std::logic_error("immediate-snapshot write must be followed by its read");
    }
  }
  for (int pid : block) {  // ...then all snapshots
    processes_[static_cast<std::size_t>(pid)].resume();
  }
}

void Executor::run(const Schedule& schedule, std::size_t step_cap) {
  for (const Block& block : schedule) {
    if (steps_ > step_cap) throw std::runtime_error("executor step cap exceeded");
    step(block);
  }
  std::size_t next = 0;
  while (!all_done()) {
    if (steps_ > step_cap) throw std::runtime_error("executor step cap exceeded");
    const auto live = enabled();
    step(Block{live[next % live.size()]});
    ++next;
  }
}

void Executor::run_random(std::mt19937_64& rng, double block_prob,
                          std::size_t step_cap) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  while (!all_done()) {
    if (steps_ > step_cap) throw std::runtime_error("executor step cap exceeded");
    const auto live = enabled();
    std::vector<int> writers;
    for (int pid : live) {
      if (pending(pid) == OpPhase::IsWrite) writers.push_back(pid);
    }
    if (writers.size() >= 2 && coin(rng) < block_prob) {
      // Random non-empty subset of the IS-ready processes.
      Block block;
      while (block.empty()) {
        for (int pid : writers) {
          if (coin(rng) < 0.5) block.push_back(pid);
        }
      }
      step(block);
    } else {
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      step(Block{live[pick(rng)]});
    }
  }
}

namespace {

void partitions_rec(const std::vector<int>& items, Schedule& prefix,
                    std::vector<Schedule>& out) {
  if (items.empty()) {
    out.push_back(prefix);
    return;
  }
  const std::size_t n = items.size();
  for (std::size_t mask = 1; mask < (1u << n); ++mask) {
    Block block;
    std::vector<int> rest;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        block.push_back(items[i]);
      } else {
        rest.push_back(items[i]);
      }
    }
    prefix.push_back(std::move(block));
    partitions_rec(rest, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<Schedule> ordered_partition_schedules(const std::vector<int>& pids) {
  std::vector<Schedule> out;
  Schedule prefix;
  partitions_rec(pids, prefix, out);
  return out;
}

std::vector<Schedule> all_iis_schedules(const std::vector<int>& pids, int rounds) {
  std::vector<Schedule> out{Schedule{}};
  const auto per_round = ordered_partition_schedules(pids);
  for (int r = 0; r < rounds; ++r) {
    std::vector<Schedule> next;
    next.reserve(out.size() * per_round.size());
    for (const Schedule& prefix : out) {
      for (const Schedule& round : per_round) {
        Schedule s = prefix;
        s.insert(s.end(), round.begin(), round.end());
        next.push_back(std::move(s));
      }
    }
    out = std::move(next);
  }
  return out;
}

}  // namespace trichroma::runtime
