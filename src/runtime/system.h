#pragma once
// The execution harness: drives a set of protocol coroutines under an
// explicit schedule, supporting exhaustive and randomized adversaries.
//
// A schedule is a sequence of *blocks* (non-empty sets of process ids):
//  - a singleton block lets that process perform its next atomic operation;
//  - a multi-process block requires every member to be about to perform an
//    immediate-snapshot operation, and executes all their writes before all
//    their snapshots — the concurrency-block semantics whose one-round
//    executions are exactly the ordered set partitions / the standard
//    chromatic subdivision.
//
// When a schedule runs out before the protocol finishes, `run` falls back
// to deterministic round-robin singleton steps, so every schedule prefix
// extends to a complete execution (wait-free protocols always terminate).

#include <cstdint>
#include <random>
#include <vector>

#include "runtime/scheduler.h"

namespace trichroma::runtime {

using Block = std::vector<int>;
using Schedule = std::vector<Block>;

class Executor {
 public:
  explicit Executor(std::vector<ProcessBody> processes);

  int process_count() const { return static_cast<int>(processes_.size()); }
  bool done(int pid) const { return processes_[static_cast<std::size_t>(pid)].done(); }
  bool all_done() const;
  std::vector<int> enabled() const;
  OpPhase pending(int pid) const {
    return processes_[static_cast<std::size_t>(pid)].pending();
  }
  std::size_t steps_taken() const { return steps_; }

  /// Executes one block. Throws std::logic_error on malformed blocks
  /// (finished members, or a multi-process block whose members are not all
  /// at an immediate-snapshot write).
  void step(const Block& block);

  /// Runs `schedule`, then round-robin singletons until every process is
  /// done. Throws if `step_cap` steps do not finish the protocol.
  void run(const Schedule& schedule, std::size_t step_cap = 100000);

  /// Randomized adversary: at each step, with probability `block_prob`
  /// groups a random subset of IS-write-ready processes into one block,
  /// otherwise steps one random process.
  void run_random(std::mt19937_64& rng, double block_prob = 0.3,
                  std::size_t step_cap = 100000);

 private:
  std::vector<ProcessBody> processes_;
  std::size_t steps_ = 0;
};

/// All ordered set partitions of `pids` (each block non-empty, order
/// significant); 13 outcomes for three processes.
std::vector<Schedule> ordered_partition_schedules(const std::vector<int>& pids);

/// All block schedules for `rounds` rounds of aligned one-shot immediate
/// snapshots by `pids`: the cartesian product of per-round ordered
/// partitions, concatenated round-major (13^rounds schedules for three
/// processes).
std::vector<Schedule> all_iis_schedules(const std::vector<int>& pids, int rounds);

}  // namespace trichroma::runtime
