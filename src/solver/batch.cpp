#include "solver/batch.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/executor.h"
#include "tasks/fingerprint.h"
#include "tasks/zoo.h"

namespace trichroma {

namespace {

std::size_t top_facet_count(const SimplicialComplex& k) {
  const int top = k.dimension();
  return top < 0 ? 0 : k.count(top);
}

}  // namespace

int resolve_batch_jobs(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

BatchResult run_batch(const BatchOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<zoo::CatalogEntry>& all = zoo::catalog();

  std::vector<const zoo::CatalogEntry*> selected;
  if (options.only.empty()) {
    selected.reserve(all.size());
    for (const zoo::CatalogEntry& e : all) selected.push_back(&e);
  } else {
    // Catalog order, not request order: the output contract is positional.
    for (const std::string& name : options.only) {
      bool known = false;
      for (const zoo::CatalogEntry& e : all) known |= name == e.name;
      if (!known) throw std::invalid_argument("unknown catalog task: " + name);
    }
    for (const zoo::CatalogEntry& e : all) {
      for (const std::string& name : options.only) {
        if (name == e.name) {
          selected.push_back(&e);
          break;
        }
      }
    }
  }

  SolvabilityOptions per_task = options.solve;
  per_task.schedule = PipelineSchedule::kLadder;

  BatchResult out;
  out.tasks.resize(selected.size());
  const int jobs = resolve_batch_jobs(options.jobs);

  // Cache mode: fingerprint pre-pass for intra-batch dedup (see the header
  // comment — isomorphic twins must not race to publish one store entry).
  // Each slot builds its own task (fresh pool, race-free) and fills only its
  // own row, so the builds fan out as executor jobs; the first_slot dedup
  // stays a sequential slot-order pass afterwards, which is what keeps
  // `dup_of` (and therefore every replayed report) independent of the job
  // count. A slot that fails to fingerprint simply runs cold like everyone
  // else.
  std::vector<int> dup_of(selected.size(), -1);
  std::vector<std::string> task_names(selected.size());
  std::vector<std::size_t> in_facets(selected.size(), 0);
  std::vector<std::size_t> out_facets(selected.size(), 0);
  if (!per_task.cache_dir.empty()) {
    TRI_SPAN("batch/fingerprint-prepass");
    std::vector<std::string> fp_hex(selected.size());
    std::atomic<std::size_t> fp_next{0};
    const auto fingerprint_slots = [&] {
      for (;;) {
        const std::size_t i = fp_next.fetch_add(1, std::memory_order_relaxed);
        if (i >= selected.size()) return;
        try {
          const Task task = selected[i]->build();
          task_names[i] = task.name;
          in_facets[i] = top_facet_count(task.input);
          out_facets[i] = top_facet_count(task.output);
          fp_hex[i] = fingerprint_of(task).hex();
        } catch (...) {
        }
      }
    };
    if (jobs > 1 && selected.size() > 1) {
      Executor& executor = Executor::global();
      executor.ensure_workers(jobs - 1);
      JobGroup group(executor);
      const std::size_t extra = std::min<std::size_t>(
          static_cast<std::size_t>(jobs) - 1, selected.size() - 1);
      for (std::size_t w = 0; w < extra; ++w) group.submit(fingerprint_slots);
      fingerprint_slots();
      group.wait();
    } else {
      fingerprint_slots();
    }
    std::unordered_map<std::string, std::size_t> first_slot;
    for (std::size_t i = 0; i < selected.size(); ++i) {
      if (fp_hex[i].empty()) continue;  // build threw: no dedup for this slot
      const auto [it, inserted] = first_slot.emplace(fp_hex[i], i);
      if (!inserted) dup_of[i] = static_cast<int>(it->second);
    }
  }

  // Heartbeat: liveness snapshots for long runs. `completed` counts slots
  // whose work is finished — dup slots count as soon as the drive loop skips
  // them (their replay is a post-join copy, not work). The writer spans the
  // whole drive phase and flushes a final snapshot when reset below.
  std::atomic<std::uint64_t> completed{0};
  std::unique_ptr<obs::HeartbeatWriter> heartbeat;
  if (!options.heartbeat_file.empty()) {
    heartbeat = std::make_unique<obs::HeartbeatWriter>(
        options.heartbeat_file, options.heartbeat_interval_s,
        [&completed, total = selected.size()] {
          return obs::HeartbeatProgress{
              completed.load(std::memory_order_relaxed),
              static_cast<std::uint64_t>(total)};
        });
  }

  // One self-scheduling loop per driver: `jobs - 1` on the executor plus the
  // caller, so at most `jobs` pipelines run at once while idle workers still
  // steal the searches' inner prefix jobs. Tasks are built inside the loop —
  // each owns a fresh pool, so the builds are race-free — and each writes
  // only its own slot.
  std::atomic<std::size_t> next{0};
  auto drive = [&selected, &per_task, &out, &next, &dup_of, &completed] {
    static obs::Counter& tasks_done =
        obs::MetricsRegistry::global().counter("batch.tasks");
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= selected.size()) return;
      if (dup_of[i] >= 0) {  // replayed from its twin after the join
        completed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      TRI_SPAN("batch/", selected[i]->name);
      const Task task = selected[i]->build();
      out.tasks[i].name = selected[i]->name;
      out.tasks[i].report = run_pipeline(task, per_task).report;
      tasks_done.add();
      completed.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (jobs > 1 && selected.size() > 1) {
    Executor& executor = Executor::global();
    executor.ensure_workers(jobs - 1);
    JobGroup group(executor);
    const std::size_t extra =
        std::min<std::size_t>(static_cast<std::size_t>(jobs) - 1,
                              selected.size() - 1);
    for (std::size_t w = 0; w < extra; ++w) group.submit(drive);
    drive();
    group.wait();
  } else {
    drive();
  }

  // Isomorphic-twin replays: the dedup pre-pass runs in slot order, so a
  // dup's twin always has a lower index and its report is final here. The
  // replay keeps the twin's verdict-relevant slice (byte-identical contract)
  // and the dup's own display identity.
  for (std::size_t i = 0; i < selected.size(); ++i) {
    if (dup_of[i] < 0) continue;
    PipelineReport replay = out.tasks[static_cast<std::size_t>(dup_of[i])].report;
    // The built task's own name, exactly as a cold pipeline run would have
    // reported it (catalog keys and task names differ, e.g. "consensus3"
    // builds "consensus-3").
    replay.task_name = task_names[i];
    replay.input_facets = in_facets[i];
    replay.output_facets = out_facets[i];
    replay.cache = "hit";
    replay.cache_hits = 1;
    replay.cache_misses = 0;
    replay.cache_seeded_levels = 0;
    replay.cache_store_bytes = 0;
    replay.total_wall_ms = 0.0;
    // A twin replay did no consult/engine/publish work of its own; zero the
    // phase clocks like total_wall_ms (they are redacted in report files
    // anyway, but keep the in-memory report honest).
    replay.phase_consult_ms = 0.0;
    replay.phase_engines_ms = 0.0;
    replay.phase_publish_ms = 0.0;
    out.tasks[i].name = selected[i]->name;
    out.tasks[i].report = std::move(replay);
    obs::MetricsRegistry::global().counter("cache.hit").add();
  }

  // Final heartbeat flush (progress now reads done == total) and thread
  // join before the result is returned.
  heartbeat.reset();

  for (const BatchTaskResult& t : out.tasks) {
    out.unknown += t.report.verdict == Verdict::Unknown ? 1 : 0;
    out.cache_hits += t.report.cache_hits > 0 ? 1 : 0;
    out.cache_misses += t.report.cache_misses > 0 ? 1 : 0;
    out.cache_artifacts += t.report.cache == "artifacts" ? 1 : 0;
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

}  // namespace trichroma
