#include "solver/batch.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/executor.h"
#include "tasks/zoo.h"

namespace trichroma {

int resolve_batch_jobs(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

BatchResult run_batch(const BatchOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<zoo::CatalogEntry>& all = zoo::catalog();

  std::vector<const zoo::CatalogEntry*> selected;
  if (options.only.empty()) {
    selected.reserve(all.size());
    for (const zoo::CatalogEntry& e : all) selected.push_back(&e);
  } else {
    // Catalog order, not request order: the output contract is positional.
    for (const std::string& name : options.only) {
      bool known = false;
      for (const zoo::CatalogEntry& e : all) known |= name == e.name;
      if (!known) throw std::invalid_argument("unknown catalog task: " + name);
    }
    for (const zoo::CatalogEntry& e : all) {
      for (const std::string& name : options.only) {
        if (name == e.name) {
          selected.push_back(&e);
          break;
        }
      }
    }
  }

  SolvabilityOptions per_task = options.solve;
  per_task.schedule = PipelineSchedule::kLadder;

  BatchResult out;
  out.tasks.resize(selected.size());
  const int jobs = resolve_batch_jobs(options.jobs);

  // One self-scheduling loop per driver: `jobs - 1` on the executor plus the
  // caller, so at most `jobs` pipelines run at once while idle workers still
  // steal the searches' inner prefix jobs. Tasks are built inside the loop —
  // each owns a fresh pool, so the builds are race-free — and each writes
  // only its own slot.
  std::atomic<std::size_t> next{0};
  auto drive = [&selected, &per_task, &out, &next] {
    static obs::Counter& tasks_done =
        obs::MetricsRegistry::global().counter("batch.tasks");
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= selected.size()) return;
      TRI_SPAN("batch/", selected[i]->name);
      const Task task = selected[i]->build();
      out.tasks[i].name = selected[i]->name;
      out.tasks[i].report = run_pipeline(task, per_task).report;
      tasks_done.add();
    }
  };
  if (jobs > 1 && selected.size() > 1) {
    Executor& executor = Executor::global();
    executor.ensure_workers(jobs - 1);
    JobGroup group(executor);
    const std::size_t extra =
        std::min<std::size_t>(static_cast<std::size_t>(jobs) - 1,
                              selected.size() - 1);
    for (std::size_t w = 0; w < extra; ++w) group.submit(drive);
    drive();
    group.wait();
  } else {
    drive();
  }

  for (const BatchTaskResult& t : out.tasks) {
    out.unknown += t.report.verdict == Verdict::Unknown ? 1 : 0;
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

}  // namespace trichroma
