#pragma once
// The parallel batch driver: run the whole zoo catalog (or a named subset)
// through the solvability pipeline, `jobs` tasks at a time, on the shared
// work-stealing executor.
//
// Concurrency model. The driver submits `jobs - 1` task-loop jobs to the
// executor and runs one loop itself (the caller is always a worker), so at
// most `jobs` whole-task pipelines are in flight at once. Each pipeline is
// self-contained — every task is built fresh inside its loop iteration, so
// it owns its vertex pool, and each engine run owns its SubdivisionLadder
// and DeltaImageCache — while the decision-map searches *inside* a pipeline
// still split into prefix jobs that idle workers steal. Outer and inner
// parallelism share one pool; nothing is oversubscribed.
//
// Determinism. Per-task pipelines run under the kLadder schedule, whose
// engine statuses are a pure function of the task and budget, and the
// searches inside use canonical prefix accounting — so every field of every
// report except wall-clock timings is identical for any `jobs` value and
// any search thread count. Results come back in catalog order. Rendering
// the reports with ReportJsonOptions::redact_timings therefore yields
// byte-identical files no matter how the batch was scheduled; that is the
// contract the batch determinism test and the CI smoke pin.
//
// Verdict store. With solve.cache_dir set, each pipeline consults the
// content-addressed store (io/store.h) before running. Because engine node
// counts are NOT invariant under chromatic isomorphism (exploration order
// follows pool interning order), two isomorphic catalog entries racing to
// publish one store entry would make reports depend on scheduling. The
// driver therefore runs a sequential fingerprint pre-pass and *dedups
// within the batch*: a slot whose fingerprint matches an earlier slot never
// runs — it replays that slot's finished report (renamed to its own task)
// as a cache hit. The pre-pass order is catalog order, so which twin runs
// cold is a pure function of the selection, at every `jobs` value.

#include <string>
#include <vector>

#include "solver/pipeline.h"

namespace trichroma {

struct BatchOptions {
  /// Per-task pipeline budget. The schedule is forced to kLadder (see the
  /// determinism note above); everything else is honored as-is.
  SolvabilityOptions solve;
  /// Concurrent whole-task pipeline jobs. 0 = hardware concurrency.
  int jobs = 1;
  /// Restrict to these catalog names (empty = the whole catalog). Unknown
  /// names throw std::invalid_argument.
  std::vector<std::string> only;
  /// When non-empty, a HeartbeatWriter publishes rename-atomic liveness
  /// snapshots (schema trichroma.heartbeat/1: progress over the selected
  /// tasks, RSS, metrics registry) to this path every heartbeat_interval_s
  /// seconds for the duration of the run, plus a final flush. Pure
  /// observability — reports are unaffected.
  std::string heartbeat_file;
  double heartbeat_interval_s = 5.0;
};

struct BatchTaskResult {
  std::string name;
  PipelineReport report;
};

struct BatchResult {
  /// One entry per selected task, in catalog order.
  std::vector<BatchTaskResult> tasks;
  double wall_ms = 0.0;
  /// Number of tasks whose verdict stayed Unknown.
  int unknown = 0;
  /// Verdict-store rollup (zero when solve.cache_dir is empty): hits counts
  /// both store replays and intra-batch isomorphic-twin replays. A task
  /// that warm-started from a budget sibling's record or artifacts counts
  /// in BOTH cache_misses (its exact key missed) and cache_artifacts.
  int cache_hits = 0;
  int cache_misses = 0;
  int cache_artifacts = 0;
};

/// 0 → hardware concurrency, else the request unchanged.
int resolve_batch_jobs(int requested);

BatchResult run_batch(const BatchOptions& options);

}  // namespace trichroma
