#include "solver/engine.h"

#include <array>
#include <chrono>
#include <utility>

#include "io/store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "topology/subdivision.h"

namespace trichroma {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Solvable:
      return "SOLVABLE";
    case Verdict::Unsolvable:
      return "UNSOLVABLE";
    case Verdict::Unknown:
      return "UNKNOWN";
  }
  return "?";
}

const char* to_string(EngineSide s) {
  switch (s) {
    case EngineSide::Exact:
      return "exact";
    case EngineSide::Impossibility:
      return "impossibility";
    case EngineSide::Possibility:
      return "possibility";
    case EngineSide::Support:
      return "support";
  }
  return "?";
}

const char* to_string(EngineStatus s) {
  switch (s) {
    case EngineStatus::Conclusive:
      return "conclusive";
    case EngineStatus::Inconclusive:
      return "inconclusive";
    case EngineStatus::Completed:
      return "completed";
    case EngineStatus::Cancelled:
      return "cancelled";
    case EngineStatus::Skipped:
      return "skipped";
  }
  return "?";
}

EngineReport AnalysisEngine::skipped() const {
  EngineReport report;
  report.name = name();
  report.side = side();
  report.precedence = precedence();
  report.status = EngineStatus::Skipped;
  return report;
}

EngineReport AnalysisEngine::run(const EngineBudget& budget,
                                 const CancellationToken& token) {
  EngineReport report = skipped();
  if (token.stop_requested()) {
    report.status = EngineStatus::Cancelled;
    obs::trace_instant("pipeline/cancelled/", name());
    obs::MetricsRegistry::global().counter("pipeline.engines_cancelled").add();
    return report;
  }
  const auto start = std::chrono::steady_clock::now();
  {
    TRI_SPAN("engine/", name());
    execute(budget, token, report);
  }
  report.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  obs::MetricsRegistry::global().counter("pipeline.engines_run").add();
  if (report.status == EngineStatus::Conclusive) {
    obs::trace_instant("pipeline/conclusive/", name());
    obs::MetricsRegistry::global().counter("pipeline.engines_conclusive").add();
  } else if (report.status == EngineStatus::Cancelled) {
    obs::trace_instant("pipeline/cancelled/", name());
    obs::MetricsRegistry::global().counter("pipeline.engines_cancelled").add();
  }
  return report;
}

void TwoProcessEngine::execute(const EngineBudget& budget,
                               const CancellationToken& token,
                               EngineReport& report) {
  const ConnectivityCsp csp =
      connectivity_csp(task_, budget.node_cap, token.flag());
  report.nodes_explored = csp.nodes_explored;
  report.detail = csp.detail;
  if (csp.cancelled) {
    report.status = EngineStatus::Cancelled;
    return;
  }
  if (csp.feasible) {
    report.status = EngineStatus::Conclusive;
    report.verdict = Verdict::Solvable;
    report.reason =
        "Proposition 5.4: a corner assignment with connected edge images "
        "exists, giving a continuous map |I| -> |O| carried by Δ";
  } else if (csp.exhausted) {
    report.status = EngineStatus::Conclusive;
    report.verdict = Verdict::Unsolvable;
    report.reason =
        "Proposition 5.4: no continuous map |I| -> |O| carried by Δ (" +
        csp.detail + ")";
  } else {
    report.status = EngineStatus::Inconclusive;
  }
}

void GenericConnectivityEngine::execute(const EngineBudget& budget,
                                        const CancellationToken& token,
                                        EngineReport& report) {
  const ConnectivityCsp csp =
      connectivity_csp(task_, budget.node_cap, token.flag());
  report.nodes_explored = csp.nodes_explored;
  report.detail = csp.detail;
  if (csp.cancelled) {
    report.status = EngineStatus::Cancelled;
    return;
  }
  if (!csp.feasible && csp.exhausted) {
    report.status = EngineStatus::Conclusive;
    report.verdict = Verdict::Unsolvable;
    report.reason =
        "connectivity obstruction (n-process generic engine): " + csp.detail;
  } else {
    report.status = EngineStatus::Inconclusive;
  }
}

void CharacterizeEngine::execute(const EngineBudget& /*budget*/,
                                 const CancellationToken& /*token*/,
                                 EngineReport& report) {
  result_ = std::make_shared<CharacterizationResult>(characterize(task_));
  report.status = EngineStatus::Completed;
  report.detail = result_->report(*task_.pool);
}

void Corollary55Engine::execute(const EngineBudget& /*budget*/,
                                const CancellationToken& /*token*/,
                                EngineReport& report) {
  result_ = corollary_5_5(tstar_);
  report.detail = result_.detail;
  if (result_.fires) {
    report.status = EngineStatus::Conclusive;
    report.verdict = Verdict::Unsolvable;
    report.reason = "Corollary 5.5 on T*: " + result_.detail;
  } else {
    report.status = EngineStatus::Inconclusive;
  }
}

void Corollary56Engine::execute(const EngineBudget& /*budget*/,
                                const CancellationToken& /*token*/,
                                EngineReport& report) {
  result_ = corollary_5_6(tstar_);
  report.detail = result_.detail;
  if (result_.fires) {
    report.status = EngineStatus::Conclusive;
    report.verdict = Verdict::Unsolvable;
    report.reason = "Corollary 5.6 on T*: " + result_.detail;
  } else {
    report.status = EngineStatus::Inconclusive;
  }
}

void PostSplitCspEngine::execute(const EngineBudget& budget,
                                 const CancellationToken& token,
                                 EngineReport& report) {
  const ConnectivityCsp csp = connectivity_csp(tp_, budget.node_cap, token.flag());
  report.nodes_explored = csp.nodes_explored;
  report.detail = csp.detail;
  if (csp.cancelled) {
    report.status = EngineStatus::Cancelled;
    return;
  }
  if (!csp.feasible && csp.exhausted) {
    report.status = EngineStatus::Conclusive;
    report.verdict = Verdict::Unsolvable;
    report.reason =
        "post-split connectivity obstruction on T' (Theorem 5.1 + "
        "Corollary 5.5 shape): " +
        csp.detail;
  } else {
    report.status = EngineStatus::Inconclusive;
  }
}

void HomologyEngine::execute(const EngineBudget& budget,
                             const CancellationToken& token,
                             EngineReport& report) {
  const HomologyObstruction hom =
      homology_boundary_check(tp_, {2, 3}, budget.node_cap, token.flag());
  report.nodes_explored = hom.nodes_explored;
  report.detail = hom.detail;
  if (hom.cancelled) {
    report.status = EngineStatus::Cancelled;
    return;
  }
  if (!hom.feasible && hom.exhausted) {
    report.status = EngineStatus::Conclusive;
    report.verdict = Verdict::Unsolvable;
    report.reason =
        "post-split homological obstruction on T' (no continuous map "
        "|I| -> |O'| carried by Δ'): " +
        hom.detail;
  } else {
    report.status = EngineStatus::Inconclusive;
  }
}

namespace {

const char* capped_label(ProbeKind kind) {
  switch (kind) {
    case ProbeKind::DirectChromatic:
      return "chromatic probe at radius ";
    case ProbeKind::LinkConnectedAgnostic:
      return "T'-agnostic (colorless) probe at radius ";
    case ProbeKind::ColorlessDirect:
      return "colorless probe at radius ";
  }
  return "probe at radius ";
}

std::string found_reason(ProbeKind kind, int radius) {
  const std::string r = std::to_string(radius);
  switch (kind) {
    case ProbeKind::DirectChromatic:
      return "chromatic decision map found on Ch^" + r + "(I)";
    case ProbeKind::LinkConnectedAgnostic:
      return "color-agnostic decision map found on the link-connected task "
             "T' at Ch^" +
             r + "(I); solvable by Theorem 5.1 via the Figure-7 algorithm";
    case ProbeKind::ColorlessDirect:
      return "color-agnostic decision map found on Ch^" + r + "(I)";
  }
  return "decision map found at radius " + r;
}

}  // namespace

const char* ProbeEngine::name() const {
  switch (kind_) {
    case ProbeKind::DirectChromatic:
      return "chromatic-probe";
    case ProbeKind::LinkConnectedAgnostic:
      return "tp-agnostic-probe";
    case ProbeKind::ColorlessDirect:
      return "colorless-probe";
  }
  return "probe";
}

int ProbeEngine::precedence() const {
  switch (kind_) {
    case ProbeKind::DirectChromatic:
      return engine_precedence::kChromaticProbe;
    case ProbeKind::LinkConnectedAgnostic:
      return engine_precedence::kAgnosticProbe;
    case ProbeKind::ColorlessDirect:
      return engine_precedence::kColorlessProbe;
  }
  return engine_precedence::kColorlessProbe;
}

void ProbeEngine::execute(const EngineBudget& budget,
                          const CancellationToken& token, EngineReport& report) {
  MapSearchOptions options;
  options.chromatic = (kind_ == ProbeKind::DirectChromatic);
  options.node_cap = budget.node_cap;
  options.threads = budget.threads;
  options.cancel = token.flag();
  DeltaImageCache images;
  if (budget.reuse_images) options.image_cache = &images;
  const int build_threads = resolve_search_threads(budget.threads);
  SubdivisionLadder ladder(*task_.pool, task_.input);
  ladder.set_threads(build_threads);

  // Warm start: materialize stored artifacts under this task's identity
  // before the first rung. The ladder loader re-interns subdivision
  // vertices in the writer's (= a cold build's) order, so probing resumes
  // from exactly the pool state a cold climb would have reached; any
  // malformed body degrades to a cold rebuild. The tower is truncated to
  // the live radius budget — deeper levels would intern vertices a cold
  // run never creates. Preloaded Δ-images charge their first touch as a
  // miss (DeltaImageCache::preload), keeping every counter as-if-cold.
  seeded_levels_ = 0;
  seeded_images_ = 0;
  if (seed_ != nullptr && kind_ == ProbeKind::DirectChromatic) {
    if (budget.reuse_subdivisions && !seed_->ladder_body.empty()) {
      std::vector<SubdividedComplex> levels;
      if (io::load_ladder_levels(
              task_, seed_->labeling, seed_->ladder_body, &levels,
              static_cast<std::size_t>(budget.max_radius) + 1)) {
        seeded_levels_ = static_cast<int>(levels.size());
        ladder.seed(std::move(levels));
      }
    }
    if (budget.reuse_images && !seed_->images_body.empty()) {
      std::vector<std::pair<Simplex, std::vector<Simplex>>> rows;
      if (io::load_delta_images(task_, seed_->labeling, seed_->images_body,
                                &rows)) {
        for (const auto& [src, facets] : rows) images.preload(src, facets);
        seeded_images_ = static_cast<int>(rows.size());
      }
    }
  }

  // Eagerly compile every Δ-image the CSPs can ask for: the carriers of all
  // subdivision cells at every radius are exactly the base simplices, so
  // this one pass (parallel for build_threads > 1) makes every later
  // image_of call a pure lookup. Artifact preloads above are skipped, and
  // warm accounting keeps hit/miss counters as-if-cold (map_search.h).
  if (budget.reuse_images) {
    images.populate(task_.delta, task_.input.all_simplices(), build_threads);
  }

  report.status = EngineStatus::Inconclusive;
  // Deterministic shape telemetry, accumulated across rungs: the merged
  // CSP domain-size histogram and the per-level facet counts (both pure
  // functions of task + budget; see EngineReport).
  std::array<std::uint64_t, obs::Histogram::kBuckets> domain_hist{};
  for (int r = 0; r <= budget.max_radius; ++r) {
    if (token.stop_requested()) {
      report.status = EngineStatus::Cancelled;
      break;
    }
    TRI_SPAN("probe/r=", static_cast<long long>(r));
    std::shared_ptr<const SubdividedComplex> domain =
        budget.reuse_subdivisions
            ? ladder.share(r)
            : std::make_shared<const SubdividedComplex>(chromatic_subdivision(
                  *task_.pool, task_.input, r, build_threads));
    computed_levels_.push_back(domain);
    const int top = domain->complex.dimension();
    report.level_facets.push_back(
        top < 0 ? 0 : static_cast<std::uint64_t>(domain->complex.count(top)));
    last_ = find_decision_map(*task_.pool, *domain, task_, options);
    report.radius_reached = r;
    report.nodes_explored += last_.nodes_explored;
    for (std::size_t i = 0; i < last_.domain_size_hist.size(); ++i) {
      domain_hist[i] += last_.domain_size_hist[i];
    }
    report.domain_size_count += last_.domain_size_count;
    report.domain_size_sum += last_.domain_size_sum;
    if (last_.found) {
      found_ = true;
      found_radius_ = r;
      witness_domain_ = std::move(domain);
      report.status = EngineStatus::Conclusive;
      report.verdict = Verdict::Solvable;
      report.witness_radius = r;
      report.reason = found_reason(kind_, r);
      break;
    }
    if (last_.cancelled) {
      report.status = EngineStatus::Cancelled;
      break;
    }
    if (last_.domain_overflow) {
      // Representation limit, not a budget cap: keep climbing (larger radii
      // have different domains), but record the rung for the Unknown reason.
      report.overflowed.push_back(capped_label(kind_) + std::to_string(r));
    } else if (!last_.exhausted) {
      report.capped.push_back(capped_label(kind_) + std::to_string(r));
    }
  }
  if (report.domain_size_count != 0) {
    std::size_t buckets = obs::Histogram::kBuckets;
    while (buckets > 1 && domain_hist[buckets - 1] == 0) --buckets;
    report.domain_size_hist.assign(domain_hist.begin(),
                                   domain_hist.begin() +
                                       static_cast<std::ptrdiff_t>(buckets));
  }
  report.image_cache_hits = images.hits();
  report.image_cache_misses = images.misses();
  report.edge_mask_hits = images.edge_mask_hits();
  report.edge_mask_misses = images.edge_mask_misses();
}

}  // namespace trichroma
