#pragma once
// Composable analysis engines: the units of the solvability pipeline.
//
// Theorem 5.1's decision procedure is a portfolio of semi-decision engines —
// sound impossibility checks (corner-assignment CSPs, the homological
// boundary obstruction, the paper's Corollaries 5.5/5.6) racing bounded
// possibility searches (the decision-map probe ladders). Each step is an
// AnalysisEngine: a uniform unit with a declared budget, a cooperative
// cancellation token, and a typed EngineReport (timings, nodes explored,
// cache hit counts, radius reached, conclusive/inconclusive). The racing
// scheduler in solver/pipeline.h composes the units; nothing here schedules.
//
// Soundness is what makes racing safe: an impossibility engine concluding
// proves every possibility engine would stay inconclusive (and vice versa),
// so cancelling the other side never changes the merged verdict.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/characterization.h"
#include "core/obstructions.h"
#include "runtime/cancellation.h"
#include "solver/map_search.h"
#include "tasks/fingerprint.h"
#include "tasks/task.h"

namespace trichroma {

enum class Verdict { Solvable, Unsolvable, Unknown };

const char* to_string(Verdict v);

// CancellationToken moved to runtime/cancellation.h (the executor hands one
// to every JobGroup); engines keep using it through this header.

/// Which side of the semi-decision pair an engine argues. Exact engines
/// (Proposition 5.4 for two processes) decide both directions; Support
/// engines (characterization) produce inputs for others, never a verdict.
enum class EngineSide { Exact, Impossibility, Possibility, Support };

/// How one engine run ended. Conclusive carries a verdict; Completed is the
/// Support analogue ("ran to the end, no verdict by design"); Inconclusive
/// means the engine ran but its condition did not decide the task.
enum class EngineStatus { Conclusive, Inconclusive, Completed, Cancelled, Skipped };

const char* to_string(EngineSide s);
const char* to_string(EngineStatus s);

/// The budget every engine runs under, derived from SolvabilityOptions.
struct EngineBudget {
  int max_radius = 2;
  std::size_t node_cap = 20'000'000;
  /// Worker threads for decision-map searches inside the engine.
  int threads = 1;
  bool reuse_subdivisions = true;
  bool reuse_images = true;
};

/// Typed per-engine outcome; the JSON report serializes these verbatim.
struct EngineReport {
  std::string name;
  EngineSide side = EngineSide::Support;
  EngineStatus status = EngineStatus::Skipped;
  /// Merge precedence: among conclusive engines, lowest wins (mirrors the
  /// pre-refactor ladder order, which is what keeps verdicts identical).
  int precedence = 0;
  /// Meaningful only when status == Conclusive.
  Verdict verdict = Verdict::Unknown;
  /// Merge-ready reason string, set when Conclusive.
  std::string reason;
  /// Engine-specific diagnostic (CSP detail, characterization summary, ...).
  std::string detail;
  /// Probes: last radius attempted / radius of the found map.
  int radius_reached = -1;
  int witness_radius = -1;
  std::size_t nodes_explored = 0;
  std::size_t image_cache_hits = 0;
  std::size_t image_cache_misses = 0;
  std::size_t edge_mask_hits = 0;
  std::size_t edge_mask_misses = 0;
  /// Which probe/radius combinations stopped on the node cap — the material
  /// for an honest Unknown reason.
  std::vector<std::string> capped;
  /// Which probe/radius combinations exceeded the word-parallel domain width
  /// (MapSearchResult::domain_overflow) — a representation limit, reported
  /// separately from budget caps so the Unknown reason names it.
  std::vector<std::string> overflowed;
  /// Probe engines only (empty elsewhere): the CSP candidate-list-size
  /// distribution summed over every rung climbed — counts per base-2 log
  /// bucket (obs::Histogram::bucket_index boundaries, trimmed after the
  /// last non-zero bucket) with the matching sample count and value sum.
  /// Pure functions of task + budget, identical at every thread count, so
  /// they ride in the deterministic report slice (schema v9) and the
  /// verdict record (v3).
  std::vector<std::uint64_t> domain_size_hist;
  std::uint64_t domain_size_count = 0;
  std::uint64_t domain_size_sum = 0;
  /// Probe engines only: facets of the Ch^r probe domain per rung climbed
  /// (index = radius). Checkable against Kozlov's chromatic-subdivision
  /// growth rates — a pure 2-dimensional level has 13× its predecessor's
  /// facets. Deterministic, same contract as domain_size_hist.
  std::vector<std::uint64_t> level_facets;
  double wall_ms = 0.0;
};

/// One uniform pipeline unit. `run` owns the boilerplate — timing, the
/// upfront token check, name/side/precedence stamping — and delegates the
/// actual analysis to `execute`.
class AnalysisEngine {
 public:
  virtual ~AnalysisEngine() = default;

  virtual const char* name() const = 0;
  virtual EngineSide side() const = 0;
  virtual int precedence() const = 0;

  EngineReport run(const EngineBudget& budget, const CancellationToken& token);

  /// A Skipped placeholder, for engines the schedule never started.
  EngineReport skipped() const;

 protected:
  virtual void execute(const EngineBudget& budget, const CancellationToken& token,
                       EngineReport& report) = 0;
};

/// Fixed precedence numbers, mirroring the pre-refactor ladder order.
namespace engine_precedence {
constexpr int kTwoProcess = 0;
constexpr int kGenericConnectivity = 5;
constexpr int kPostSplitCsp = 10;
constexpr int kHomology = 11;
constexpr int kCorollary55 = 12;
constexpr int kCorollary56 = 13;
constexpr int kChromaticProbe = 20;
constexpr int kAgnosticProbe = 30;
constexpr int kColorlessProbe = 40;
}  // namespace engine_precedence

/// Proposition 5.4: exact two-process decision via the connectivity CSP.
class TwoProcessEngine final : public AnalysisEngine {
 public:
  explicit TwoProcessEngine(const Task& task) : task_(task) {}
  const char* name() const override { return "two-process-csp"; }
  EngineSide side() const override { return EngineSide::Exact; }
  int precedence() const override { return engine_precedence::kTwoProcess; }

 protected:
  void execute(const EngineBudget& budget, const CancellationToken& token,
               EngineReport& report) override;

 private:
  const Task& task_;
};

/// The pre-split connectivity CSP for tasks of four or more processes (the
/// only impossibility engine available without the three-process
/// characterization).
class GenericConnectivityEngine final : public AnalysisEngine {
 public:
  explicit GenericConnectivityEngine(const Task& task) : task_(task) {}
  const char* name() const override { return "generic-connectivity-csp"; }
  EngineSide side() const override { return EngineSide::Impossibility; }
  int precedence() const override {
    return engine_precedence::kGenericConnectivity;
  }

 protected:
  void execute(const EngineBudget& budget, const CancellationToken& token,
               EngineReport& report) override;

 private:
  const Task& task_;
};

/// Support: canonicalize + LAP-split (T → T* → T'). Interns into the task's
/// pool, so the scheduler runs it on a lane-private clone_task copy.
class CharacterizeEngine final : public AnalysisEngine {
 public:
  explicit CharacterizeEngine(const Task& task) : task_(task) {}
  const char* name() const override { return "characterize"; }
  EngineSide side() const override { return EngineSide::Support; }
  int precedence() const override { return 1; }

  /// The characterization, once run; null if skipped/cancelled.
  std::shared_ptr<CharacterizationResult> result() const { return result_; }

 protected:
  void execute(const EngineBudget& budget, const CancellationToken& token,
               EngineReport& report) override;

 private:
  const Task& task_;
  std::shared_ptr<CharacterizationResult> result_;
};

/// Corollary 5.5 on the canonical task T*.
class Corollary55Engine final : public AnalysisEngine {
 public:
  explicit Corollary55Engine(const Task& tstar) : tstar_(tstar) {}
  const char* name() const override { return "corollary-5.5"; }
  EngineSide side() const override { return EngineSide::Impossibility; }
  int precedence() const override { return engine_precedence::kCorollary55; }

  const CorollaryResult& result() const { return result_; }

 protected:
  void execute(const EngineBudget& budget, const CancellationToken& token,
               EngineReport& report) override;

 private:
  const Task& tstar_;
  CorollaryResult result_;
};

/// Corollary 5.6 on the canonical task T*.
class Corollary56Engine final : public AnalysisEngine {
 public:
  explicit Corollary56Engine(const Task& tstar) : tstar_(tstar) {}
  const char* name() const override { return "corollary-5.6"; }
  EngineSide side() const override { return EngineSide::Impossibility; }
  int precedence() const override { return engine_precedence::kCorollary56; }

  const CorollaryResult& result() const { return result_; }

 protected:
  void execute(const EngineBudget& budget, const CancellationToken& token,
               EngineReport& report) override;

 private:
  const Task& tstar_;
  CorollaryResult result_;
};

/// The post-split connectivity CSP on T' (Theorem 5.1 + Corollary 5.5 shape).
class PostSplitCspEngine final : public AnalysisEngine {
 public:
  explicit PostSplitCspEngine(const Task& tp) : tp_(tp) {}
  const char* name() const override { return "post-split-connectivity-csp"; }
  EngineSide side() const override { return EngineSide::Impossibility; }
  int precedence() const override { return engine_precedence::kPostSplitCsp; }

 protected:
  void execute(const EngineBudget& budget, const CancellationToken& token,
               EngineReport& report) override;

 private:
  const Task& tp_;
};

/// The homological boundary obstruction on T'.
class HomologyEngine final : public AnalysisEngine {
 public:
  explicit HomologyEngine(const Task& tp) : tp_(tp) {}
  const char* name() const override { return "post-split-homology"; }
  EngineSide side() const override { return EngineSide::Impossibility; }
  int precedence() const override { return engine_precedence::kHomology; }

 protected:
  void execute(const EngineBudget& budget, const CancellationToken& token,
               EngineReport& report) override;

 private:
  const Task& tp_;
};

/// Which decision-map probe ladder a ProbeEngine climbs.
enum class ProbeKind {
  /// Chromatic δ : Ch^r(I) → O on the task itself — a found map IS a
  /// wait-free protocol.
  DirectChromatic,
  /// Color-agnostic map into T' (Lemma 5.3 / the Figure-7 algorithm).
  LinkConnectedAgnostic,
  /// Color-agnostic map on the task itself (the standalone colorless probe
  /// of the hourglass demonstrations; never scheduled by the pipeline).
  ColorlessDirect,
};

/// The possibility side: climbs the radius ladder r = 0..max_radius running
/// one decision-map search per rung, sharing one SubdivisionLadder and one
/// DeltaImageCache across rungs (both optional via the budget's reuse
/// flags). Interns subdivision vertices into the task's pool, so a lane
/// must own that pool exclusively while the probe runs.
/// Warm-start seed for a chromatic probe: serialized store artifacts from a
/// stored twin of the task (io/store.h), plus the LIVE task's canonical
/// labeling to translate them into its display identity. The engine
/// materializes the seed inside `execute` — after any pipeline-level task
/// cloning, so the pool reaches exactly the state a cold run would — and
/// silently falls back to a cold build on any malformed body.
struct ProbeSeed {
  std::string ladder_body;   ///< serialized ladder levels ("" = none)
  std::string images_body;   ///< serialized Δ-image rows ("" = none)
  CanonicalLabeling labeling;  ///< the live task's canonical labeling
};

class ProbeEngine final : public AnalysisEngine {
 public:
  ProbeEngine(const Task& task, ProbeKind kind) : task_(task), kind_(kind) {}

  const char* name() const override;
  EngineSide side() const override { return EngineSide::Possibility; }
  int precedence() const override;

  bool found() const { return found_; }
  int found_radius() const { return found_radius_; }
  const VertexMap& witness() const { return last_.map; }
  /// Domain of the found map (Ch^found_radius of the task's input),
  /// shared with the probe's ladder.
  std::shared_ptr<const SubdividedComplex> witness_domain() const {
    return witness_domain_;
  }
  /// The final find_decision_map result (the found one, or the last rung's).
  const MapSearchResult& last() const { return last_; }

  /// Ch^0..Ch^r domains the probe actually climbed (one per rung reached),
  /// shared with the probe's ladder. The verdict store serializes these as
  /// the "ladder.levels" artifact after a conclusive cold run.
  const std::vector<std::shared_ptr<const SubdividedComplex>>&
  computed_levels() const {
    return computed_levels_;
  }

  /// Hands the probe a warm-start seed (DirectChromatic only; others
  /// ignore it). Must be set before `run`.
  void set_seed(std::shared_ptr<const ProbeSeed> seed) {
    seed_ = std::move(seed);
  }

  /// Ladder levels materialized from the seed (counting Ch^0); 0 when no
  /// seed was given, it failed to parse, or the probe never ran. Feeds the
  /// report's cache metrics only — never the deterministic report slice.
  int seeded_levels() const { return seeded_levels_; }

  /// Δ-image rows preloaded from the seed (same caveats).
  int seeded_images() const { return seeded_images_; }

 protected:
  void execute(const EngineBudget& budget, const CancellationToken& token,
               EngineReport& report) override;

 private:
  const Task& task_;
  ProbeKind kind_;
  bool found_ = false;
  int found_radius_ = -1;
  std::shared_ptr<const SubdividedComplex> witness_domain_;
  std::vector<std::shared_ptr<const SubdividedComplex>> computed_levels_;
  std::shared_ptr<const ProbeSeed> seed_;
  int seeded_levels_ = 0;
  int seeded_images_ = 0;
  MapSearchResult last_;
};

}  // namespace trichroma
