#include "solver/map_search.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace trichroma {

const CompiledComplex* DeltaImageCache::image_of(const CarrierMap& delta,
                                                 const Simplex& carrier) {
  auto it = cache_.find(carrier);
  if (it != cache_.end()) {
    ++hits_;
    return it->second.get();
  }
  auto owned = CompiledComplex::compile(delta.image_complex(carrier));
  const CompiledComplex* ptr = owned.get();
  cache_.emplace(carrier, std::move(owned));
  return ptr;
}

std::size_t DeltaImageCache::EdgeClassHash::operator()(
    const EdgeClass& k) const noexcept {
  std::size_t h = std::hash<const void*>{}(k.allowed);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(std::hash<const void*>{}(k.image_a));
  mix(std::hash<const void*>{}(k.image_b));
  mix(static_cast<std::size_t>(static_cast<std::uint16_t>(k.color_a)));
  mix(static_cast<std::size_t>(static_cast<std::uint16_t>(k.color_b)));
  return h;
}

const DeltaImageCache::EdgeMasks* DeltaImageCache::find_edge_masks(
    const EdgeClass& key) const {
  auto it = masks_.find(key);
  if (it == masks_.end()) return nullptr;
  ++mask_hits_;
  return it->second.get();
}

const DeltaImageCache::EdgeMasks* DeltaImageCache::store_edge_masks(
    const EdgeClass& key, EdgeMasks masks) {
  auto owned = std::make_unique<EdgeMasks>(std::move(masks));
  const EdgeMasks* ptr = owned.get();
  masks_.emplace(key, std::move(owned));
  return ptr;
}

namespace {

// The decision-map search is a finite CSP:
//   variables   = vertices of the subdivided input complex,
//   domains     = vertices of Δ(carrier(v)) (own color only, if chromatic),
//   constraints = for every simplex ξ, the image must be a simplex of
//                 Δ(carrier(ξ)).
// Edge constraints are compiled to per-value compatibility bitmasks and
// propagated by forward checking; triangle constraints filter the third
// vertex once two are assigned. Variables are picked dynamically by
// minimum remaining values. The search is systematic, so a negative
// answer with `exhausted = true` is a proof of non-existence at this
// radius.
//
// Parallel mode partitions the space by decision prefixes: the top levels
// of the (MRV-ordered) search tree are expanded breadth-first into disjoint
// partial assignments, which a pool of workers then races to completion.
// The prefixes cover the whole tree, so "some worker finds a map" and
// "every worker exhausts its subtree" are both complete answers, and the
// found/exhausted verdict matches the sequential one (the witness may be a
// different valid map — whichever worker wins the race).

using Mask = std::uint64_t;  // domains in this codebase are small (< 64)
constexpr std::size_t kMaxDomain = 64;

struct Csp {
  std::size_t n = 0;                          // number of variables
  std::vector<VertexId> vertex;               // variable index → domain vertex
  std::vector<std::vector<VertexId>> values;  // candidate lists
  std::vector<Mask> full_domain;

  struct BinaryConstraint {
    std::size_t other;               // the neighboring variable
    std::vector<Mask> compatible;    // per own-value mask over other's values
  };
  std::vector<std::vector<BinaryConstraint>> binary;  // per variable

  // Simplex constraints of arity >= 3 (triangles for three processes,
  // tetrahedra for four, ...): the image of {vars} must be a simplex of
  // `allowed`. Filtered whenever exactly one member remains unassigned.
  struct NaryConstraint {
    std::vector<std::size_t> vars;
    const CompiledComplex* allowed;  // Δ(carrier(simplex))
  };
  std::vector<NaryConstraint> nary;
  std::vector<std::vector<std::size_t>> nary_of;  // per variable

  bool trivially_unsat = false;
};

Csp build_csp(const VertexPool& pool, const SubdividedComplex& domain,
              const Task& task, bool chromatic, DeltaImageCache& images) {
  Csp csp;
  // The compiled snapshot's locals are in raw-id order — identical to the
  // sorted vertex_ids() order the hash-set path used — so variable indices,
  // candidate lists, and therefore the whole search trace are unchanged.
  const std::shared_ptr<const CompiledComplex> snapshot = domain.compiled_view();
  const CompiledComplex& dc = *snapshot;
  csp.n = dc.num_vertices();
  csp.vertex.reserve(csp.n);
  for (std::size_t i = 0; i < csp.n; ++i) {
    csp.vertex.push_back(dc.vertex(static_cast<CompiledComplex::Local>(i)));
  }

  auto image_of = [&](const Simplex& carrier) {
    return images.image_of(task.delta, carrier);
  };

  // Per-variable carriers, fetched once: edge/triangle carriers below are
  // unions of these (carrier_of is exactly that union).
  std::vector<const Simplex*> carrier_of_var(csp.n);
  for (std::size_t i = 0; i < csp.n; ++i) {
    carrier_of_var[i] = &domain.carrier.at(csp.vertex[i]);
  }

  csp.values.resize(csp.n);
  csp.full_domain.resize(csp.n);
  // Interned image of each variable's carrier; two variables with the same
  // (image, color) have identical candidate lists, which is what lets edge
  // masks be shared below.
  std::vector<const CompiledComplex*> vertex_image(csp.n);
  for (std::size_t i = 0; i < csp.n; ++i) {
    vertex_image[i] = image_of(*carrier_of_var[i]);
    const CompiledComplex& img = *vertex_image[i];
    const Color own = chromatic ? pool.color(csp.vertex[i]) : kNoColor;
    for (std::size_t j = 0; j < img.num_vertices(); ++j) {
      const VertexId w = img.vertex(static_cast<CompiledComplex::Local>(j));
      if (!chromatic || pool.color(w) == own) {
        csp.values[i].push_back(w);
      }
    }
    if (csp.values[i].empty() || csp.values[i].size() > kMaxDomain) {
      // Empty: unsatisfiable. Oversized: would need wider masks; treat as
      // unsatisfiable rather than silently mis-solving (not hit by any task
      // in this repository — domains are |V(Δ(carrier))| ≤ a few dozen).
      csp.trivially_unsat = true;
      return csp;
    }
    csp.full_domain[i] =
        csp.values[i].size() == kMaxDomain
            ? ~Mask{0}
            : ((Mask{1} << csp.values[i].size()) - 1);
  }

  csp.binary.resize(csp.n);
  for (std::size_t e = 0; e < dc.num_edges(); ++e) {
    // Variable indices ARE the compiled locals.
    const auto [la, lb] = dc.edge(e);
    const auto a = static_cast<std::size_t>(la), b = static_cast<std::size_t>(lb);
    const CompiledComplex* allowed =
        image_of(carrier_of_var[a]->unite(*carrier_of_var[b]));
    // Masks depend only on the edge's class (images + colors), not on the
    // concrete edge; hit the memo before paying the |values|² contains()
    // sweep. Almost every edge of Ch^r shares its class with many others.
    const DeltaImageCache::EdgeClass key{
        allowed, vertex_image[a], vertex_image[b],
        chromatic ? pool.color(csp.vertex[a]) : kNoColor,
        chromatic ? pool.color(csp.vertex[b]) : kNoColor};
    const DeltaImageCache::EdgeMasks* masks = images.find_edge_masks(key);
    if (masks == nullptr) {
      DeltaImageCache::EdgeMasks fresh;
      fresh.ab.assign(csp.values[a].size(), 0);
      fresh.ba.assign(csp.values[b].size(), 0);
      for (std::size_t i = 0; i < csp.values[a].size(); ++i) {
        const CompiledComplex::Local ia = allowed->local(csp.values[a][i]);
        if (ia == CompiledComplex::kAbsent) continue;
        for (std::size_t j = 0; j < csp.values[b].size(); ++j) {
          // The image may degenerate to a vertex (color-agnostic mode);
          // both cases must be faces of Δ(carrier(edge)).
          const CompiledComplex::Local ib = allowed->local(csp.values[b][j]);
          if (ib == CompiledComplex::kAbsent) continue;
          const bool face =
              ia == ib || (ia < ib ? allowed->contains_edge(ia, ib)
                                   : allowed->contains_edge(ib, ia));
          if (face) {
            fresh.ab[i] |= (Mask{1} << j);
            fresh.ba[j] |= (Mask{1} << i);
          }
        }
      }
      masks = images.store_edge_masks(key, std::move(fresh));
    }
    Csp::BinaryConstraint ab, ba;
    ab.other = b;
    ba.other = a;
    ab.compatible = masks->ab;
    ba.compatible = masks->ba;
    csp.binary[a].push_back(std::move(ab));
    csp.binary[b].push_back(std::move(ba));
  }

  csp.nary_of.resize(csp.n);
  for (int d = 2; d <= dc.dimension(); ++d) {
    const CompiledComplex::Local* flat = dc.cells_flat(d);
    const std::size_t stride = static_cast<std::size_t>(d) + 1;
    for (std::size_t cell = 0; cell < dc.count(d); ++cell) {
      const CompiledComplex::Local* verts = flat + cell * stride;
      Csp::NaryConstraint t;
      t.vars.reserve(stride);
      Simplex carrier;
      for (std::size_t i = 0; i < stride; ++i) {
        const auto var = static_cast<std::size_t>(verts[i]);
        t.vars.push_back(var);
        carrier = carrier.unite(*carrier_of_var[var]);
      }
      t.allowed = image_of(carrier);
      const std::size_t id = csp.nary.size();
      for (std::size_t var : t.vars) csp.nary_of[var].push_back(id);
      csp.nary.push_back(std::move(t));
    }
  }
  return csp;
}

// State shared by every worker of one parallel (or sequential) search.
struct SharedSearch {
  std::atomic<std::size_t> nodes{0};
  std::atomic<bool> stop{false};      // found a map, or cap hit: unwind
  std::atomic<bool> cap_hit{false};
  std::atomic<bool> found{false};
  // Caller-provided cancellation flag (MapSearchOptions::cancel), or null.
  const std::atomic<bool>* external = nullptr;
  std::atomic<bool> ext_cancelled{false};
  std::mutex winner_mutex;
  std::vector<int> winner;            // assignment of the first finisher
};

struct Solver {
  const Csp& csp;
  SharedSearch& shared;
  std::size_t node_cap;
  bool dynamic_ordering = true;
  bool aborted = false;  // unwound because of the stop flag or the cap

  std::vector<Mask> domain;        // current live values
  std::vector<int> assigned;       // value index or -1
  // Trail of (variable, previous mask) for undo.
  std::vector<std::pair<std::size_t, Mask>> trail;
  std::vector<std::size_t> trail_marks;

  Solver(const Csp& c, SharedSearch& s, std::size_t cap, bool mrv)
      : csp(c), shared(s), node_cap(cap), dynamic_ordering(mrv) {
    domain = csp.full_domain;
    assigned.assign(csp.n, -1);
  }

  void shrink(std::size_t var, Mask mask) {
    if ((domain[var] & mask) == domain[var]) return;
    trail.emplace_back(var, domain[var]);
    domain[var] &= mask;
  }

  /// Applies all consequences of assigning `var`; false on a wipe-out.
  bool propagate(std::size_t var) {
    const auto value = static_cast<std::size_t>(assigned[var]);
    for (const auto& bc : csp.binary[var]) {
      if (assigned[bc.other] >= 0) continue;
      shrink(bc.other, bc.compatible[value]);
      if (domain[bc.other] == 0) return false;
    }
    for (std::size_t tid : csp.nary_of[var]) {
      const auto& t = csp.nary[tid];
      // Filter the single unassigned member, if exactly one remains.
      std::size_t unassigned = csp.n;
      int count = 0;
      for (std::size_t m : t.vars) {
        if (assigned[m] < 0) {
          unassigned = m;
          ++count;
        }
      }
      if (count != 1) continue;
      std::vector<VertexId> fixed;
      fixed.reserve(t.vars.size() - 1);
      for (std::size_t m : t.vars) {
        if (m != unassigned) {
          fixed.push_back(csp.values[m][static_cast<std::size_t>(assigned[m])]);
        }
      }
      Mask ok = 0;
      Mask live = domain[unassigned];
      while (live) {
        const int j = __builtin_ctzll(live);
        live &= live - 1;
        std::vector<VertexId> image = fixed;
        image.push_back(csp.values[unassigned][static_cast<std::size_t>(j)]);
        if (t.allowed->contains(Simplex(std::move(image)))) ok |= (Mask{1} << j);
      }
      shrink(unassigned, ok);
      if (domain[unassigned] == 0) return false;
    }
    return true;
  }

  /// MRV variable selection (or first-unassigned when ablated away);
  /// csp.n when everything is assigned.
  std::size_t select_variable() const {
    std::size_t best = csp.n;
    int best_count = 1 << 30;
    for (std::size_t i = 0; i < csp.n; ++i) {
      if (assigned[i] >= 0) continue;
      if (!dynamic_ordering) return i;
      const int count = __builtin_popcountll(domain[i]);
      if (count < best_count) {
        best_count = count;
        best = i;
        if (count == 1) break;
      }
    }
    return best;
  }

  /// Counts a node against the shared budget; false when the search must
  /// unwind (budget gone, cancelled from outside, or another worker
  /// finished).
  bool charge_node() {
    if (shared.nodes.fetch_add(1, std::memory_order_relaxed) + 1 > node_cap) {
      shared.cap_hit.store(true, std::memory_order_relaxed);
      shared.stop.store(true, std::memory_order_relaxed);
      aborted = true;
      return false;
    }
    if (shared.external != nullptr &&
        shared.external->load(std::memory_order_relaxed)) {
      shared.ext_cancelled.store(true, std::memory_order_relaxed);
      shared.stop.store(true, std::memory_order_relaxed);
      aborted = true;
      return false;
    }
    if (shared.stop.load(std::memory_order_relaxed)) {
      aborted = true;
      return false;
    }
    return true;
  }

  /// Assigns value index `j` to `var` and propagates, pushing an undo mark.
  /// False on wipe-out (the mark is still pushed; call undo_to_mark).
  bool assign(std::size_t var, int j) {
    trail_marks.push_back(trail.size());
    assigned[var] = j;
    return propagate(var);
  }

  void undo_to_mark(std::size_t var) {
    assigned[var] = -1;
    const std::size_t mark = trail_marks.back();
    trail_marks.pop_back();
    while (trail.size() > mark) {
      domain[trail.back().first] = trail.back().second;
      trail.pop_back();
    }
  }

  bool search() {
    const std::size_t best = select_variable();
    if (best == csp.n) return true;  // all assigned

    Mask live = domain[best];
    while (live) {
      if (!charge_node()) return false;
      const int j = __builtin_ctzll(live);
      live &= live - 1;
      const bool ok = assign(best, j) && search();
      if (ok) return true;
      if (aborted) {
        // Budget exceeded or race lost somewhere below: unwind without
        // exploring more.
        assigned[best] = -1;
        return false;
      }
      undo_to_mark(best);
    }
    return false;
  }
};

/// A disjoint chunk of the search space: the assignments (in order) leading
/// to one node of the top of the MRV search tree.
struct Prefix {
  std::vector<std::pair<std::size_t, int>> assignments;  // (variable, value)
};

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Parallelizing a search that dies within a few hundred nodes only pays
// thread-spawn latency; tiny CSPs (low radii, solo/edge-only inputs) stay
// sequential. Verdicts are unaffected — both engines are complete.
constexpr std::size_t kMinVariablesForParallel = 10;

void run_sequential(const Csp& csp, const MapSearchOptions& options,
                    MapSearchResult& result) {
  SharedSearch shared;
  shared.external = options.cancel;
  Solver solver(csp, shared, options.node_cap, options.dynamic_ordering);
  const bool found = solver.search();
  result.nodes_explored = shared.nodes.load();
  result.cancelled = !found && shared.ext_cancelled.load();
  result.exhausted = !shared.cap_hit.load() && !result.cancelled;
  if (found) {
    result.found = true;
    for (std::size_t i = 0; i < csp.n; ++i) {
      result.map.set(csp.vertex[i],
                     csp.values[i][static_cast<std::size_t>(solver.assigned[i])]);
    }
  }
}

void run_parallel(const Csp& csp, const MapSearchOptions& options, int threads,
                  MapSearchResult& result) {
  SharedSearch shared;
  shared.external = options.cancel;

  // Phase 1 — split work: expand the top of the search tree breadth-first
  // into at least ~4 prefixes per worker. Expansion replays each prefix on
  // a scratch solver; dead prefixes (propagation wipe-out) are pruned here,
  // and a prefix that happens to assign every variable is already a map.
  const std::size_t target_jobs =
      std::max<std::size_t>(static_cast<std::size_t>(threads) * 4, 8);
  constexpr std::size_t kMaxPrefixDepth = 6;
  std::deque<Prefix> open;
  open.push_back({});
  std::vector<Prefix> jobs;
  while (!open.empty()) {
    if (open.size() + jobs.size() >= target_jobs) break;
    Prefix p = std::move(open.front());
    open.pop_front();
    if (p.assignments.size() >= kMaxPrefixDepth) {
      jobs.push_back(std::move(p));
      continue;
    }
    Solver scratch(csp, shared, options.node_cap, options.dynamic_ordering);
    bool dead = false;
    for (const auto& [var, j] : p.assignments) {
      if (!scratch.charge_node() || !scratch.assign(var, j)) {
        dead = true;
        break;
      }
    }
    if (scratch.aborted) {
      // Node cap exhausted (or cancellation) during splitting — report like
      // the sequential engine would: inconclusive, nothing found.
      result.nodes_explored = shared.nodes.load();
      result.cancelled = shared.ext_cancelled.load();
      result.exhausted = false;
      return;
    }
    if (dead) continue;  // empty subtree: exhausted by propagation alone
    const std::size_t var = scratch.select_variable();
    if (var == csp.n) {
      // The prefix is itself a complete assignment.
      result.found = true;
      result.exhausted = true;
      result.nodes_explored = shared.nodes.load();
      for (std::size_t i = 0; i < csp.n; ++i) {
        result.map.set(
            csp.vertex[i],
            csp.values[i][static_cast<std::size_t>(scratch.assigned[i])]);
      }
      return;
    }
    Mask live = scratch.domain[var];
    while (live) {
      const int j = __builtin_ctzll(live);
      live &= live - 1;
      Prefix child = p;
      child.assignments.emplace_back(var, j);
      open.push_back(std::move(child));
    }
  }
  for (Prefix& p : open) jobs.push_back(std::move(p));
  if (jobs.empty()) {
    // Every branch of the top of the tree wiped out: proof of non-existence.
    result.nodes_explored = shared.nodes.load();
    result.exhausted = true;
    return;
  }

  // Phase 2 — race: workers pull prefixes off a shared deque and run each
  // subtree to completion; the first map (or the cap) flips the stop flag
  // and everyone unwinds.
  std::atomic<std::size_t> next_job{0};
  auto worker = [&]() {
    while (!shared.stop.load(std::memory_order_relaxed)) {
      const std::size_t idx =
          next_job.fetch_add(1, std::memory_order_relaxed);
      if (idx >= jobs.size()) return;
      Solver solver(csp, shared, options.node_cap, options.dynamic_ordering);
      bool dead = false;
      for (const auto& [var, j] : jobs[idx].assignments) {
        if (!solver.charge_node() || !solver.assign(var, j)) {
          dead = true;
          break;
        }
      }
      if (solver.aborted) return;
      if (dead) continue;
      if (solver.search()) {
        std::lock_guard<std::mutex> lock(shared.winner_mutex);
        if (!shared.found.load()) {
          shared.found.store(true);
          shared.winner = solver.assigned;
        }
        shared.stop.store(true, std::memory_order_relaxed);
        return;
      }
      if (solver.aborted) return;
    }
  };
  const std::size_t worker_count =
      std::min<std::size_t>(static_cast<std::size_t>(threads), jobs.size());
  std::vector<std::thread> pool;
  pool.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  result.nodes_explored = shared.nodes.load();
  if (shared.found.load()) {
    result.found = true;
    result.exhausted = true;
    for (std::size_t i = 0; i < csp.n; ++i) {
      result.map.set(csp.vertex[i],
                     csp.values[i][static_cast<std::size_t>(shared.winner[i])]);
    }
  } else {
    result.cancelled = shared.ext_cancelled.load();
    result.exhausted = !shared.cap_hit.load() && !result.cancelled;
  }
}

}  // namespace

int resolve_search_threads(int requested) { return resolve_threads(requested); }

MapSearchResult find_decision_map(const VertexPool& pool,
                                  const SubdividedComplex& domain, const Task& task,
                                  const MapSearchOptions& options) {
  MapSearchResult result;
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    // Cancelled before the CSP is even compiled.
    result.cancelled = true;
    result.exhausted = false;
    return result;
  }
  DeltaImageCache local_images;
  DeltaImageCache& images =
      options.image_cache != nullptr ? *options.image_cache : local_images;
  const Csp csp = build_csp(pool, domain, task, options.chromatic, images);
  if (csp.n == 0) {
    result.found = true;
    return result;
  }
  if (csp.trivially_unsat) return result;

  const int threads = resolve_threads(options.threads);
  if (threads > 1 && csp.n >= kMinVariablesForParallel) {
    run_parallel(csp, options, threads, result);
  } else {
    run_sequential(csp, options, result);
  }
  return result;
}

bool validate_decision_map(const VertexPool& pool, const SubdividedComplex& domain,
                           const Task& task, const VertexMap& map, bool chromatic) {
  bool ok = true;
  domain.complex.for_each([&](const Simplex& xi) {
    if (!ok) return;
    for (VertexId v : xi) {
      if (!map.defined(v)) {
        ok = false;
        return;
      }
      if (chromatic && pool.color(map.apply(v)) != pool.color(v)) {
        ok = false;
        return;
      }
    }
    const Simplex image = map.apply(xi);
    if (!task.output.contains(image) ||
        !task.delta.allows(domain.carrier_of(xi), image)) {
      ok = false;
    }
  });
  return ok;
}

}  // namespace trichroma
