#include "solver/map_search.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace trichroma {

namespace {

// The decision-map search is a finite CSP:
//   variables   = vertices of the subdivided input complex,
//   domains     = vertices of Δ(carrier(v)) (own color only, if chromatic),
//   constraints = for every simplex ξ, the image must be a simplex of
//                 Δ(carrier(ξ)).
// Edge constraints are compiled to per-value compatibility bitmasks and
// propagated by forward checking; triangle constraints filter the third
// vertex once two are assigned. Variables are picked dynamically by
// minimum remaining values. The search is systematic, so a negative
// answer with `exhausted = true` is a proof of non-existence at this
// radius.

using Mask = std::uint64_t;  // domains in this codebase are small (< 64)
constexpr std::size_t kMaxDomain = 64;

struct Csp {
  std::size_t n = 0;                          // number of variables
  std::vector<VertexId> vertex;               // variable index → domain vertex
  std::vector<std::vector<VertexId>> values;  // candidate lists
  std::vector<Mask> full_domain;

  struct BinaryConstraint {
    std::size_t other;               // the neighboring variable
    std::vector<Mask> compatible;    // per own-value mask over other's values
  };
  std::vector<std::vector<BinaryConstraint>> binary;  // per variable

  // Simplex constraints of arity >= 3 (triangles for three processes,
  // tetrahedra for four, ...): the image of {vars} must be a simplex of
  // `allowed`. Filtered whenever exactly one member remains unassigned.
  struct NaryConstraint {
    std::vector<std::size_t> vars;
    const SimplicialComplex* allowed;  // Δ(carrier(simplex))
  };
  std::vector<NaryConstraint> nary;
  std::vector<std::vector<std::size_t>> nary_of;  // per variable

  std::vector<std::unique_ptr<SimplicialComplex>> image_storage;
  bool trivially_unsat = false;
};

Csp build_csp(const VertexPool& pool, const SubdividedComplex& domain,
              const Task& task, bool chromatic) {
  Csp csp;
  const std::vector<VertexId> vertices = domain.complex.vertex_ids();
  csp.n = vertices.size();
  csp.vertex = vertices;
  std::unordered_map<VertexId, std::size_t, VertexIdHash> index;
  for (std::size_t i = 0; i < csp.n; ++i) index.emplace(vertices[i], i);

  std::unordered_map<Simplex, const SimplicialComplex*, SimplexHash> image_cache;
  auto image_of = [&](const Simplex& carrier) -> const SimplicialComplex* {
    auto it = image_cache.find(carrier);
    if (it != image_cache.end()) return it->second;
    csp.image_storage.push_back(
        std::make_unique<SimplicialComplex>(task.delta.image_complex(carrier)));
    const SimplicialComplex* ptr = csp.image_storage.back().get();
    image_cache.emplace(carrier, ptr);
    return ptr;
  };

  csp.values.resize(csp.n);
  csp.full_domain.resize(csp.n);
  for (std::size_t i = 0; i < csp.n; ++i) {
    const Simplex& carrier = domain.carrier.at(vertices[i]);
    for (VertexId w : image_of(carrier)->vertex_ids()) {
      if (!chromatic || pool.color(w) == pool.color(vertices[i])) {
        csp.values[i].push_back(w);
      }
    }
    if (csp.values[i].empty() || csp.values[i].size() > kMaxDomain) {
      // Empty: unsatisfiable. Oversized: would need wider masks; treat as
      // unsatisfiable rather than silently mis-solving (not hit by any task
      // in this repository — domains are |V(Δ(carrier))| ≤ a few dozen).
      csp.trivially_unsat = true;
      return csp;
    }
    csp.full_domain[i] =
        csp.values[i].size() == kMaxDomain
            ? ~Mask{0}
            : ((Mask{1} << csp.values[i].size()) - 1);
  }

  csp.binary.resize(csp.n);
  domain.complex.for_each([&](const Simplex& xi) {
    if (xi.dim() != 1) return;
    const SimplicialComplex* allowed = image_of(domain.carrier_of(xi));
    const std::size_t a = index.at(xi[0]), b = index.at(xi[1]);
    Csp::BinaryConstraint ab, ba;
    ab.other = b;
    ba.other = a;
    ab.compatible.assign(csp.values[a].size(), 0);
    ba.compatible.assign(csp.values[b].size(), 0);
    for (std::size_t i = 0; i < csp.values[a].size(); ++i) {
      for (std::size_t j = 0; j < csp.values[b].size(); ++j) {
        // The image may degenerate to a vertex; both cases must be faces
        // of Δ(carrier(edge)).
        if (allowed->contains(Simplex{csp.values[a][i], csp.values[b][j]})) {
          ab.compatible[i] |= (Mask{1} << j);
          ba.compatible[j] |= (Mask{1} << i);
        }
      }
    }
    csp.binary[a].push_back(std::move(ab));
    csp.binary[b].push_back(std::move(ba));
  });

  csp.nary_of.resize(csp.n);
  domain.complex.for_each([&](const Simplex& xi) {
    if (xi.dim() < 2) return;
    Csp::NaryConstraint t;
    for (VertexId v : xi) t.vars.push_back(index.at(v));
    t.allowed = image_of(domain.carrier_of(xi));
    const std::size_t id = csp.nary.size();
    for (std::size_t var : t.vars) csp.nary_of[var].push_back(id);
    csp.nary.push_back(std::move(t));
  });
  return csp;
}

struct Solver {
  const Csp& csp;
  MapSearchResult& result;
  std::size_t node_cap;
  bool dynamic_ordering = true;

  std::vector<Mask> domain;        // current live values
  std::vector<int> assigned;       // value index or -1
  // Trail of (variable, previous mask) for undo.
  std::vector<std::pair<std::size_t, Mask>> trail;
  std::vector<std::size_t> trail_marks;

  explicit Solver(const Csp& c, MapSearchResult& r, std::size_t cap)
      : csp(c), result(r), node_cap(cap) {
    domain = csp.full_domain;
    assigned.assign(csp.n, -1);
  }

  void shrink(std::size_t var, Mask mask) {
    if ((domain[var] & mask) == domain[var]) return;
    trail.emplace_back(var, domain[var]);
    domain[var] &= mask;
  }

  /// Applies all consequences of assigning `var`; false on a wipe-out.
  bool propagate(std::size_t var) {
    const auto value = static_cast<std::size_t>(assigned[var]);
    for (const auto& bc : csp.binary[var]) {
      if (assigned[bc.other] >= 0) continue;
      shrink(bc.other, bc.compatible[value]);
      if (domain[bc.other] == 0) return false;
    }
    for (std::size_t tid : csp.nary_of[var]) {
      const auto& t = csp.nary[tid];
      // Filter the single unassigned member, if exactly one remains.
      std::size_t unassigned = csp.n;
      int count = 0;
      for (std::size_t m : t.vars) {
        if (assigned[m] < 0) {
          unassigned = m;
          ++count;
        }
      }
      if (count != 1) continue;
      std::vector<VertexId> fixed;
      fixed.reserve(t.vars.size() - 1);
      for (std::size_t m : t.vars) {
        if (m != unassigned) {
          fixed.push_back(csp.values[m][static_cast<std::size_t>(assigned[m])]);
        }
      }
      Mask ok = 0;
      Mask live = domain[unassigned];
      while (live) {
        const int j = __builtin_ctzll(live);
        live &= live - 1;
        std::vector<VertexId> image = fixed;
        image.push_back(csp.values[unassigned][static_cast<std::size_t>(j)]);
        if (t.allowed->contains(Simplex(std::move(image)))) ok |= (Mask{1} << j);
      }
      shrink(unassigned, ok);
      if (domain[unassigned] == 0) return false;
    }
    return true;
  }

  bool search() {
    // Variable selection: minimum remaining values, or first-unassigned
    // when dynamic ordering is ablated away.
    std::size_t best = csp.n;
    int best_count = 1 << 30;
    for (std::size_t i = 0; i < csp.n; ++i) {
      if (assigned[i] >= 0) continue;
      if (!dynamic_ordering) {
        best = i;
        break;
      }
      const int count = __builtin_popcountll(domain[i]);
      if (count < best_count) {
        best_count = count;
        best = i;
        if (count == 1) break;
      }
    }
    if (best == csp.n) return true;  // all assigned

    Mask live = domain[best];
    while (live) {
      if (++result.nodes_explored > node_cap) {
        result.exhausted = false;
        return false;
      }
      const int j = __builtin_ctzll(live);
      live &= live - 1;
      trail_marks.push_back(trail.size());
      assigned[best] = j;
      const bool ok = propagate(best) && search();
      if (ok) return true;
      if (!result.exhausted) {
        // Budget exceeded somewhere below: unwind without exploring more.
        assigned[best] = -1;
        return false;
      }
      // Undo.
      assigned[best] = -1;
      const std::size_t mark = trail_marks.back();
      trail_marks.pop_back();
      while (trail.size() > mark) {
        domain[trail.back().first] = trail.back().second;
        trail.pop_back();
      }
    }
    return false;
  }
};

}  // namespace

MapSearchResult find_decision_map(const VertexPool& pool,
                                  const SubdividedComplex& domain, const Task& task,
                                  const MapSearchOptions& options) {
  MapSearchResult result;
  const Csp csp = build_csp(pool, domain, task, options.chromatic);
  if (csp.n == 0) {
    result.found = true;
    return result;
  }
  if (csp.trivially_unsat) return result;

  Solver solver(csp, result, options.node_cap);
  solver.dynamic_ordering = options.dynamic_ordering;
  if (solver.search()) {
    for (std::size_t i = 0; i < csp.n; ++i) {
      result.map.set(csp.vertex[i],
                     csp.values[i][static_cast<std::size_t>(solver.assigned[i])]);
    }
    result.found = true;
  }
  return result;
}

bool validate_decision_map(const VertexPool& pool, const SubdividedComplex& domain,
                           const Task& task, const VertexMap& map, bool chromatic) {
  bool ok = true;
  domain.complex.for_each([&](const Simplex& xi) {
    if (!ok) return;
    for (VertexId v : xi) {
      if (!map.defined(v)) {
        ok = false;
        return;
      }
      if (chromatic && pool.color(map.apply(v)) != pool.color(v)) {
        ok = false;
        return;
      }
    }
    const Simplex image = map.apply(xi);
    if (!task.output.contains(image) ||
        !task.delta.allows(domain.carrier_of(xi), image)) {
      ok = false;
    }
  });
  return ok;
}

}  // namespace trichroma
