#include "solver/map_search.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/executor.h"

namespace trichroma {

namespace {

// Registry counters for the cache and search layers (see obs/metrics.h for
// the naming scheme). Looked up once; the references stay valid forever.
obs::Counter& image_hit_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("cache.image.hits");
  return c;
}
obs::Counter& image_miss_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("cache.image.misses");
  return c;
}
obs::Counter& mask_hit_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("cache.edge_masks.hits");
  return c;
}
obs::Counter& mask_miss_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("cache.edge_masks.misses");
  return c;
}

}  // namespace

const CompiledComplex* DeltaImageCache::image_of(const CarrierMap& delta,
                                                 const Simplex& carrier) {
  auto it = cache_.find(carrier);
  if (it != cache_.end()) {
    ++hits_;
    image_hit_counter().add();
    return it->second.get();
  }
  image_miss_counter().add();
  auto owned = CompiledComplex::compile(delta.image_complex(carrier));
  const CompiledComplex* ptr = owned.get();
  cache_.emplace(carrier, std::move(owned));
  return ptr;
}

std::size_t DeltaImageCache::EdgeClassHash::operator()(
    const EdgeClass& k) const noexcept {
  std::size_t h = std::hash<const void*>{}(k.allowed);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(std::hash<const void*>{}(k.image_a));
  mix(std::hash<const void*>{}(k.image_b));
  mix(static_cast<std::size_t>(static_cast<std::uint16_t>(k.color_a)));
  mix(static_cast<std::size_t>(static_cast<std::uint16_t>(k.color_b)));
  return h;
}

const DeltaImageCache::EdgeMasks* DeltaImageCache::find_edge_masks(
    const EdgeClass& key) const {
  auto it = masks_.find(key);
  if (it == masks_.end()) return nullptr;
  ++mask_hits_;
  mask_hit_counter().add();
  return it->second.get();
}

const DeltaImageCache::EdgeMasks* DeltaImageCache::store_edge_masks(
    const EdgeClass& key, EdgeMasks masks) {
  mask_miss_counter().add();
  auto owned = std::make_unique<EdgeMasks>(std::move(masks));
  const EdgeMasks* ptr = owned.get();
  masks_.emplace(key, std::move(owned));
  return ptr;
}

namespace {

// The decision-map search is a finite CSP:
//   variables   = vertices of the subdivided input complex,
//   domains     = vertices of Δ(carrier(v)) (own color only, if chromatic),
//   constraints = for every simplex ξ, the image must be a simplex of
//                 Δ(carrier(ξ)).
// Edge constraints are compiled to per-value compatibility bitmasks and
// propagated by forward checking; triangle constraints filter the third
// vertex once two are assigned. Variables are picked dynamically by
// minimum remaining values. The search is systematic, so a negative
// answer with `exhausted = true` is a proof of non-existence at this
// radius.
//
// Parallel mode partitions the space by decision prefixes: the top levels
// of the (MRV-ordered) search tree are expanded breadth-first into a FIXED
// set of ~kSplitTargetJobs disjoint partial assignments in DFS order — the
// decomposition never looks at the worker count. Workers (the shared
// executor's pool) race the prefixes opportunistically under an advisory
// global budget; a canonical accounting pass then replays the sequential
// budget arithmetic over the DFS-ordered job list, re-running any job the
// race aborted. The reported verdict, witness AND nodes_explored are
// therefore bit-identical for every thread count: parallelism can only
// change how fast phase 2 warms the cache of per-job outcomes, never what
// the canonical walk concludes from them.

using Mask = std::uint64_t;  // domains in this codebase are small (< 64)
constexpr std::size_t kMaxDomain = 64;

struct Csp {
  std::size_t n = 0;                          // number of variables
  std::vector<VertexId> vertex;               // variable index → domain vertex
  std::vector<std::vector<VertexId>> values;  // candidate lists
  std::vector<Mask> full_domain;

  struct BinaryConstraint {
    std::size_t other;               // the neighboring variable
    std::vector<Mask> compatible;    // per own-value mask over other's values
  };
  std::vector<std::vector<BinaryConstraint>> binary;  // per variable

  // Simplex constraints of arity >= 3 (triangles for three processes,
  // tetrahedra for four, ...): the image of {vars} must be a simplex of
  // `allowed`. Filtered whenever exactly one member remains unassigned.
  struct NaryConstraint {
    std::vector<std::size_t> vars;
    const CompiledComplex* allowed;  // Δ(carrier(simplex))
  };
  std::vector<NaryConstraint> nary;
  std::vector<std::vector<std::size_t>> nary_of;  // per variable

  bool trivially_unsat = false;
};

Csp build_csp(const VertexPool& pool, const SubdividedComplex& domain,
              const Task& task, bool chromatic, DeltaImageCache& images) {
  TRI_SPAN("map_search/build_csp");
  Csp csp;
  // The compiled snapshot's locals are in raw-id order — identical to the
  // sorted vertex_ids() order the hash-set path used — so variable indices,
  // candidate lists, and therefore the whole search trace are unchanged.
  const std::shared_ptr<const CompiledComplex> snapshot = domain.compiled_view();
  const CompiledComplex& dc = *snapshot;
  csp.n = dc.num_vertices();
  csp.vertex.reserve(csp.n);
  for (std::size_t i = 0; i < csp.n; ++i) {
    csp.vertex.push_back(dc.vertex(static_cast<CompiledComplex::Local>(i)));
  }

  auto image_of = [&](const Simplex& carrier) {
    return images.image_of(task.delta, carrier);
  };

  // Per-variable carriers, fetched once: edge/triangle carriers below are
  // unions of these (carrier_of is exactly that union).
  std::vector<const Simplex*> carrier_of_var(csp.n);
  for (std::size_t i = 0; i < csp.n; ++i) {
    carrier_of_var[i] = &domain.carrier.at(csp.vertex[i]);
  }

  csp.values.resize(csp.n);
  csp.full_domain.resize(csp.n);
  // Interned image of each variable's carrier; two variables with the same
  // (image, color) have identical candidate lists, which is what lets edge
  // masks be shared below.
  std::vector<const CompiledComplex*> vertex_image(csp.n);
  for (std::size_t i = 0; i < csp.n; ++i) {
    vertex_image[i] = image_of(*carrier_of_var[i]);
    const CompiledComplex& img = *vertex_image[i];
    const Color own = chromatic ? pool.color(csp.vertex[i]) : kNoColor;
    for (std::size_t j = 0; j < img.num_vertices(); ++j) {
      const VertexId w = img.vertex(static_cast<CompiledComplex::Local>(j));
      if (!chromatic || pool.color(w) == own) {
        csp.values[i].push_back(w);
      }
    }
    if (csp.values[i].empty() || csp.values[i].size() > kMaxDomain) {
      // Empty: unsatisfiable. Oversized: would need wider masks; treat as
      // unsatisfiable rather than silently mis-solving (not hit by any task
      // in this repository — domains are |V(Δ(carrier))| ≤ a few dozen).
      csp.trivially_unsat = true;
      return csp;
    }
    csp.full_domain[i] =
        csp.values[i].size() == kMaxDomain
            ? ~Mask{0}
            : ((Mask{1} << csp.values[i].size()) - 1);
  }

  csp.binary.resize(csp.n);
  for (std::size_t e = 0; e < dc.num_edges(); ++e) {
    // Variable indices ARE the compiled locals.
    const auto [la, lb] = dc.edge(e);
    const auto a = static_cast<std::size_t>(la), b = static_cast<std::size_t>(lb);
    const CompiledComplex* allowed =
        image_of(carrier_of_var[a]->unite(*carrier_of_var[b]));
    // Masks depend only on the edge's class (images + colors), not on the
    // concrete edge; hit the memo before paying the |values|² contains()
    // sweep. Almost every edge of Ch^r shares its class with many others.
    const DeltaImageCache::EdgeClass key{
        allowed, vertex_image[a], vertex_image[b],
        chromatic ? pool.color(csp.vertex[a]) : kNoColor,
        chromatic ? pool.color(csp.vertex[b]) : kNoColor};
    const DeltaImageCache::EdgeMasks* masks = images.find_edge_masks(key);
    if (masks == nullptr) {
      DeltaImageCache::EdgeMasks fresh;
      fresh.ab.assign(csp.values[a].size(), 0);
      fresh.ba.assign(csp.values[b].size(), 0);
      for (std::size_t i = 0; i < csp.values[a].size(); ++i) {
        const CompiledComplex::Local ia = allowed->local(csp.values[a][i]);
        if (ia == CompiledComplex::kAbsent) continue;
        for (std::size_t j = 0; j < csp.values[b].size(); ++j) {
          // The image may degenerate to a vertex (color-agnostic mode);
          // both cases must be faces of Δ(carrier(edge)).
          const CompiledComplex::Local ib = allowed->local(csp.values[b][j]);
          if (ib == CompiledComplex::kAbsent) continue;
          const bool face =
              ia == ib || (ia < ib ? allowed->contains_edge(ia, ib)
                                   : allowed->contains_edge(ib, ia));
          if (face) {
            fresh.ab[i] |= (Mask{1} << j);
            fresh.ba[j] |= (Mask{1} << i);
          }
        }
      }
      masks = images.store_edge_masks(key, std::move(fresh));
    }
    Csp::BinaryConstraint ab, ba;
    ab.other = b;
    ba.other = a;
    ab.compatible = masks->ab;
    ba.compatible = masks->ba;
    csp.binary[a].push_back(std::move(ab));
    csp.binary[b].push_back(std::move(ba));
  }

  csp.nary_of.resize(csp.n);
  for (int d = 2; d <= dc.dimension(); ++d) {
    const CompiledComplex::Local* flat = dc.cells_flat(d);
    const std::size_t stride = static_cast<std::size_t>(d) + 1;
    for (std::size_t cell = 0; cell < dc.count(d); ++cell) {
      const CompiledComplex::Local* verts = flat + cell * stride;
      Csp::NaryConstraint t;
      t.vars.reserve(stride);
      Simplex carrier;
      for (std::size_t i = 0; i < stride; ++i) {
        const auto var = static_cast<std::size_t>(verts[i]);
        t.vars.push_back(var);
        carrier = carrier.unite(*carrier_of_var[var]);
      }
      t.allowed = image_of(carrier);
      const std::size_t id = csp.nary.size();
      for (std::size_t var : t.vars) csp.nary_of[var].push_back(id);
      csp.nary.push_back(std::move(t));
    }
  }
  return csp;
}

constexpr std::size_t kNoBudget = static_cast<std::size_t>(-1);
constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);
// Node charges are counted locally and reconciled against budgets only at
// flush boundaries (every kNodeFlushBatch-th charge). Coarse flushing keeps
// the shared counter off the hot path, and the canonical accounting below
// is defined in terms of the same boundaries — which is what makes
// nodes_explored and cap verdicts bit-identical at every worker count.
constexpr std::size_t kNodeFlushBatch = 256;
// The prefix decomposition is fixed, never scaled by the worker count: the
// job list is a pure function of the CSP.
constexpr std::size_t kSplitTargetJobs = 64;
constexpr std::size_t kMaxPrefixDepth = 6;

// State shared by the phase-2 workers of one parallel search. Everything
// here is *advisory*: it bounds the total work and lets losing workers
// abort early, but the reported result is recomputed canonically in phase
// 3, so none of these races can leak into the output.
struct SharedSearch {
  std::atomic<std::size_t> charged{0};    // flushed charges, all workers
  std::atomic<bool> stop{false};          // budget gone or external cancel
  std::atomic<std::size_t> best{kNoJob};  // lowest solved job index so far
  // Caller-provided cancellation flag (MapSearchOptions::cancel), or null.
  const std::atomic<bool>* external = nullptr;
  std::atomic<bool> ext_cancelled{false};
};

struct Solver {
  const Csp& csp;
  bool dynamic_ordering = true;

  // Budgets, all checked at flush boundaries. `local_budget` is the
  // canonical per-run budget (phase-3 and sequential runs). `shared` —
  // phase-2 workers only — adds the advisory global budget, the stop flag
  // and the best-index race. `external` is the caller's cancel flag.
  std::size_t local_budget = kNoBudget;
  std::size_t flush_batch = kNodeFlushBatch;
  std::size_t global_cap = kNoBudget;
  SharedSearch* shared = nullptr;
  std::size_t job_index = kNoJob;
  const std::atomic<bool>* external = nullptr;

  bool aborted = false;   // unwound at a flush boundary
  bool ext_seen = false;  // the abort was the external cancel
  std::size_t total_nodes = 0;
  std::size_t unflushed = 0;

  std::vector<Mask> domain;        // current live values
  std::vector<int> assigned;       // value index or -1
  // Trail of (variable, previous mask) for undo.
  std::vector<std::pair<std::size_t, Mask>> trail;
  std::vector<std::size_t> trail_marks;

  Solver(const Csp& c, bool mrv) : csp(c), dynamic_ordering(mrv) {
    domain = csp.full_domain;
    assigned.assign(csp.n, -1);
  }

  void shrink(std::size_t var, Mask mask) {
    if ((domain[var] & mask) == domain[var]) return;
    trail.emplace_back(var, domain[var]);
    domain[var] &= mask;
  }

  /// Applies all consequences of assigning `var`; false on a wipe-out.
  bool propagate(std::size_t var) {
    const auto value = static_cast<std::size_t>(assigned[var]);
    for (const auto& bc : csp.binary[var]) {
      if (assigned[bc.other] >= 0) continue;
      shrink(bc.other, bc.compatible[value]);
      if (domain[bc.other] == 0) return false;
    }
    for (std::size_t tid : csp.nary_of[var]) {
      const auto& t = csp.nary[tid];
      // Filter the single unassigned member, if exactly one remains.
      std::size_t unassigned = csp.n;
      int count = 0;
      for (std::size_t m : t.vars) {
        if (assigned[m] < 0) {
          unassigned = m;
          ++count;
        }
      }
      if (count != 1) continue;
      std::vector<VertexId> fixed;
      fixed.reserve(t.vars.size() - 1);
      for (std::size_t m : t.vars) {
        if (m != unassigned) {
          fixed.push_back(csp.values[m][static_cast<std::size_t>(assigned[m])]);
        }
      }
      Mask ok = 0;
      Mask live = domain[unassigned];
      while (live) {
        const int j = __builtin_ctzll(live);
        live &= live - 1;
        std::vector<VertexId> image = fixed;
        image.push_back(csp.values[unassigned][static_cast<std::size_t>(j)]);
        if (t.allowed->contains(Simplex(std::move(image)))) ok |= (Mask{1} << j);
      }
      shrink(unassigned, ok);
      if (domain[unassigned] == 0) return false;
    }
    return true;
  }

  /// MRV variable selection (or first-unassigned when ablated away);
  /// csp.n when everything is assigned.
  std::size_t select_variable() const {
    std::size_t best = csp.n;
    int best_count = 1 << 30;
    for (std::size_t i = 0; i < csp.n; ++i) {
      if (assigned[i] >= 0) continue;
      if (!dynamic_ordering) return i;
      const int count = __builtin_popcountll(domain[i]);
      if (count < best_count) {
        best_count = count;
        best = i;
        if (count == 1) break;
      }
    }
    return best;
  }

  /// Counts a node; false when the search must unwind (budget gone at a
  /// flush boundary, cancelled from outside, or the best-index race lost).
  bool charge_node() {
    ++total_nodes;
    if (++unflushed < flush_batch) return true;
    return flush();
  }

  bool flush() {
    const std::size_t add = unflushed;
    unflushed = 0;
    if (total_nodes > local_budget) {
      obs::MetricsRegistry::global().counter("map_search.cap_hits").add();
      aborted = true;
      return false;
    }
    if (external != nullptr && external->load(std::memory_order_relaxed)) {
      aborted = true;
      ext_seen = true;
      if (shared != nullptr) {
        shared->ext_cancelled.store(true, std::memory_order_relaxed);
        shared->stop.store(true, std::memory_order_relaxed);
      }
      return false;
    }
    if (shared != nullptr) {
      const std::size_t now =
          shared->charged.fetch_add(add, std::memory_order_relaxed) + add;
      if (obs::trace_enabled()) {
        // Global-counter flush boundary: the advisory budget's view of the
        // whole race, sampled from whichever worker flushed.
        obs::trace_counter("map_search/charged", static_cast<double>(now));
      }
      if (now > global_cap) {
        obs::MetricsRegistry::global().counter("map_search.cap_hits").add();
        shared->stop.store(true, std::memory_order_relaxed);
        aborted = true;
        return false;
      }
      if (shared->stop.load(std::memory_order_relaxed)) {
        aborted = true;
        return false;
      }
      if (shared->best.load(std::memory_order_relaxed) < job_index) {
        aborted = true;
        return false;
      }
    }
    return true;
  }

  /// Final flush of leftover charges into the shared counter (keeps the
  /// advisory budget honest); never aborts a finished run.
  void settle() {
    if (shared != nullptr && unflushed > 0) {
      shared->charged.fetch_add(unflushed, std::memory_order_relaxed);
    }
    unflushed = 0;
  }

  /// Applies a decision prefix without charging (the expansion already paid
  /// for enumerating it). False when propagation wipes out: empty subtree.
  bool replay(const std::vector<std::pair<std::size_t, int>>& assignments) {
    for (const auto& [var, j] : assignments) {
      if (!assign(var, j)) return false;
    }
    return true;
  }

  /// Assigns value index `j` to `var` and propagates, pushing an undo mark.
  /// False on wipe-out (the mark is still pushed; call undo_to_mark).
  bool assign(std::size_t var, int j) {
    trail_marks.push_back(trail.size());
    assigned[var] = j;
    return propagate(var);
  }

  void undo_to_mark(std::size_t var) {
    assigned[var] = -1;
    const std::size_t mark = trail_marks.back();
    trail_marks.pop_back();
    while (trail.size() > mark) {
      domain[trail.back().first] = trail.back().second;
      trail.pop_back();
    }
  }

  bool search() {
    const std::size_t best = select_variable();
    if (best == csp.n) return true;  // all assigned

    Mask live = domain[best];
    while (live) {
      if (!charge_node()) return false;
      const int j = __builtin_ctzll(live);
      live &= live - 1;
      const bool ok = assign(best, j) && search();
      if (ok) return true;
      if (aborted) {
        // Budget exceeded or race lost somewhere below: unwind without
        // exploring more.
        assigned[best] = -1;
        return false;
      }
      undo_to_mark(best);
    }
    return false;
  }
};

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Splitting a search that dies within a few hundred nodes only pays
// expansion overhead; tiny CSPs (low radii, solo/edge-only inputs) run the
// plain backtracker at every thread count. Verdicts are unaffected — both
// engines are complete.
constexpr std::size_t kMinVariablesForSplit = 10;

void emit_map(const Csp& csp, const std::vector<int>& assigned,
              MapSearchResult& result) {
  result.found = true;
  for (std::size_t i = 0; i < csp.n; ++i) {
    result.map.set(csp.vertex[i],
                   csp.values[i][static_cast<std::size_t>(assigned[i])]);
  }
}

/// Small-CSP path: the plain sequential backtracker with the seed engine's
/// exact per-node budget checks (flush batch 1).
void run_small(const Csp& csp, const MapSearchOptions& options,
               MapSearchResult& result) {
  Solver solver(csp, options.dynamic_ordering);
  solver.flush_batch = 1;
  solver.local_budget = options.node_cap;
  solver.external = options.cancel;
  const bool found = solver.search();
  result.nodes_explored = solver.total_nodes;
  result.cancelled = solver.ext_seen;
  result.exhausted = !solver.aborted;
  if (found) emit_map(csp, solver.assigned, result);
}

/// One disjoint chunk of the search space — the decision prefix reaching
/// one node at the top of the MRV tree — plus its phase-2 outcome.
struct PrefixJob {
  std::vector<std::pair<std::size_t, int>> assignments;  // (variable, value)

  enum class State { NotRun, Done, Aborted };
  State state = State::NotRun;
  bool solved = false;
  std::size_t nodes = 0;        // full subtree charge count (Done only)
  std::vector<int> assignment;  // complete assignment when solved
};

struct Expansion {
  std::vector<PrefixJob> jobs;  // DFS (lexicographic value-index) order
  std::size_t nodes = 0;        // charges paid enumerating the prefixes
  bool capped = false;
  bool cancelled = false;
};

// Phase 1 — fixed decomposition: expand the top of the MRV tree
// breadth-first into ~kSplitTargetJobs disjoint prefixes, then sort them
// into DFS order. Sibling values are enumerated ascending and the variable
// at each level is a function of the prefix, so comparing value indices
// lexicographically reproduces the depth-first visit order. Expansion is
// where prefix enumeration is charged — jobs replay their prefix for free,
// so a prefix is paid for exactly once no matter how many workers touch it.
Expansion expand_prefixes(const Csp& csp, const MapSearchOptions& options) {
  TRI_SPAN("map_search/expand_prefixes");
  Expansion out;
  using Assignments = std::vector<std::pair<std::size_t, int>>;
  std::deque<Assignments> open;
  std::vector<Assignments> leaves;
  open.push_back({});
  while (!open.empty() && open.size() + leaves.size() < kSplitTargetJobs) {
    Assignments p = std::move(open.front());
    open.pop_front();
    if (p.size() >= kMaxPrefixDepth) {
      leaves.push_back(std::move(p));
      continue;
    }
    Solver scratch(csp, options.dynamic_ordering);
    scratch.flush_batch = 1;  // exact budget checks while splitting
    scratch.local_budget =
        options.node_cap > out.nodes ? options.node_cap - out.nodes : 0;
    scratch.external = options.cancel;
    bool dead = false;
    for (const auto& [var, j] : p) {
      if (!scratch.charge_node()) {
        // Budget exhausted (or cancellation) during splitting — report like
        // the sequential engine would: inconclusive, nothing found.
        out.nodes += scratch.total_nodes;
        out.cancelled = scratch.ext_seen;
        out.capped = !scratch.ext_seen;
        return out;
      }
      if (!scratch.assign(var, j)) {
        dead = true;
        break;
      }
    }
    out.nodes += scratch.total_nodes;
    if (dead) continue;  // empty subtree: exhausted by propagation alone
    const std::size_t var = scratch.select_variable();
    if (var == csp.n) {
      // The prefix assigns every variable (unreachable while
      // kMaxPrefixDepth < kMinVariablesForSplit, but kept correct): the
      // walk's replay-then-search will confirm it as a zero-node witness.
      leaves.push_back(std::move(p));
      continue;
    }
    Mask live = scratch.domain[var];
    while (live) {
      const int j = __builtin_ctzll(live);
      live &= live - 1;
      Assignments child = p;
      child.emplace_back(var, j);
      open.push_back(std::move(child));
    }
  }
  for (Assignments& p : open) leaves.push_back(std::move(p));
  std::sort(leaves.begin(), leaves.end(),
            [](const Assignments& a, const Assignments& b) {
              const std::size_t n = std::min(a.size(), b.size());
              for (std::size_t i = 0; i < n; ++i) {
                if (a[i].second != b[i].second) {
                  return a[i].second < b[i].second;
                }
              }
              return a.size() < b.size();
            });
  out.jobs.reserve(leaves.size());
  for (Assignments& p : leaves) {
    PrefixJob job;
    job.assignments = std::move(p);
    out.jobs.push_back(std::move(job));
  }
  return out;
}

// Phase 2 — opportunistic parallel pass: one executor job per prefix,
// submitted to the shared work-stealing pool (the caller helps via
// JobGroup::wait, so `threads` includes this thread). Workers race under
// the advisory global budget; a completed job records its exact —
// schedule-independent — subtree charge count, an aborted one is re-run
// canonically in phase 3. Each job writes only its own PrefixJob slot, and
// group completion publishes them to the walk.
void run_phase2(const Csp& csp, const MapSearchOptions& options, int threads,
                std::vector<PrefixJob>& jobs, SharedSearch& shared) {
  Executor& executor = Executor::global();
  executor.ensure_workers(threads - 1);
  JobGroup group(executor);
  static obs::Counter& prefix_jobs =
      obs::MetricsRegistry::global().counter("map_search.prefix_jobs");
  prefix_jobs.add(jobs.size());
  for (std::size_t index = 0; index < jobs.size(); ++index) {
    group.submit([&csp, &options, &jobs, &shared, index] {
      TRI_SPAN("map_search/prefix");
      PrefixJob& job = jobs[index];
      if (shared.stop.load(std::memory_order_relaxed) ||
          shared.best.load(std::memory_order_relaxed) < index) {
        job.state = PrefixJob::State::Aborted;
        return;
      }
      Solver solver(csp, options.dynamic_ordering);
      solver.shared = &shared;
      solver.global_cap = options.node_cap;
      solver.job_index = index;
      solver.external = options.cancel;
      if (!solver.replay(job.assignments)) {
        job.state = PrefixJob::State::Done;  // empty subtree, zero charges
        return;
      }
      const bool solved = solver.search();
      solver.settle();
      if (!solved && solver.aborted) {
        job.state = PrefixJob::State::Aborted;
        return;
      }
      job.nodes = solver.total_nodes;
      job.solved = solved;
      if (solved) {
        job.assignment = solver.assigned;
        std::size_t current = shared.best.load(std::memory_order_relaxed);
        while (index < current &&
               !shared.best.compare_exchange_weak(current, index,
                                                  std::memory_order_relaxed)) {
        }
      }
      job.state = PrefixJob::State::Done;
      return;
    });
  }
  group.wait();
}

// Phase 3 — canonical accounting: walk the jobs in DFS order simulating
// ONE sequential run whose node counter carries across jobs — the budget is
// reconciled at *global* flush boundaries (node counts 256, 512, ...), so a
// cap is detected within kNodeFlushBatch charges no matter how the counter
// is sliced into subtrees. A Done job replays in closed form (its charge
// count is schedule-independent, so the boundaries it crosses are
// computable without re-searching); anything else re-runs inline seeded
// with the global counter and phase, which aborts at exactly the same
// boundaries. Every thread count therefore reports the same winner,
// witness, nodes_explored and cap verdict.
void canonical_walk(const Csp& csp, const MapSearchOptions& options,
                    std::vector<PrefixJob>& jobs, std::size_t base,
                    MapSearchResult& result) {
  const std::size_t cap = options.node_cap;
  for (PrefixJob& job : jobs) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      result.cancelled = true;
      result.exhausted = false;
      result.nodes_explored = base;
      return;
    }
    if (job.state == PrefixJob::State::Done) {
      // First global boundary inside this job's charge span (base, base+n].
      std::size_t boundary =
          (base / kNodeFlushBatch + 1) * kNodeFlushBatch;
      bool capped = false;
      while (boundary <= base + job.nodes) {
        if (boundary > cap) {
          capped = true;
          break;
        }
        boundary += kNodeFlushBatch;
      }
      if (capped) {
        obs::MetricsRegistry::global().counter("map_search.cap_hits").add();
        result.exhausted = false;
        result.nodes_explored = boundary;
        return;
      }
      base += job.nodes;
      if (job.solved) {
        result.nodes_explored = base;
        emit_map(csp, job.assignment, result);
        return;
      }
    } else {
      Solver solver(csp, options.dynamic_ordering);
      solver.local_budget = cap;
      solver.external = options.cancel;
      solver.total_nodes = base;           // global counter, carried over
      solver.unflushed = base % kNodeFlushBatch;  // global flush phase
      if (!solver.replay(job.assignments)) continue;
      const bool solved = solver.search();
      if (!solved && solver.aborted) {
        result.exhausted = false;
        result.cancelled = solver.ext_seen;
        result.nodes_explored = solver.total_nodes;
        return;
      }
      base = solver.total_nodes;
      if (solved) {
        result.nodes_explored = base;
        emit_map(csp, solver.assigned, result);
        return;
      }
    }
  }
  result.nodes_explored = base;  // every subtree exhausted
}

void run_split(const Csp& csp, const MapSearchOptions& options, int threads,
               MapSearchResult& result) {
  Expansion expansion = expand_prefixes(csp, options);
  if (expansion.capped || expansion.cancelled) {
    result.cancelled = expansion.cancelled;
    result.exhausted = false;
    result.nodes_explored = expansion.nodes;
    return;
  }
  if (threads > 1 && !expansion.jobs.empty()) {
    SharedSearch shared;
    shared.external = options.cancel;
    run_phase2(csp, options, threads, expansion.jobs, shared);
    if (shared.ext_cancelled.load(std::memory_order_relaxed)) {
      // Cancellation is inherently timing-dependent; report a found map if
      // some job already solved, else a plain cancelled result.
      const std::size_t best = shared.best.load(std::memory_order_relaxed);
      result.nodes_explored =
          expansion.nodes + shared.charged.load(std::memory_order_relaxed);
      if (best != kNoJob) {
        emit_map(csp, expansion.jobs[best].assignment, result);
      } else {
        result.cancelled = true;
        result.exhausted = false;
      }
      return;
    }
  }
  canonical_walk(csp, options, expansion.jobs, expansion.nodes, result);
}

}  // namespace

int resolve_search_threads(int requested) { return resolve_threads(requested); }

MapSearchResult find_decision_map(const VertexPool& pool,
                                  const SubdividedComplex& domain, const Task& task,
                                  const MapSearchOptions& options) {
  TRI_SPAN("map_search/find_decision_map");
  static obs::Counter& searches =
      obs::MetricsRegistry::global().counter("map_search.searches");
  searches.add();
  MapSearchResult result;
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    // Cancelled before the CSP is even compiled.
    result.cancelled = true;
    result.exhausted = false;
    return result;
  }
  DeltaImageCache local_images;
  DeltaImageCache& images =
      options.image_cache != nullptr ? *options.image_cache : local_images;
  const Csp csp = build_csp(pool, domain, task, options.chromatic, images);
  if (csp.n == 0) {
    result.found = true;
    return result;
  }
  if (csp.trivially_unsat) return result;

  if (csp.n < kMinVariablesForSplit) {
    run_small(csp, options, result);
  } else {
    run_split(csp, options, resolve_threads(options.threads), result);
  }
  return result;
}

bool validate_decision_map(const VertexPool& pool, const SubdividedComplex& domain,
                           const Task& task, const VertexMap& map, bool chromatic) {
  bool ok = true;
  domain.complex.for_each([&](const Simplex& xi) {
    if (!ok) return;
    for (VertexId v : xi) {
      if (!map.defined(v)) {
        ok = false;
        return;
      }
      if (chromatic && pool.color(map.apply(v)) != pool.color(v)) {
        ok = false;
        return;
      }
    }
    const Simplex image = map.apply(xi);
    if (!task.output.contains(image) ||
        !task.delta.allows(domain.carrier_of(xi), image)) {
      ok = false;
    }
  });
  return ok;
}

}  // namespace trichroma
