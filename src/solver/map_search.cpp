#include "solver/map_search.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <memory_resource>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/executor.h"

namespace trichroma {

namespace {

// Registry counters for the cache and search layers (see obs/metrics.h for
// the naming scheme). Looked up once; the references stay valid forever.
obs::Counter& image_hit_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("cache.image.hits");
  return c;
}
obs::Counter& image_miss_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("cache.image.misses");
  return c;
}
obs::Counter& mask_hit_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("cache.edge_masks.hits");
  return c;
}
obs::Counter& mask_miss_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("cache.edge_masks.misses");
  return c;
}
obs::Counter& tri_hit_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("cache.tri_tables.hits");
  return c;
}
obs::Counter& tri_miss_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("cache.tri_tables.misses");
  return c;
}
// Candidate-pool sizes of compiled Δ-images, one record per charged miss
// (cold compiles and first warm touches — the same accounting the hit/miss
// counters use, so the distribution is seeding- and thread-independent).
obs::Histogram& image_vertices_histogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("cache.delta.image_vertices");
  return h;
}
// Binary rows proven unable to prune, skipped before the row load. Only
// flushed from the deterministic accounting sites (sequential runs, the
// prefix expansion, and the canonical walk), never from racing phase-2
// workers, so the rollup is identical at every thread count.
obs::Counter& fastpath_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "search.propagate.fastpath_skips");
  return c;
}
// Bytes reserved on search arenas at the deterministic construction sites
// (CSP compilation, the sequential solver, expansion scratch solvers).
// Phase-2 worker arenas are excluded: how many of those exist before the
// race settles is timing-dependent.
obs::Counter& arena_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "search.arena.bytes_reserved");
  return c;
}

constexpr std::size_t kMaxDomain = 64;

/// POD array carved from a monotonic arena (uninitialized). `bytes`, when
/// given, accumulates the reservation for the arena counter.
template <typename T>
T* arena_array(std::pmr::monotonic_buffer_resource& arena, std::size_t count,
               std::size_t* bytes = nullptr) {
  if (count == 0) return nullptr;
  const std::size_t size = count * sizeof(T);
  if (bytes != nullptr) *bytes += size;
  return static_cast<T*>(arena.allocate(size, alignof(T)));
}

}  // namespace

const CompiledComplex* DeltaImageCache::image_of(const CarrierMap& delta,
                                                 const Simplex& carrier) {
  auto it = cache_.find(carrier);
  if (it != cache_.end()) {
    // A warm (preloaded) entry's first touch is charged as the miss the
    // cold run would have paid, so counters stay seeded-vs-cold identical.
    // The empty() guard keeps the hit fast path free of a second hash on
    // cold runs, where the warm set never has members.
    if (!warm_.empty()) {
      const auto warm = warm_.find(carrier);
      if (warm != warm_.end()) {
        warm_.erase(warm);
        ++misses_;
        image_miss_counter().add();
        image_vertices_histogram().record(it->second->num_vertices());
        return it->second.get();
      }
    }
    ++hits_;
    image_hit_counter().add();
    return it->second.get();
  }
  ++misses_;
  image_miss_counter().add();
  auto owned = CompiledComplex::compile(delta.image_complex(carrier));
  const CompiledComplex* ptr = owned.get();
  image_vertices_histogram().record(ptr->num_vertices());
  cache_.emplace(carrier, std::move(owned));
  return ptr;
}

void DeltaImageCache::preload(const Simplex& carrier,
                              const std::vector<Simplex>& facets) {
  if (cache_.count(carrier) != 0) return;
  SimplicialComplex image;
  for (const Simplex& f : facets) image.add(f);
  cache_.emplace(carrier, CompiledComplex::compile(image));
  warm_.insert(carrier);
}

void DeltaImageCache::populate(const CarrierMap& delta,
                               const std::vector<Simplex>& carriers,
                               int threads) {
  TRI_SPAN("ladder/populate");
  std::vector<const Simplex*> todo;
  todo.reserve(carriers.size());
  for (const Simplex& c : carriers) {
    if (!c.empty() && cache_.count(c) == 0) todo.push_back(&c);
  }
  if (todo.empty()) return;

  // Compile into per-carrier slots first; nothing touches cache_ until the
  // deterministic merge below, so the map's content (and therefore every
  // pointer handed out later) is independent of scheduling.
  std::vector<std::shared_ptr<const CompiledComplex>> compiled(todo.size());
  const auto compile_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      compiled[i] = CompiledComplex::compile(delta.image_complex(*todo[i]));
    }
  };
  if (threads <= 1) {
    compile_range(0, todo.size());
  } else {
    static obs::Counter& contention = obs::MetricsRegistry::global().counter(
        "cache.delta.stripe_contention");
    Executor& executor = Executor::global();
    executor.ensure_workers(threads - 1);
    const std::size_t stripes =
        Executor::recommended_chunks(threads, todo.size());
    // Equal-count contiguous stripes: Δ-images of one base complex are all
    // small, so count balancing suffices (unlike the facet-weighted chunks
    // of the subdivision build).
    std::vector<std::size_t> bounds(stripes + 1);
    for (std::size_t s = 0; s <= stripes; ++s) {
      bounds[s] = todo.size() * s / stripes;
    }
    // Stripe claiming: each job scans circularly from its own offset and
    // claims stripes with an atomic exchange. A failed exchange means
    // another worker got there first — counted as stripe contention
    // (pure telemetry; reports redact it with the other scheduling-
    // dependent quantities).
    std::vector<std::atomic<int>> claimed(stripes);
    for (auto& flag : claimed) flag.store(0, std::memory_order_relaxed);
    const std::size_t jobs =
        std::min<std::size_t>(static_cast<std::size_t>(threads), stripes);
    const auto run = [&](std::size_t job) {
      const std::size_t start = stripes * job / jobs;
      for (std::size_t k = 0; k < stripes; ++k) {
        const std::size_t s = (start + k) % stripes;
        if (claimed[s].exchange(1, std::memory_order_acq_rel) != 0) {
          contention.add();
          continue;
        }
        compile_range(bounds[s], bounds[s + 1]);
      }
    };
    JobGroup group(executor);
    for (std::size_t j = 1; j < jobs; ++j) {
      group.submit([&run, j] { run(j); });
    }
    run(0);
    group.wait();
  }

  // Deterministic merge in carrier order; warm marking keeps the hit/miss
  // accounting as-if-cold (see image_of).
  for (std::size_t i = 0; i < todo.size(); ++i) {
    cache_.emplace(*todo[i], std::move(compiled[i]));
    warm_.insert(*todo[i]);
  }
}

std::size_t DeltaImageCache::EdgeClassHash::operator()(
    const EdgeClass& k) const noexcept {
  std::size_t h = std::hash<const void*>{}(k.allowed);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(std::hash<const void*>{}(k.image_a));
  mix(std::hash<const void*>{}(k.image_b));
  mix(static_cast<std::size_t>(static_cast<std::uint16_t>(k.color_a)));
  mix(static_cast<std::size_t>(static_cast<std::uint16_t>(k.color_b)));
  return h;
}

std::size_t DeltaImageCache::TriClassHash::operator()(
    const TriClass& k) const noexcept {
  std::size_t h = std::hash<const void*>{}(k.allowed);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (int i = 0; i < 3; ++i) {
    mix(std::hash<const void*>{}(k.image[static_cast<std::size_t>(i)]));
    mix(static_cast<std::size_t>(
        static_cast<std::uint16_t>(k.color[static_cast<std::size_t>(i)])));
  }
  return h;
}

const DeltaImageCache::EdgeMasks* DeltaImageCache::edge_masks(
    const EdgeClass& key, const VertexId* vals_a, std::uint32_t na,
    const VertexId* vals_b, std::uint32_t nb) {
  auto it = masks_.find(key);
  if (it != masks_.end()) {
    ++mask_hits_;
    mask_hit_counter().add();
    return &it->second;
  }
  mask_miss_counter().add();
  const CompiledComplex& allowed = *key.allowed;
  Mask* ab = arena_array<Mask>(mask_arena_, na);
  Mask* ba = arena_array<Mask>(mask_arena_, nb);
  std::fill_n(ab, na, Mask{0});
  std::fill_n(ba, nb, Mask{0});
  std::array<CompiledComplex::Local, kMaxDomain> lb;
  for (std::uint32_t j = 0; j < nb; ++j) lb[j] = allowed.local(vals_b[j]);
  for (std::uint32_t i = 0; i < na; ++i) {
    const CompiledComplex::Local ia = allowed.local(vals_a[i]);
    if (ia == CompiledComplex::kAbsent) continue;
    for (std::uint32_t j = 0; j < nb; ++j) {
      // The image may degenerate to a vertex (color-agnostic mode); both
      // cases must be faces of Δ(carrier(edge)).
      const CompiledComplex::Local ib = lb[j];
      if (ib == CompiledComplex::kAbsent) continue;
      const bool face = ia == ib || (ia < ib ? allowed.contains_edge(ia, ib)
                                             : allowed.contains_edge(ib, ia));
      if (face) {
        ab[i] |= Mask{1} << j;
        ba[j] |= Mask{1} << i;
      }
    }
  }
  EdgeMasks m;
  m.ab = ab;
  m.ba = ba;
  m.na = na;
  m.nb = nb;
  const Mask full_a = na == kMaxDomain ? ~Mask{0} : (Mask{1} << na) - 1;
  const Mask full_b = nb == kMaxDomain ? ~Mask{0} : (Mask{1} << nb) - 1;
  for (std::uint32_t i = 0; i < na; ++i) {
    if (ab[i] == full_b) m.skip_ab |= Mask{1} << i;
  }
  for (std::uint32_t j = 0; j < nb; ++j) {
    if (ba[j] == full_a) m.skip_ba |= Mask{1} << j;
  }
  return &masks_.emplace(key, m).first->second;
}

const DeltaImageCache::TriTables* DeltaImageCache::tri_tables(
    const TriClass& key, const std::array<const VertexId*, 3>& vals,
    const std::array<std::uint32_t, 3>& n) {
  auto it = tris_.find(key);
  if (it != tris_.end()) {
    ++tri_hits_;
    tri_hit_counter().add();
    return &it->second;
  }
  tri_miss_counter().add();
  const CompiledComplex& allowed = *key.allowed;
  std::array<std::array<CompiledComplex::Local, kMaxDomain>, 3> loc;
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::uint32_t j = 0; j < n[p]; ++j) {
      loc[p][j] = allowed.local(vals[p][j]);
    }
  }
  TriTables t;
  t.n = n;
  std::array<Mask*, 3> comp;
  const std::array<std::size_t, 3> cells = {std::size_t{n[1]} * n[2],
                                            std::size_t{n[0]} * n[2],
                                            std::size_t{n[0]} * n[1]};
  for (std::size_t p = 0; p < 3; ++p) {
    comp[p] = arena_array<Mask>(mask_arena_, cells[p]);
    std::fill_n(comp[p], cells[p], Mask{0});
    t.comp[p] = comp[p];
  }
  // Enumerate value triples once; a face sets one bit in each of the three
  // completion tables. Values may collide on the same image vertex (or be
  // absent from the face image entirely), so the triple is deduplicated to
  // the simplex it actually spans — mirroring the Simplex-normalizing
  // membership test this table replaces.
  for (std::uint32_t j0 = 0; j0 < n[0]; ++j0) {
    const CompiledComplex::Local u0 = loc[0][j0];
    if (u0 == CompiledComplex::kAbsent) continue;
    for (std::uint32_t j1 = 0; j1 < n[1]; ++j1) {
      const CompiledComplex::Local u1 = loc[1][j1];
      if (u1 == CompiledComplex::kAbsent) continue;
      // If the first two members don't span a face, no third value can
      // complete one.
      if (u0 != u1 && !(u0 < u1 ? allowed.contains_edge(u0, u1)
                                : allowed.contains_edge(u1, u0))) {
        continue;
      }
      for (std::uint32_t j2 = 0; j2 < n[2]; ++j2) {
        const CompiledComplex::Local u2 = loc[2][j2];
        if (u2 == CompiledComplex::kAbsent) continue;
        bool face;
        if (u2 == u0 || u2 == u1) {
          face = true;  // degenerates to {u0, u1}, already known to be a face
        } else if (u0 == u1) {
          face = u0 < u2 ? allowed.contains_edge(u0, u2)
                         : allowed.contains_edge(u2, u0);
        } else {
          CompiledComplex::Local a = u0, b = u1, c = u2;
          if (a > b) std::swap(a, b);
          if (b > c) std::swap(b, c);
          if (a > b) std::swap(a, b);
          face = allowed.contains_triangle(a, b, c);
        }
        if (!face) continue;
        comp[0][std::size_t{j1} * n[2] + j2] |= Mask{1} << j0;
        comp[1][std::size_t{j0} * n[2] + j2] |= Mask{1} << j1;
        comp[2][std::size_t{j0} * n[1] + j1] |= Mask{1} << j2;
      }
    }
  }
  return &tris_.emplace(key, t).first->second;
}

namespace {

// The decision-map search is a finite CSP:
//   variables   = vertices of the subdivided input complex,
//   domains     = vertices of Δ(carrier(v)) (own color only, if chromatic),
//   constraints = for every simplex ξ, the image must be a simplex of
//                 Δ(carrier(ξ)).
// Edge constraints are compiled to per-value compatibility bitmasks and
// propagated by forward checking; triangle constraints are compiled to
// class-shared completion tables, so filtering the single unassigned member
// is one table load + AND. All CSP tables and all per-solver state (domains,
// trail, undo marks) live on monotonic arenas — the inner search never
// touches the allocator. Variables are picked dynamically by minimum
// remaining values. The search is systematic, so a negative answer with
// `exhausted = true` is a proof of non-existence at this radius.
//
// Parallel mode partitions the space by decision prefixes: the top levels
// of the (MRV-ordered) search tree are expanded breadth-first into a FIXED
// set of ~kSplitTargetJobs disjoint partial assignments in DFS order — the
// decomposition never looks at the worker count. Workers (the shared
// executor's pool) race the prefixes opportunistically under an advisory
// global budget; a canonical accounting pass then replays the sequential
// budget arithmetic over the DFS-ordered job list, re-running any job the
// race aborted. The reported verdict, witness AND nodes_explored are
// therefore bit-identical for every thread count: parallelism can only
// change how fast phase 2 warms the cache of per-job outcomes, never what
// the canonical walk concludes from them.
//
// Determinism of the word-parallel propagation: every shrink is a monotone
// intersection, so the fixed point reached by a propagate() call — and
// whether any domain wipes out — is independent of the order constraints
// fire in; a failed node's partial domains are discarded wholesale by
// undo_to_mark. Restructuring the constraint loops (tables instead of
// per-candidate Simplex tests, skip masks eliding no-op rows) therefore
// cannot change MRV choices, the visit order, or nodes_explored.

using Mask = std::uint64_t;  // domains in this codebase are small (< 64)

struct Csp {
  std::size_t n = 0;  // number of variables
  // Keeps the compiled domain snapshot (and with it the triangle incidence
  // rows propagate() reads) alive for the CSP's lifetime.
  std::shared_ptr<const CompiledComplex> snapshot;
  const CompiledComplex* dc = nullptr;

  // All fixed-shape tables below are carved from this arena in one
  // compilation pass; the pointers borrow from it.
  std::unique_ptr<std::pmr::monotonic_buffer_resource> arena;

  const VertexId* vertex = nullptr;  // variable index → domain vertex
  // Candidate lists as one CSR table: values of variable i are
  // values_flat[values_off[i] .. values_off[i+1]).
  const VertexId* values_flat = nullptr;
  const std::uint32_t* values_off = nullptr;
  const Mask* full_domain = nullptr;

  // One compiled edge constraint, from one endpoint's point of view. `row`
  // and `skip` borrow from the shared DeltaImageCache class tables.
  struct BinaryRef {
    const Mask* row = nullptr;  // per own-value mask over other's values
    Mask skip = 0;              // own values whose row cannot prune other
    std::uint32_t other = 0;    // the neighboring variable
  };
  const BinaryRef* binary_flat = nullptr;  // CSR rows parallel to binary_off
  const std::uint32_t* binary_off = nullptr;

  // Triangle constraints, indexed by the compiled snapshot's triangle ids —
  // propagate() walks dc->triangles_of(var) directly.
  struct TriRef {
    std::array<std::uint32_t, 3> var = {0, 0, 0};  // ascending
    const DeltaImageCache::TriTables* tables = nullptr;
  };
  const TriRef* tris = nullptr;

  // Simplex constraints of arity >= 4 (tetrahedra for four processes, ...):
  // the image of {vars} must be a simplex of `allowed`. Rare — kept on the
  // generic membership-test path, filtered whenever exactly one member
  // remains unassigned.
  struct NaryConstraint {
    std::vector<std::size_t> vars;
    const CompiledComplex* allowed;  // Δ(carrier(simplex))
  };
  std::vector<NaryConstraint> nary;
  std::vector<std::vector<std::size_t>> nary_of;  // per variable

  // Worst-case live trail entries (one per constraint application per
  // simultaneously-assigned variable) — sizes each solver's undo arena.
  std::size_t trail_bound = 0;
  std::size_t bytes_reserved = 0;  // arena bytes carved by build_csp

  bool trivially_unsat = false;
  bool domain_overflow = false;  // some domain wider than kMaxDomain

  // Per-variable candidate-count tally, bucketed like obs::Histogram.
  // Accumulated locally during the (single-threaded, deterministic) build
  // and flushed to the registry once per CSP — the hot loop never touches
  // an atomic — then copied into MapSearchResult for the report rollups.
  std::array<std::uint64_t, obs::Histogram::kBuckets> domain_hist{};
  std::uint64_t domain_hist_count = 0;
  std::uint64_t domain_hist_sum = 0;

  VertexId value(std::size_t var, std::size_t j) const {
    return values_flat[values_off[var] + j];
  }
  std::uint32_t value_count(std::size_t var) const {
    return values_off[var + 1] - values_off[var];
  }
};

Csp build_csp(const VertexPool& pool, const SubdividedComplex& domain,
              const Task& task, bool chromatic, DeltaImageCache& images) {
  TRI_SPAN("map_search/build_csp");
  Csp csp;
  // The compiled snapshot's locals are in raw-id order — identical to the
  // sorted vertex_ids() order the hash-set path used — so variable indices,
  // candidate lists, and therefore the whole search trace are unchanged.
  csp.snapshot = domain.compiled_view();
  const CompiledComplex& dc = *csp.snapshot;
  csp.dc = &dc;
  csp.n = dc.num_vertices();
  if (csp.n == 0) return csp;

  csp.arena = std::make_unique<std::pmr::monotonic_buffer_resource>();
  auto& arena = *csp.arena;
  std::size_t* bytes = &csp.bytes_reserved;

  VertexId* vertex = arena_array<VertexId>(arena, csp.n, bytes);
  for (std::size_t i = 0; i < csp.n; ++i) {
    vertex[i] = dc.vertex(static_cast<CompiledComplex::Local>(i));
  }
  csp.vertex = vertex;

  auto image_of = [&](const Simplex& carrier) {
    return images.image_of(task.delta, carrier);
  };

  // Per-variable carriers, fetched once: edge/triangle carriers below are
  // unions of these (carrier_of is exactly that union).
  std::vector<const Simplex*> carrier_of_var(csp.n);
  for (std::size_t i = 0; i < csp.n; ++i) {
    carrier_of_var[i] = &domain.carrier.at(vertex[i]);
  }

  // Candidate lists, gathered into scratch and frozen as one CSR table.
  // Interned image of each variable's carrier; two variables with the same
  // (image, color) have identical candidate lists, which is what lets the
  // edge/triangle tables be shared below.
  std::vector<const CompiledComplex*> vertex_image(csp.n);
  std::vector<VertexId> values_scratch;
  std::uint32_t* values_off = arena_array<std::uint32_t>(arena, csp.n + 1, bytes);
  Mask* full_domain = arena_array<Mask>(arena, csp.n, bytes);
  values_off[0] = 0;
  for (std::size_t i = 0; i < csp.n; ++i) {
    vertex_image[i] = image_of(*carrier_of_var[i]);
    const CompiledComplex& img = *vertex_image[i];
    const Color own = chromatic ? pool.color(vertex[i]) : kNoColor;
    const std::size_t before = values_scratch.size();
    for (std::size_t j = 0; j < img.num_vertices(); ++j) {
      const VertexId w = img.vertex(static_cast<CompiledComplex::Local>(j));
      if (!chromatic || pool.color(w) == own) values_scratch.push_back(w);
    }
    const std::size_t count = values_scratch.size() - before;
    if (count == 0) {
      // No candidate at all: a complete assignment cannot exist, and an
      // exhaustive "no" is still a valid proof.
      csp.trivially_unsat = true;
      return csp;
    }
    if (count > kMaxDomain) {
      // Wider than the 64-bit word-parallel domains can represent. This is
      // a representation limit, NOT unsatisfiability — surface it so
      // callers report an inconclusive outcome instead of a bogus
      // impossibility proof.
      csp.domain_overflow = true;
      return csp;
    }
    values_off[i + 1] = static_cast<std::uint32_t>(values_scratch.size());
    full_domain[i] = count == kMaxDomain ? ~Mask{0} : (Mask{1} << count) - 1;
    ++csp.domain_hist[obs::Histogram::bucket_index(count)];
    ++csp.domain_hist_count;
    csp.domain_hist_sum += count;
  }
  VertexId* values_flat =
      arena_array<VertexId>(arena, values_scratch.size(), bytes);
  std::copy(values_scratch.begin(), values_scratch.end(), values_flat);
  csp.values_flat = values_flat;
  csp.values_off = values_off;
  csp.full_domain = full_domain;

  // Binary constraints as CSR rows: each edge contributes one BinaryRef per
  // endpoint, filled in global edge order (the order the old per-variable
  // push_backs produced).
  std::uint32_t* binary_off = arena_array<std::uint32_t>(arena, csp.n + 1, bytes);
  binary_off[0] = 0;
  for (std::size_t i = 0; i < csp.n; ++i) {
    binary_off[i + 1] =
        binary_off[i] + static_cast<std::uint32_t>(
                            dc.degree(static_cast<CompiledComplex::Local>(i)));
  }
  Csp::BinaryRef* binary_flat =
      arena_array<Csp::BinaryRef>(arena, binary_off[csp.n], bytes);
  std::vector<std::uint32_t> cursor(binary_off, binary_off + csp.n);
  for (std::size_t e = 0; e < dc.num_edges(); ++e) {
    // Variable indices ARE the compiled locals.
    const auto [la, lb] = dc.edge(e);
    const auto a = static_cast<std::size_t>(la), b = static_cast<std::size_t>(lb);
    const CompiledComplex* allowed =
        image_of(carrier_of_var[a]->unite(*carrier_of_var[b]));
    // Masks depend only on the edge's class (images + colors), not on the
    // concrete edge; the memo compiles each class once. Almost every edge
    // of Ch^r shares its class with many others.
    const DeltaImageCache::EdgeClass key{
        allowed, vertex_image[a], vertex_image[b],
        chromatic ? pool.color(vertex[a]) : kNoColor,
        chromatic ? pool.color(vertex[b]) : kNoColor};
    const DeltaImageCache::EdgeMasks* masks = images.edge_masks(
        key, values_flat + values_off[a], csp.value_count(a),
        values_flat + values_off[b], csp.value_count(b));
    binary_flat[cursor[a]++] = {masks->ab, masks->skip_ab,
                                static_cast<std::uint32_t>(b)};
    binary_flat[cursor[b]++] = {masks->ba, masks->skip_ba,
                                static_cast<std::uint32_t>(a)};
  }
  csp.binary_flat = binary_flat;
  csp.binary_off = binary_off;

  // Triangle constraints: one TriRef per compiled triangle id, with the
  // class-shared completion tables.
  const std::size_t num_tris = dc.num_triangles();
  Csp::TriRef* tris = arena_array<Csp::TriRef>(arena, num_tris, bytes);
  for (std::size_t tid = 0; tid < num_tris; ++tid) {
    const std::array<CompiledComplex::Local, 3> tv = dc.triangle(tid);
    const auto v0 = static_cast<std::size_t>(tv[0]);
    const auto v1 = static_cast<std::size_t>(tv[1]);
    const auto v2 = static_cast<std::size_t>(tv[2]);
    const CompiledComplex* allowed = image_of(carrier_of_var[v0]
                                                  ->unite(*carrier_of_var[v1])
                                                  .unite(*carrier_of_var[v2]));
    DeltaImageCache::TriClass key;
    key.allowed = allowed;
    key.image = {vertex_image[v0], vertex_image[v1], vertex_image[v2]};
    key.color = {chromatic ? pool.color(vertex[v0]) : kNoColor,
                 chromatic ? pool.color(vertex[v1]) : kNoColor,
                 chromatic ? pool.color(vertex[v2]) : kNoColor};
    tris[tid].var = {static_cast<std::uint32_t>(v0),
                     static_cast<std::uint32_t>(v1),
                     static_cast<std::uint32_t>(v2)};
    tris[tid].tables = images.tri_tables(
        key,
        {values_flat + values_off[v0], values_flat + values_off[v1],
         values_flat + values_off[v2]},
        {csp.value_count(v0), csp.value_count(v1), csp.value_count(v2)});
  }
  csp.tris = tris;

  // Cells of dimension >= 3 keep the generic membership-test path.
  std::size_t nary_memberships = 0;
  if (dc.dimension() >= 3) {
    csp.nary_of.resize(csp.n);
    for (int d = 3; d <= dc.dimension(); ++d) {
      const CompiledComplex::Local* flat = dc.cells_flat(d);
      const std::size_t stride = static_cast<std::size_t>(d) + 1;
      for (std::size_t cell = 0; cell < dc.count(d); ++cell) {
        const CompiledComplex::Local* verts = flat + cell * stride;
        Csp::NaryConstraint t;
        t.vars.reserve(stride);
        Simplex carrier;
        for (std::size_t i = 0; i < stride; ++i) {
          const auto var = static_cast<std::size_t>(verts[i]);
          t.vars.push_back(var);
          carrier = carrier.unite(*carrier_of_var[var]);
        }
        t.allowed = image_of(carrier);
        const std::size_t id = csp.nary.size();
        for (std::size_t var : t.vars) csp.nary_of[var].push_back(id);
        nary_memberships += t.vars.size();
        csp.nary.push_back(std::move(t));
      }
    }
  }

  csp.trail_bound = static_cast<std::size_t>(binary_off[csp.n]) +
                    3 * num_tris + nary_memberships + csp.n;
  return csp;
}

constexpr std::size_t kNoBudget = static_cast<std::size_t>(-1);
constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);
// Node charges are counted locally and reconciled against budgets only at
// flush boundaries (every kNodeFlushBatch-th charge). Coarse flushing keeps
// the shared counter off the hot path, and the canonical accounting below
// is defined in terms of the same boundaries — which is what makes
// nodes_explored and cap verdicts bit-identical at every worker count.
constexpr std::size_t kNodeFlushBatch = 256;
// The prefix decomposition is fixed, never scaled by the worker count: the
// job list is a pure function of the CSP.
constexpr std::size_t kSplitTargetJobs = 64;
constexpr std::size_t kMaxPrefixDepth = 6;

// State shared by the phase-2 workers of one parallel search. Everything
// here is *advisory*: it bounds the total work and lets losing workers
// abort early, but the reported result is recomputed canonically in phase
// 3, so none of these races can leak into the output.
struct SharedSearch {
  std::atomic<std::size_t> charged{0};    // flushed charges, all workers
  std::atomic<bool> stop{false};          // budget gone or external cancel
  std::atomic<std::size_t> best{kNoJob};  // lowest solved job index so far
  // Caller-provided cancellation flag (MapSearchOptions::cancel), or null.
  const std::atomic<bool>* external = nullptr;
  std::atomic<bool> ext_cancelled{false};
};

struct Solver {
  const Csp& csp;
  bool dynamic_ordering = true;

  // Budgets, all checked at flush boundaries. `local_budget` is the
  // canonical per-run budget (phase-3 and sequential runs). `shared` —
  // phase-2 workers only — adds the advisory global budget, the stop flag
  // and the best-index race. `external` is the caller's cancel flag.
  std::size_t local_budget = kNoBudget;
  std::size_t flush_batch = kNodeFlushBatch;
  std::size_t global_cap = kNoBudget;
  SharedSearch* shared = nullptr;
  std::size_t job_index = kNoJob;
  const std::atomic<bool>* external = nullptr;

  bool aborted = false;   // unwound at a flush boundary
  bool ext_seen = false;  // the abort was the external cancel
  std::size_t total_nodes = 0;
  std::size_t unflushed = 0;
  std::size_t fastpath_skips = 0;  // binary rows elided by skip masks

  struct TrailEntry {
    std::uint32_t var;
    Mask prev;
  };

  // All mutable search state is carved from one monotonic arena whose
  // backing buffer is reserved up front (arena_bytes is an upper bound, so
  // the inner loop never touches the global allocator).
  std::pmr::monotonic_buffer_resource arena;
  Mask* domain;              // current live values
  std::int32_t* assigned;    // value index or -1
  Mask* unassigned;          // bitset over variables, mirrors assigned
  std::size_t un_words;
  TrailEntry* trail;         // (variable, previous mask) undo log
  std::size_t trail_size = 0;
  std::uint32_t* trail_marks;
  std::size_t marks_size = 0;

  static std::size_t arena_bytes(const Csp& c) {
    const std::size_t words = (c.n + 63) / 64;
    return c.n * (sizeof(Mask) + sizeof(std::int32_t) + sizeof(std::uint32_t)) +
           words * sizeof(Mask) + c.trail_bound * sizeof(TrailEntry) + 128;
  }

  Solver(const Csp& c, bool mrv)
      : csp(c), dynamic_ordering(mrv), arena(arena_bytes(c)) {
    domain = arena_array<Mask>(arena, c.n);
    std::copy_n(c.full_domain, c.n, domain);
    assigned = arena_array<std::int32_t>(arena, c.n);
    std::fill_n(assigned, c.n, std::int32_t{-1});
    un_words = (c.n + 63) / 64;
    unassigned = arena_array<Mask>(arena, un_words);
    std::fill_n(unassigned, un_words, ~Mask{0});
    if (c.n % 64 != 0) unassigned[un_words - 1] = (Mask{1} << (c.n % 64)) - 1;
    trail = arena_array<TrailEntry>(arena, c.trail_bound);
    trail_marks = arena_array<std::uint32_t>(arena, c.n);
  }

  void shrink(std::size_t var, Mask mask) {
    const Mask cur = domain[var];
    if ((cur & mask) == cur) return;
    trail[trail_size++] = {static_cast<std::uint32_t>(var), cur};
    domain[var] = cur & mask;
  }

  /// Applies all consequences of assigning `var`; false on a wipe-out.
  bool propagate(std::size_t var) {
    const auto value = static_cast<std::size_t>(assigned[var]);
    for (std::uint32_t k = csp.binary_off[var], end = csp.binary_off[var + 1];
         k < end; ++k) {
      const Csp::BinaryRef& bc = csp.binary_flat[k];
      if (assigned[bc.other] >= 0) continue;
      if ((bc.skip >> value) & 1) {
        // Watched-mask fast path: this row permits the neighbor's whole
        // domain, so the intersection is provably a no-op. (Unassigned
        // domains are never empty — a wipe-out unwinds immediately — so
        // skipping the zero check is safe too.)
        ++fastpath_skips;
        continue;
      }
      shrink(bc.other, bc.row[value]);
      if (domain[bc.other] == 0) return false;
    }
    const auto lv = static_cast<CompiledComplex::Local>(var);
    const std::size_t tn = csp.dc->triangles_of_count(lv);
    if (tn > 0) {
      const std::uint32_t* tids = csp.dc->triangles_of(lv);
      for (std::size_t k = 0; k < tn; ++k) {
        const Csp::TriRef& t = csp.tris[tids[k]];
        // Filter the single unassigned member, if exactly one remains.
        int p = -1;
        for (int m = 0; m < 3; ++m) {
          if (assigned[t.var[static_cast<std::size_t>(m)]] < 0) {
            if (p >= 0) {
              p = -2;
              break;
            }
            p = m;
          }
        }
        if (p < 0) continue;
        static constexpr std::size_t kQ1[3] = {1, 0, 0};
        static constexpr std::size_t kQ2[3] = {2, 2, 1};
        const auto pp = static_cast<std::size_t>(p);
        const DeltaImageCache::TriTables& tab = *t.tables;
        const auto j1 = static_cast<std::size_t>(assigned[t.var[kQ1[pp]]]);
        const auto j2 = static_cast<std::size_t>(assigned[t.var[kQ2[pp]]]);
        const std::size_t u = t.var[pp];
        shrink(u, tab.comp[pp][j1 * tab.n[kQ2[pp]] + j2]);
        if (domain[u] == 0) return false;
      }
    }
    if (!csp.nary.empty()) {
      for (std::size_t tid : csp.nary_of[var]) {
        const auto& t = csp.nary[tid];
        // Filter the single unassigned member, if exactly one remains.
        std::size_t unassigned_var = csp.n;
        int count = 0;
        for (std::size_t m : t.vars) {
          if (assigned[m] < 0) {
            unassigned_var = m;
            ++count;
          }
        }
        if (count != 1) continue;
        std::vector<VertexId> fixed;
        fixed.reserve(t.vars.size() - 1);
        for (std::size_t m : t.vars) {
          if (m != unassigned_var) {
            fixed.push_back(
                csp.value(m, static_cast<std::size_t>(assigned[m])));
          }
        }
        Mask ok = 0;
        Mask live = domain[unassigned_var];
        while (live) {
          const int j = __builtin_ctzll(live);
          live &= live - 1;
          std::vector<VertexId> image = fixed;
          image.push_back(
              csp.value(unassigned_var, static_cast<std::size_t>(j)));
          if (t.allowed->contains(Simplex(std::move(image)))) {
            ok |= (Mask{1} << j);
          }
        }
        shrink(unassigned_var, ok);
        if (domain[unassigned_var] == 0) return false;
      }
    }
    return true;
  }

  /// MRV variable selection (or first-unassigned when ablated away);
  /// csp.n when everything is assigned. Scans only the unassigned bitset —
  /// same visit order and tie-break as the dense scan it replaces.
  std::size_t select_variable() const {
    if (!dynamic_ordering) {
      for (std::size_t w = 0; w < un_words; ++w) {
        if (unassigned[w] != 0) {
          return w * 64 +
                 static_cast<std::size_t>(__builtin_ctzll(unassigned[w]));
        }
      }
      return csp.n;
    }
    std::size_t best = csp.n;
    int best_count = 1 << 30;
    for (std::size_t w = 0; w < un_words; ++w) {
      Mask bits = unassigned[w];
      while (bits) {
        const std::size_t i =
            w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const int count = __builtin_popcountll(domain[i]);
        if (count < best_count) {
          best_count = count;
          best = i;
          if (count == 1) return best;
        }
      }
    }
    return best;
  }

  /// Counts a node; false when the search must unwind (budget gone at a
  /// flush boundary, cancelled from outside, or the best-index race lost).
  bool charge_node() {
    ++total_nodes;
    if (++unflushed < flush_batch) return true;
    return flush();
  }

  bool flush() {
    const std::size_t add = unflushed;
    unflushed = 0;
    if (total_nodes > local_budget) {
      obs::MetricsRegistry::global().counter("map_search.cap_hits").add();
      aborted = true;
      return false;
    }
    if (external != nullptr && external->load(std::memory_order_relaxed)) {
      aborted = true;
      ext_seen = true;
      if (shared != nullptr) {
        shared->ext_cancelled.store(true, std::memory_order_relaxed);
        shared->stop.store(true, std::memory_order_relaxed);
      }
      return false;
    }
    if (shared != nullptr) {
      const std::size_t now =
          shared->charged.fetch_add(add, std::memory_order_relaxed) + add;
      if (obs::trace_enabled()) {
        // Global-counter flush boundary: the advisory budget's view of the
        // whole race, sampled from whichever worker flushed.
        obs::trace_counter("map_search/charged", static_cast<double>(now));
      }
      if (now > global_cap) {
        obs::MetricsRegistry::global().counter("map_search.cap_hits").add();
        shared->stop.store(true, std::memory_order_relaxed);
        aborted = true;
        return false;
      }
      if (shared->stop.load(std::memory_order_relaxed)) {
        aborted = true;
        return false;
      }
      if (shared->best.load(std::memory_order_relaxed) < job_index) {
        aborted = true;
        return false;
      }
    }
    return true;
  }

  /// Final flush of leftover charges into the shared counter (keeps the
  /// advisory budget honest); never aborts a finished run.
  void settle() {
    if (shared != nullptr && unflushed > 0) {
      shared->charged.fetch_add(unflushed, std::memory_order_relaxed);
    }
    unflushed = 0;
  }

  /// Applies a decision prefix without charging (the expansion already paid
  /// for enumerating it). False when propagation wipes out: empty subtree.
  bool replay(const std::pair<std::uint32_t, std::int32_t>* prefix,
              std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
      if (!assign(prefix[i].first, prefix[i].second)) return false;
    }
    return true;
  }

  /// Assigns value index `j` to `var` and propagates, pushing an undo mark.
  /// False on wipe-out (the mark is still pushed; call undo_to_mark).
  bool assign(std::size_t var, std::int32_t j) {
    trail_marks[marks_size++] = static_cast<std::uint32_t>(trail_size);
    assigned[var] = j;
    unassigned[var >> 6] &= ~(Mask{1} << (var & 63));
    return propagate(var);
  }

  void undo_to_mark(std::size_t var) {
    assigned[var] = -1;
    unassigned[var >> 6] |= Mask{1} << (var & 63);
    const std::uint32_t mark = trail_marks[--marks_size];
    while (trail_size > mark) {
      --trail_size;
      domain[trail[trail_size].var] = trail[trail_size].prev;
    }
  }

  bool search() {
    const std::size_t best = select_variable();
    if (best == csp.n) return true;  // all assigned

    Mask live = domain[best];
    while (live) {
      if (!charge_node()) return false;
      const auto j = static_cast<std::int32_t>(__builtin_ctzll(live));
      live &= live - 1;
      const bool ok = assign(best, j) && search();
      if (ok) return true;
      if (aborted) {
        // Budget exceeded or race lost somewhere below: unwind without
        // exploring more.
        assigned[best] = -1;
        unassigned[best >> 6] |= Mask{1} << (best & 63);
        return false;
      }
      undo_to_mark(best);
    }
    return false;
  }
};

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Splitting a search that dies within a few hundred nodes only pays
// expansion overhead; tiny CSPs (low radii, solo/edge-only inputs) run the
// plain backtracker at every thread count. Verdicts are unaffected — both
// engines are complete.
constexpr std::size_t kMinVariablesForSplit = 10;

void emit_map(const Csp& csp, const std::int32_t* assigned,
              MapSearchResult& result) {
  result.found = true;
  for (std::size_t i = 0; i < csp.n; ++i) {
    result.map.set(csp.vertex[i],
                   csp.value(i, static_cast<std::size_t>(assigned[i])));
  }
}

/// Small-CSP path: the plain sequential backtracker with the seed engine's
/// exact per-node budget checks (flush batch 1).
void run_small(const Csp& csp, const MapSearchOptions& options,
               MapSearchResult& result) {
  arena_counter().add(Solver::arena_bytes(csp));
  Solver solver(csp, options.dynamic_ordering);
  solver.flush_batch = 1;
  solver.local_budget = options.node_cap;
  solver.external = options.cancel;
  const bool found = solver.search();
  fastpath_counter().add(solver.fastpath_skips);
  result.nodes_explored = solver.total_nodes;
  result.cancelled = solver.ext_seen;
  result.exhausted = !solver.aborted;
  if (found) emit_map(csp, solver.assigned, result);
}

/// One disjoint chunk of the search space — the decision prefix reaching
/// one node at the top of the MRV tree — plus its phase-2 outcome. The
/// prefix borrows from Expansion::pool (stable for the expansion's life).
struct PrefixJob {
  const std::pair<std::uint32_t, std::int32_t>* prefix = nullptr;
  std::size_t prefix_len = 0;

  enum class State { NotRun, Done, Aborted };
  State state = State::NotRun;
  bool solved = false;
  std::size_t nodes = 0;  // full subtree charge count (Done only)
  // Subtree fastpath skips (Done only) — schedule-independent like `nodes`,
  // so the canonical walk can roll it up without re-running.
  std::size_t fastpath_skips = 0;
  std::vector<std::int32_t> assignment;  // complete assignment when solved
};

struct Expansion {
  // Flat append-only storage for all prefixes: one allocation amortized
  // over every job instead of a vector per prefix.
  std::vector<std::pair<std::uint32_t, std::int32_t>> pool;
  std::vector<PrefixJob> jobs;  // DFS (lexicographic value-index) order
  std::size_t nodes = 0;        // charges paid enumerating the prefixes
  bool capped = false;
  bool cancelled = false;
};

// Phase 1 — fixed decomposition: expand the top of the MRV tree
// breadth-first into ~kSplitTargetJobs disjoint prefixes, then sort them
// into DFS order. Sibling values are enumerated ascending and the variable
// at each level is a function of the prefix, so comparing value indices
// lexicographically reproduces the depth-first visit order. Expansion is
// where prefix enumeration is charged — jobs replay their prefix for free,
// so a prefix is paid for exactly once no matter how many workers touch it.
Expansion expand_prefixes(const Csp& csp, const MapSearchOptions& options) {
  TRI_SPAN("map_search/expand_prefixes");
  Expansion out;
  struct Span {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
  };
  std::deque<Span> open;
  std::vector<Span> leaves;
  auto& pool = out.pool;
  std::size_t skips = 0;
  const std::size_t solver_bytes = Solver::arena_bytes(csp);
  open.push_back({});
  while (!open.empty() && open.size() + leaves.size() < kSplitTargetJobs) {
    const Span p = open.front();
    open.pop_front();
    if (p.len >= kMaxPrefixDepth) {
      leaves.push_back(p);
      continue;
    }
    arena_counter().add(solver_bytes);
    Solver scratch(csp, options.dynamic_ordering);
    scratch.flush_batch = 1;  // exact budget checks while splitting
    scratch.local_budget =
        options.node_cap > out.nodes ? options.node_cap - out.nodes : 0;
    scratch.external = options.cancel;
    bool dead = false;
    for (std::uint32_t i = 0; i < p.len; ++i) {
      const auto [var, j] = pool[p.off + i];
      if (!scratch.charge_node()) {
        // Budget exhausted (or cancellation) during splitting — report like
        // the sequential engine would: inconclusive, nothing found.
        out.nodes += scratch.total_nodes;
        out.cancelled = scratch.ext_seen;
        out.capped = !scratch.ext_seen;
        fastpath_counter().add(skips + scratch.fastpath_skips);
        return out;
      }
      if (!scratch.assign(var, j)) {
        dead = true;
        break;
      }
    }
    out.nodes += scratch.total_nodes;
    skips += scratch.fastpath_skips;
    if (dead) continue;  // empty subtree: exhausted by propagation alone
    const std::size_t var = scratch.select_variable();
    if (var == csp.n) {
      // The prefix assigns every variable (unreachable while
      // kMaxPrefixDepth < kMinVariablesForSplit, but kept correct): the
      // walk's replay-then-search will confirm it as a zero-node witness.
      leaves.push_back(p);
      continue;
    }
    Mask live = scratch.domain[var];
    while (live) {
      const auto j = static_cast<std::int32_t>(__builtin_ctzll(live));
      live &= live - 1;
      const auto off = static_cast<std::uint32_t>(pool.size());
      pool.reserve(pool.size() + p.len + 1);
      for (std::uint32_t i = 0; i < p.len; ++i) pool.push_back(pool[p.off + i]);
      pool.push_back({static_cast<std::uint32_t>(var), j});
      open.push_back({off, p.len + 1});
    }
  }
  fastpath_counter().add(skips);
  for (const Span& p : open) leaves.push_back(p);
  std::sort(leaves.begin(), leaves.end(),
            [&pool](const Span& a, const Span& b) {
              const std::uint32_t n = std::min(a.len, b.len);
              for (std::uint32_t i = 0; i < n; ++i) {
                if (pool[a.off + i].second != pool[b.off + i].second) {
                  return pool[a.off + i].second < pool[b.off + i].second;
                }
              }
              return a.len < b.len;
            });
  out.jobs.reserve(leaves.size());
  for (const Span& p : leaves) {
    PrefixJob job;
    job.prefix = pool.data() + p.off;
    job.prefix_len = p.len;
    out.jobs.push_back(std::move(job));
  }
  return out;
}

// Phase 2 — opportunistic parallel pass: one executor job per prefix,
// submitted to the shared work-stealing pool (the caller helps via
// JobGroup::wait, so `threads` includes this thread). Workers race under
// the advisory global budget; a completed job records its exact —
// schedule-independent — subtree charge count, an aborted one is re-run
// canonically in phase 3. Each job writes only its own PrefixJob slot, and
// group completion publishes them to the walk.
void run_phase2(const Csp& csp, const MapSearchOptions& options, int threads,
                std::vector<PrefixJob>& jobs, SharedSearch& shared) {
  Executor& executor = Executor::global();
  executor.ensure_workers(threads - 1);
  JobGroup group(executor);
  static obs::Counter& prefix_jobs =
      obs::MetricsRegistry::global().counter("map_search.prefix_jobs");
  prefix_jobs.add(jobs.size());
  for (std::size_t index = 0; index < jobs.size(); ++index) {
    group.submit([&csp, &options, &jobs, &shared, index] {
      TRI_SPAN("map_search/prefix");
      PrefixJob& job = jobs[index];
      if (shared.stop.load(std::memory_order_relaxed) ||
          shared.best.load(std::memory_order_relaxed) < index) {
        job.state = PrefixJob::State::Aborted;
        return;
      }
      Solver solver(csp, options.dynamic_ordering);
      solver.shared = &shared;
      solver.global_cap = options.node_cap;
      solver.job_index = index;
      solver.external = options.cancel;
      if (!solver.replay(job.prefix, job.prefix_len)) {
        job.fastpath_skips = solver.fastpath_skips;
        job.state = PrefixJob::State::Done;  // empty subtree, zero charges
        return;
      }
      const bool solved = solver.search();
      solver.settle();
      if (!solved && solver.aborted) {
        job.state = PrefixJob::State::Aborted;
        return;
      }
      job.nodes = solver.total_nodes;
      job.solved = solved;
      job.fastpath_skips = solver.fastpath_skips;
      // Search-effort distribution: how unevenly the DFS prefixes split the
      // tree. Observability only (aborted jobs re-run in phase 3 are not
      // re-recorded); one record per completed job.
      static obs::Histogram& prefix_nodes =
          obs::MetricsRegistry::global().histogram("search.nodes_per_prefix");
      prefix_nodes.record(job.nodes);
      if (solved) {
        job.assignment.assign(solver.assigned, solver.assigned + csp.n);
        std::size_t current = shared.best.load(std::memory_order_relaxed);
        while (index < current &&
               !shared.best.compare_exchange_weak(current, index,
                                                  std::memory_order_relaxed)) {
        }
      }
      job.state = PrefixJob::State::Done;
      return;
    });
  }
  group.wait();
}

// Phase 3 — canonical accounting: walk the jobs in DFS order simulating
// ONE sequential run whose node counter carries across jobs — the budget is
// reconciled at *global* flush boundaries (node counts 256, 512, ...), so a
// cap is detected within kNodeFlushBatch charges no matter how the counter
// is sliced into subtrees. A Done job replays in closed form (its charge
// count is schedule-independent, so the boundaries it crosses are
// computable without re-searching); anything else re-runs inline seeded
// with the global counter and phase, which aborts at exactly the same
// boundaries. Every thread count therefore reports the same winner,
// witness, nodes_explored and cap verdict. The fastpath counter follows the
// same discipline: a consumed Done job contributes its recorded subtree
// skips, an inline re-run contributes what it just counted, and a capped
// job contributes nothing on either path.
void canonical_walk(const Csp& csp, const MapSearchOptions& options,
                    std::vector<PrefixJob>& jobs, std::size_t base,
                    MapSearchResult& result) {
  const std::size_t cap = options.node_cap;
  for (PrefixJob& job : jobs) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      result.cancelled = true;
      result.exhausted = false;
      result.nodes_explored = base;
      return;
    }
    if (job.state == PrefixJob::State::Done) {
      // First global boundary inside this job's charge span (base, base+n].
      std::size_t boundary =
          (base / kNodeFlushBatch + 1) * kNodeFlushBatch;
      bool capped = false;
      while (boundary <= base + job.nodes) {
        if (boundary > cap) {
          capped = true;
          break;
        }
        boundary += kNodeFlushBatch;
      }
      if (capped) {
        obs::MetricsRegistry::global().counter("map_search.cap_hits").add();
        result.exhausted = false;
        result.nodes_explored = boundary;
        return;
      }
      base += job.nodes;
      fastpath_counter().add(job.fastpath_skips);
      if (job.solved) {
        result.nodes_explored = base;
        emit_map(csp, job.assignment.data(), result);
        return;
      }
    } else {
      Solver solver(csp, options.dynamic_ordering);
      solver.local_budget = cap;
      solver.external = options.cancel;
      solver.total_nodes = base;           // global counter, carried over
      solver.unflushed = base % kNodeFlushBatch;  // global flush phase
      if (!solver.replay(job.prefix, job.prefix_len)) {
        fastpath_counter().add(solver.fastpath_skips);
        continue;
      }
      const bool solved = solver.search();
      if (!solved && solver.aborted) {
        result.exhausted = false;
        result.cancelled = solver.ext_seen;
        result.nodes_explored = solver.total_nodes;
        return;
      }
      base = solver.total_nodes;
      fastpath_counter().add(solver.fastpath_skips);
      if (solved) {
        result.nodes_explored = base;
        emit_map(csp, solver.assigned, result);
        return;
      }
    }
  }
  result.nodes_explored = base;  // every subtree exhausted
}

void run_split(const Csp& csp, const MapSearchOptions& options, int threads,
               MapSearchResult& result) {
  Expansion expansion = expand_prefixes(csp, options);
  if (expansion.capped || expansion.cancelled) {
    result.cancelled = expansion.cancelled;
    result.exhausted = false;
    result.nodes_explored = expansion.nodes;
    return;
  }
  if (threads > 1 && !expansion.jobs.empty()) {
    SharedSearch shared;
    shared.external = options.cancel;
    run_phase2(csp, options, threads, expansion.jobs, shared);
    if (shared.ext_cancelled.load(std::memory_order_relaxed)) {
      // Cancellation is inherently timing-dependent; report a found map if
      // some job already solved, else a plain cancelled result.
      const std::size_t best = shared.best.load(std::memory_order_relaxed);
      result.nodes_explored =
          expansion.nodes + shared.charged.load(std::memory_order_relaxed);
      if (best != kNoJob) {
        emit_map(csp, expansion.jobs[best].assignment.data(), result);
      } else {
        result.cancelled = true;
        result.exhausted = false;
      }
      return;
    }
  }
  canonical_walk(csp, options, expansion.jobs, expansion.nodes, result);
}

}  // namespace

int resolve_search_threads(int requested) { return resolve_threads(requested); }

MapSearchResult find_decision_map(const VertexPool& pool,
                                  const SubdividedComplex& domain, const Task& task,
                                  const MapSearchOptions& options) {
  TRI_SPAN("map_search/find_decision_map");
  static obs::Counter& searches =
      obs::MetricsRegistry::global().counter("map_search.searches");
  searches.add();
  MapSearchResult result;
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    // Cancelled before the CSP is even compiled.
    result.cancelled = true;
    result.exhausted = false;
    return result;
  }
  DeltaImageCache local_images;
  DeltaImageCache& images =
      options.image_cache != nullptr ? *options.image_cache : local_images;
  const Csp csp = build_csp(pool, domain, task, options.chromatic, images);
  if (csp.domain_hist_count != 0) {
    static obs::Histogram& domain_sizes =
        obs::MetricsRegistry::global().histogram("search.csp.domain_size");
    domain_sizes.merge(csp.domain_hist, csp.domain_hist_count,
                       csp.domain_hist_sum);
    std::size_t buckets = obs::Histogram::kBuckets;
    while (buckets > 1 && csp.domain_hist[buckets - 1] == 0) --buckets;
    result.domain_size_hist.assign(csp.domain_hist.begin(),
                                   csp.domain_hist.begin() +
                                       static_cast<std::ptrdiff_t>(buckets));
    result.domain_size_count = csp.domain_hist_count;
    result.domain_size_sum = csp.domain_hist_sum;
  }
  if (csp.n == 0) {
    result.found = true;
    return result;
  }
  if (csp.domain_overflow) {
    static obs::Counter& overflows =
        obs::MetricsRegistry::global().counter("map_search.domain_overflows");
    overflows.add();
    result.domain_overflow = true;
    result.exhausted = false;
    return result;
  }
  if (csp.trivially_unsat) return result;
  arena_counter().add(csp.bytes_reserved);

  if (csp.n < kMinVariablesForSplit) {
    run_small(csp, options, result);
  } else {
    run_split(csp, options, resolve_threads(options.threads), result);
  }
  return result;
}

bool validate_decision_map(const VertexPool& pool, const SubdividedComplex& domain,
                           const Task& task, const VertexMap& map, bool chromatic) {
  bool ok = true;
  domain.complex.for_each([&](const Simplex& xi) {
    if (!ok) return;
    for (VertexId v : xi) {
      if (!map.defined(v)) {
        ok = false;
        return;
      }
      if (chromatic && pool.color(map.apply(v)) != pool.color(v)) {
        ok = false;
        return;
      }
    }
    const Simplex image = map.apply(xi);
    if (!task.output.contains(image) ||
        !task.delta.allows(domain.carrier_of(xi), image)) {
      ok = false;
    }
  });
  return ok;
}

}  // namespace trichroma
