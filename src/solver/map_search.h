#pragma once
// Simplicial-map search: the executable direction of the Asynchronous
// Computability Theorem.
//
// A three-process task is wait-free solvable iff for some radius r there is
// a chromatic simplicial map δ : Ch^r(I) → O carried by Δ. This module
// searches for such a map by backtracking over the subdivision vertices:
// each vertex v may map to a vertex of Δ(carrier(v)) (with matching color in
// chromatic mode), and every simplex ξ must satisfy δ(ξ) ∈ Δ(carrier(ξ)).
//
// A found map IS a wait-free protocol: run r rounds of iterated immediate
// snapshot, then decide δ(final view). The protocols layer executes exactly
// this on the shared-memory simulator.
//
// Color-agnostic mode drops the color constraint, which searches for the
// "colorless" solutions consumed by the paper's Figure-7 algorithm
// (Lemma 5.3): processes land on one output simplex but possibly on
// vertices of the wrong color.

#include <cstddef>

#include "tasks/task.h"
#include "topology/chromatic.h"
#include "topology/subdivision.h"

namespace trichroma {

struct MapSearchOptions {
  bool chromatic = true;
  /// Backtracking-step budget; searches stopping on the cap report
  /// exhausted = false.
  std::size_t node_cap = 20'000'000;
  /// Minimum-remaining-values variable selection (default). Disabling falls
  /// back to static order — kept as an ablation knob (see bench_ablation);
  /// both orders are complete, MRV is typically orders of magnitude faster.
  bool dynamic_ordering = true;
};

struct MapSearchResult {
  bool found = false;
  bool exhausted = true;  ///< meaningful when !found: whole space explored
  VertexMap map;          ///< the decision map, when found
  std::size_t nodes_explored = 0;
};

/// Searches for a simplicial map from `domain.complex` to `task.output`
/// carried by `task.delta` (carriers interpreted in `task.input`).
MapSearchResult find_decision_map(const VertexPool& pool,
                                  const SubdividedComplex& domain, const Task& task,
                                  const MapSearchOptions& options);

/// Independent validation that `map` is simplicial, carried by Δ, and (in
/// chromatic mode) color-preserving. Used by tests and by the protocol
/// layer before executing a witness.
bool validate_decision_map(const VertexPool& pool, const SubdividedComplex& domain,
                           const Task& task, const VertexMap& map, bool chromatic);

}  // namespace trichroma
