#pragma once
// Simplicial-map search: the executable direction of the Asynchronous
// Computability Theorem.
//
// A three-process task is wait-free solvable iff for some radius r there is
// a chromatic simplicial map δ : Ch^r(I) → O carried by Δ. This module
// searches for such a map by backtracking over the subdivision vertices:
// each vertex v may map to a vertex of Δ(carrier(v)) (with matching color in
// chromatic mode), and every simplex ξ must satisfy δ(ξ) ∈ Δ(carrier(ξ)).
//
// A found map IS a wait-free protocol: run r rounds of iterated immediate
// snapshot, then decide δ(final view). The protocols layer executes exactly
// this on the shared-memory simulator.
//
// Color-agnostic mode drops the color constraint, which searches for the
// "colorless" solutions consumed by the paper's Figure-7 algorithm
// (Lemma 5.3): processes land on one output simplex but possibly on
// vertices of the wrong color.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tasks/task.h"
#include "topology/chromatic.h"
#include "topology/compiled.h"
#include "topology/subdivision.h"

namespace trichroma {

/// Memo of Δ-image complexes keyed by carrier simplex, shared across
/// `find_decision_map` calls. Building the CSP materializes
/// `delta.image_complex(carrier)` for every subdivision vertex/edge/triangle
/// carrier; the distinct carriers are simplices of the *base* complex, so
/// the same handful of images is rebuilt at every radius and again for each
/// probe mode (chromatic / color-agnostic share Δ). Images are interned as
/// *compiled* snapshots (topology/compiled.h): candidate enumeration walks
/// the dense vertex table and the constraint compilers answer membership
/// from the flat edge/triangle tables instead of hashing Simplex keys. One
/// cache per carrier map: keys are input simplices, so reusing a cache
/// across different Δs would alias. Returned pointers stay valid for the
/// cache's lifetime.
///
/// The cache also memoizes the *constraint tables* derived from the images.
/// A CSP variable's candidate list is fully determined by
/// (Δ(carrier(v)), color(v), chromatic?), so every subdivision edge with the
/// same (edge image, endpoint images, endpoint colors) triple compiles to
/// the same pair of per-value compatibility bitmask rows, and every
/// subdivision triangle with the same (triangle image, member images, member
/// colors) class compiles to the same three completion tables — at radius r
/// almost all of the 13^r-growth edge/triangle population collapses onto a
/// handful of classes, and the same classes recur at every radius. Keys are
/// the interned image pointers, which is why the mask memos live here: they
/// are only valid alongside the image memo that keeps those pointers stable.
/// All mask/table rows are stored on one internal monotonic arena, so CSP
/// compilation only touches the allocator on a class miss.
///
/// Not thread-safe as a handle: callers must serialize access (the CSP is
/// compiled single-threaded). `populate` is the one internally parallel
/// entry point — it fans image compilation out over executor stripes while
/// it runs, but the caller still must not touch the cache concurrently.
class DeltaImageCache {
 public:
  using Mask = std::uint64_t;

  const CompiledComplex* image_of(const CarrierMap& delta, const Simplex& carrier);

  /// Eagerly compiles Δ(carrier) for every carrier in `carriers` not
  /// already cached (artifact preloads and prior entries are never
  /// clobbered), so searches start hot instead of faulting images in
  /// serially. With `threads >= 2` the compilation fans out over
  /// stripe-sharded executor jobs — each stripe compiles a contiguous
  /// claim-protected range into its own slots — and the results are merged
  /// in deterministic carrier order. Every populated entry is marked warm
  /// exactly like `preload`: its first `image_of` touch is charged as the
  /// miss a lazy cold run would have paid, and entries never touched never
  /// count, so hit/miss counters are byte-identical to the lazy path at
  /// every thread count. The engines pass the base complex's canonical
  /// simplex list — the carriers of every subdivision cell at every radius.
  void populate(const CarrierMap& delta, const std::vector<Simplex>& carriers,
                int threads = 1);

  /// Inserts a pre-compiled image for `carrier` built from its facet list
  /// (a stored `delta.images` artifact row, io/store.h). The entry is
  /// marked *warm*: its first `image_of` lookup still counts as a miss, so
  /// hit/miss counters — which feed deterministic reports — match a cold
  /// run's exactly. No-op if the carrier is already cached. The facets must
  /// be exactly `delta.facet_images(carrier)` for the cache's carrier map;
  /// `image_complex` is their closure, so the compiled snapshots are
  /// content-identical.
  void preload(const Simplex& carrier, const std::vector<Simplex>& facets);

  /// Warm entries not yet touched by `image_of` (0 after any full search).
  std::size_t warm_remaining() const { return warm_.size(); }

  std::size_t size() const { return cache_.size(); }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

  /// Identity of one compiled edge constraint (see class comment). Colors
  /// are the endpoints' colors in chromatic mode, kNoColor otherwise.
  struct EdgeClass {
    const CompiledComplex* allowed;  // Δ(carrier(edge))
    const CompiledComplex* image_a;  // Δ(carrier(a))
    const CompiledComplex* image_b;  // Δ(carrier(b))
    Color color_a;
    Color color_b;

    bool operator==(const EdgeClass&) const = default;
  };
  /// Per-value compatibility bitmasks for one edge class: `ab[i]` masks the
  /// b-values compatible with a-value i, `ba[j]` vice versa (rows live on
  /// the cache arena). `skip_ab` bit i is set when row `ab[i]` permits b's
  /// whole domain — assigning a := i can never prune b, so propagation may
  /// skip the row load entirely; `skip_ba` mirrors it.
  struct EdgeMasks {
    const Mask* ab = nullptr;
    const Mask* ba = nullptr;
    Mask skip_ab = 0;
    Mask skip_ba = 0;
    std::uint32_t na = 0;
    std::uint32_t nb = 0;
  };

  /// Memoized masks for `key`, compiled from the candidate value lists on a
  /// miss. Exactly one lookup per subdivision edge, so
  /// edge_mask_hits() + edge_mask_misses() counts edges. Pointers stay
  /// valid for the cache's lifetime.
  const EdgeMasks* edge_masks(const EdgeClass& key, const VertexId* vals_a,
                              std::uint32_t na, const VertexId* vals_b,
                              std::uint32_t nb);
  std::size_t edge_mask_hits() const { return mask_hits_; }
  std::size_t edge_mask_misses() const { return masks_.size(); }

  /// Identity of one compiled triangle constraint: the face image plus the
  /// three members' (image, color) pairs in ascending variable order.
  struct TriClass {
    const CompiledComplex* allowed;  // Δ(carrier(triangle))
    std::array<const CompiledComplex*, 3> image;
    std::array<Color, 3> color;

    bool operator==(const TriClass&) const = default;
  };
  /// Completion tables for one triangle class. With members (0,1,2) in
  /// ascending variable order, `comp[p]` is a flat `n[q1] * n[q2]` table
  /// over the *other* two members q1 < q2; entry `comp[p][j1 * n[q2] + j2]`
  /// masks the p-values that close a valid Δ-image face with those two
  /// assignments. Propagation of a triangle with one unassigned member is a
  /// single table load + AND.
  struct TriTables {
    std::array<const Mask*, 3> comp = {nullptr, nullptr, nullptr};
    std::array<std::uint32_t, 3> n = {0, 0, 0};
  };

  /// Memoized completion tables for `key`, compiled from the three
  /// candidate value lists on a miss. Pointers stay valid for the cache's
  /// lifetime.
  const TriTables* tri_tables(const TriClass& key,
                              const std::array<const VertexId*, 3>& vals,
                              const std::array<std::uint32_t, 3>& n);
  std::size_t tri_table_hits() const { return tri_hits_; }
  std::size_t tri_table_misses() const { return tris_.size(); }

 private:
  struct EdgeClassHash {
    std::size_t operator()(const EdgeClass& k) const noexcept;
  };
  struct TriClassHash {
    std::size_t operator()(const TriClass& k) const noexcept;
  };

  std::unordered_map<Simplex, std::shared_ptr<const CompiledComplex>, SimplexHash>
      cache_;
  /// Preloaded entries whose first lookup is still owed a miss count.
  std::unordered_set<Simplex, SimplexHash> warm_;
  std::unordered_map<EdgeClass, EdgeMasks, EdgeClassHash> masks_;
  std::unordered_map<TriClass, TriTables, TriClassHash> tris_;
  /// Backing store for all mask rows and completion tables; released with
  /// the cache, never per-row.
  std::pmr::monotonic_buffer_resource mask_arena_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  mutable std::size_t mask_hits_ = 0;
  mutable std::size_t tri_hits_ = 0;
};

struct MapSearchOptions {
  bool chromatic = true;
  /// Backtracking-step budget; searches stopping on the cap report
  /// exhausted = false.
  std::size_t node_cap = 20'000'000;
  /// Minimum-remaining-values variable selection (default). Disabling falls
  /// back to static order — kept as an ablation knob (see bench_ablation);
  /// both orders are complete, MRV is typically orders of magnitude faster.
  bool dynamic_ordering = true;
  /// Worker threads for the search. 1 = the sequential backtracker;
  /// 0 = hardware concurrency; N > 1 = work-splitting parallel search: a
  /// fixed DFS-ordered set of decision prefixes is dispatched as jobs on
  /// the shared work-stealing executor (runtime/executor.h), then a
  /// canonical sequential walk re-derives the single-threaded answer from
  /// the per-prefix outcomes. Determinism contract: for identical inputs
  /// EVERY thread count returns bit-identical results — the same
  /// found/exhausted verdict, the same witness map (the DFS-first one),
  /// and the same nodes_explored, including cap-truncated searches (the
  /// cap is charged against one global node counter with fixed flush
  /// boundaries, so the truncation point cannot drift with the worker
  /// count). Extra threads change wall-clock time only.
  int threads = 1;
  /// Optional cross-call Δ-image cache (see DeltaImageCache). Borrowed, may
  /// be null (a per-call cache is used); must be dedicated to `task.delta`.
  DeltaImageCache* image_cache = nullptr;
  /// Optional cooperative cancellation flag, polled at every search node by
  /// every worker. When it becomes true the search unwinds promptly and the
  /// result reports `cancelled = true` (and exhausted = false) unless a map
  /// was already found. Borrowed; must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
};

struct MapSearchResult {
  bool found = false;
  bool exhausted = true;  ///< meaningful when !found: whole space explored
  bool cancelled = false;  ///< stopped by MapSearchOptions::cancel
  /// Some subdivision vertex had more than 64 candidate values — the
  /// word-parallel domains cannot represent the instance, so nothing was
  /// searched. Always reported with exhausted = false: this is a
  /// representation limit, never evidence of unsolvability.
  bool domain_overflow = false;
  VertexMap map;           ///< the decision map, when found
  /// Backtracking nodes visited, aggregated across all workers.
  std::size_t nodes_explored = 0;
  /// Deterministic distribution of the CSP's per-variable candidate-list
  /// sizes: counts per base-2 log bucket (obs::Histogram::bucket_index
  /// boundaries — bucket i holds sizes <= 2^i), trimmed after the last
  /// non-zero bucket, plus the matching sample count and size sum. A pure
  /// function of the instance, identical at every thread count, so engines
  /// fold it into the deterministic report fields. Empty when the build
  /// stopped before gathering domains (cancelled / empty complex).
  std::vector<std::uint64_t> domain_size_hist;
  std::uint64_t domain_size_count = 0;
  std::uint64_t domain_size_sum = 0;
};

/// Resolves a `threads` request the way every search engine does:
/// 0 = hardware concurrency (at least 1), N > 0 = N.
int resolve_search_threads(int requested);

/// Searches for a simplicial map from `domain.complex` to `task.output`
/// carried by `task.delta` (carriers interpreted in `task.input`).
MapSearchResult find_decision_map(const VertexPool& pool,
                                  const SubdividedComplex& domain, const Task& task,
                                  const MapSearchOptions& options);

/// Independent validation that `map` is simplicial, carried by Δ, and (in
/// chromatic mode) color-preserving. Used by tests and by the protocol
/// layer before executing a witness.
bool validate_decision_map(const VertexPool& pool, const SubdividedComplex& domain,
                           const Task& task, const VertexMap& map, bool chromatic);

}  // namespace trichroma
