#include "solver/pipeline.h"

#include <chrono>
#include <memory>
#include <utility>

#include "io/store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/executor.h"
#include "tasks/fingerprint.h"

namespace trichroma {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

EngineBudget budget_from(const SolvabilityOptions& options) {
  EngineBudget budget;
  budget.max_radius = options.max_radius;
  budget.node_cap = options.node_cap;
  budget.threads = options.threads;
  budget.reuse_subdivisions = options.reuse_subdivisions;
  budget.reuse_images = options.reuse_images;
  return budget;
}

EngineReport make_skipped(const char* name, EngineSide side, int precedence) {
  EngineReport report;
  report.name = name;
  report.side = side;
  report.precedence = precedence;
  report.status = EngineStatus::Skipped;
  return report;
}

std::size_t facet_count(const SimplicialComplex& k) {
  const int top = k.dimension();
  return top < 0 ? 0 : k.count(top);
}

// Everything the impossibility lane produces. The lane owns a clone of the
// task (pools are unsynchronized, and characterize/subdivision intern), so
// its engines' vertex ids are only meaningful against the clone's pool —
// which `characterization` keeps alive.
struct ImpossibilityLane {
  EngineReport characterize =
      make_skipped("characterize", EngineSide::Support, 1);
  EngineReport cor55 = make_skipped("corollary-5.5", EngineSide::Impossibility,
                                    engine_precedence::kCorollary55);
  EngineReport cor56 = make_skipped("corollary-5.6", EngineSide::Impossibility,
                                    engine_precedence::kCorollary56);
  EngineReport csp =
      make_skipped("post-split-connectivity-csp", EngineSide::Impossibility,
                   engine_precedence::kPostSplitCsp);
  EngineReport homology =
      make_skipped("post-split-homology", EngineSide::Impossibility,
                   engine_precedence::kHomology);
  EngineReport agnostic =
      make_skipped("tp-agnostic-probe", EngineSide::Possibility,
                   engine_precedence::kAgnosticProbe);
  EngineReport generic =
      make_skipped("generic-connectivity-csp", EngineSide::Impossibility,
                   engine_precedence::kGenericConnectivity);

  std::shared_ptr<CharacterizationResult> characterization;
  CorollaryResult cor55_result;
  CorollaryResult cor56_result;
  int agnostic_radius = -1;
  bool concluded_impossible = false;
};

/// The n > 3 impossibility lane: just the generic pre-split CSP.
void run_generic_chain(const Task& lane_task, const EngineBudget& budget,
                       const CancellationToken& self, CancellationToken& other,
                       ImpossibilityLane& lane) {
  GenericConnectivityEngine engine(lane_task);
  lane.generic = engine.run(budget, self);
  if (lane.generic.status == EngineStatus::Conclusive) {
    lane.concluded_impossible = true;
    other.request_stop();
  }
}

/// The three-process impossibility chain: characterize, then the obstruction
/// engines on T*/T'. Corollaries are evaluated before the CSPs (they feed
/// the result payload either way) but rank *after* them in precedence,
/// mirroring the pre-refactor ladder's check order; the homology engine is
/// skipped once the CSP already concluded, as the ladder returned early.
void run_impossibility_chain(const Task& lane_task, const EngineBudget& budget,
                             const CancellationToken& self,
                             CancellationToken& other, ImpossibilityLane& lane) {
  CharacterizeEngine characterize(lane_task);
  lane.characterize = characterize.run(budget, self);
  if (lane.characterize.status != EngineStatus::Completed) return;
  lane.characterization = characterize.result();
  const Task& tstar = lane.characterization->canonical;
  const Task& tp = lane.characterization->link_connected;

  Corollary55Engine cor55(tstar);
  lane.cor55 = cor55.run(budget, self);
  lane.cor55_result = cor55.result();
  if (lane.cor55.status == EngineStatus::Conclusive) {
    lane.concluded_impossible = true;
    other.request_stop();
  }

  Corollary56Engine cor56(tstar);
  lane.cor56 = cor56.run(budget, self);
  lane.cor56_result = cor56.result();
  if (lane.cor56.status == EngineStatus::Conclusive) {
    lane.concluded_impossible = true;
    other.request_stop();
  }

  PostSplitCspEngine csp(tp);
  lane.csp = csp.run(budget, self);
  if (lane.csp.status == EngineStatus::Conclusive) {
    lane.concluded_impossible = true;
    other.request_stop();
    lane.homology = HomologyEngine(tp).skipped();
    return;
  }

  HomologyEngine homology(tp);
  lane.homology = homology.run(budget, self);
  if (lane.homology.status == EngineStatus::Conclusive) {
    lane.concluded_impossible = true;
    other.request_stop();
  }
}

/// The color-agnostic probe on T' — the characterization's possibility
/// engine. Runs on the impossibility lane's thread (and clone), overlapping
/// the chromatic probe in racing mode. Its conclusion cancels nothing: the
/// chromatic probe ranks higher and must finish to keep the merge
/// deterministic.
void run_agnostic_probe(const EngineBudget& budget, const CancellationToken& self,
                        ImpossibilityLane& lane) {
  if (lane.characterization == nullptr || lane.concluded_impossible ||
      self.stop_requested()) {
    return;
  }
  ProbeEngine probe(lane.characterization->link_connected,
                    ProbeKind::LinkConnectedAgnostic);
  lane.agnostic = probe.run(budget, self);
  if (lane.agnostic.status == EngineStatus::Conclusive) {
    lane.agnostic_radius = probe.found_radius();
  }
}

/// Deterministic merge: among conclusive engines the lowest precedence wins.
const EngineReport* best_conclusive(const std::vector<EngineReport>& engines) {
  const EngineReport* best = nullptr;
  for (const EngineReport& e : engines) {
    if (e.status != EngineStatus::Conclusive) continue;
    if (best == nullptr || e.precedence < best->precedence) best = &e;
  }
  return best;
}

void merge_unknown_reason(const SolvabilityOptions& options,
                          PipelineReport& report) {
  // Budget truncations and domain overflows, in classic ladder order:
  // chromatic rungs first, then the T'-agnostic rungs.
  std::vector<std::string> capped;
  std::vector<std::string> overflowed;
  for (const char* name : {"chromatic-probe", "tp-agnostic-probe"}) {
    for (const EngineReport& e : report.engines) {
      if (e.name != name) continue;
      capped.insert(capped.end(), e.capped.begin(), e.capped.end());
      overflowed.insert(overflowed.end(), e.overflowed.begin(),
                        e.overflowed.end());
    }
  }
  if (capped.empty() && overflowed.empty()) {
    report.reason = "no decision map up to radius " +
                    std::to_string(options.max_radius) +
                    " and no obstruction found";
    return;
  }
  auto join = [](const std::vector<std::string>& probes) {
    std::string which;
    for (const std::string& probe : probes) {
      which += (which.empty() ? "" : "; ") + probe;
    }
    return which;
  };
  std::string reason;
  if (!overflowed.empty()) {
    reason = "decision-map domain wider than 64 values (word-parallel CSP "
             "limit) for: " +
             join(overflowed);
  }
  if (!capped.empty()) {
    if (!reason.empty()) reason += "; ";
    reason += "search budget exhausted before a conclusion (node cap " +
              std::to_string(options.node_cap) + " hit by: " + join(capped) +
              ")";
  }
  report.reason = reason;
}

}  // namespace

PipelineResult run_pipeline(const Task& task, const SolvabilityOptions& options) {
  TRI_SPAN("pipeline/run");
  obs::MetricsRegistry::global().counter("pipeline.runs").add();
  const ExecutorStats exec_before = Executor::global().stats();
  const auto ladder_counters = [] {
    PipelineReport::LadderBuildStats s;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    s.parallel_chunks = reg.counter("ladder.parallel_chunks").value();
    s.merge_ns = reg.counter("ladder.merge_ns").value();
    s.stripe_contention = reg.counter("cache.delta.stripe_contention").value();
    return s;
  };
  const PipelineReport::LadderBuildStats ladder_before = ladder_counters();
  const Clock::time_point start = Clock::now();
  PipelineResult out;
  PipelineReport& report = out.report;
  // Latency distributions across runs (observability only — wall clocks
  // never enter the deterministic report slice). Recorded on every exit.
  const auto record_latencies = [&report] {
    static obs::Histogram& wall =
        obs::MetricsRegistry::global().histogram("pipeline.wall_us");
    wall.record(static_cast<std::uint64_t>(report.total_wall_ms * 1000.0));
    static obs::Histogram& engine_wall =
        obs::MetricsRegistry::global().histogram("pipeline.engine_wall_us");
    for (const EngineReport& e : report.engines) {
      if (e.status != EngineStatus::Skipped)
        engine_wall.record(static_cast<std::uint64_t>(e.wall_ms * 1000.0));
    }
  };
  report.task_name = task.name;
  report.num_processes = task.num_processes;
  report.input_facets = facet_count(task.input);
  report.output_facets = facet_count(task.output);
  report.options = options;
  const int threads_resolved = resolve_search_threads(options.threads);
  const EngineBudget budget = budget_from(options);

  // Resolve the lane schedule up front: it is part of the verdict-store key
  // ("ladder" and "racing" reports differ in engine statuses by contract,
  // so they must never alias one cache entry).
  const bool characterize_route =
      options.use_characterization && task.num_processes == 3;
  const bool generic_route = task.num_processes > 3;
  const bool race = task.num_processes != 2 && threads_resolved >= 2 &&
                    options.schedule == PipelineSchedule::kAuto &&
                    (characterize_route || generic_route);
  const std::string schedule_str =
      task.num_processes == 2 ? "exact" : (race ? "racing" : "ladder");

  // Verdict-store consult. Fingerprinting failure (or any store anomaly)
  // degrades to cache-off — the cache is an accelerator, never a gate.
  bool cache_enabled = !options.cache_dir.empty();
  TaskFingerprint fp;
  CanonicalLabeling labeling;
  std::string opt_digest;
  std::unique_ptr<io::VerdictStore> store;
  const io::VerdictRecordBudget record_budget{
      options.max_radius, options.node_cap, options.use_characterization,
      options.reuse_subdivisions, options.reuse_images};
  std::shared_ptr<const ProbeSeed> probe_seed;  // warm start, tier B
  if (cache_enabled) {
    try {
      FingerprintResult fr = fingerprint_task(task);
      fp = fr.fingerprint;
      labeling = std::move(fr.labeling);
      opt_digest = io::options_digest(options, schedule_str);
      store = std::make_unique<io::VerdictStore>(options.cache_dir);
      report.cache = "miss";
      if (store->load_verdict(fp, opt_digest, &report)) {
        // Hit: the record carries the verdict-relevant slice; display
        // metadata (name, shape) comes from the live task so isomorphic
        // twins replaying one record keep their own identity.
        report.task_name = task.name;
        report.num_processes = task.num_processes;
        report.input_facets = facet_count(task.input);
        report.output_facets = facet_count(task.output);
        report.cache = "hit";
        report.cache_hits = 1;
        obs::MetricsRegistry::global().counter("cache.hit").add();
        report.phase_consult_ms = ms_since(start);
        report.total_wall_ms = ms_since(start);
        record_latencies();
        return out;
      }
      report.cache_misses = 1;
      obs::MetricsRegistry::global().counter("cache.miss").add();

      // Warm start, tier A: sibling record replay. A stored run whose
      // budget differs from the live one in `max_radius` ALONE is
      // byte-identical to the live cold run whenever the stored outcome is
      // provably radius-invariant: the two-process engine never reads
      // max_radius, an Unsolvable verdict means the probe ladder was
      // skipped, and a chromatic-probe Solvable at radius k replays the
      // exact rungs 0..k any budget with max_radius >= k would climb.
      // Racing-schedule records are excluded — their engine statuses are
      // timing-dependent, so "identical to cold" is not even well-defined.
      if (schedule_str != "racing") {
        for (const io::SiblingVerdict& sibling : store->scan_siblings(fp)) {
          if (sibling.opt_digest == opt_digest) continue;
          if (sibling.report.schedule != schedule_str) continue;
          const io::VerdictRecordBudget& b = sibling.budget;
          if (b.max_radius == record_budget.max_radius ||
              b.node_cap != record_budget.node_cap ||
              b.use_characterization != record_budget.use_characterization ||
              b.reuse_subdivisions != record_budget.reuse_subdivisions ||
              b.reuse_images != record_budget.reuse_images) {
            continue;
          }
          bool replay_safe = schedule_str == "exact" ||
                             sibling.report.verdict == Verdict::Unsolvable;
          if (!replay_safe && sibling.report.verdict == Verdict::Solvable) {
            for (const EngineReport& e : sibling.report.engines) {
              if (e.precedence == engine_precedence::kChromaticProbe &&
                  e.status == EngineStatus::Conclusive &&
                  e.witness_radius >= 0 &&
                  e.witness_radius <= options.max_radius) {
                replay_safe = true;
                break;
              }
            }
          }
          if (!replay_safe) continue;
          report.schedule = sibling.report.schedule;
          report.verdict = sibling.report.verdict;
          report.reason = sibling.report.reason;
          report.radius = sibling.report.radius;
          report.via_characterization = sibling.report.via_characterization;
          report.characterization_computed =
              sibling.report.characterization_computed;
          report.engines = sibling.report.engines;
          report.cache = "artifacts";
          obs::MetricsRegistry::global().counter("cache.artifacts").add();
          // Re-key under the live digest so the next identical run is an
          // exact hit.
          store->store_verdict(fp, opt_digest, report, record_budget);
          report.cache_store_bytes = store->bytes_written();
          obs::MetricsRegistry::global()
              .counter("cache.store_bytes")
              .add(store->bytes_written());
          report.phase_consult_ms = ms_since(start);
          report.total_wall_ms = ms_since(start);
          record_latencies();
          return out;
        }
      }

      // Warm start, tier B: stored artifacts seed the chromatic probe. The
      // engine materializes them under the live identity inside execute()
      // (after any lane cloning) and still climbs every rung, so verdict,
      // reason, radius — and every counter — match a cold run; only the
      // ladder/Δ-image construction work is saved.
      if (schedule_str == "ladder") {
        auto seed = std::make_shared<ProbeSeed>();
        std::string body;
        if (options.reuse_subdivisions &&
            store->load_artifact(fp, "ladder.levels", &body)) {
          seed->ladder_body = std::move(body);
        }
        body.clear();
        if (options.reuse_images &&
            store->load_artifact(fp, "delta.images", &body)) {
          seed->images_body = std::move(body);
        }
        if (!seed->ladder_body.empty() || !seed->images_body.empty()) {
          seed->labeling = labeling;
          probe_seed = std::move(seed);
        }
      }
    } catch (...) {
      cache_enabled = false;
      store.reset();
      probe_seed.reset();
      report.cache = "off";
      report.cache_misses = 0;
    }
  }
  report.phase_consult_ms = ms_since(start);
  const Clock::time_point engines_start = Clock::now();

  // Publishes a conclusive verdict plus reusable artifacts. Best effort: a
  // failed write leaves the report's store_bytes at whatever landed. Only
  // conclusive verdicts are stored as records — an Unknown is a budget
  // statement, not a property of the task — but a probe that climbed to
  // Ch^1 or beyond publishes its ladder/Δ-image artifacts EVEN on Unknown,
  // so a later deeper sweep resumes the tower instead of rebuilding it.
  // The ladder artifact ratchets: it is only overwritten by a strictly
  // deeper tower, so sweeps never regress the stored prefix.
  const auto publish = [&](const ProbeEngine* chromatic_probe) {
    if (!cache_enabled) return;
    const bool conclusive = report.verdict != Verdict::Unknown;
    const bool climbed = chromatic_probe != nullptr &&
                         chromatic_probe->computed_levels().size() >= 2;
    if (!conclusive && !climbed) return;
    if (conclusive) {
      store->store_verdict(fp, opt_digest, report, record_budget);
    }
    if (climbed) {
      const std::string body = io::serialize_ladder_levels(
          task, labeling, chromatic_probe->computed_levels());
      std::string existing;
      const std::size_t existing_depth =
          store->load_artifact(fp, "ladder.levels", &existing)
              ? io::ladder_levels_count(existing)
              : 0;
      if (io::ladder_levels_count(body) > existing_depth) {
        store->store_artifact(fp, "ladder.levels", body);
      }
    }
    store->store_artifact(fp, "delta.images",
                          io::serialize_delta_images(task, labeling));
    report.cache_store_bytes = store->bytes_written();
    obs::MetricsRegistry::global()
        .counter("cache.store_bytes")
        .add(store->bytes_written());
  };

  // Counter deltas are this run's share of the shared pool's telemetry;
  // max_queue_depth is a high-water mark and stays cumulative.
  const auto sample_exec_stats = [&exec_before, &ladder_before,
                                  &ladder_counters, &report] {
    const ExecutorStats now = Executor::global().stats();
    report.executor_stats.jobs_run = now.jobs_run - exec_before.jobs_run;
    report.executor_stats.steals = now.steals - exec_before.steals;
    report.executor_stats.injections = now.injections - exec_before.injections;
    report.executor_stats.max_queue_depth = now.max_queue_depth;
    report.executor_stats.help_runs = now.help_runs - exec_before.help_runs;
    const PipelineReport::LadderBuildStats lnow = ladder_counters();
    report.ladder_stats.parallel_chunks =
        lnow.parallel_chunks - ladder_before.parallel_chunks;
    report.ladder_stats.merge_ns = lnow.merge_ns - ladder_before.merge_ns;
    report.ladder_stats.stripe_contention =
        lnow.stripe_contention - ladder_before.stripe_contention;
  };

  // Two processes: Proposition 5.4 decides exactly; nothing to race.
  if (task.num_processes == 2) {
    report.schedule = "exact";
    TwoProcessEngine engine(task);
    CancellationToken token;
    const EngineReport r = engine.run(budget, token);
    report.engines.push_back(r);
    if (r.status == EngineStatus::Conclusive) {
      report.verdict = r.verdict;
      report.reason = r.reason;
    } else {
      report.verdict = Verdict::Unknown;
      report.reason = r.detail;
    }
    report.phase_engines_ms = ms_since(engines_start);
    const Clock::time_point publish_start = Clock::now();
    publish(nullptr);
    report.phase_publish_ms = ms_since(publish_start);
    report.total_wall_ms = ms_since(start);
    sample_exec_stats();
    record_latencies();
    return out;
  }

  report.schedule = schedule_str;
  obs::trace_instant("pipeline/schedule/", report.schedule.c_str());

  CancellationToken possibility_token;    // stops the chromatic probe
  CancellationToken impossibility_token;  // stops the T'/generic lane

  ProbeEngine chromatic(task, ProbeKind::DirectChromatic);
  if (probe_seed != nullptr) chromatic.set_seed(probe_seed);
  EngineReport chromatic_report = chromatic.skipped();
  ImpossibilityLane lane;

  if (race) {
    // The impossibility lane interns into its own clone of the task; the
    // chromatic probe interns into the original pool from this thread.
    // Soundness makes the cross-lane cancellation verdict-neutral. The lane
    // is one executor job: a pool worker picks it up while this thread runs
    // the probe, and group.wait() both joins it and rethrows anything the
    // lane threw.
    const Task lane_task = clone_task(task);
    Executor& executor = Executor::global();
    executor.ensure_workers(threads_resolved > 2 ? threads_resolved - 1 : 1);
    JobGroup group(executor);
    group.submit([&]() {
      TRI_SPAN("pipeline/lane/impossibility");
      if (generic_route) {
        run_generic_chain(lane_task, budget, impossibility_token,
                          possibility_token, lane);
        return;
      }
      run_impossibility_chain(lane_task, budget, impossibility_token,
                              possibility_token, lane);
      run_agnostic_probe(budget, impossibility_token, lane);
    });
    chromatic_report = chromatic.run(budget, possibility_token);
    if (chromatic_report.status == EngineStatus::Conclusive) {
      impossibility_token.request_stop();
    }
    group.wait();
  } else {
    // Sequential ladder: impossibility chain, chromatic probe, T'-agnostic
    // probe, each side skipped once an earlier engine concluded.
    if (generic_route) {
      const Task lane_task = clone_task(task);
      run_generic_chain(lane_task, budget, impossibility_token,
                        possibility_token, lane);
      if (!lane.concluded_impossible) {
        chromatic_report = chromatic.run(budget, possibility_token);
      }
    } else if (characterize_route) {
      const Task lane_task = clone_task(task);
      run_impossibility_chain(lane_task, budget, impossibility_token,
                              possibility_token, lane);
      if (!lane.concluded_impossible) {
        chromatic_report = chromatic.run(budget, possibility_token);
        if (chromatic_report.status != EngineStatus::Conclusive) {
          run_agnostic_probe(budget, impossibility_token, lane);
        }
      }
    } else {
      chromatic_report = chromatic.run(budget, possibility_token);
    }
  }

  // Canonical engine order for the report.
  if (generic_route) {
    report.engines.push_back(std::move(lane.generic));
    report.engines.push_back(std::move(chromatic_report));
  } else if (characterize_route) {
    report.engines.push_back(std::move(lane.characterize));
    report.engines.push_back(std::move(lane.cor55));
    report.engines.push_back(std::move(lane.cor56));
    report.engines.push_back(std::move(lane.csp));
    report.engines.push_back(std::move(lane.homology));
    report.engines.push_back(std::move(chromatic_report));
    report.engines.push_back(std::move(lane.agnostic));
  } else {
    report.engines.push_back(std::move(chromatic_report));
  }

  // Lane payload, independent of the merge outcome (mirrors the ladder,
  // which always exposed the characterization and corollaries when run).
  out.characterization = lane.characterization;
  out.cor55 = lane.cor55_result;
  out.cor56 = lane.cor56_result;
  report.characterization_computed = lane.characterization != nullptr;

  const EngineReport* best = best_conclusive(report.engines);
  if (best == nullptr) {
    report.verdict = Verdict::Unknown;
    merge_unknown_reason(options, report);
  } else {
    report.verdict = best->verdict;
    report.reason = best->reason;
    if (best->precedence == engine_precedence::kChromaticProbe) {
      report.radius = best->witness_radius;
      out.has_chromatic_witness = true;
      out.witness = chromatic.witness();
      out.witness_domain = chromatic.witness_domain();
    } else if (best->precedence == engine_precedence::kAgnosticProbe) {
      report.radius = lane.agnostic_radius;
      report.via_characterization = true;
    } else if (best->verdict == Verdict::Unsolvable &&
               best->precedence != engine_precedence::kGenericConnectivity) {
      report.via_characterization = true;
    }
  }

  // The probe consumed stored artifacts: declare the warm start. Every
  // non-cache field is still byte-identical to a cold run — the probe
  // climbed the same rungs with as-cold counters; only construction work
  // was saved. (If the seed failed to parse or the probe never ran, this
  // stays "miss" — a corrupted artifact degrades to a cold rebuild.)
  if (chromatic.seeded_levels() > 0 || chromatic.seeded_images() > 0) {
    report.cache = "artifacts";
    report.cache_seeded_levels = chromatic.seeded_levels();
    obs::MetricsRegistry::global().counter("cache.artifacts").add();
  }

  report.phase_engines_ms = ms_since(engines_start);
  const Clock::time_point publish_start = Clock::now();
  publish(&chromatic);
  report.phase_publish_ms = ms_since(publish_start);
  report.total_wall_ms = ms_since(start);
  sample_exec_stats();
  record_latencies();
  return out;
}

}  // namespace trichroma
