#pragma once
// The verdict pipeline: schedules AnalysisEngine units over a task and
// merges their reports into one deterministic verdict.
//
// Scheduling. With one worker thread the engines run in the classic ladder
// order (impossibility chain, then the chromatic probe ladder, then the
// T'-agnostic probe), each skipped as soon as an earlier engine concludes —
// exactly the pre-refactor sequential cost model. With two or more threads
// (and schedule = kAuto) the two sides *race*: the impossibility lane
// (characterize → Corollaries 5.5/5.6 → post-split CSP → homology →
// T'-agnostic probe) is submitted to the shared work-stealing executor as a
// job group over a clone_task copy of the task (pools are unsynchronized),
// while the possibility lane (the chromatic probe ladder) runs on the
// calling thread over the original task. The first conclusive engine
// cancels the dominated side through the lanes' cancellation tokens, so
// e.g. zoo::identity no longer pays for canonicalize+split before its
// radius-0 witness, and majority_consensus no longer pays a 20M-node
// refutation after its obstruction fired.
//
// Determinism. Engines are sound, so possibility and impossibility can
// never both conclude; within a side, a fixed precedence order (the
// pre-refactor ladder order) selects the reported verdict and reason.
// Verdict, reason, radius, via_characterization AND every engine's
// nodes_explored are identical for every thread count: the decision-map
// searches inside the engines use canonical prefix accounting (see
// map_search.cpp), so threads only change wall-clock. Per-engine *statuses*
// are schedule-dependent in racing mode (the losing lane reports
// Cancelled); force schedule = kLadder to pin the full report — engine
// statuses included — while inner searches still parallelize. That is what
// the batch driver does to make its report files byte-identical.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/executor.h"
#include "solver/engine.h"
#include "tasks/task.h"

namespace trichroma {

/// How the pipeline schedules its two lanes. kAuto races them on >= 2
/// threads (fastest wall-clock; the losing lane's statuses depend on
/// timing); kLadder always runs the classic sequential ladder, whose
/// engine statuses are a pure function of the task and budget.
enum class PipelineSchedule { kAuto, kLadder };

struct SolvabilityOptions {
  int max_radius = 2;
  std::size_t node_cap = 20'000'000;
  /// Also try the characterization route (split + color-agnostic search)
  /// when the direct chromatic search fails.
  bool use_characterization = true;
  /// Worker threads for the pipeline and every decision-map search inside
  /// it. 0 = hardware concurrency, 1 = sequential ladder. The verdict is
  /// identical for every thread count; >= 2 additionally races the
  /// impossibility lane against the possibility lane.
  int threads = 0;
  /// Lane scheduling policy (see PipelineSchedule).
  PipelineSchedule schedule = PipelineSchedule::kAuto;
  /// Memoize Ch^r across the radius ladder (SubdivisionLadder) instead of
  /// recomputing every round from scratch at each radius. Off is only
  /// useful for benchmarking the cold path.
  bool reuse_subdivisions = true;
  /// Share Δ-image complexes across radii and probe modes (DeltaImageCache).
  bool reuse_images = true;
  /// Root directory of the content-addressed verdict store (io/store.h).
  /// Empty = caching off. When set, the pipeline fingerprints the task,
  /// consults the store before scheduling any engine, and publishes
  /// conclusive verdicts (plus ladder/Δ-image artifacts) after cold runs.
  /// NOT part of the cache key and never rendered into reports (store
  /// locations are machine-specific; reports must compare across machines).
  std::string cache_dir;
};

/// The whole pipeline run, serializable via io::to_json (schema
/// trichroma.pipeline-report/9).
struct PipelineReport {
  std::string task_name;
  int num_processes = 3;
  std::size_t input_facets = 0;
  std::size_t output_facets = 0;
  SolvabilityOptions options;
  /// How the lanes actually ran: "exact" (two-process branch), "ladder"
  /// (sequential schedule) or "racing". Everything except engine statuses
  /// under "racing" is schedule-independent.
  std::string schedule = "ladder";
  Verdict verdict = Verdict::Unknown;
  std::string reason;
  /// Radius of the found decision map (when Solvable via map search).
  int radius = -1;
  bool via_characterization = false;
  /// Whether the characterization lane ran to completion and produced a
  /// CharacterizationResult. Can be false even when the route was enabled:
  /// at >= 2 threads the possibility lane may conclude and cancel the
  /// impossibility lane before canonicalization finishes. Reports render it
  /// as an explicit "characterization": "computed" | "not-computed" marker
  /// so consumers never have to guess whether an absent payload means
  /// "skipped" or "raced out".
  bool characterization_computed = false;
  double total_wall_ms = 0.0;
  /// Phase latency breakdown for the run record (schema v9's "run" object):
  /// store consult + warm-start seeding, engine execution, publication.
  /// Wall-clock quantities — zeroed under redact_timings exactly like
  /// total_wall_ms. Phases a run never entered stay 0 (e.g. engines on a
  /// cache hit).
  double phase_consult_ms = 0.0;
  double phase_engines_ms = 0.0;
  double phase_publish_ms = 0.0;
  /// Verdict-store outcome: "off" (no cache_dir), "hit" (replayed from the
  /// store — or from an isomorphic twin earlier in the same batch),
  /// "artifacts" (warm-started on a budget-only miss: either a sibling
  /// record replayed verbatim, or stored ladder/Δ-image artifacts seeded
  /// the probe engines), "miss" (cold run, store consulted). Everything but
  /// the cache markers is byte-identical between "artifacts" and a cold
  /// run; reports render this and the cache metrics on lines containing
  /// `"cache":` so byte-comparisons can filter them.
  std::string cache = "off";
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Ladder levels materialized from a stored artifact (counting Ch^0);
  /// 0 on cold runs and record replays. Cache telemetry only.
  int cache_seeded_levels = 0;
  /// Bytes published to the store by this run (record + artifacts).
  std::uint64_t cache_store_bytes = 0;
  /// Shared-pool scheduling telemetry, as a delta over this run (global
  /// stats sampled at entry and exit). Nondeterministic — stealing depends
  /// on timing, and concurrent batch jobs' tickets land in the same delta —
  /// so reports zero it under redact_timings, like wall clocks.
  ExecutorStats executor_stats;
  /// Parallel ladder-build telemetry, as a delta over this run (global
  /// counters sampled at entry and exit). `parallel_chunks` counts builder
  /// chunks stamped by parallel `subdivide_once` phases, `merge_ns` the
  /// wall time of their canonical-order merges, `stripe_contention` the
  /// failed stripe claims during Δ-image population. All three depend on
  /// thread count and timing (and concurrent batch jobs share the globals),
  /// so reports zero the whole sub-object under redact_timings.
  struct LadderBuildStats {
    std::uint64_t parallel_chunks = 0;
    std::uint64_t merge_ns = 0;
    std::uint64_t stripe_contention = 0;
  };
  LadderBuildStats ladder_stats;
  /// One entry per schedulable engine, in canonical pipeline order (engines
  /// the schedule never started appear with status "skipped").
  std::vector<EngineReport> engines;
};

/// Pipeline output: the merged report plus the witness payload the
/// decide_solvability façade re-exposes.
struct PipelineResult {
  PipelineReport report;

  /// When Solvable via the direct chromatic probe: the witness map and its
  /// domain (shared with the probe's subdivision ladder; vertex ids live in
  /// the original task's pool).
  bool has_chromatic_witness = false;
  std::shared_ptr<const SubdividedComplex> witness_domain;
  VertexMap witness;

  /// The characterization lane's output, when it ran to completion. The
  /// contained tasks reference the lane's cloned pool (kept alive here).
  std::shared_ptr<CharacterizationResult> characterization;
  CorollaryResult cor55;
  CorollaryResult cor56;
};

/// Runs the full engine pipeline on `task`. decide_solvability is a thin
/// façade over this; call it directly to get the structured report.
PipelineResult run_pipeline(const Task& task,
                            const SolvabilityOptions& options = {});

}  // namespace trichroma
