#include "solver/solvability.h"

#include <utility>

namespace trichroma {

namespace {

SolvabilityResult from_pipeline(PipelineResult pipeline) {
  SolvabilityResult result;
  result.verdict = pipeline.report.verdict;
  result.reason = pipeline.report.reason;
  result.radius = pipeline.report.radius;
  result.via_characterization = pipeline.report.via_characterization;
  result.has_chromatic_witness = pipeline.has_chromatic_witness;
  result.witness_domain = std::move(pipeline.witness_domain);
  result.witness = std::move(pipeline.witness);
  result.characterization = std::move(pipeline.characterization);
  result.cor55 = std::move(pipeline.cor55);
  result.cor56 = std::move(pipeline.cor56);
  result.report =
      std::make_shared<const PipelineReport>(std::move(pipeline.report));
  return result;
}

}  // namespace

SolvabilityResult decide_solvability(const Task& task,
                                     const SolvabilityOptions& options) {
  return from_pipeline(run_pipeline(task, options));
}

SolvabilityResult decide_two_process(const Task& task,
                                     const SolvabilityOptions& options) {
  // Runs the exact Proposition 5.4 engine directly, whatever
  // task.num_processes claims (callers probe two-process subtasks).
  SolvabilityResult result;
  TwoProcessEngine engine(task);
  CancellationToken token;
  EngineBudget budget;
  budget.max_radius = options.max_radius;
  budget.node_cap = options.node_cap;
  budget.threads = options.threads;
  const EngineReport report = engine.run(budget, token);
  if (report.status == EngineStatus::Conclusive) {
    result.verdict = report.verdict;
    result.reason = report.reason;
  } else {
    result.verdict = Verdict::Unknown;
    result.reason = report.detail;
  }
  PipelineReport pipeline_report;
  pipeline_report.task_name = task.name;
  pipeline_report.num_processes = task.num_processes;
  pipeline_report.options = options;
  pipeline_report.schedule = "exact";
  pipeline_report.verdict = result.verdict;
  pipeline_report.reason = result.reason;
  pipeline_report.total_wall_ms = report.wall_ms;
  pipeline_report.engines.push_back(report);
  result.report =
      std::make_shared<const PipelineReport>(std::move(pipeline_report));
  return result;
}

MapSearchResult colorless_probe(const Task& task,
                                const SolvabilityOptions& options) {
  ProbeEngine probe(task, ProbeKind::ColorlessDirect);
  CancellationToken token;
  EngineBudget budget;
  budget.max_radius = options.max_radius;
  budget.node_cap = options.node_cap;
  budget.threads = options.threads;
  budget.reuse_subdivisions = options.reuse_subdivisions;
  budget.reuse_images = options.reuse_images;
  probe.run(budget, token);
  return probe.last();
}

MapSearchResult colorless_probe(const Task& task, int max_radius,
                                std::size_t node_cap, int threads) {
  SolvabilityOptions options;
  options.max_radius = max_radius;
  options.node_cap = node_cap;
  options.threads = threads;
  return colorless_probe(task, options);
}

}  // namespace trichroma
