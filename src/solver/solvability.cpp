#include "solver/solvability.h"

#include <string>
#include <vector>

namespace trichroma {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Solvable:
      return "SOLVABLE";
    case Verdict::Unsolvable:
      return "UNSOLVABLE";
    case Verdict::Unknown:
      return "UNKNOWN";
  }
  return "?";
}

SolvabilityResult decide_two_process(const Task& task) {
  SolvabilityResult result;
  const ConnectivityCsp csp = connectivity_csp(task);
  if (csp.feasible) {
    result.verdict = Verdict::Solvable;
    result.reason =
        "Proposition 5.4: a corner assignment with connected edge images "
        "exists, giving a continuous map |I| -> |O| carried by Δ";
  } else if (csp.exhausted) {
    result.verdict = Verdict::Unsolvable;
    result.reason = "Proposition 5.4: no continuous map |I| -> |O| carried by Δ (" +
                    csp.detail + ")";
  } else {
    result.verdict = Verdict::Unknown;
    result.reason = csp.detail;
  }
  return result;
}

MapSearchResult colorless_probe(const Task& task, int max_radius,
                                std::size_t node_cap, int threads) {
  MapSearchOptions options;
  options.chromatic = false;
  options.node_cap = node_cap;
  options.threads = threads;
  DeltaImageCache images;
  options.image_cache = &images;
  SubdivisionLadder ladder(*task.pool, task.input);
  MapSearchResult last;
  for (int r = 0; r <= max_radius; ++r) {
    last = find_decision_map(*task.pool, ladder.at(r), task, options);
    if (last.found) return last;
  }
  return last;
}

SolvabilityResult decide_solvability(const Task& task,
                                     const SolvabilityOptions& options) {
  if (task.num_processes == 2) return decide_two_process(task);

  SolvabilityResult result;

  // Four or more processes: the paper's splitting characterization is
  // three-process-specific (its §7 future work), so only the generic
  // engines run — the connectivity CSP for impossibility and the direct
  // decision-map search for possibility.
  if (task.num_processes > 3) {
    const ConnectivityCsp csp = connectivity_csp(task);
    if (!csp.feasible && csp.exhausted) {
      result.verdict = Verdict::Unsolvable;
      result.reason = "connectivity obstruction (n-process generic engine): " +
                      csp.detail;
      return result;
    }
  }

  // --- Impossibility side: obstructions on the split task T'. ---
  if (options.use_characterization && task.num_processes == 3) {
    result.characterization =
        std::make_shared<CharacterizationResult>(characterize(task));
    const Task& tp = result.characterization->link_connected;

    result.cor55 = corollary_5_5(result.characterization->canonical);
    result.cor56 = corollary_5_6(result.characterization->canonical);

    const ConnectivityCsp csp = connectivity_csp(tp);
    if (!csp.feasible && csp.exhausted) {
      result.verdict = Verdict::Unsolvable;
      result.via_characterization = true;
      result.reason =
          "post-split connectivity obstruction on T' (Theorem 5.1 + "
          "Corollary 5.5 shape): " +
          csp.detail;
      return result;
    }
    const HomologyObstruction hom = homology_boundary_check(tp);
    if (!hom.feasible && hom.exhausted) {
      result.verdict = Verdict::Unsolvable;
      result.via_characterization = true;
      result.reason =
          "post-split homological obstruction on T' (no continuous map "
          "|I| -> |O'| carried by Δ'): " +
          hom.detail;
      return result;
    }
    if (result.cor55.fires) {
      result.verdict = Verdict::Unsolvable;
      result.via_characterization = true;
      result.reason = "Corollary 5.5 on T*: " + result.cor55.detail;
      return result;
    }
    if (result.cor56.fires) {
      result.verdict = Verdict::Unsolvable;
      result.via_characterization = true;
      result.reason = "Corollary 5.6 on T*: " + result.cor56.detail;
      return result;
    }
  }

  // --- Possibility side: direct chromatic decision-map search. ---
  // Both probes on the original task walk the same subdivision tower and
  // query the same Δ, so one ladder and one image cache serve every radius
  // (and would serve a colorless probe on T too). T' below is a different
  // task (own pool, own Δ), so it gets its own pair.
  // When a probe stops on the node cap instead of exhausting its space, we
  // record exactly which probe and radius were truncated so an Unknown
  // verdict can say what was actually left undecided.
  std::vector<std::string> capped;
  MapSearchOptions chromatic_options;
  chromatic_options.chromatic = true;
  chromatic_options.node_cap = options.node_cap;
  chromatic_options.threads = options.threads;
  DeltaImageCache images;
  if (options.reuse_images) chromatic_options.image_cache = &images;
  SubdivisionLadder ladder(*task.pool, task.input);
  for (int r = 0; r <= options.max_radius; ++r) {
    SubdividedComplex cold;
    const SubdividedComplex* domain;
    if (options.reuse_subdivisions) {
      domain = &ladder.at(r);
    } else {
      cold = chromatic_subdivision(*task.pool, task.input, r);
      domain = &cold;
    }
    MapSearchResult found =
        find_decision_map(*task.pool, *domain, task, chromatic_options);
    if (found.found) {
      result.verdict = Verdict::Solvable;
      result.radius = r;
      result.has_chromatic_witness = true;
      result.witness_domain = *domain;
      result.witness = std::move(found.map);
      result.reason = "chromatic decision map found on Ch^" + std::to_string(r) +
                      "(I) (" + std::to_string(found.nodes_explored) +
                      " search nodes)";
      return result;
    }
    if (!found.exhausted) {
      capped.push_back("chromatic probe at radius " + std::to_string(r));
    }
  }

  // --- Possibility via the characterization: color-agnostic map into T'. ---
  if (options.use_characterization && result.characterization != nullptr) {
    const Task& tp = result.characterization->link_connected;
    MapSearchOptions agnostic;
    agnostic.chromatic = false;
    agnostic.node_cap = options.node_cap;
    agnostic.threads = options.threads;
    DeltaImageCache tp_images;
    if (options.reuse_images) agnostic.image_cache = &tp_images;
    SubdivisionLadder tp_ladder(*tp.pool, tp.input);
    for (int r = 0; r <= options.max_radius; ++r) {
      SubdividedComplex cold;
      const SubdividedComplex* domain;
      if (options.reuse_subdivisions) {
        domain = &tp_ladder.at(r);
      } else {
        cold = chromatic_subdivision(*tp.pool, tp.input, r);
        domain = &cold;
      }
      MapSearchResult found = find_decision_map(*tp.pool, *domain, tp, agnostic);
      if (found.found) {
        result.verdict = Verdict::Solvable;
        result.radius = r;
        result.via_characterization = true;
        result.reason =
            "color-agnostic decision map found on the link-connected task T' "
            "at Ch^" +
            std::to_string(r) +
            "(I); solvable by Theorem 5.1 via the Figure-7 algorithm";
        return result;
      }
      if (!found.exhausted) {
        capped.push_back("T'-agnostic (colorless) probe at radius " +
                         std::to_string(r));
      }
    }
  }

  result.verdict = Verdict::Unknown;
  if (capped.empty()) {
    result.reason = "no decision map up to radius " +
                    std::to_string(options.max_radius) +
                    " and no obstruction found";
  } else {
    std::string which;
    for (const std::string& probe : capped) {
      which += (which.empty() ? "" : "; ") + probe;
    }
    result.reason = "search budget exhausted before a conclusion (node cap " +
                    std::to_string(options.node_cap) + " hit by: " + which + ")";
  }
  return result;
}

}  // namespace trichroma
