#pragma once
// The combined solvability decision procedure.
//
// For three-process tasks the procedure is a sound semi-decision pair wired
// through the paper's characterization (Theorem 5.1):
//
//   1. Impossibility: canonicalize and split (T → T* → T'), then run the
//      decidable obstruction engines on T' — the connectivity CSP (the
//      paper's post-split Corollary 5.5 shape) and the GF(2) homological
//      boundary check (the contractibility-type obstruction). Either one
//      failing certifies unsolvability of T. The paper's literal pre-split
//      Corollaries 5.5/5.6 are also evaluated for reporting.
//   2. Possibility: search for a chromatic decision map δ : Ch^r(I) → O for
//      r = 0, 1, ..., max_radius (a witness is a protocol), and — via the
//      characterization — for a color-agnostic map into T', which by
//      Lemma 5.3 (the Figure-7 algorithm) also yields a protocol.
//
// Existence of a continuous map is undecidable in general, so the ladder
// can return Unknown when every engine is inconclusive at the configured
// radius; all of the paper's examples are decided at r <= 2.
//
// Two-process tasks are decided exactly (Proposition 5.4): solvable iff the
// connectivity CSP is feasible.
//
// Tasks with four or more processes get partial support (the paper's §7
// future work): the generic engines — connectivity CSP for impossibility,
// direct decision-map search (with n-ary simplex constraints) for
// possibility — run, but the splitting characterization does not, so e.g.
// (4,3)-set agreement honestly returns Unknown.

#include <memory>
#include <string>

#include "core/characterization.h"
#include "core/obstructions.h"
#include "solver/map_search.h"
#include "tasks/task.h"

namespace trichroma {

enum class Verdict { Solvable, Unsolvable, Unknown };

const char* to_string(Verdict v);

struct SolvabilityOptions {
  int max_radius = 2;
  std::size_t node_cap = 20'000'000;
  /// Also try the characterization route (split + color-agnostic search)
  /// when the direct chromatic search fails.
  bool use_characterization = true;
  /// Worker threads for every decision-map search (see
  /// MapSearchOptions::threads). 0 = hardware concurrency, 1 = sequential.
  /// The verdict is identical for every thread count.
  int threads = 0;
  /// Memoize Ch^r across the radius ladder (SubdivisionLadder) instead of
  /// recomputing every round from scratch at each radius. Off is only
  /// useful for benchmarking the cold path.
  bool reuse_subdivisions = true;
  /// Share Δ-image complexes across radii and probe modes (DeltaImageCache).
  bool reuse_images = true;
};

struct SolvabilityResult {
  Verdict verdict = Verdict::Unknown;
  std::string reason;

  /// Radius of the found decision map (when Solvable via map search).
  int radius = -1;
  /// True if the verdict came from the T' pipeline rather than directly.
  bool via_characterization = false;

  /// When Solvable via direct chromatic search: the witness map and its
  /// domain (Ch^radius of the task's input complex).
  bool has_chromatic_witness = false;
  SubdividedComplex witness_domain;
  VertexMap witness;

  /// The characterization pipeline output (populated when it was run).
  std::shared_ptr<CharacterizationResult> characterization;
  /// Pre-split corollaries, for reporting.
  CorollaryResult cor55;
  CorollaryResult cor56;
};

/// Decides wait-free solvability of a two- or three-process task.
SolvabilityResult decide_solvability(const Task& task,
                                     const SolvabilityOptions& options = {});

/// Proposition 5.4: exact decision for two-process tasks.
SolvabilityResult decide_two_process(const Task& task);

/// Colorless probe: searches for a color-agnostic decision map on the task
/// itself (not T'). Used to demonstrate the hourglass phenomenon: the
/// colorless ACT condition can hold while the chromatic task is unsolvable.
MapSearchResult colorless_probe(const Task& task, int max_radius,
                                std::size_t node_cap = 20'000'000,
                                int threads = 0);

}  // namespace trichroma
