#pragma once
// The combined solvability decision procedure — a thin façade over the
// engine pipeline (solver/pipeline.h).
//
// For three-process tasks the procedure is a sound semi-decision pair wired
// through the paper's characterization (Theorem 5.1):
//
//   1. Impossibility: canonicalize and split (T → T* → T'), then run the
//      decidable obstruction engines on T' — the connectivity CSP (the
//      paper's post-split Corollary 5.5 shape) and the GF(2) homological
//      boundary check (the contractibility-type obstruction). Either one
//      failing certifies unsolvability of T. The paper's literal pre-split
//      Corollaries 5.5/5.6 are also evaluated for reporting.
//   2. Possibility: search for a chromatic decision map δ : Ch^r(I) → O for
//      r = 0, 1, ..., max_radius (a witness is a protocol), and — via the
//      characterization — for a color-agnostic map into T', which by
//      Lemma 5.3 (the Figure-7 algorithm) also yields a protocol.
//
// With >= 2 threads the two sides race and the first conclusive engine
// cancels the other side; the verdict, reason, radius and
// via_characterization are identical for every thread count (see
// solver/pipeline.h for the determinism contract).
//
// Existence of a continuous map is undecidable in general, so the pipeline
// can return Unknown when every engine is inconclusive at the configured
// radius; all of the paper's examples are decided at r <= 2.
//
// Two-process tasks are decided exactly (Proposition 5.4): solvable iff the
// connectivity CSP is feasible.
//
// Tasks with four or more processes get partial support (the paper's §7
// future work): the generic engines — connectivity CSP for impossibility,
// direct decision-map search (with n-ary simplex constraints) for
// possibility — run, but the splitting characterization does not, so e.g.
// (4,3)-set agreement honestly returns Unknown.

#include <memory>
#include <string>

#include "core/characterization.h"
#include "core/obstructions.h"
#include "solver/map_search.h"
#include "solver/pipeline.h"
#include "tasks/task.h"

namespace trichroma {

struct SolvabilityResult {
  Verdict verdict = Verdict::Unknown;
  std::string reason;

  /// Radius of the found decision map (when Solvable via map search).
  int radius = -1;
  /// True if the verdict came from the T' pipeline rather than directly.
  bool via_characterization = false;

  /// When Solvable via direct chromatic search: the witness map and its
  /// domain (Ch^radius of the task's input complex), shared with the
  /// probe's subdivision ladder rather than deep-copied.
  bool has_chromatic_witness = false;
  std::shared_ptr<const SubdividedComplex> witness_domain;
  VertexMap witness;

  /// The characterization pipeline output (populated when that lane ran to
  /// completion; with >= 2 threads a fast chromatic witness may cancel it).
  /// Its tasks reference their own cloned pool — use
  /// `characterization->canonical.pool` for names, not the original task's.
  std::shared_ptr<CharacterizationResult> characterization;
  /// Pre-split corollaries, for reporting.
  CorollaryResult cor55;
  CorollaryResult cor56;

  /// The full structured pipeline report (per-engine timings, node counts,
  /// cache stats); serialize with io::to_json.
  std::shared_ptr<const PipelineReport> report;
};

/// Decides wait-free solvability of a two- or three-process task.
SolvabilityResult decide_solvability(const Task& task,
                                     const SolvabilityOptions& options = {});

/// Proposition 5.4: exact decision for two-process tasks. Honors the
/// budget in `options` (node cap; the CSP detail lands in the report).
SolvabilityResult decide_two_process(const Task& task,
                                     const SolvabilityOptions& options = {});

/// Colorless probe: searches for a color-agnostic decision map on the task
/// itself (not T'). Used to demonstrate the hourglass phenomenon: the
/// colorless ACT condition can hold while the chromatic task is unsolvable.
/// Implemented as a standalone ProbeEngine invocation honoring every budget
/// knob (node cap, threads, reuse_subdivisions, reuse_images).
MapSearchResult colorless_probe(const Task& task, const SolvabilityOptions& options);
MapSearchResult colorless_probe(const Task& task, int max_radius,
                                std::size_t node_cap = 20'000'000,
                                int threads = 0);

}  // namespace trichroma
