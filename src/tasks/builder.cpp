#include "tasks/builder.h"

namespace trichroma {

Simplex restrict_to_colors(const VertexPool& pool, const Simplex& s,
                           const std::set<Color>& colors) {
  std::vector<VertexId> out;
  for (VertexId v : s) {
    if (colors.count(pool.color(v)) > 0) out.push_back(v);
  }
  return Simplex(std::move(out));
}

CarrierMap downward_closure(
    const VertexPool& pool, const SimplicialComplex& input,
    const std::unordered_map<Simplex, std::vector<Simplex>, SimplexHash>& facet_images) {
  // Step 1: union of restrictions from every containing facet.
  CarrierMap delta;
  input.for_each([&](const Simplex& tau) {
    const std::set<Color> ids = colors_of(pool, tau);
    for (const auto& [facet, images] : facet_images) {
      if (!facet.contains_all(tau)) continue;
      for (const Simplex& rho : images) {
        delta.add(tau, restrict_to_colors(pool, rho, ids));
      }
    }
  });
  // Step 2: a face shared by several facets may have inherited an image
  // that one of its cofaces cannot extend, breaking monotonicity. Prune to
  // the maximal monotone submap: repeatedly drop any image not contained in
  // every coface's image complex.
  bool changed = true;
  while (changed) {
    changed = false;
    input.for_each([&](const Simplex& tau) {
      std::vector<Simplex> kept;
      for (const Simplex& rho : delta.facet_images(tau)) {
        bool consistent = true;
        input.for_each([&](const Simplex& coface) {
          if (!consistent || !coface.contains_all(tau) || coface == tau) return;
          if (!delta.allows(coface, rho)) consistent = false;
        });
        if (consistent) {
          kept.push_back(rho);
        } else {
          changed = true;
        }
      }
      delta.set(tau, std::move(kept));
    });
  }
  return delta;
}

}  // namespace trichroma
