#pragma once
// Helpers for constructing carrier maps.

#include <unordered_map>
#include <vector>

#include "tasks/carrier_map.h"
#include "topology/chromatic.h"

namespace trichroma {

/// Restriction of `s` to its vertices whose colors are in `colors`.
Simplex restrict_to_colors(const VertexPool& pool, const Simplex& s,
                           const std::set<Color>& colors);

/// Extends Δ, given only on the *facets* of `input`, to every face: first by
/// restriction — Δ(τ) = { ρ|ids(τ) : ρ ∈ Δ(σ), σ facet ⊇ τ } — and then by
/// pruning to the maximal monotone submap (an image inherited from one facet
/// may not extend inside another facet containing the same face; such images
/// are dropped until a fixpoint). The result is a valid carrier map whenever
/// every image stays non-empty (Task::validate reports it otherwise). Tasks
/// whose face behaviour is more restrictive than restriction (e.g. the
/// hourglass) must build Δ explicitly instead.
CarrierMap downward_closure(
    const VertexPool& pool, const SimplicialComplex& input,
    const std::unordered_map<Simplex, std::vector<Simplex>, SimplexHash>& facet_images);

}  // namespace trichroma
