#include "tasks/canonical.h"

#include <stdexcept>
#include <unordered_map>

namespace trichroma {

namespace {

/// Pairs the vertices of X and Y by color; X and Y must be chromatic
/// simplices over the same color set.
Simplex product_simplex(VertexPool& pool, const Simplex& x, const Simplex& y) {
  ValuePool& values = pool.values();
  const ValueId tag = values.of_string("io");
  std::unordered_map<Color, VertexId> by_color;
  for (VertexId v : x) by_color.emplace(pool.color(v), v);
  std::vector<VertexId> out;
  out.reserve(y.size());
  for (VertexId w : y) {
    auto it = by_color.find(pool.color(w));
    if (it == by_color.end()) {
      throw std::logic_error("product of simplices with mismatched colors");
    }
    const ValueId paired =
        values.of_tuple({tag, pool.value(it->second), pool.value(w)});
    out.push_back(pool.vertex(pool.color(w), paired));
  }
  return Simplex(std::move(out));
}

}  // namespace

Task canonicalize(const Task& task) {
  Task out;
  out.pool = task.pool;
  out.name = task.name + "*";
  out.num_processes = task.num_processes;
  out.input = task.input;

  VertexPool& pool = *out.pool;
  task.input.for_each([&](const Simplex& x) {
    std::vector<Simplex> images;
    for (const Simplex& y : task.delta.facet_images(x)) {
      Simplex xy = product_simplex(pool, x, y);
      out.output.add(xy);
      images.push_back(std::move(xy));
    }
    out.delta.set(x, std::move(images));
  });
  return out;
}

bool is_canonical_vertex(const VertexPool& pool, VertexId v) {
  const ValuePool& values = pool.values();
  const ValueId val = pool.value(v);
  if (values.kind(val) != ValuePool::Kind::Tuple) return false;
  const auto elems = values.elements(val);
  return elems.size() == 3 && values.kind(elems[0]) == ValuePool::Kind::Str &&
         values.as_string(elems[0]) == "io";
}

VertexId canonical_input_part(VertexPool& pool, VertexId v) {
  if (!is_canonical_vertex(pool, v)) {
    throw std::logic_error("vertex is not in canonical (io, x, y) form");
  }
  const auto elems = pool.values().elements(pool.value(v));
  return pool.vertex(pool.color(v), elems[1]);
}

VertexId canonical_output_part(VertexPool& pool, VertexId v) {
  if (!is_canonical_vertex(pool, v)) {
    throw std::logic_error("vertex is not in canonical (io, x, y) form");
  }
  const auto elems = pool.values().elements(pool.value(v));
  return pool.vertex(pool.color(v), elems[2]);
}

}  // namespace trichroma
