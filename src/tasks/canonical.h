#pragma once
// Canonical form of a task (Section 3 of the paper, Theorem 3.1).
//
// T* = (I, O*, Δ*) requires each process to output its input alongside its
// output: O* is the subcomplex of the product I × O induced by the pairs
// X × Y with Y ∈ Δ(X), and Δ*(X) = { X × Y : Y ∈ Δ(X) }. The key property
// (Claim 1's precondition) is that Δ* is "one-to-one": every output vertex
// of O* has a unique pre-image input vertex, which is what the splitting
// deformation of Section 4 relies on.
//
// A canonical vertex's value is the tagged pair ("io", input-value,
// output-value), so both components are recoverable.

#include "tasks/task.h"

namespace trichroma {

/// Builds the canonical form T* of `task`. The result shares the task's
/// vertex pool. If the task is already canonical it is still re-encoded
/// (idempotent up to the value tagging).
Task canonicalize(const Task& task);

/// True iff `v`'s value carries the canonical ("io", x, y) tagging.
bool is_canonical_vertex(const VertexPool& pool, VertexId v);

/// The input vertex (same color, input component) of a canonical vertex.
VertexId canonical_input_part(VertexPool& pool, VertexId v);

/// The output vertex (same color, output component) of a canonical vertex.
VertexId canonical_output_part(VertexPool& pool, VertexId v);

}  // namespace trichroma
