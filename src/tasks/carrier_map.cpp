#include "tasks/carrier_map.h"

#include <algorithm>

#include "topology/chromatic.h"

namespace trichroma {

namespace {
const std::vector<Simplex> kEmpty;
}

void CarrierMap::add(const Simplex& in, const Simplex& out) {
  auto& list = images_[in];
  if (std::find(list.begin(), list.end(), out) == list.end()) {
    list.push_back(out);
    std::sort(list.begin(), list.end());
  }
}

void CarrierMap::set(const Simplex& in, std::vector<Simplex> out_facets) {
  std::sort(out_facets.begin(), out_facets.end());
  out_facets.erase(std::unique(out_facets.begin(), out_facets.end()),
                   out_facets.end());
  images_[in] = std::move(out_facets);
}

const std::vector<Simplex>& CarrierMap::facet_images(const Simplex& in) const {
  auto it = images_.find(in);
  return it == images_.end() ? kEmpty : it->second;
}

SimplicialComplex CarrierMap::image_complex(const Simplex& in) const {
  SimplicialComplex out;
  for (const Simplex& f : facet_images(in)) out.add(f);
  return out;
}

SimplicialComplex CarrierMap::reachable_output(const SimplicialComplex& input) const {
  SimplicialComplex out;
  input.for_each([&](const Simplex& s) {
    for (const Simplex& f : facet_images(s)) out.add(f);
  });
  return out;
}

bool CarrierMap::allows(const Simplex& in, const Simplex& out) const {
  for (const Simplex& f : facet_images(in)) {
    if (f.contains_all(out)) return true;
  }
  return false;
}

std::vector<Simplex> CarrierMap::domain() const {
  std::vector<Simplex> out;
  out.reserve(images_.size());
  for (const auto& [in, list] : images_) {
    (void)list;
    out.push_back(in);
  }
  std::sort(out.begin(), out.end(),
            [](const Simplex& a, const Simplex& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return out;
}

std::vector<std::string> CarrierMap::validate(const VertexPool& pool,
                                              const SimplicialComplex& input,
                                              bool relax_vertex_monotonicity) const {
  std::vector<std::string> errors;
  input.for_each([&](const Simplex& sigma) {
    const auto& facets = facet_images(sigma);
    if (facets.empty()) {
      errors.push_back("Δ undefined or empty on input " + sigma.to_string(pool));
      return;
    }
    for (const Simplex& tau : facets) {
      if (tau.dim() != sigma.dim()) {
        errors.push_back("Δ(" + sigma.to_string(pool) + ") contains " +
                         tau.to_string(pool) + " of wrong dimension");
      }
      if (colors_of(pool, tau) != colors_of(pool, sigma)) {
        errors.push_back("Δ(" + sigma.to_string(pool) + ") contains " +
                         tau.to_string(pool) + " with mismatched colors");
      }
    }
  });
  // Monotonicity: Δ(σ') ⊆ Δ(σ) as complexes, for every face σ' ⊂ σ.
  input.for_each([&](const Simplex& sigma) {
    if (sigma.size() < 2) return;
    const SimplicialComplex image = image_complex(sigma);
    for (const Simplex& face : sigma.faces()) {
      if (face == sigma) continue;
      if (relax_vertex_monotonicity && face.size() == 1) continue;
      for (const Simplex& tau : facet_images(face)) {
        if (!image.contains(tau)) {
          errors.push_back("Δ not monotone: Δ(" + face.to_string(pool) +
                           ") ∋ " + tau.to_string(pool) + " ∉ Δ(" +
                           sigma.to_string(pool) + ")");
        }
      }
    }
  });
  return errors;
}

bool CarrierMap::operator==(const CarrierMap& other) const {
  if (domain() != other.domain()) return false;
  for (const auto& [in, list] : images_) {
    if (other.facet_images(in) != list) return false;
  }
  return true;
}

}  // namespace trichroma
