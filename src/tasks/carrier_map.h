#pragma once
// CarrierMap: the input/output specification Δ of a task.
//
// Δ maps every simplex σ of the input complex to a pure subcomplex of the
// output complex of the same dimension and with the same colors (ids). We
// store, per input simplex, the list of *facets* of Δ(σ) (output simplices
// of the same dimension as σ); the full image complex is their closure.
//
// Validity (checked by `validate`):
//  - chromatic: ids(τ) == ids(σ) for every τ ∈ Δ(σ)'s facet list;
//  - monotone:  σ' ⊆ σ  ⇒  Δ(σ') ⊆ Δ(σ) as subcomplexes;
//  - every simplex of the input complex has a non-empty image.

#include <string>
#include <unordered_map>
#include <vector>

#include "topology/complex.h"
#include "topology/simplex.h"
#include "topology/vertex.h"

namespace trichroma {

class CarrierMap {
 public:
  /// Adds `out` (an output simplex with dim == in.dim()) to Δ(in)'s facets.
  void add(const Simplex& in, const Simplex& out);
  /// Replaces Δ(in)'s facet list.
  void set(const Simplex& in, std::vector<Simplex> out_facets);

  bool defined(const Simplex& in) const { return images_.count(in) > 0; }

  /// The facet list of Δ(in) (empty if undefined), in deterministic order.
  const std::vector<Simplex>& facet_images(const Simplex& in) const;

  /// Δ(in) as a closure-complete complex.
  SimplicialComplex image_complex(const Simplex& in) const;

  /// Union of Δ(σ) over all simplices σ of `input` — the reachable part of
  /// the output complex.
  SimplicialComplex reachable_output(const SimplicialComplex& input) const;

  /// True iff `out` is a simplex of the complex Δ(in).
  bool allows(const Simplex& in, const Simplex& out) const;

  /// All input simplices on which Δ is defined, in deterministic order.
  std::vector<Simplex> domain() const;

  /// Validates carrier-map structure over the given input complex; returns
  /// a list of human-readable violations (empty = valid). With
  /// `relax_vertex_monotonicity`, monotonicity violations whose face is a
  /// single vertex are tolerated: the splitting deformation of Section 4
  /// gives solo deciders one copy per link component, which containing
  /// simplices need not all carry (the paper's construction shares this).
  std::vector<std::string> validate(const VertexPool& pool,
                                    const SimplicialComplex& input,
                                    bool relax_vertex_monotonicity = false) const;

  bool operator==(const CarrierMap& other) const;

 private:
  std::unordered_map<Simplex, std::vector<Simplex>, SimplexHash> images_;
};

}  // namespace trichroma
