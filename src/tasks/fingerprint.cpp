#include "tasks/fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <tuple>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace trichroma {

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), self-contained — the repo has no crypto dependency,
// and the store's integrity story wants a real collision-resistant digest,
// not a mixing hash.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void sha256_block(std::uint32_t state[8], const std::uint8_t block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace

std::array<std::uint8_t, 32> sha256(const void* data, std::size_t size) {
  std::uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t remaining = size;
  while (remaining >= 64) {
    sha256_block(state, bytes);
    bytes += 64;
    remaining -= 64;
  }
  // Final block(s): message || 0x80 || zero pad || 64-bit bit length.
  std::uint8_t tail[128] = {0};
  std::memcpy(tail, bytes, remaining);
  tail[remaining] = 0x80;
  const std::size_t tail_len = remaining + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(size) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 1 - i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  sha256_block(state, tail);
  if (tail_len == 128) sha256_block(state, tail + 64);
  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
  return out;
}

std::string TaskFingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint8_t b : bytes) {
    out += digits[b >> 4];
    out += digits[b & 0xf];
  }
  return out;
}

std::string TaskFingerprint::hex_prefix(std::size_t n) const {
  std::string full = hex();
  return full.substr(0, std::min(n, full.size()));
}

int CanonicalLabeling::index_of(VertexId v) const {
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (order[k] == v) return static_cast<int>(k);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Canonical labeling: refinement + individualization over the task structure.
// ---------------------------------------------------------------------------

namespace {

/// The task flattened to local dense indices: everything the labeling looks
/// at, and nothing pool-dependent beyond the (discarded) local index order.
struct Structure {
  int num_processes = 0;
  std::vector<VertexId> verts;  // local index -> VertexId (sorted by raw id)
  std::vector<Color> color;     // per local index
  std::vector<std::uint8_t> in_input;
  std::vector<std::uint8_t> in_output;
  std::vector<std::vector<int>> ifacets;  // sorted local-index lists
  std::vector<std::vector<int>> ofacets;
  struct DeltaEntry {
    std::vector<int> src;                  // sorted
    std::vector<std::vector<int>> images;  // each sorted; list sorted
  };
  std::vector<DeltaEntry> deltas;
  // Incidence lists per local vertex: indices into ifacets / ofacets /
  // deltas (src side) / (delta idx, image idx) pairs for the image side.
  std::vector<std::vector<int>> inc_ifacet;
  std::vector<std::vector<int>> inc_ofacet;
  std::vector<std::vector<int>> inc_delta_src;
  std::vector<std::vector<std::pair<int, int>>> inc_delta_img;

  int n() const { return static_cast<int>(verts.size()); }
};

std::vector<int> to_locals(const std::unordered_map<VertexId, int, VertexIdHash>& local,
                           const Simplex& s) {
  std::vector<int> out;
  out.reserve(s.size());
  for (VertexId v : s) out.push_back(local.at(v));
  std::sort(out.begin(), out.end());
  return out;
}

Structure build_structure(const Task& task) {
  Structure st;
  st.num_processes = task.num_processes;

  std::unordered_map<VertexId, int, VertexIdHash> local;
  std::vector<VertexId> all = task.input.vertex_ids();
  for (VertexId v : task.output.vertex_ids()) all.push_back(v);
  std::sort(all.begin(), all.end(),
            [](VertexId a, VertexId b) { return raw(a) < raw(b); });
  all.erase(std::unique(all.begin(), all.end()), all.end());
  st.verts = std::move(all);
  for (std::size_t i = 0; i < st.verts.size(); ++i) {
    local.emplace(st.verts[i], static_cast<int>(i));
  }
  const int n = st.n();
  st.color.resize(n);
  st.in_input.assign(n, 0);
  st.in_output.assign(n, 0);
  for (int i = 0; i < n; ++i) st.color[i] = task.pool->color(st.verts[i]);
  for (VertexId v : task.input.vertex_ids()) st.in_input[local.at(v)] = 1;
  for (VertexId v : task.output.vertex_ids()) st.in_output[local.at(v)] = 1;

  for (const Simplex& f : task.input.facets()) {
    st.ifacets.push_back(to_locals(local, f));
  }
  for (const Simplex& f : task.output.facets()) {
    st.ofacets.push_back(to_locals(local, f));
  }
  for (const Simplex& sigma : task.delta.domain()) {
    Structure::DeltaEntry entry;
    entry.src = to_locals(local, sigma);
    for (const Simplex& tau : task.delta.facet_images(sigma)) {
      entry.images.push_back(to_locals(local, tau));
    }
    std::sort(entry.images.begin(), entry.images.end());
    st.deltas.push_back(std::move(entry));
  }

  st.inc_ifacet.resize(n);
  st.inc_ofacet.resize(n);
  st.inc_delta_src.resize(n);
  st.inc_delta_img.resize(n);
  for (std::size_t f = 0; f < st.ifacets.size(); ++f) {
    for (int v : st.ifacets[f]) st.inc_ifacet[v].push_back(static_cast<int>(f));
  }
  for (std::size_t f = 0; f < st.ofacets.size(); ++f) {
    for (int v : st.ofacets[f]) st.inc_ofacet[v].push_back(static_cast<int>(f));
  }
  for (std::size_t d = 0; d < st.deltas.size(); ++d) {
    for (int v : st.deltas[d].src) {
      st.inc_delta_src[v].push_back(static_cast<int>(d));
    }
    for (std::size_t t = 0; t < st.deltas[d].images.size(); ++t) {
      for (int v : st.deltas[d].images[t]) {
        st.inc_delta_img[v].emplace_back(static_cast<int>(d),
                                         static_cast<int>(t));
      }
    }
  }
  return st;
}

void append_int(std::string& out, long long v) {
  char buf[24];
  const int len = std::snprintf(buf, sizeof(buf), "%lld", v);
  out.append(buf, static_cast<std::size_t>(len));
}

/// Order-sensitive 64-bit mixer (splitmix-style, pure uint64 arithmetic, so
/// the value is identical on every platform). Used to combine a tag with a
/// value, or a pair of values, where order matters.
std::uint64_t hash_mix(std::uint64_t h, std::uint64_t x) {
  x *= 0x9e3779b97f4a7c15ull;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ull;
  h ^= x;
  return h * 0x100000001b3ull + 0x2545f4914f6cdd1dull;
}

/// Strong stateless finalizer (splitmix64). Multiset folds sum mix64() of
/// each element: commutative, so no sorting is needed to make the fold
/// order-independent, and the heavy mixing keeps sums of distinct multisets
/// from colliding by accident.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The partition search state: an ordered list of cells over local indices.
/// Cell order is itself an invariant (initial cells sorted by (color, I, O)
/// membership, fragments ordered by signature), so cell ids can appear
/// inside signatures without breaking isomorphism invariance.
struct Partition {
  std::vector<std::vector<int>> cells;
  std::vector<int> cell_of;

  bool discrete() const {
    for (const auto& c : cells) {
      if (c.size() > 1) return false;
    }
    return true;
  }
  void reindex() {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (int v : cells[c]) cell_of[v] = static_cast<int>(c);
    }
  }
};

/// One refinement pass to fixpoint. Signatures are 64-bit hashes of
/// invariant data (cell ids of incident facets and Δ rows): every input to
/// the hash is itself invariant under chromatic isomorphism, so isomorphic
/// tasks refine — and order fragments — identically. Multisets (cell ids
/// within a facet, images within a Δ row, incidence tokens at a vertex)
/// fold commutatively — a sum of mix64() values — so nothing is sorted in
/// the hot loop; on subdivided loop-agreement tasks the Δ-image token sorts
/// were most of the per-round cost. A hash collision can only MERGE two
/// distinguishable fragments, never order them wrongly; the merged cell is
/// separated later by individualization, and the canonical form is still
/// the minimum over full `encode()` strings at the leaves — so a collision
/// costs search nodes, not correctness. (The original implementation kept
/// full signature strings; rendering every Δ row per round made
/// large-output tasks ~500× slower for no extra safety.)
void refine(const Structure& st, Partition& p, std::size_t* rounds) {
  const int n = st.n();
  std::vector<std::uint64_t> ifacet_hash(st.ifacets.size());
  std::vector<std::uint64_t> ofacet_hash(st.ofacets.size());
  std::vector<std::uint64_t> delta_hash(st.deltas.size());
  std::vector<std::vector<std::uint64_t>> image_hash(st.deltas.size());
  std::vector<std::uint64_t> sig(static_cast<std::size_t>(n));
  const auto hash_cells = [&p](const std::vector<int>& locals,
                               std::uint64_t tag) {
    std::uint64_t h = mix64(hash_mix(tag, locals.size()));
    for (int v : locals) {
      h += mix64(hash_mix(tag, static_cast<std::uint64_t>(
                                   p.cell_of[static_cast<std::size_t>(v)])));
    }
    return h;
  };
  for (;;) {
    if (rounds != nullptr) ++*rounds;
    // Per-round hashes of the shared objects, at current granularity.
    for (std::size_t f = 0; f < st.ifacets.size(); ++f) {
      ifacet_hash[f] = hash_cells(st.ifacets[f], 'I');
    }
    for (std::size_t f = 0; f < st.ofacets.size(); ++f) {
      ofacet_hash[f] = hash_cells(st.ofacets[f], 'O');
    }
    for (std::size_t d = 0; d < st.deltas.size(); ++d) {
      image_hash[d].clear();
      std::uint64_t h = mix64(hash_cells(st.deltas[d].src, 'D'));
      for (const auto& img : st.deltas[d].images) {
        const std::uint64_t ih = hash_cells(img, 'M');
        image_hash[d].push_back(ih);
        h += mix64(ih);
      }
      delta_hash[d] = h;
    }
    for (int v = 0; v < n; ++v) {
      std::uint64_t s = mix64(hash_mix(
          'V', static_cast<std::uint64_t>(p.cell_of[static_cast<std::size_t>(v)])));
      for (int f : st.inc_ifacet[v]) {
        s += mix64(hash_mix('I', ifacet_hash[static_cast<std::size_t>(f)]));
      }
      for (int f : st.inc_ofacet[v]) {
        s += mix64(hash_mix('O', ofacet_hash[static_cast<std::size_t>(f)]));
      }
      for (int d : st.inc_delta_src[v]) {
        s += mix64(hash_mix('S', delta_hash[static_cast<std::size_t>(d)]));
      }
      for (const auto& [d, t] : st.inc_delta_img[v]) {
        s += mix64(
            hash_mix(hash_mix('T', delta_hash[static_cast<std::size_t>(d)]),
                     image_hash[static_cast<std::size_t>(d)]
                               [static_cast<std::size_t>(t)]));
      }
      sig[static_cast<std::size_t>(v)] = s;
    }
    // Split every cell by signature; fragments ordered by signature value.
    std::vector<std::vector<int>> next;
    bool split = false;
    for (const auto& cell : p.cells) {
      if (cell.size() == 1) {
        next.push_back(cell);
        continue;
      }
      std::vector<int> members = cell;
      std::sort(members.begin(), members.end(), [&sig](int a, int b) {
        return sig[static_cast<std::size_t>(a)] < sig[static_cast<std::size_t>(b)];
      });
      std::vector<int> frag;
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (!frag.empty() && sig[static_cast<std::size_t>(members[i])] !=
                                 sig[static_cast<std::size_t>(frag.front())]) {
          next.push_back(frag);
          frag.clear();
          split = true;
        }
        frag.push_back(members[i]);
      }
      if (!frag.empty()) {
        if (frag.size() != cell.size()) split = true;
        next.push_back(frag);
      }
    }
    p.cells = std::move(next);
    p.reindex();
    if (!split) return;
  }
}

/// Serializes the whole structure under a complete labeling. `pos[v]` is the
/// canonical index of local vertex v. Lexicographically minimal encoding
/// wins; the format is versioned through kFingerprintDomain.
std::string encode(const Structure& st, const std::vector<int>& pos) {
  std::string out = "n=";
  append_int(out, st.num_processes);
  out += ";v=";
  append_int(out, st.n());
  out += "\nV:";
  // Vertex attributes in canonical order.
  std::vector<int> inv(pos.size());
  for (std::size_t v = 0; v < pos.size(); ++v) {
    inv[static_cast<std::size_t>(pos[v])] = static_cast<int>(v);
  }
  for (std::size_t k = 0; k < inv.size(); ++k) {
    const int v = inv[k];
    if (k > 0) out += ',';
    append_int(out, st.color[static_cast<std::size_t>(v)]);
    if (st.in_input[static_cast<std::size_t>(v)]) out += 'i';
    if (st.in_output[static_cast<std::size_t>(v)]) out += 'o';
  }
  auto mapped = [&pos](const std::vector<int>& locals) {
    std::vector<int> out_idx;
    out_idx.reserve(locals.size());
    for (int v : locals) out_idx.push_back(pos[static_cast<std::size_t>(v)]);
    std::sort(out_idx.begin(), out_idx.end());
    return out_idx;
  };
  auto render_list = [](std::string& dst, const std::vector<int>& idx) {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      if (i > 0) dst += ',';
      append_int(dst, idx[i]);
    }
  };
  auto emit_facets = [&](const char* tag,
                         const std::vector<std::vector<int>>& facets) {
    std::vector<std::vector<int>> rows;
    rows.reserve(facets.size());
    for (const auto& f : facets) rows.push_back(mapped(f));
    std::sort(rows.begin(), rows.end());
    out += '\n';
    out += tag;
    out += ':';
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) out += '|';
      render_list(out, rows[i]);
    }
  };
  emit_facets("I", st.ifacets);
  emit_facets("O", st.ofacets);
  // Δ entries sorted by mapped source simplex (sources are unique).
  std::vector<std::pair<std::vector<int>, std::vector<std::vector<int>>>> rows;
  rows.reserve(st.deltas.size());
  for (const auto& d : st.deltas) {
    std::vector<std::vector<int>> images;
    images.reserve(d.images.size());
    for (const auto& img : d.images) images.push_back(mapped(img));
    std::sort(images.begin(), images.end());
    rows.emplace_back(mapped(d.src), std::move(images));
  }
  std::sort(rows.begin(), rows.end());
  out += "\nD:";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ';';
    render_list(out, rows[i].first);
    out += '>';
    for (std::size_t t = 0; t < rows[i].second.size(); ++t) {
      if (t > 0) out += '|';
      render_list(out, rows[i].second[t]);
    }
  }
  out += '\n';
  return out;
}

struct SearchState {
  const Structure* st = nullptr;
  std::string best_encoding;
  std::vector<int> best_pos;
  bool have_best = false;
  FingerprintStats stats;
  /// Automorphism generators discovered so far, as local-index permutations.
  /// Whenever a leaf's encoding ties the current best, the permutation
  /// mapping the best labeling onto the tied one preserves every relation
  /// the encoding serializes — i.e. it is an automorphism of the task.
  std::vector<std::vector<int>> automorphisms;
  /// Vertices individualized along the current search path (root first).
  std::vector<int> path;
  std::vector<int> uf;  // union-find scratch for orbit pruning
};

constexpr std::size_t kLeafBudget = 1'000'000;

/// True when some already-explored sibling `u` in `tried` lies in the same
/// orbit as `v` under the subgroup generated by discovered automorphisms
/// that fix the current search path pointwise. Such a γ maps the v-subtree's
/// labelings bijectively onto the u-subtree's with identical encodings, so
/// exploring v cannot improve the minimum. This is what caps high-symmetry
/// tasks (renaming on 5 names has a 120-element automorphism group) at a
/// handful of leaves instead of one leaf per group element.
bool orbit_pruned(SearchState& state, const std::vector<int>& tried, int v) {
  if (state.automorphisms.empty() || tried.empty()) return false;
  const int n = state.st->n();
  state.uf.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) state.uf[static_cast<std::size_t>(i)] = i;
  const auto find = [&state](int x) {
    std::vector<int>& uf = state.uf;
    while (uf[static_cast<std::size_t>(x)] != x) {
      uf[static_cast<std::size_t>(x)] =
          uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(x)])];
      x = uf[static_cast<std::size_t>(x)];
    }
    return x;
  };
  bool any = false;
  for (const std::vector<int>& g : state.automorphisms) {
    bool fixes_path = true;
    for (int pv : state.path) {
      if (g[static_cast<std::size_t>(pv)] != pv) {
        fixes_path = false;
        break;
      }
    }
    if (!fixes_path) continue;
    any = true;
    for (int x = 0; x < n; ++x) {
      const int a = find(x);
      const int b = find(g[static_cast<std::size_t>(x)]);
      if (a != b) state.uf[static_cast<std::size_t>(a)] = b;
    }
  }
  if (!any) return false;
  const int root = find(v);
  for (int u : tried) {
    if (find(u) == root) return true;
  }
  return false;
}

void search(SearchState& state, Partition p) {
  refine(*state.st, p, &state.stats.refinement_rounds);
  // First non-singleton cell (the target-cell choice is an invariant of the
  // partition, so isomorphic tasks branch the same way).
  int target = -1;
  for (std::size_t c = 0; c < p.cells.size(); ++c) {
    if (p.cells[c].size() > 1) {
      target = static_cast<int>(c);
      break;
    }
  }
  if (target < 0) {
    // Discrete partition: a complete labeling.
    if (++state.stats.leaves > kLeafBudget) {
      throw std::runtime_error(
          "fingerprint: canonical-labeling search budget exceeded (task "
          "automorphism group too large)");
    }
    std::vector<int> pos(p.cell_of);
    std::string enc = encode(*state.st, pos);
    if (!state.have_best || enc < state.best_encoding) {
      state.best_encoding = std::move(enc);
      state.best_pos = std::move(pos);
      state.have_best = true;
    } else if (enc == state.best_encoding) {
      // Tied leaf: harvest the automorphism mapping the best labeling onto
      // this one (γ sends best's vertex at canonical slot k to ours).
      const std::size_t n = pos.size();
      std::vector<int> inv_cur(n);
      for (std::size_t v = 0; v < n; ++v) {
        inv_cur[static_cast<std::size_t>(pos[v])] = static_cast<int>(v);
      }
      std::vector<int> gamma(n);
      bool identity = true;
      for (std::size_t v = 0; v < n; ++v) {
        gamma[v] = inv_cur[static_cast<std::size_t>(state.best_pos[v])];
        if (gamma[v] != static_cast<int>(v)) identity = false;
      }
      if (!identity) {
        state.automorphisms.push_back(std::move(gamma));
        ++state.stats.automorphism_generators;
      }
    }
    return;
  }
  // Individualize each member of the target cell in turn: {v} becomes its
  // own cell immediately before the remainder.
  const std::vector<int> members = p.cells[static_cast<std::size_t>(target)];
  std::vector<int> tried;
  tried.reserve(members.size());
  for (int v : members) {
    // Re-test per member: generators discovered inside earlier siblings'
    // subtrees prune later siblings in this very loop.
    if (orbit_pruned(state, tried, v)) {
      ++state.stats.orbit_prunes;
      continue;
    }
    tried.push_back(v);
    ++state.stats.backtrack_nodes;
    Partition child;
    child.cell_of.assign(p.cell_of.size(), 0);
    child.cells.reserve(p.cells.size() + 1);
    for (std::size_t c = 0; c < p.cells.size(); ++c) {
      if (static_cast<int>(c) != target) {
        child.cells.push_back(p.cells[c]);
        continue;
      }
      child.cells.push_back({v});
      std::vector<int> rest;
      rest.reserve(members.size() - 1);
      for (int u : members) {
        if (u != v) rest.push_back(u);
      }
      child.cells.push_back(std::move(rest));
    }
    child.reindex();
    state.path.push_back(v);
    search(state, std::move(child));
    state.path.pop_back();
  }
}

}  // namespace

FingerprintResult fingerprint_task(const Task& task) {
  TRI_SPAN("tasks/fingerprint");
  static obs::Counter& runs =
      obs::MetricsRegistry::global().counter("fingerprint.runs");
  runs.add();

  const Structure st = build_structure(task);
  SearchState state;
  state.st = &st;
  state.stats.vertices = static_cast<std::size_t>(st.n());

  // Initial partition: cells keyed by (color, in I, in O), sorted by key —
  // colors are fixed points of chromatic isomorphism, so they may seed the
  // order directly.
  std::vector<int> locals(static_cast<std::size_t>(st.n()));
  for (int i = 0; i < st.n(); ++i) locals[static_cast<std::size_t>(i)] = i;
  std::stable_sort(locals.begin(), locals.end(), [&st](int a, int b) {
    const auto key = [&st](int v) {
      return std::make_tuple(st.color[static_cast<std::size_t>(v)],
                             st.in_input[static_cast<std::size_t>(v)],
                             st.in_output[static_cast<std::size_t>(v)]);
    };
    return key(a) < key(b);
  });
  Partition p;
  p.cell_of.assign(static_cast<std::size_t>(st.n()), 0);
  for (int v : locals) {
    const auto key = [&st](int u) {
      return std::make_tuple(st.color[static_cast<std::size_t>(u)],
                             st.in_input[static_cast<std::size_t>(u)],
                             st.in_output[static_cast<std::size_t>(u)]);
    };
    if (p.cells.empty() || key(p.cells.back().front()) != key(v)) {
      p.cells.push_back({});
    }
    p.cells.back().push_back(v);
  }
  p.reindex();

  search(state, std::move(p));

  FingerprintResult out;
  out.stats = state.stats;
  out.labeling.encoding = std::move(state.best_encoding);
  out.labeling.order.resize(state.best_pos.size());
  for (std::size_t v = 0; v < state.best_pos.size(); ++v) {
    out.labeling.order[static_cast<std::size_t>(state.best_pos[v])] =
        st.verts[v];
  }
  std::string preimage = kFingerprintDomain;
  preimage += '\n';
  preimage += out.labeling.encoding;
  out.fingerprint.bytes = sha256(preimage.data(), preimage.size());
  return out;
}

TaskFingerprint fingerprint_of(const Task& task) {
  return fingerprint_task(task).fingerprint;
}

}  // namespace trichroma
