#pragma once
// Canonical task fingerprints: a color-respecting canonical labeling of a
// Task (I, O, Δ) and a stable 256-bit content hash of the labeled structure.
//
// Two tasks receive the same fingerprint iff they are *chromatically
// isomorphic*: there is a bijection of their vertices that preserves colors,
// maps input complex onto input complex and output complex onto output
// complex, and commutes with Δ. The paper's solvability characterization is
// invariant under exactly this relation, which makes the fingerprint the
// theoretically correct key for the content-addressed verdict store
// (io/store.h): isomorphic submissions from different users collapse onto
// one cache entry. Vertex *values* and the task *name* are deliberately not
// part of the invariant — only colors and incidence structure are.
//
// NOTE this is a different notion from tasks/canonical.h: `canonicalize`
// builds the paper's T* construction (Section 3, a new task whose outputs
// carry their inputs), while this module picks a canonical *ordering of the
// vertices of the task itself*. The two never interact.
//
// Algorithm: iterated partition refinement with backtracking over vertex
// orderings. Colors (and input/output membership) seed the initial
// partition and are never permuted; refinement splits cells by invariant
// signatures built from facet and Δ incidence; remaining ties are broken by
// individualizing each vertex of the first non-singleton cell in turn and
// keeping the labeling whose serialized encoding is lexicographically
// minimal. Tasks in this codebase are small (tens to a few hundred
// vertices), and refinement collapses all but genuine automorphisms, so the
// backtracking tree stays tiny (it is bounded below by the automorphism
// group, e.g. 3 leaves for the pinwheel's rotational symmetry).
//
// The hash is SHA-256 over a versioned domain string plus the canonical
// encoding; bump kFingerprintDomain whenever the encoding changes so stale
// store entries miss instead of aliasing.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tasks/task.h"

namespace trichroma {

/// Versioned hash-domain prefix; part of every fingerprint preimage.
inline constexpr char kFingerprintDomain[] = "trichroma.task-fingerprint/1";

/// A 256-bit task fingerprint (SHA-256 digest, big-endian byte order).
struct TaskFingerprint {
  std::array<std::uint8_t, 32> bytes{};

  /// 64 lowercase hex characters.
  std::string hex() const;
  /// The first `n` hex characters (store shard prefix).
  std::string hex_prefix(std::size_t n = 2) const;

  bool operator==(const TaskFingerprint&) const = default;
  bool operator<(const TaskFingerprint& other) const {
    return bytes < other.bytes;
  }
};

struct TaskFingerprintHash {
  std::size_t operator()(const TaskFingerprint& fp) const noexcept {
    std::size_t h = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      h = (h << 8) | fp.bytes[i];
    }
    return h;
  }
};

/// The canonical labeling underlying a fingerprint. `order[k]` is the task
/// vertex assigned canonical index k; the index space is shared by every
/// chromatically isomorphic task, which is what lets store artifacts
/// (io/store.h) serialized against one task be reloaded against another.
struct CanonicalLabeling {
  /// Task vertices (input ∪ output) in canonical order.
  std::vector<VertexId> order;
  /// The canonical byte encoding of the task structure — the fingerprint's
  /// hash preimage (minus the domain prefix). Identical across isomorphic
  /// tasks.
  std::string encoding;

  /// Canonical index of `v`; -1 when `v` is not a task vertex.
  int index_of(VertexId v) const;
};

/// Cost/shape telemetry of one canonical-labeling run (CLI `fingerprint`
/// and the cache bench surface these).
struct FingerprintStats {
  std::size_t vertices = 0;
  std::size_t refinement_rounds = 0;
  /// Individualization branches explored (0 when refinement alone
  /// discretized the partition).
  std::size_t backtrack_nodes = 0;
  /// Complete labelings compared at the leaves (>= 1). Automorphism orbit
  /// pruning keeps this near the number of genuinely distinct labelings
  /// rather than one leaf per automorphism-group element.
  std::size_t leaves = 0;
  /// Non-identity automorphism generators harvested from tied leaves.
  std::size_t automorphism_generators = 0;
  /// Branches skipped because a sibling in the same automorphism orbit was
  /// already explored.
  std::size_t orbit_prunes = 0;
};

struct FingerprintResult {
  TaskFingerprint fingerprint;
  CanonicalLabeling labeling;
  FingerprintStats stats;
};

/// Canonically labels `task` and hashes the encoding. Deterministic, and
/// invariant under chromatic isomorphism (vertex relabelings that preserve
/// colors) and under the insertion order of simplices and Δ entries.
FingerprintResult fingerprint_task(const Task& task);

/// Convenience: just the fingerprint.
TaskFingerprint fingerprint_of(const Task& task);

/// SHA-256 of `data` (exposed for the store's integrity checks and tests).
std::array<std::uint8_t, 32> sha256(const void* data, std::size_t size);

}  // namespace trichroma
