#include "tasks/task.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "topology/chromatic.h"
#include "topology/compiled.h"
#include "topology/graph.h"

namespace trichroma {

std::vector<std::string> Task::validate(bool relax_vertex_monotonicity) const {
  std::vector<std::string> errors;
  if (pool == nullptr) {
    errors.push_back("task has no vertex pool");
    return errors;
  }
  const int expect_dim = num_processes - 1;
  if (input.dimension() != expect_dim) {
    errors.push_back("input complex has dimension " +
                     std::to_string(input.dimension()) + ", expected " +
                     std::to_string(expect_dim));
  }
  if (output.dimension() != expect_dim) {
    errors.push_back("output complex has dimension " +
                     std::to_string(output.dimension()) + ", expected " +
                     std::to_string(expect_dim));
  }
  if (!is_chromatic_complex(*pool, input)) {
    errors.push_back("input complex is not chromatic");
  }
  if (!is_chromatic_complex(*pool, output)) {
    errors.push_back("output complex is not chromatic");
  }
  for (std::string& e : delta.validate(*pool, input, relax_vertex_monotonicity)) {
    errors.push_back(std::move(e));
  }
  // Image simplices must exist in the output complex, and the output complex
  // must be fully reachable.
  input.for_each([&](const Simplex& sigma) {
    for (const Simplex& tau : delta.facet_images(sigma)) {
      if (!output.contains(tau)) {
        errors.push_back("Δ(" + sigma.to_string(*pool) + ") ∋ " +
                         tau.to_string(*pool) + " missing from output complex");
      }
    }
  });
  const SimplicialComplex reachable = delta.reachable_output(input);
  if (!(reachable == output)) {
    errors.push_back("output complex is not exactly the reachable part ∪σ Δ(σ)");
  }
  return errors;
}

bool Task::is_canonical() const {
  // Canonicity = Δ is "one-to-one" (Section 3): an output simplex may be a
  // facet image of at most one input simplex (of its own dimension). The
  // images of distinct inputs may still share lower-dimensional faces, which
  // is exactly the allowance the paper makes for σ1 ∩ σ2 ≠ ∅.
  std::unordered_map<Simplex, Simplex, SimplexHash> owner;
  bool ok = true;
  input.for_each([&](const Simplex& tau) {
    for (const Simplex& rho : delta.facet_images(tau)) {
      auto [it, inserted] = owner.emplace(rho, tau);
      if (!inserted && !(it->second == tau)) ok = false;
    }
  });
  return ok;
}

bool Task::is_link_connected() const {
  const int top = input.dimension();
  for (const Simplex& sigma : input.simplices(top)) {
    const auto image = CompiledComplex::compile(delta.image_complex(sigma));
    const auto nv = static_cast<CompiledComplex::Local>(image->num_vertices());
    for (CompiledComplex::Local y = 0; y < nv; ++y) {
      if (!image->link_empty(y) && !image->link_connected(y)) return false;
    }
  }
  return true;
}

std::string Task::summary() const {
  std::string out = "task '" + name + "': " + std::to_string(num_processes) +
                    " processes\n";
  out += "  input:  " + std::to_string(input.count(0)) + " vertices, " +
         std::to_string(input.count(1)) + " edges, " +
         std::to_string(input.count(2)) + " triangles\n";
  out += "  output: " + std::to_string(output.count(0)) + " vertices, " +
         std::to_string(output.count(1)) + " edges, " +
         std::to_string(output.count(2)) + " triangles\n";
  out += std::string("  canonical: ") + (is_canonical() ? "yes" : "no") +
         ", link-connected: " + (is_link_connected() ? "yes" : "no") + "\n";
  return out;
}

Task clone_task(const Task& task) {
  Task out;
  out.name = task.name;
  out.num_processes = task.num_processes;
  out.pool = std::make_shared<VertexPool>();

  // Replay the value pool in id order. Tuple/Set children always have lower
  // ids than their parents, and a deduplicated pool replayed in order never
  // re-interns an existing entry, so every value keeps its id.
  const ValuePool& src = task.pool->values();
  ValuePool& dst = out.pool->values();
  for (std::uint32_t i = 0; i < src.size(); ++i) {
    const ValueId id{i};
    ValueId copied{};
    switch (src.kind(id)) {
      case ValuePool::Kind::Int:
        copied = dst.of_int(src.as_int(id));
        break;
      case ValuePool::Kind::Str:
        copied = dst.of_string(src.as_string(id));
        break;
      case ValuePool::Kind::Tuple:
        copied = dst.of_tuple(src.elements(id));
        break;
      case ValuePool::Kind::Set: {
        const auto elems = src.elements(id);
        copied = dst.of_set(std::vector<ValueId>(elems.begin(), elems.end()));
        break;
      }
    }
    if (copied != id) {
      throw std::logic_error("clone_task: value replay changed an id");
    }
  }
  // Same argument for the vertices themselves.
  for (std::uint32_t i = 0; i < task.pool->size(); ++i) {
    const VertexId id{i};
    const VertexId copied =
        out.pool->vertex(task.pool->color(id), task.pool->value(id));
    if (copied != id) {
      throw std::logic_error("clone_task: vertex replay changed an id");
    }
  }

  // Ids are identical, so the id-based structures copy verbatim.
  out.input = task.input;
  out.output = task.output;
  out.delta = task.delta;
  return out;
}

std::vector<VertexId> preimage_vertices(const Task& task, VertexId y) {
  std::vector<VertexId> out;
  for (VertexId x : task.input.vertex_ids()) {
    const SimplicialComplex image = task.delta.image_complex(Simplex::single(x));
    if (image.contains_vertex(y)) out.push_back(x);
  }
  return out;
}

}  // namespace trichroma
