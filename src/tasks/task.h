#pragma once
// Task: the triple (I, O, Δ) of the topological model of distributed
// computing, for n asynchronous wait-free processes (n = 3 throughout the
// paper's main results).
//
// All complexes of one task (and of everything derived from it: canonical
// form, split forms, subdivisions, protocol complexes) share one VertexPool,
// held by shared_ptr so pipeline stages can extend the universe in place.

#include <memory>
#include <string>
#include <vector>

#include "tasks/carrier_map.h"
#include "topology/complex.h"
#include "topology/vertex.h"

namespace trichroma {

struct Task {
  std::shared_ptr<VertexPool> pool;
  std::string name;
  int num_processes = 3;
  SimplicialComplex input;
  SimplicialComplex output;
  CarrierMap delta;

  /// Structural validation: complexes chromatic and of dimension
  /// num_processes - 1, Δ a valid carrier map over `input`, and the output
  /// complex reachable (O = ∪σ Δ(σ)). Returns violations (empty = valid).
  /// `relax_vertex_monotonicity` tolerates solo-level monotonicity slack,
  /// which the splitting deformation introduces (see CarrierMap::validate).
  std::vector<std::string> validate(bool relax_vertex_monotonicity = false) const;

  /// Convenience: true iff validate() reports nothing.
  bool is_valid() const { return validate().empty(); }

  /// True iff the task is in canonical form: every output vertex is in the
  /// image of exactly one input vertex (Section 3 of the paper).
  bool is_canonical() const;

  /// True iff for every input facet σ and vertex y ∈ Δ(σ), the link
  /// lk_{Δ(σ)}(y) is connected — i.e. the task has no local articulation
  /// points (Section 4).
  bool is_link_connected() const;

  /// Human-readable structural summary.
  std::string summary() const;
};

/// The input vertices whose Δ-image contains output vertex `y`.
std::vector<VertexId> preimage_vertices(const Task& task, VertexId y);

/// Deep copy of `task` into a fresh VertexPool, preserving every id: the
/// source pool's values and vertices are replayed into the new pool in id
/// order, which (both pools being deduplicated) reproduces identical
/// ValueIds and VertexIds, so the complexes and Δ are copied verbatim.
/// Pipeline stages that intern concurrently (the racing scheduler's lanes)
/// each work on a clone instead of sharing the unsynchronized pool.
Task clone_task(const Task& task);

}  // namespace trichroma
