#pragma once
// The task zoo: every concrete task the paper discusses, plus standard
// tasks used as baselines and solver calibration points.
//
// Unless noted otherwise, tasks are for three processes (colors 0, 1, 2).
// Each constructor returns a fully validated Task owning a fresh VertexPool.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "tasks/task.h"

namespace trichroma {
namespace zoo {

// ---------------------------------------------------------------------------
// Value-predicate task factory
// ---------------------------------------------------------------------------

/// Specification of a task whose Δ is given by a predicate over the
/// participating processes' input and output *values*. For every chromatic
/// input simplex σ (participants with input values) and every assignment of
/// output values to the participants, the output simplex is in Δ(σ) iff
/// `allowed(ids, inputs, outputs)` holds. The predicate must be monotone-
/// compatible (Task::validate() will verify the result is a carrier map).
struct ValueTaskSpec {
  std::string name;
  int num_processes = 3;
  /// Input values each process may start with (per color).
  std::vector<std::vector<std::int64_t>> input_domain;
  /// Output values each process may decide (per color).
  std::vector<std::vector<std::int64_t>> output_domain;
  /// ids: participating colors (sorted); inputs/outputs: their values.
  std::function<bool(const std::vector<Color>& ids,
                     const std::vector<std::int64_t>& inputs,
                     const std::vector<std::int64_t>& outputs)>
      allowed;
};

Task make_value_task(const ValueTaskSpec& spec);

// ---------------------------------------------------------------------------
// Standard tasks
// ---------------------------------------------------------------------------

/// Binary consensus for `n` processes: all decisions equal, and the decided
/// value is some participant's input. Wait-free unsolvable for n >= 2.
Task consensus(int n = 3);

/// Inputless (3,2)-set agreement: process i starts with value i+1; decisions
/// are participants' inputs with at most two distinct values overall.
/// Wait-free unsolvable (the classic set-agreement impossibility).
Task set_agreement_32();

/// k-set agreement with distinct fixed inputs 1..n for n processes.
Task set_agreement(int n, int k);

/// The identity task: each process outputs its own input (single facet).
/// Trivially solvable with zero communication (radius 0).
Task identity_task();

/// Index renaming: three processes with a single input facet pick distinct
/// names in {1, ..., name_count}. Solvable at radius 0 for name_count >= 3
/// since ids are known.
Task renaming(int name_count = 5);

/// Discrete approximate agreement on the integer line {0..span}: inputs are
/// the endpoints {0, span}; decisions lie between the participants' min and
/// max inputs and within distance 1 of each other. Solvable; the required
/// protocol radius grows with `span` (≈ log2(span) rounds of halving).
Task approximate_agreement(int span = 2);

/// The "r-round subdivision task": Δ(σ) = Ch^r(σ) for the single input
/// facet (with subdivision vertices relabeled as outputs). Solvable at
/// radius exactly r; used to calibrate the solver's radius ladder.
Task subdivision_task(int rounds);

// ---------------------------------------------------------------------------
// Paper tasks (figures)
// ---------------------------------------------------------------------------

/// Figure 1: majority consensus. Binary inputs; decisions are participants'
/// inputs; when all three participate, either all agree or strictly more
/// processes decide 0 than 1. Satisfies the colorless ACT conditions yet is
/// wait-free unsolvable (via LAP splitting + Corollary 5.5).
Task majority_consensus();

/// Figure 2 / §6.1: the hourglass task. Single input facet. Solo executions
/// decide 0; pair executions with P0 may additionally decide output 1 —
/// with P0's output-1 vertex y *shared* between the {P0,P1} and {P0,P2}
/// paths ("pinched at the waist") — and the {P1,P2} pair decides output 2;
/// with all three processes, any triangle of O is valid. The pinch makes y
/// a local articulation point (link components {a1, a2} and {s1, s2}). The
/// task satisfies the colorless ACT condition yet is wait-free unsolvable:
/// splitting y disconnects s0 from s1 in Δ'({x0,x1}) (Corollary 5.5).
Task hourglass();

/// The twisted hourglass: same vertices and two-process paths as the
/// hourglass, but the bowtie pairs y with {a1, s2} and {a2, s1}. The
/// boundary walk then crosses the waist twice in the *same* direction
/// (class γ² in the fundamental group), so no continuous map |I| → |O|
/// exists — yet the class vanishes over GF(2). This is the showcase for
/// the mod-3 half of the homological obstruction engine: the GF(2) check
/// alone cannot refute this task, GF(3) does. (Not a paper task; a library
/// extension exercising the boundary between Corollary-style and
/// contractibility-style obstructions.)
Task twisted_hourglass();

/// Figure 8 / §6.2: the pinwheel task. A subtask of inputless 2-set
/// agreement keeping all vertex/edge outputs but only nine triangles (three
/// "blades" in a 3-fold symmetric pattern). Splitting its six LAPs yields
/// three disconnected blades; unsolvable via Corollary 5.6.
Task pinwheel();

/// The value vectors (v0, v1, v2) of the pinwheel's nine kept triangles.
std::vector<std::array<int, 3>> pinwheel_kept_vectors();

/// Figures 3–4: the running example used to illustrate canonicalization —
/// two input facets sharing an edge whose Δ images share a facet ("the green
/// facet"), which canonicalization pulls apart.
Task fig3_running_example();

/// Test-and-set as a decision task: every participant decides win (1) or
/// lose (0); exactly one participant wins, and a solo participant must win.
/// Unsolvable from read/write registers for every n >= 2 (TAS has consensus
/// number 2); for n = 2 the solo-winner constraint already disconnects the
/// corner choices, and the same connectivity obstruction scales up.
Task test_and_set(int n = 3);

/// Weak symmetry breaking with known ids: every process decides 0 or 1, and
/// when all n participate, not all decisions are equal. With distinct known
/// ids this is trivially solvable at radius 0 (id-based decision); it is the
/// classic contrast to the comparison-based setting.
Task weak_symmetry_breaking(int n = 3);

/// The fan task: a single input facet whose output complex is a fan of
/// `rim_length` triangles around a central color-0 vertex, with a rim path
/// of alternating colors 1/2. Link-connected and contractible, hence
/// solvable; the link of the center is a path of length `rim_length`, which
/// makes the family the natural sweep for the Figure-7 algorithm's
/// "termination time proportional to the longest link" claim.
Task fan_task(int rim_length);

// ---------------------------------------------------------------------------
// Loop agreement
// ---------------------------------------------------------------------------

/// Chromatic encoding of loop agreement on a 2-complex `out` with
/// distinguished vertices d0, d1, d2 and connecting paths p01, p12, p20
/// (inclusive of endpoints). Process inputs are indices {0,1,2}; if all
/// start on k they decide d_k; two distinct indices k,l → decisions on the
/// path p_kl; all three → any simplex of `out`.
/// `out` must be colorless (vertices colored kNoColor) over `pool`.
Task loop_agreement(std::shared_ptr<VertexPool> pool, const SimplicialComplex& out,
                    const std::array<VertexId, 3>& distinguished,
                    const std::array<std::vector<VertexId>, 3>& paths,
                    std::string name);

/// Loop agreement on the hollow triangle (a 3-cycle, filled with nothing):
/// the loop is not contractible, so the task is unsolvable.
Task loop_agreement_hollow_triangle();

/// Loop agreement on a filled (one-round subdivided) triangle: the loop is
/// contractible, so the task is solvable.
Task loop_agreement_filled_triangle();

/// Loop agreement on the 7-vertex (Császár) torus along a non-contractible
/// loop: unsolvable; the boundary loop generates H1 of the torus, so the
/// homological engine refutes it over every prime.
Task loop_agreement_torus();

/// Loop agreement on the 6-vertex projective plane along the essential
/// loop: unsolvable; RP²'s H1 is pure 2-torsion, so this instance exercises
/// the GF(2) half of the engine on a genuinely non-orientable target.
Task loop_agreement_projective_plane();

// ---------------------------------------------------------------------------
// Two-process tasks (Proposition 5.4)
// ---------------------------------------------------------------------------

/// Two-process binary consensus (unsolvable: Δ(mixed edge) is disconnected).
Task consensus_2();

/// Two-process approximate agreement with span 2 (solvable).
Task approximate_agreement_2(int span = 2);

// ---------------------------------------------------------------------------
// Random tasks (property testing / Fig. 6 preservation sweeps)
// ---------------------------------------------------------------------------

struct RandomTaskParams {
  int num_input_facets = 2;  // facets of I (from the binary input complex)
  int output_values_per_color = 3;
  /// How aggressively full-participation triangles are deleted: each pass
  /// attempts a coverage-preserving deletion of every triangle with
  /// `deletion_prob`. More passes ⇒ sparser Δ(σ) ⇒ more LAPs/holes.
  int deletion_passes = 3;
  double deletion_prob = 0.7;
  /// With restricted faces (default), Δ on edges/vertices starts from the
  /// downward closure of the kept triangles and is then randomly *thinned*:
  /// each edge image keeps a random subset of its pairs (each with
  /// `edge_keep_prob`, at least one), and each vertex a random subset of
  /// the values every containing edge still offers. This is the pinwheel's
  /// family (Fig. 8), where LAPs and holes genuinely obstruct solvability.
  /// Otherwise faces keep the full universal images (every value allowed),
  /// which is almost always solvable.
  bool restricted_faces = true;
  double edge_keep_prob = 0.6;
  std::uint64_t seed = 0;
};

/// Generates a random valid task: a random pure 2-dimensional input complex,
/// random facet images over a small output universe, and Δ extended to faces
/// by downward closure (restriction), which always yields a carrier map.
Task random_task(const RandomTaskParams& params);

/// A deduplicated stream over `random_task`: `next()` advances the seed and
/// skips any draw whose canonical fingerprint (tasks/fingerprint.h) was
/// already emitted, so fuzzing sweeps measure *distinct-task* coverage
/// rather than raw draw counts. Every skip bumps the
/// "tasks.random.dedup_skips" counter. Small-parameter streams eventually
/// exhaust their task family; after `max_attempts` consecutive duplicates
/// next() returns the last duplicate rather than spinning forever (the
/// skip counter still records the attempts). A draw whose fingerprint
/// computation fails (leaf budget) is conservatively treated as fresh.
class RandomTaskStream {
 public:
  explicit RandomTaskStream(RandomTaskParams params, int max_attempts = 64);

  /// The next not-yet-seen task (see the class comment for the exhaustion
  /// cap). The returned task's seed is recoverable from its name.
  Task next();

  /// Distinct fingerprints emitted so far.
  std::size_t emitted() const { return seen_.size(); }
  /// Duplicate draws skipped so far (this stream's share of the global
  /// "tasks.random.dedup_skips" counter).
  std::size_t skipped() const { return skipped_; }

 private:
  RandomTaskParams params_;
  int max_attempts_;
  std::unordered_set<std::string> seen_;
  std::size_t skipped_ = 0;
};

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// A named zoo entry; `build` returns a fresh Task with its own pool, so
/// entries can be constructed concurrently from different threads.
struct CatalogEntry {
  const char* name;
  Task (*build)();
};

/// The canonical zoo sweep: every task the paper discusses plus the
/// calibration and two-process tasks — the verdict-table set. Excludes
/// tasks that need minutes of search (e.g. (4,3)-set agreement) so the
/// sweep stays interactive; drives `trichroma batch` and the determinism
/// tests. Order is stable (it is the reporting order).
const std::vector<CatalogEntry>& catalog();

}  // namespace zoo
}  // namespace trichroma
