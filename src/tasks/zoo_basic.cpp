#include <algorithm>
#include <array>
#include <set>

#include "tasks/builder.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace zoo {

namespace {

/// Interns the input vertex for (color, value): (c, ("in", value)).
VertexId input_vertex(VertexPool& pool, Color c, std::int64_t value) {
  ValuePool& vals = pool.values();
  return pool.vertex(c, vals.of_tuple({vals.of_string("in"), vals.of_int(value)}));
}

/// Interns the output vertex for (color, value): (c, ("out", value)).
VertexId output_vertex(VertexPool& pool, Color c, std::int64_t value) {
  ValuePool& vals = pool.values();
  return pool.vertex(c, vals.of_tuple({vals.of_string("out"), vals.of_int(value)}));
}

/// Calls `f` with every assignment picking one value per position from
/// `domains` (cartesian product), in lexicographic order.
void for_each_assignment(const std::vector<std::vector<std::int64_t>>& domains,
                         const std::function<void(const std::vector<std::int64_t>&)>& f) {
  std::vector<std::int64_t> current(domains.size());
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == domains.size()) {
      f(current);
      return;
    }
    for (std::int64_t v : domains[i]) {
      current[i] = v;
      rec(i + 1);
    }
  };
  rec(0);
}

}  // namespace

Task make_value_task(const ValueTaskSpec& spec) {
  Task task;
  task.pool = std::make_shared<VertexPool>();
  task.name = spec.name;
  task.num_processes = spec.num_processes;
  VertexPool& pool = *task.pool;
  const int n = spec.num_processes;

  // Enumerate participating color subsets.
  for (unsigned mask = 1; mask < (1u << n); ++mask) {
    std::vector<Color> ids;
    for (int c = 0; c < n; ++c) {
      if (mask & (1u << c)) ids.push_back(static_cast<Color>(c));
    }
    std::vector<std::vector<std::int64_t>> in_domains, out_domains;
    for (Color c : ids) {
      in_domains.push_back(spec.input_domain[static_cast<std::size_t>(c)]);
      out_domains.push_back(spec.output_domain[static_cast<std::size_t>(c)]);
    }
    for_each_assignment(in_domains, [&](const std::vector<std::int64_t>& inputs) {
      std::vector<VertexId> in_verts;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        in_verts.push_back(input_vertex(pool, ids[i], inputs[i]));
      }
      const Simplex sigma{Simplex(in_verts)};
      task.input.add(sigma);
      std::vector<Simplex> images;
      for_each_assignment(out_domains, [&](const std::vector<std::int64_t>& outputs) {
        if (!spec.allowed(ids, inputs, outputs)) return;
        std::vector<VertexId> out_verts;
        for (std::size_t i = 0; i < ids.size(); ++i) {
          out_verts.push_back(output_vertex(pool, ids[i], outputs[i]));
        }
        Simplex tau{Simplex(out_verts)};
        task.output.add(tau);
        images.push_back(std::move(tau));
      });
      task.delta.set(sigma, std::move(images));
    });
  }
  return task;
}

Task consensus(int n) {
  ValueTaskSpec spec;
  spec.name = "consensus-" + std::to_string(n);
  spec.num_processes = n;
  spec.input_domain.assign(static_cast<std::size_t>(n), {0, 1});
  spec.output_domain.assign(static_cast<std::size_t>(n), {0, 1});
  spec.allowed = [](const std::vector<Color>&, const std::vector<std::int64_t>& in,
                    const std::vector<std::int64_t>& out) {
    for (std::int64_t o : out) {
      if (o != out[0]) return false;  // agreement
    }
    return std::find(in.begin(), in.end(), out[0]) != in.end();  // validity
  };
  return make_value_task(spec);
}

Task set_agreement(int n, int k) {
  ValueTaskSpec spec;
  spec.name = std::to_string(n) + "-proc-" + std::to_string(k) + "-set-agreement";
  spec.num_processes = n;
  std::vector<std::int64_t> all_values;
  for (int i = 0; i < n; ++i) all_values.push_back(i + 1);
  for (int i = 0; i < n; ++i) {
    spec.input_domain.push_back({i + 1});  // fixed distinct inputs
    spec.output_domain.push_back(all_values);
  }
  spec.allowed = [k](const std::vector<Color>&, const std::vector<std::int64_t>& in,
                     const std::vector<std::int64_t>& out) {
    std::set<std::int64_t> distinct(out.begin(), out.end());
    if (static_cast<int>(distinct.size()) > k) return false;
    for (std::int64_t o : out) {
      if (std::find(in.begin(), in.end(), o) == in.end()) return false;
    }
    return true;
  };
  return make_value_task(spec);
}

Task set_agreement_32() { return set_agreement(3, 2); }

Task identity_task() {
  ValueTaskSpec spec;
  spec.name = "identity";
  spec.num_processes = 3;
  for (int i = 0; i < 3; ++i) {
    spec.input_domain.push_back({i});
    spec.output_domain.push_back({i});
  }
  spec.allowed = [](const std::vector<Color>&, const std::vector<std::int64_t>& in,
                    const std::vector<std::int64_t>& out) { return in == out; };
  return make_value_task(spec);
}

Task renaming(int name_count) {
  ValueTaskSpec spec;
  spec.name = "renaming-" + std::to_string(name_count);
  spec.num_processes = 3;
  std::vector<std::int64_t> names;
  for (int i = 1; i <= name_count; ++i) names.push_back(i);
  for (int i = 0; i < 3; ++i) {
    spec.input_domain.push_back({i});
    spec.output_domain.push_back(names);
  }
  spec.allowed = [](const std::vector<Color>&, const std::vector<std::int64_t>&,
                    const std::vector<std::int64_t>& out) {
    std::set<std::int64_t> distinct(out.begin(), out.end());
    return distinct.size() == out.size();
  };
  return make_value_task(spec);
}

namespace {

Task approximate_agreement_impl(const std::string& name, int n, int span) {
  ValueTaskSpec spec;
  spec.name = name;
  spec.num_processes = n;
  std::vector<std::int64_t> outputs;
  for (int v = 0; v <= span; ++v) outputs.push_back(v);
  for (int i = 0; i < n; ++i) {
    spec.input_domain.push_back({0, span});
    spec.output_domain.push_back(outputs);
  }
  spec.allowed = [](const std::vector<Color>&, const std::vector<std::int64_t>& in,
                    const std::vector<std::int64_t>& out) {
    const auto [in_min, in_max] = std::minmax_element(in.begin(), in.end());
    const auto [out_min, out_max] = std::minmax_element(out.begin(), out.end());
    return *out_min >= *in_min && *out_max <= *in_max && *out_max - *out_min <= 1;
  };
  return make_value_task(spec);
}

}  // namespace

Task approximate_agreement(int span) {
  return approximate_agreement_impl("approx-agreement-" + std::to_string(span), 3, span);
}

Task consensus_2() { return consensus(2); }

Task approximate_agreement_2(int span) {
  return approximate_agreement_impl("approx-agreement-2proc-" + std::to_string(span), 2,
                                    span);
}

Task test_and_set(int n) {
  ValueTaskSpec spec;
  spec.name = "test-and-set-" + std::to_string(n);
  spec.num_processes = n;
  for (int i = 0; i < n; ++i) {
    spec.input_domain.push_back({0});  // inputless
    spec.output_domain.push_back({0, 1});
  }
  spec.allowed = [](const std::vector<Color>&, const std::vector<std::int64_t>&,
                    const std::vector<std::int64_t>& out) {
    return std::count(out.begin(), out.end(), 1) == 1;  // exactly one winner
  };
  return make_value_task(spec);
}

Task weak_symmetry_breaking(int n) {
  ValueTaskSpec spec;
  spec.name = "weak-symmetry-breaking-" + std::to_string(n);
  spec.num_processes = n;
  for (int i = 0; i < n; ++i) {
    spec.input_domain.push_back({0});
    spec.output_domain.push_back({0, 1});
  }
  spec.allowed = [n](const std::vector<Color>& ids, const std::vector<std::int64_t>&,
                     const std::vector<std::int64_t>& out) {
    if (static_cast<int>(ids.size()) < n) return true;
    const auto ones = std::count(out.begin(), out.end(), 1);
    return ones != 0 && ones != static_cast<long>(out.size());
  };
  return make_value_task(spec);
}

Task fan_task(int rim_length) {
  if (rim_length < 2) rim_length = 2;
  Task task;
  task.pool = std::make_shared<VertexPool>();
  task.name = "fan-" + std::to_string(rim_length);
  task.num_processes = 3;
  VertexPool& pool = *task.pool;

  const VertexId x0 = input_vertex(pool, 0, 0), x1 = input_vertex(pool, 1, 1),
                 x2 = input_vertex(pool, 2, 2);
  task.input.add(Simplex{x0, x1, x2});

  const VertexId center = output_vertex(pool, 0, 0);
  std::vector<VertexId> rim;
  for (int i = 0; i <= rim_length; ++i) {
    rim.push_back(output_vertex(pool, i % 2 == 0 ? 1 : 2, i + 1));
  }
  std::vector<Simplex> triangles;
  for (int i = 0; i < rim_length; ++i) {
    triangles.push_back(Simplex{center, rim[static_cast<std::size_t>(i)],
                                rim[static_cast<std::size_t>(i + 1)]});
  }
  for (const Simplex& t : triangles) task.output.add(t);

  // Solo: the center for P0, any rim vertex of the right color otherwise.
  std::vector<Simplex> rim1, rim2;
  for (VertexId v : rim) {
    (pool.color(v) == 1 ? rim1 : rim2).push_back(Simplex::single(v));
  }
  task.delta.set(Simplex::single(x0), {Simplex::single(center)});
  task.delta.set(Simplex::single(x1), rim1);
  task.delta.set(Simplex::single(x2), rim2);
  // Pairs: spokes of the matching color pair, or rim edges for {P1, P2}.
  std::vector<Simplex> spokes01, spokes02, rim_edges;
  for (VertexId v : rim) {
    (pool.color(v) == 1 ? spokes01 : spokes02).push_back(Simplex{center, v});
  }
  for (int i = 0; i < rim_length; ++i) {
    rim_edges.push_back(Simplex{rim[static_cast<std::size_t>(i)],
                                rim[static_cast<std::size_t>(i + 1)]});
  }
  task.delta.set(Simplex{x0, x1}, std::move(spokes01));
  task.delta.set(Simplex{x0, x2}, std::move(spokes02));
  task.delta.set(Simplex{x1, x2}, std::move(rim_edges));
  task.delta.set(Simplex{x0, x1, x2}, std::move(triangles));
  return task;
}

Task subdivision_task(int rounds) {
  Task task;
  task.pool = std::make_shared<VertexPool>();
  task.name = "subdivision-task-r" + std::to_string(rounds);
  task.num_processes = 3;
  VertexPool& pool = *task.pool;

  const Simplex sigma{input_vertex(pool, 0, 0), input_vertex(pool, 1, 1),
                      input_vertex(pool, 2, 2)};
  task.input.add(sigma);

  const SubdividedComplex sub = chromatic_subdivision(pool, task.input, rounds);

  // Relabel subdivision vertices as opaque output values.
  VertexMap relabel;
  for (VertexId v : sub.complex.vertex_ids()) {
    relabel.set(v, output_vertex(pool, pool.color(v), static_cast<std::int64_t>(raw(v))));
  }

  // Δ(τ) = Ch^r(τ): the dim(τ)-simplices of the subdivision carried by τ.
  task.input.for_each([&](const Simplex& tau) {
    std::vector<Simplex> images;
    for (const Simplex& xi : sub.complex.simplices(tau.dim())) {
      if (tau.contains_all(sub.carrier_of(xi))) {
        Simplex out = relabel.apply(xi);
        task.output.add(out);
        images.push_back(std::move(out));
      }
    }
    task.delta.set(tau, std::move(images));
  });
  return task;
}

}  // namespace zoo
}  // namespace trichroma
