#include "tasks/zoo.h"

namespace trichroma {
namespace zoo {

namespace {

Task build_identity() { return identity_task(); }
Task build_renaming5() { return renaming(5); }
Task build_subdivision0() { return subdivision_task(0); }
Task build_subdivision1() { return subdivision_task(1); }
Task build_approx_agreement() { return approximate_agreement(2); }
Task build_fan6() { return fan_task(6); }
Task build_fig3() { return fig3_running_example(); }
Task build_loop_filled() { return loop_agreement_filled_triangle(); }
Task build_consensus3() { return consensus(3); }
Task build_set_agreement_32() { return set_agreement_32(); }
Task build_majority_consensus() { return majority_consensus(); }
Task build_hourglass() { return hourglass(); }
Task build_pinwheel() { return pinwheel(); }
Task build_loop_hollow() { return loop_agreement_hollow_triangle(); }
Task build_loop_torus() { return loop_agreement_torus(); }
Task build_loop_rp2() { return loop_agreement_projective_plane(); }
Task build_twisted_hourglass() { return twisted_hourglass(); }
Task build_test_and_set3() { return test_and_set(3); }
Task build_wsb3() { return weak_symmetry_breaking(3); }
Task build_consensus_2() { return consensus_2(); }
Task build_approx_agreement_2() { return approximate_agreement_2(2); }

}  // namespace

const std::vector<CatalogEntry>& catalog() {
  static const std::vector<CatalogEntry> entries = {
      {"identity", build_identity},
      {"renaming5", build_renaming5},
      {"subdivision0", build_subdivision0},
      {"subdivision1", build_subdivision1},
      {"approx_agreement", build_approx_agreement},
      {"fan6", build_fan6},
      {"fig3", build_fig3},
      {"loop_filled", build_loop_filled},
      {"consensus3", build_consensus3},
      {"set_agreement_32", build_set_agreement_32},
      {"majority_consensus", build_majority_consensus},
      {"hourglass", build_hourglass},
      {"pinwheel", build_pinwheel},
      {"loop_hollow", build_loop_hollow},
      {"loop_torus", build_loop_torus},
      {"loop_rp2", build_loop_rp2},
      {"twisted_hourglass", build_twisted_hourglass},
      {"test_and_set3", build_test_and_set3},
      {"wsb3", build_wsb3},
      {"consensus_2", build_consensus_2},
      {"approx_agreement_2", build_approx_agreement_2},
  };
  return entries;
}

}  // namespace zoo
}  // namespace trichroma
