// Loop agreement (Herlihy–Rajsbaum) in its chromatic three-process encoding,
// plus the two calibration instances used in tests and benches: a
// non-contractible loop (unsolvable) and a contractible one (solvable).

#include <array>
#include <set>

#include "tasks/zoo.h"
#include "topology/homology.h"

namespace trichroma {
namespace zoo {

namespace {

/// Chromatic output vertex for process `c` deciding value-complex vertex `u`.
VertexId loop_output(VertexPool& pool, Color c, VertexId u) {
  ValuePool& vals = pool.values();
  return pool.vertex(
      c, vals.of_tuple({vals.of_string("lv"),
                        vals.of_int(static_cast<std::int64_t>(raw(u)))}));
}

/// All chromatic simplices {(c, u_c) : c ∈ ids} whose decided value set
/// spans a simplex of `span_complex`.
std::vector<Simplex> chromatic_span(VertexPool& pool, const std::vector<Color>& ids,
                                    const SimplicialComplex& span_complex) {
  std::vector<Simplex> out;
  const std::vector<VertexId> universe = span_complex.vertex_ids();
  std::vector<std::size_t> pick(ids.size(), 0);
  const std::size_t m = universe.size();
  if (m == 0) return out;
  while (true) {
    std::vector<VertexId> values;
    for (std::size_t i = 0; i < ids.size(); ++i) values.push_back(universe[pick[i]]);
    if (span_complex.contains(Simplex(values))) {
      std::vector<VertexId> verts;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        verts.push_back(loop_output(pool, ids[i], universe[pick[i]]));
      }
      out.emplace_back(std::move(verts));
    }
    // Advance the mixed-radix counter.
    std::size_t i = 0;
    while (i < pick.size() && ++pick[i] == m) {
      pick[i] = 0;
      ++i;
    }
    if (i == pick.size()) break;
  }
  return out;
}

SimplicialComplex path_complex(const std::vector<VertexId>& path) {
  SimplicialComplex out;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    out.add(Simplex{path[i], path[i + 1]});
  }
  if (path.size() == 1) out.add(Simplex::single(path[0]));
  return out;
}

}  // namespace

Task loop_agreement(std::shared_ptr<VertexPool> pool, const SimplicialComplex& out,
                    const std::array<VertexId, 3>& distinguished,
                    const std::array<std::vector<VertexId>, 3>& paths,
                    std::string name) {
  Task task;
  task.pool = std::move(pool);
  task.name = std::move(name);
  task.num_processes = 3;
  VertexPool& vp = *task.pool;
  ValuePool& vals = vp.values();

  auto in_vertex = [&](Color c, int index) {
    return vp.vertex(c, vals.of_tuple({vals.of_string("idx"), vals.of_int(index)}));
  };

  // Path complex for an unordered index pair {k, l}: paths[0]=p01,
  // paths[1]=p12, paths[2]=p20.
  auto pair_complex = [&](int k, int l) -> SimplicialComplex {
    const std::set<int> want{k, l};
    if (want == std::set<int>{0, 1}) return path_complex(paths[0]);
    if (want == std::set<int>{1, 2}) return path_complex(paths[1]);
    return path_complex(paths[2]);
  };

  // Every process may start on any of the three distinguished indices.
  for (unsigned mask = 1; mask < 8; ++mask) {
    std::vector<Color> ids;
    for (int c = 0; c < 3; ++c) {
      if (mask & (1u << c)) ids.push_back(static_cast<Color>(c));
    }
    std::vector<int> indices(ids.size(), 0);
    while (true) {
      std::vector<VertexId> in_verts;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        in_verts.push_back(in_vertex(ids[i], indices[i]));
      }
      const Simplex sigma{Simplex(in_verts)};
      task.input.add(sigma);

      const std::set<int> index_set(indices.begin(), indices.end());
      SimplicialComplex span;
      if (index_set.size() == 1) {
        span.add(Simplex::single(distinguished[static_cast<std::size_t>(*index_set.begin())]));
      } else if (index_set.size() == 2) {
        auto it = index_set.begin();
        const int k = *it++;
        const int l = *it;
        span = pair_complex(k, l);
      } else {
        span = out;
      }
      std::vector<Simplex> images = chromatic_span(vp, ids, span);
      for (const Simplex& im : images) task.output.add(im);
      task.delta.set(sigma, std::move(images));

      std::size_t i = 0;
      while (i < indices.size() && ++indices[i] == 3) {
        indices[i] = 0;
        ++i;
      }
      if (i == indices.size()) break;
    }
  }
  return task;
}

Task loop_agreement_hollow_triangle() {
  auto pool = std::make_shared<VertexPool>();
  ValuePool& vals = pool->values();
  auto node = [&](int i) {
    return pool->vertex(kNoColor, vals.of_tuple({vals.of_string("node"), vals.of_int(i)}));
  };
  // Hexagonal cycle 0-1-2-3-4-5-0; distinguished vertices 0, 2, 4.
  SimplicialComplex hexagon;
  std::array<VertexId, 6> v{node(0), node(1), node(2), node(3), node(4), node(5)};
  for (int i = 0; i < 6; ++i) {
    hexagon.add(Simplex{v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>((i + 1) % 6)]});
  }
  return loop_agreement(pool, hexagon, {v[0], v[2], v[4]},
                        {{{v[0], v[1], v[2]}, {v[2], v[3], v[4]}, {v[4], v[5], v[0]}}},
                        "loop-agreement-hollow-hexagon");
}

Task loop_agreement_filled_triangle() {
  auto pool = std::make_shared<VertexPool>();
  ValuePool& vals = pool->values();
  auto node = [&](std::string_view label) {
    return pool->vertex(kNoColor, vals.of_tuple({vals.of_string("node"), vals.of_string(label)}));
  };
  // A hexagonal fan around a center: contractible, so the loop bounds.
  const VertexId d0 = node("d0"), d1 = node("d1"), d2 = node("d2");
  const VertexId m01 = node("m01"), m12 = node("m12"), m20 = node("m20");
  const VertexId c = node("c");
  SimplicialComplex fan;
  const std::array<VertexId, 6> rim{d0, m01, d1, m12, d2, m20};
  for (std::size_t i = 0; i < 6; ++i) {
    fan.add(Simplex{rim[i], rim[(i + 1) % 6], c});
  }
  return loop_agreement(pool, fan, {d0, d1, d2},
                        {{{d0, m01, d1}, {d1, m12, d2}, {d2, m20, d0}}},
                        "loop-agreement-filled-hexagon");
}

namespace {

/// Picks a 3-cycle of `surface` that is an edge cycle, not a face, and not
/// a GF(2) boundary — i.e. a certified non-contractible triangle loop.
std::array<VertexId, 3> essential_triangle(const SimplicialComplex& surface) {
  const auto vertices = surface.vertex_ids();
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      for (std::size_t k = j + 1; k < vertices.size(); ++k) {
        const VertexId a = vertices[i], b = vertices[j], c = vertices[k];
        if (!surface.contains(Simplex{a, b}) || !surface.contains(Simplex{b, c}) ||
            !surface.contains(Simplex{a, c})) {
          continue;
        }
        if (surface.contains(Simplex{a, b, c})) continue;  // bounds trivially
        const Chain loop{Simplex{a, b}, Simplex{b, c}, Simplex{a, c}};
        if (!bounds_in(surface, loop)) return {a, b, c};
      }
    }
  }
  throw std::logic_error("surface has no essential triangle loop");
}

Task loop_agreement_on_surface(std::shared_ptr<VertexPool> pool,
                               const SimplicialComplex& surface, std::string name) {
  const auto [a, b, c] = essential_triangle(surface);
  return loop_agreement(std::move(pool), surface, {a, b, c},
                        {{{a, b}, {b, c}, {c, a}}}, std::move(name));
}

}  // namespace

Task loop_agreement_torus() {
  // The 7-vertex cyclic torus: triangles {i, i+1, i+3} and {i, i+2, i+3}
  // over Z7 — 14 faces on the complete graph K7, χ = 0.
  auto pool = std::make_shared<VertexPool>();
  ValuePool& vals = pool->values();
  std::array<VertexId, 7> v{};
  for (int i = 0; i < 7; ++i) {
    v[static_cast<std::size_t>(i)] = pool->vertex(
        kNoColor, vals.of_tuple({vals.of_string("node"), vals.of_int(i)}));
  }
  SimplicialComplex torus;
  for (int i = 0; i < 7; ++i) {
    auto at = [&](int x) { return v[static_cast<std::size_t>(x % 7)]; };
    torus.add(Simplex{at(i), at(i + 1), at(i + 3)});
    torus.add(Simplex{at(i), at(i + 2), at(i + 3)});
  }
  return loop_agreement_on_surface(pool, torus, "loop-agreement-torus");
}

Task loop_agreement_projective_plane() {
  // The 6-vertex projective plane (hemi-icosahedron): 10 faces on K6, χ = 1.
  auto pool = std::make_shared<VertexPool>();
  ValuePool& vals = pool->values();
  std::array<VertexId, 7> v{};
  for (int i = 1; i <= 6; ++i) {
    v[static_cast<std::size_t>(i)] = pool->vertex(
        kNoColor, vals.of_tuple({vals.of_string("node"), vals.of_int(i)}));
  }
  SimplicialComplex rp2;
  const int faces[10][3] = {{1, 2, 5}, {1, 2, 6}, {1, 3, 4}, {1, 3, 6}, {1, 4, 5},
                            {2, 3, 4}, {2, 3, 5}, {2, 4, 6}, {3, 5, 6}, {4, 5, 6}};
  for (const auto& f : faces) {
    rp2.add(Simplex{v[static_cast<std::size_t>(f[0])], v[static_cast<std::size_t>(f[1])],
                    v[static_cast<std::size_t>(f[2])]});
  }
  return loop_agreement_on_surface(pool, rp2, "loop-agreement-projective-plane");
}

}  // namespace zoo
}  // namespace trichroma
