// Tasks taken directly from the paper's figures: majority consensus (Fig. 1),
// the hourglass task (Fig. 2, §6.1), the pinwheel task (Fig. 8, §6.2), and
// the canonicalization running example (Figs. 3–4).

#include <algorithm>
#include <array>

#include "tasks/builder.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace zoo {

Task majority_consensus() {
  ValueTaskSpec spec;
  spec.name = "majority-consensus";
  spec.num_processes = 3;
  spec.input_domain.assign(3, {0, 1});
  spec.output_domain.assign(3, {0, 1});
  spec.allowed = [](const std::vector<Color>& ids, const std::vector<std::int64_t>& in,
                    const std::vector<std::int64_t>& out) {
    // Validity: every decision appeared as some participant's input.
    for (std::int64_t o : out) {
      if (std::find(in.begin(), in.end(), o) == in.end()) return false;
    }
    if (ids.size() < 3) return true;
    // All three participate: agree, or strictly more decide 0 than 1.
    const auto zeros = std::count(out.begin(), out.end(), 0);
    const auto ones = static_cast<std::int64_t>(out.size()) - zeros;
    return zeros == 0 || ones == 0 || zeros > ones;
  };
  return make_value_task(spec);
}

Task hourglass() {
  // The hourglass output complex is the "bowtie" of two triangles sharing
  // P0's output-1 vertex y — {y, a1, a2} (the two partners' output-1
  // vertices) and {y, s1, s2} (their solo vertices) — plus a fan of six
  // periphery triangles around P0's solo vertex s0 covering the two-process
  // output paths. The pinch: the pair executions {P0,P1} and {P0,P2} both
  // let P0 decide the *same* vertex y, whose link in Δ(σ) has the two
  // components {a1, a2} and {s1, s2}. The boundary walk traced by the
  // two-process paths crosses the waist twice in *opposite* directions
  // (word α⁻¹β·β⁻¹α in π1), so it is null-homotopic and a continuous map
  // |I| → |O| carried by Δ exists — the colorless ACT condition holds.
  // Yet the chromatic task is wait-free unsolvable: splitting y separates
  // s0 from s1 in Δ'({x0, x1}) (Corollary 5.5, a consensus-style
  // obstruction).
  Task task;
  task.pool = std::make_shared<VertexPool>();
  task.name = "hourglass";
  task.num_processes = 3;
  VertexPool& pool = *task.pool;
  ValuePool& vals = pool.values();

  auto in_vertex = [&](Color c) {
    return pool.vertex(c, vals.of_tuple({vals.of_string("in"), vals.of_int(c)}));
  };
  auto out_vertex = [&](Color c, std::int64_t value) {
    return pool.vertex(c, vals.of_tuple({vals.of_string("out"), vals.of_int(value)}));
  };
  const VertexId x0 = in_vertex(0), x1 = in_vertex(1), x2 = in_vertex(2);
  task.input.add(Simplex{x0, x1, x2});

  const VertexId s0 = out_vertex(0, 0), s1 = out_vertex(1, 0), s2 = out_vertex(2, 0);
  const VertexId y = out_vertex(0, 1);                            // the LAP
  const VertexId a1 = out_vertex(1, 1), a2 = out_vertex(2, 1);    // pairs with P0
  const VertexId b1 = out_vertex(1, 2), b2 = out_vertex(2, 2);    // {P1,P2} pair

  const std::vector<Simplex> triangles{
      Simplex{y, a1, a2},  Simplex{y, s1, s2},   // the bowtie around y
      Simplex{s0, a1, a2}, Simplex{s0, s1, a2},  // periphery fan around s0
      Simplex{s0, s1, b2}, Simplex{s0, b1, b2},  Simplex{s0, b1, s2},
      Simplex{s0, s1, s2},
  };
  for (const Simplex& t : triangles) task.output.add(t);

  task.delta.set(Simplex::single(x0), {Simplex::single(s0)});
  task.delta.set(Simplex::single(x1), {Simplex::single(s1)});
  task.delta.set(Simplex::single(x2), {Simplex::single(s2)});
  // Two-process executions decide along a path: solo values at the ends,
  // the shared vertex y and the partner's output-1 / output-2 vertex inside.
  task.delta.set(Simplex{x0, x1}, {Simplex{s0, a1}, Simplex{a1, y}, Simplex{y, s1}});
  task.delta.set(Simplex{x0, x2}, {Simplex{s0, a2}, Simplex{a2, y}, Simplex{y, s2}});
  task.delta.set(Simplex{x1, x2}, {Simplex{s1, b2}, Simplex{b2, b1}, Simplex{b1, s2}});
  task.delta.set(Simplex{x0, x1, x2}, triangles);  // any triangle of O
  return task;
}

Task twisted_hourglass() {
  // Identical interface to hourglass(), but the bowtie is {y, a1, s2} /
  // {y, a2, s1}: the two waist crossings of the boundary walk now compose
  // to γ² instead of cancelling. See zoo.h for the role of this task.
  Task task;
  task.pool = std::make_shared<VertexPool>();
  task.name = "twisted-hourglass";
  task.num_processes = 3;
  VertexPool& pool = *task.pool;
  ValuePool& vals = pool.values();

  auto in_vertex = [&](Color c) {
    return pool.vertex(c, vals.of_tuple({vals.of_string("in"), vals.of_int(c)}));
  };
  auto out_vertex = [&](Color c, std::int64_t value) {
    return pool.vertex(c, vals.of_tuple({vals.of_string("out"), vals.of_int(value)}));
  };
  const VertexId x0 = in_vertex(0), x1 = in_vertex(1), x2 = in_vertex(2);
  task.input.add(Simplex{x0, x1, x2});

  const VertexId s0 = out_vertex(0, 0), s1 = out_vertex(1, 0), s2 = out_vertex(2, 0);
  const VertexId y = out_vertex(0, 1);
  const VertexId a1 = out_vertex(1, 1), a2 = out_vertex(2, 1);
  const VertexId b1 = out_vertex(1, 2), b2 = out_vertex(2, 2);

  const std::vector<Simplex> triangles{
      Simplex{y, a1, s2},  Simplex{y, a2, s1},   // the twisted bowtie
      Simplex{s0, a1, s2}, Simplex{s0, s1, a2},  // periphery fan around s0
      Simplex{s0, s1, b2}, Simplex{s0, b1, b2},  Simplex{s0, b1, s2},
  };
  for (const Simplex& t : triangles) task.output.add(t);

  task.delta.set(Simplex::single(x0), {Simplex::single(s0)});
  task.delta.set(Simplex::single(x1), {Simplex::single(s1)});
  task.delta.set(Simplex::single(x2), {Simplex::single(s2)});
  task.delta.set(Simplex{x0, x1}, {Simplex{s0, a1}, Simplex{a1, y}, Simplex{y, s1}});
  task.delta.set(Simplex{x0, x2}, {Simplex{s0, a2}, Simplex{a2, y}, Simplex{y, s2}});
  task.delta.set(Simplex{x1, x2}, {Simplex{s1, b2}, Simplex{b2, b1}, Simplex{b1, s2}});
  task.delta.set(Simplex{x0, x1, x2}, triangles);
  return task;
}

std::vector<std::array<int, 3>> pinwheel_kept_vectors() {
  // Nine triangles: the all-same orbit plus two mixed orbits of the
  // simultaneous rotation (color i -> i+1, value v -> v+1 cyclically).
  // Their triangle-adjacency graph has exactly three components ("blades"),
  // pairwise glued at single vertices — the six LAPs.
  return {
      {1, 1, 1}, {2, 2, 2}, {3, 3, 3},  // all-same
      {2, 1, 1}, {2, 3, 2}, {3, 3, 1},  // orbit of 211
      {1, 2, 2}, {3, 2, 3}, {1, 1, 3},  // orbit of 122
  };
}

Task pinwheel() {
  const auto kept = pinwheel_kept_vectors();
  ValueTaskSpec spec;
  spec.name = "pinwheel";
  spec.num_processes = 3;
  for (int i = 0; i < 3; ++i) {
    spec.input_domain.push_back({i + 1});  // process i starts with i+1
    spec.output_domain.push_back({1, 2, 3});
  }
  spec.allowed = [kept](const std::vector<Color>& ids,
                        const std::vector<std::int64_t>& in,
                        const std::vector<std::int64_t>& out) {
    if (ids.size() < 3) {
      // Executions of one or two processes are untouched 2-set agreement:
      // decide participants' inputs (≤ 2 distinct values automatically).
      for (std::int64_t o : out) {
        if (std::find(in.begin(), in.end(), o) == in.end()) return false;
      }
      return true;
    }
    for (const auto& v : kept) {
      if (out[0] == v[0] && out[1] == v[1] && out[2] == v[2]) return true;
    }
    return false;
  };
  return make_value_task(spec);
}

Task fig3_running_example() {
  Task task;
  task.pool = std::make_shared<VertexPool>();
  task.name = "fig3-running-example";
  task.num_processes = 3;
  VertexPool& pool = *task.pool;
  ValuePool& vals = pool.values();

  auto in_vertex = [&](Color c, std::string_view label) {
    return pool.vertex(c, vals.of_tuple({vals.of_string("in"), vals.of_string(label)}));
  };
  auto out_vertex = [&](Color c, std::string_view label) {
    return pool.vertex(c, vals.of_tuple({vals.of_string("out"), vals.of_string(label)}));
  };

  // Two input facets sharing the {white, gray} edge; the black process has
  // two possible inputs a / b.
  const VertexId x0a = in_vertex(0, "a"), x0b = in_vertex(0, "b");
  const VertexId x1 = in_vertex(1, "u"), x2 = in_vertex(2, "v");
  const Simplex sigma{x0a, x1, x2}, sigma_prime{x0b, x1, x2};
  task.input.add(sigma);
  task.input.add(sigma_prime);

  // The green facet is in Δ(σ) and Δ(σ'); the h-facet only in Δ(σ).
  const Simplex green{out_vertex(0, "g0"), out_vertex(1, "g1"), out_vertex(2, "g2")};
  const Simplex h{out_vertex(0, "h0"), out_vertex(1, "g1"), out_vertex(2, "h2")};
  task.output.add(green);
  task.output.add(h);

  std::unordered_map<Simplex, std::vector<Simplex>, SimplexHash> facet_images;
  facet_images[sigma] = {green, h};
  facet_images[sigma_prime] = {green};
  task.delta = downward_closure(pool, task.input, facet_images);
  return task;
}

}  // namespace zoo
}  // namespace trichroma
