// Random-task generator for property tests and the Fig. 6 solvability-
// preservation sweeps.
//
// Construction: start from the "universal" task over m output values —
// every process may decide any value, Δ(τ) = all chromatic assignments —
// and randomly delete full-participation triangles per input facet while
// preserving *pair coverage*: every output edge of every surviving face
// image must stay a face of some kept triangle. With `restricted_faces`
// (the default), Δ on edges and vertices is then the downward closure of
// the kept triangles — exactly the family the pinwheel (Fig. 8) belongs
// to, where LAPs and holes genuinely obstruct solvability. Multi-facet
// inputs can make the closure prune a face image to empty; the generator
// retries with a perturbed seed and finally falls back to universal faces,
// so it always returns a valid task.

#include <array>
#include <random>
#include <utility>

#include "obs/metrics.h"
#include "tasks/builder.h"
#include "tasks/fingerprint.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace zoo {

namespace {

VertexId in_vertex(VertexPool& pool, Color c, std::int64_t v) {
  ValuePool& vals = pool.values();
  return pool.vertex(c, vals.of_tuple({vals.of_string("in"), vals.of_int(v)}));
}

VertexId out_vertex(VertexPool& pool, Color c, std::int64_t v) {
  ValuePool& vals = pool.values();
  return pool.vertex(c, vals.of_tuple({vals.of_string("out"), vals.of_int(v)}));
}

/// One generation attempt; the result may fail validation when restricted
/// faces prune to empty on shared faces.
Task attempt(const RandomTaskParams& params, std::uint64_t salt) {
  std::mt19937_64 rng(params.seed * 0x9e3779b97f4a7c15ull + salt);
  Task task;
  task.pool = std::make_shared<VertexPool>();
  task.name = "random-task-seed" + std::to_string(params.seed);
  task.num_processes = 3;
  VertexPool& pool = *task.pool;
  const int m = params.output_values_per_color;

  // Input complex: distinct facets from the full binary input complex.
  std::vector<Simplex> candidates;
  for (int b0 = 0; b0 < 2; ++b0) {
    for (int b1 = 0; b1 < 2; ++b1) {
      for (int b2 = 0; b2 < 2; ++b2) {
        candidates.push_back(Simplex{in_vertex(pool, 0, b0), in_vertex(pool, 1, b1),
                                     in_vertex(pool, 2, b2)});
      }
    }
  }
  std::shuffle(candidates.begin(), candidates.end(), rng);
  const int facet_count =
      std::min<int>(params.num_input_facets, static_cast<int>(candidates.size()));
  std::vector<Simplex> input_facets(candidates.begin(),
                                    candidates.begin() + facet_count);
  for (const Simplex& f : input_facets) task.input.add(f);

  // Per input facet: all m^3 triangles, then random coverage-preserving
  // deletions.
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::unordered_map<Simplex, std::vector<Simplex>, SimplexHash> facet_images;
  for (const Simplex& f : input_facets) {
    std::vector<std::array<int, 3>> result;
    for (int a = 0; a < m; ++a) {
      for (int b = 0; b < m; ++b) {
        for (int c = 0; c < m; ++c) result.push_back({a, b, c});
      }
    }
    for (int pass = 0; pass < params.deletion_passes; ++pass) {
      std::shuffle(result.begin(), result.end(), rng);
      const std::vector<std::array<int, 3>> snapshot = result;
      for (const auto& t : snapshot) {
        if (coin(rng) >= params.deletion_prob) continue;
        std::vector<std::array<int, 3>> remaining;
        for (const auto& r : result) {
          if (r != t) remaining.push_back(r);
        }
        if (remaining.size() == result.size()) continue;  // already gone
        auto covered = [&](int pos1, int v1, int pos2, int v2) {
          for (const auto& r : remaining) {
            if (r[static_cast<std::size_t>(pos1)] == v1 &&
                r[static_cast<std::size_t>(pos2)] == v2) {
              return true;
            }
          }
          return false;
        };
        if (covered(0, t[0], 1, t[1]) && covered(0, t[0], 2, t[2]) &&
            covered(1, t[1], 2, t[2])) {
          result = std::move(remaining);
        }
      }
    }
    for (const auto& t : result) {
      facet_images[f].push_back(Simplex{out_vertex(pool, 0, t[0]),
                                        out_vertex(pool, 1, t[1]),
                                        out_vertex(pool, 2, t[2])});
    }
  }

  if (params.restricted_faces) {
    task.delta = downward_closure(pool, task.input, facet_images);
    for (const auto& [facet, images] : facet_images) {
      (void)facet;
      for (const Simplex& im : images) task.output.add(im);
    }
    // Thin the edge images: keep a random non-empty subset of each edge's
    // pairs. Shrinking a face image preserves monotonicity upward; the
    // vertices below are recomputed to stay inside every containing edge.
    for (const Simplex& e : task.input.simplices(1)) {
      std::vector<Simplex> pairs = task.delta.facet_images(e);
      std::vector<Simplex> keep;
      for (const Simplex& p : pairs) {
        if (coin(rng) < params.edge_keep_prob) keep.push_back(p);
      }
      if (keep.empty() && !pairs.empty()) {
        keep.push_back(pairs[static_cast<std::size_t>(
            std::uniform_int_distribution<std::size_t>(0, pairs.size() - 1)(rng))]);
      }
      task.delta.set(e, std::move(keep));
    }
    for (VertexId x : task.input.vertex_ids()) {
      // Values offered by every containing edge image.
      std::vector<Simplex> allowed;
      for (const Simplex& v : task.delta.facet_images(Simplex::single(x))) {
        bool in_all = true;
        for (const Simplex& e : task.input.simplices(1)) {
          if (!e.contains(x)) continue;
          if (!task.delta.image_complex(e).contains_vertex(v[0])) in_all = false;
        }
        if (in_all) allowed.push_back(v);
      }
      task.delta.set(Simplex::single(x), std::move(allowed));
    }
    return task;
  }

  // Universal faces: every chromatic assignment allowed below the top.
  task.input.for_each([&](const Simplex& tau) {
    std::vector<Simplex> images;
    if (tau.size() == 3) {
      images = facet_images.at(tau);
    } else {
      std::vector<Color> ids;
      for (VertexId v : tau) ids.push_back(pool.color(v));
      std::vector<int> pickv(ids.size(), 0);
      while (true) {
        std::vector<VertexId> verts;
        for (std::size_t i = 0; i < ids.size(); ++i) {
          verts.push_back(out_vertex(pool, ids[i], pickv[i]));
        }
        images.push_back(Simplex(std::move(verts)));
        std::size_t i = 0;
        while (i < pickv.size() && ++pickv[i] == m) {
          pickv[i] = 0;
          ++i;
        }
        if (i == pickv.size()) break;
      }
    }
    for (const Simplex& im : images) task.output.add(im);
    task.delta.set(tau, std::move(images));
  });
  return task;
}

}  // namespace

Task random_task(const RandomTaskParams& params) {
  for (std::uint64_t salt = 0; salt < 10; ++salt) {
    Task task = attempt(params, salt);
    if (task.validate().empty()) return task;
  }
  // Restricted faces kept pruning to empty; fall back to universal faces,
  // which are always valid.
  RandomTaskParams relaxed = params;
  relaxed.restricted_faces = false;
  Task task = attempt(relaxed, 0);
  return task;
}

RandomTaskStream::RandomTaskStream(RandomTaskParams params, int max_attempts)
    : params_(std::move(params)), max_attempts_(std::max(1, max_attempts)) {}

Task RandomTaskStream::next() {
  static obs::Counter& dedup_skips =
      obs::MetricsRegistry::global().counter("tasks.random.dedup_skips");
  for (int attempt = 0;; ++attempt) {
    Task task = random_task(params_);
    ++params_.seed;
    std::string fp;
    try {
      fp = fingerprint_of(task).hex();
    } catch (...) {
      // Leaf budget exceeded: can't dedup this draw, emit it as-is.
      return task;
    }
    if (seen_.insert(fp).second || attempt + 1 >= max_attempts_) return task;
    ++skipped_;
    dedup_skips.add();
  }
}

}  // namespace zoo
}  // namespace trichroma
