#include "topology/chromatic.h"

namespace trichroma {

std::set<Color> colors_of(const VertexPool& pool, const Simplex& s) {
  std::set<Color> out;
  for (VertexId v : s) out.insert(pool.color(v));
  return out;
}

bool is_chromatic_simplex(const VertexPool& pool, const Simplex& s) {
  return colors_of(pool, s).size() == s.size();
}

bool is_chromatic_complex(const VertexPool& pool, const SimplicialComplex& k) {
  bool ok = true;
  k.for_each([&](const Simplex& s) {
    if (!is_chromatic_simplex(pool, s)) ok = false;
  });
  return ok;
}

bool is_properly_colored(const VertexPool& pool, const SimplicialComplex& k, int n) {
  std::set<Color> expect;
  for (Color c = 0; c < n; ++c) expect.insert(c);
  for (const Simplex& f : k.facets()) {
    if (colors_of(pool, f) != expect) return false;
  }
  return true;
}

Simplex VertexMap::apply(const Simplex& s) const {
  std::vector<VertexId> out;
  out.reserve(s.size());
  for (VertexId v : s) out.push_back(map_.at(v));
  return Simplex(std::move(out));
}

bool VertexMap::is_simplicial(const SimplicialComplex& domain,
                              const SimplicialComplex& codomain) const {
  bool ok = true;
  domain.for_each([&](const Simplex& s) {
    if (!ok) return;
    for (VertexId v : s) {
      if (!defined(v)) {
        ok = false;
        return;
      }
    }
    if (!codomain.contains(apply(s))) ok = false;
  });
  return ok;
}

bool VertexMap::is_color_preserving(const VertexPool& pool,
                                    const SimplicialComplex& domain) const {
  for (VertexId v : domain.vertex_ids()) {
    if (!defined(v) || pool.color(apply(v)) != pool.color(v)) return false;
  }
  return true;
}

}  // namespace trichroma
