#pragma once
// Chromatic structure of complexes: color sets, chromatic validity,
// chromatic and color-agnostic simplicial maps.

#include <set>
#include <unordered_map>
#include <vector>

#include "topology/complex.h"
#include "topology/simplex.h"
#include "topology/vertex.h"

namespace trichroma {

/// The set of colors (process ids) appearing in `s`.
std::set<Color> colors_of(const VertexPool& pool, const Simplex& s);

/// True iff no color repeats within `s`.
bool is_chromatic_simplex(const VertexPool& pool, const Simplex& s);

/// True iff every simplex of `k` is chromatic. (Checking facets suffices,
/// but every stored simplex is checked for defense in depth.)
bool is_chromatic_complex(const VertexPool& pool, const SimplicialComplex& k);

/// True iff `k`'s facets all carry exactly the colors 0..n-1.
bool is_properly_colored(const VertexPool& pool, const SimplicialComplex& k, int n);

/// A vertex-level map between complexes, applied simplex-wise.
/// f(σ) = { f(v) : v ∈ σ }; note the image may have lower dimension if the
/// map is not injective on σ.
class VertexMap {
 public:
  void set(VertexId from, VertexId to) { map_[from] = to; }
  bool defined(VertexId v) const { return map_.count(v) > 0; }
  VertexId apply(VertexId v) const { return map_.at(v); }
  Simplex apply(const Simplex& s) const;
  std::size_t size() const { return map_.size(); }

  /// True iff every simplex of `domain` maps to a simplex of `codomain`.
  bool is_simplicial(const SimplicialComplex& domain,
                     const SimplicialComplex& codomain) const;

  /// True iff color(f(v)) == color(v) for every vertex of `domain`.
  bool is_color_preserving(const VertexPool& pool,
                           const SimplicialComplex& domain) const;

  const std::unordered_map<VertexId, VertexId, VertexIdHash>& entries() const {
    return map_;
  }

 private:
  std::unordered_map<VertexId, VertexId, VertexIdHash> map_;
};

}  // namespace trichroma
