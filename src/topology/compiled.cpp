#include "topology/compiled.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace trichroma {

namespace {

constexpr std::uint64_t pack(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

void CompiledComplex::Builder::add_closed(const Simplex& s) {
  const auto& v = s.vertices();
  switch (v.size()) {
    case 0:
      return;
    case 1:
      verts_.push_back(raw(v[0]));
      return;
    case 2:
      edges_.push_back(pack(raw(v[0]), raw(v[1])));
      return;
    case 3:
      tris_.push_back({raw(v[0]), raw(v[1]), raw(v[2])});
      return;
    default: {
      const auto d = v.size() - 1;
      if (high_.size() < d - 2) high_.resize(d - 2);
      auto& bucket = high_[d - 3];
      for (VertexId u : v) bucket.push_back(raw(u));
      return;
    }
  }
}

void CompiledComplex::Builder::add(const Simplex& s) {
  const auto& v = s.vertices();
  const std::size_t n = v.size();
  if (n == 0) return;
  if (n > 16) throw std::length_error("CompiledComplex::Builder::add: simplex too large");
  // Enumerate every non-empty vertex subset; subsets of a sorted vector are
  // sorted, so each face lands in its bucket already canonical.
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    const int bits = __builtin_popcountll(mask);
    std::uint32_t face[16];
    int m = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) face[m++] = raw(v[i]);
    }
    switch (bits) {
      case 1:
        verts_.push_back(face[0]);
        break;
      case 2:
        edges_.push_back(pack(face[0], face[1]));
        break;
      case 3:
        tris_.push_back({face[0], face[1], face[2]});
        break;
      default: {
        const std::size_t d = static_cast<std::size_t>(bits) - 1;
        if (high_.size() < d - 2) high_.resize(d - 2);
        auto& bucket = high_[d - 3];
        for (int i = 0; i < bits; ++i) bucket.push_back(face[i]);
        break;
      }
    }
  }
}

void CompiledComplex::Builder::absorb(Builder&& other) {
  auto append = [](auto& dst, auto& src) {
    if (dst.empty()) {
      dst = std::move(src);
    } else {
      dst.insert(dst.end(), src.begin(), src.end());
    }
    src.clear();
  };
  append(verts_, other.verts_);
  append(edges_, other.edges_);
  append(tris_, other.tris_);
  if (high_.size() < other.high_.size()) high_.resize(other.high_.size());
  for (std::size_t i = 0; i < other.high_.size(); ++i) {
    append(high_[i], other.high_[i]);
  }
  other.high_.clear();
}

std::shared_ptr<const CompiledComplex> CompiledComplex::Builder::finish() {
  // shared_ptr<CompiledComplex> with private ctor: allocate via a local
  // subclass trampoline.
  struct Concrete : CompiledComplex {};
  auto out = std::make_shared<Concrete>();
  CompiledComplex& c = *out;

  // 1. Deduplicate the scratch buckets (sorted order is the canonical
  //    iteration order everywhere downstream).
  std::sort(verts_.begin(), verts_.end());
  verts_.erase(std::unique(verts_.begin(), verts_.end()), verts_.end());
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  std::sort(tris_.begin(), tris_.end());
  tris_.erase(std::unique(tris_.begin(), tris_.end()), tris_.end());

  // 2. Dense renumbering: locals in raw-id order.
  const std::size_t nv = verts_.size();
  c.verts_.reserve(nv);
  for (std::uint32_t r : verts_) c.verts_.push_back(VertexId{r});
  const std::uint32_t max_raw = nv == 0 ? 0 : verts_.back() + 1;
  c.dense_.assign(max_raw, kAbsent);
  for (std::size_t i = 0; i < nv; ++i) {
    c.dense_[verts_[i]] = static_cast<Local>(i);
  }
  auto to_local = [&c](std::uint32_t r) { return c.dense_[r]; };

  // 3. Edge table in packed local keys. Locals are monotone in raw ids, so
  //    the raw-sorted list is already local-sorted.
  const std::size_t ne = edges_.size();
  c.edge_keys_.reserve(ne);
  for (std::uint64_t k : edges_) {
    c.edge_keys_.push_back(
        pack(static_cast<std::uint32_t>(to_local(static_cast<std::uint32_t>(k >> 32))),
             static_cast<std::uint32_t>(to_local(static_cast<std::uint32_t>(k & 0xffffffffu)))));
  }

  // 4. Triangle table (stride 3).
  const std::size_t nt = tris_.size();
  c.tri_verts_.reserve(3 * nt);
  for (const auto& t : tris_) {
    c.tri_verts_.push_back(to_local(t[0]));
    c.tri_verts_.push_back(to_local(t[1]));
    c.tri_verts_.push_back(to_local(t[2]));
  }

  // 5. CSR incidence. Iterating the sorted edge/triangle tables appends to
  //    each row in ascending order, so rows come out sorted for free.
  // vertex -> neighbors and vertex -> edges.
  c.nbr_off_.assign(nv + 1, 0);
  c.v2e_off_.assign(nv + 1, 0);
  for (std::size_t e = 0; e < ne; ++e) {
    const auto [u, v] = c.edge(e);
    ++c.nbr_off_[static_cast<std::size_t>(u) + 1];
    ++c.nbr_off_[static_cast<std::size_t>(v) + 1];
    ++c.v2e_off_[static_cast<std::size_t>(u) + 1];
    ++c.v2e_off_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 0; i < nv; ++i) {
    c.nbr_off_[i + 1] += c.nbr_off_[i];
    c.v2e_off_[i + 1] += c.v2e_off_[i];
  }
  c.nbr_.assign(c.nbr_off_[nv], kAbsent);
  c.v2e_.assign(c.v2e_off_[nv], 0);
  {
    std::vector<std::uint32_t> cursor(nv, 0);
    for (std::size_t e = 0; e < ne; ++e) {
      const auto [u, v] = c.edge(e);
      const auto iu = static_cast<std::size_t>(u), iv = static_cast<std::size_t>(v);
      c.nbr_[c.nbr_off_[iu] + cursor[iu]] = v;
      c.v2e_[c.v2e_off_[iu] + cursor[iu]++] = static_cast<std::uint32_t>(e);
      c.nbr_[c.nbr_off_[iv] + cursor[iv]] = u;
      c.v2e_[c.v2e_off_[iv] + cursor[iv]++] = static_cast<std::uint32_t>(e);
    }
  }

  // vertex -> triangles.
  c.v2t_off_.assign(nv + 1, 0);
  for (std::size_t t = 0; t < nt; ++t) {
    for (int i = 0; i < 3; ++i) {
      ++c.v2t_off_[static_cast<std::size_t>(c.tri_verts_[3 * t + i]) + 1];
    }
  }
  for (std::size_t i = 0; i < nv; ++i) c.v2t_off_[i + 1] += c.v2t_off_[i];
  c.v2t_.assign(c.v2t_off_[nv], 0);
  {
    std::vector<std::uint32_t> cursor(nv, 0);
    for (std::size_t t = 0; t < nt; ++t) {
      for (int i = 0; i < 3; ++i) {
        const auto v = static_cast<std::size_t>(c.tri_verts_[3 * t + i]);
        c.v2t_[c.v2t_off_[v] + cursor[v]++] = static_cast<std::uint32_t>(t);
      }
    }
  }

  // 6. Link adjacency bitsets over each neighbor row.
  c.link_off_.assign(nv + 1, 0);
  for (std::size_t i = 0; i < nv; ++i) {
    const std::size_t deg = c.nbr_off_[i + 1] - c.nbr_off_[i];
    c.link_off_[i + 1] = c.link_off_[i] + deg * ((deg + 63) / 64);
  }
  c.link_words_.assign(c.link_off_[nv], 0);
  for (std::size_t t = 0; t < nt; ++t) {
    const Local a = c.tri_verts_[3 * t], b = c.tri_verts_[3 * t + 1],
                d = c.tri_verts_[3 * t + 2];
    const Local tri[3] = {a, b, d};
    for (int i = 0; i < 3; ++i) {
      const Local v = tri[i];
      const Local x = tri[(i + 1) % 3], y = tri[(i + 2) % 3];
      const Local* row = c.neighbors(v);
      const std::size_t deg = c.degree(v);
      const std::size_t px = static_cast<std::size_t>(
          std::lower_bound(row, row + deg, x) - row);
      const std::size_t py = static_cast<std::size_t>(
          std::lower_bound(row, row + deg, y) - row);
      const std::size_t w = (deg + 63) / 64;
      std::uint64_t* words = c.link_words_.data() + c.link_off_[static_cast<std::size_t>(v)];
      words[px * w + py / 64] |= std::uint64_t{1} << (py % 64);
      words[py * w + px / 64] |= std::uint64_t{1} << (px % 64);
    }
  }

  // 7. Cells of dimension >= 3, sorted lexicographically per dimension.
  for (std::size_t i = 0; i < high_.size(); ++i) {
    auto& flat = high_[i];
    const std::size_t stride = i + 4;  // vertices per cell at dim 3+i
    std::vector<std::vector<std::uint32_t>> cells;
    cells.reserve(flat.size() / stride);
    for (std::size_t p = 0; p + stride <= flat.size(); p += stride) {
      cells.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(p),
                         flat.begin() + static_cast<std::ptrdiff_t>(p + stride));
    }
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    HighTable table;
    table.offset = c.high_flat_.size();
    table.cells = cells.size();
    for (const auto& cell : cells) {
      for (std::uint32_t r : cell) c.high_flat_.push_back(to_local(r));
    }
    c.high_.push_back(table);
  }
  // Trim empty trailing dimensions (possible when only some high dims occur).
  while (!c.high_.empty() && c.high_.back().cells == 0) c.high_.pop_back();

  // 8. Dimension.
  c.dimension_ = -1;
  if (!c.verts_.empty()) c.dimension_ = 0;
  if (!c.edge_keys_.empty()) c.dimension_ = 1;
  if (nt > 0) c.dimension_ = 2;
  for (std::size_t i = 0; i < c.high_.size(); ++i) {
    if (c.high_[i].cells > 0) c.dimension_ = static_cast<int>(i) + 3;
  }
  return out;
}

std::shared_ptr<const CompiledComplex> CompiledComplex::compile(
    const SimplicialComplex& k) {
  TRI_SPAN("topology/compile");
  static obs::Counter& compiles =
      obs::MetricsRegistry::global().counter("topology.compiles");
  compiles.add();
  Builder builder;
  k.for_each([&builder](const Simplex& s) { builder.add_closed(s); });
  auto out = builder.finish();
#ifndef NDEBUG
  out->debug_verify_against(k);
#endif
  return out;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

std::ptrdiff_t CompiledComplex::edge_index(Local u, Local v) const {
  const std::uint64_t key =
      pack(static_cast<std::uint32_t>(u), static_cast<std::uint32_t>(v));
  const auto it = std::lower_bound(edge_keys_.begin(), edge_keys_.end(), key);
  if (it == edge_keys_.end() || *it != key) return -1;
  return it - edge_keys_.begin();
}

bool CompiledComplex::contains_triangle(Local a, Local b, Local c) const {
  // Walk the shortest incidence row instead of binary-searching the global
  // triangle table: rows are tiny and cache-resident.
  const Local probe[3] = {a, b, c};
  Local best = a;
  std::size_t best_count = triangles_of_count(a);
  for (int i = 1; i < 3; ++i) {
    const std::size_t n = triangles_of_count(probe[i]);
    if (n < best_count) {
      best_count = n;
      best = probe[i];
    }
  }
  const std::uint32_t* row = triangles_of(best);
  for (std::size_t i = 0; i < best_count; ++i) {
    const std::size_t t = row[i];
    if (tri_verts_[3 * t] == a && tri_verts_[3 * t + 1] == b &&
        tri_verts_[3 * t + 2] == c) {
      return true;
    }
  }
  return false;
}

std::size_t CompiledComplex::count(int d) const {
  switch (d) {
    case 0:
      return verts_.size();
    case 1:
      return edge_keys_.size();
    case 2:
      return num_triangles();
    default:
      if (d < 0 || static_cast<std::size_t>(d - 3) >= high_.size()) return 0;
      return high_[static_cast<std::size_t>(d - 3)].cells;
  }
}

std::size_t CompiledComplex::total_count() const {
  std::size_t total = 0;
  for (int d = 0; d <= dimension_; ++d) total += count(d);
  return total;
}

const CompiledComplex::Local* CompiledComplex::cells_flat(int d) const {
  if (d == 2) return tri_verts_.data();
  if (d >= 3 && static_cast<std::size_t>(d - 3) < high_.size()) {
    return high_flat_.data() + high_[static_cast<std::size_t>(d - 3)].offset;
  }
  return nullptr;
}

bool CompiledComplex::contains(const Simplex& s) const {
  const auto& v = s.vertices();
  const std::size_t n = v.size();
  if (n == 0) return false;
  Local locals[16];
  if (n > 16) return false;
  for (std::size_t i = 0; i < n; ++i) {
    locals[i] = local(v[i]);
    if (locals[i] == kAbsent) return false;
  }
  switch (n) {
    case 1:
      return true;
    case 2:
      return contains_edge(locals[0], locals[1]);
    case 3:
      return contains_triangle(locals[0], locals[1], locals[2]);
    default: {
      const int d = static_cast<int>(n) - 1;
      const Local* flat = cells_flat(d);
      if (flat == nullptr) return false;
      const std::size_t cells = count(d);
      // Binary search over the lexicographically sorted stride-n table.
      std::size_t lo = 0, hi = cells;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        const Local* cell = flat + mid * n;
        const int cmp = [&] {
          for (std::size_t i = 0; i < n; ++i) {
            if (cell[i] != locals[i]) return cell[i] < locals[i] ? -1 : 1;
          }
          return 0;
        }();
        if (cmp == 0) return true;
        if (cmp < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return false;
    }
  }
}

std::size_t CompiledComplex::star_count(Local v, int d) const {
  switch (d) {
    case 0:
      return 1;
    case 1:
      return edges_of_count(v);
    case 2:
      return triangles_of_count(v);
    default: {
      if (d < 3) return 0;
      const Local* flat = cells_flat(d);
      if (flat == nullptr) return 0;
      const std::size_t cells = count(d);
      const std::size_t stride = static_cast<std::size_t>(d) + 1;
      std::size_t total = 0;
      for (std::size_t i = 0; i < cells; ++i) {
        const Local* cell = flat + i * stride;
        for (std::size_t j = 0; j < stride; ++j) {
          if (cell[j] == v) {
            ++total;
            break;
          }
        }
      }
      return total;
    }
  }
}

std::size_t CompiledComplex::link_component_count(Local v) const {
  const std::size_t deg = degree(v);
  if (deg == 0) return 0;
  const std::size_t w = link_words_per_row(v);
  std::uint64_t visited[4] = {0, 0, 0, 0};
  std::vector<std::uint64_t> visited_heap;
  std::uint64_t* seen = visited;
  if (w > 4) {
    visited_heap.assign(w, 0);
    seen = visited_heap.data();
  }
  std::size_t components = 0;
  std::size_t stack[64];
  std::vector<std::size_t> stack_heap;
  std::size_t* frontier = stack;
  if (deg > 64) {
    stack_heap.resize(deg);
    frontier = stack_heap.data();
  }
  for (std::size_t start = 0; start < deg; ++start) {
    if (seen[start / 64] & (std::uint64_t{1} << (start % 64))) continue;
    ++components;
    seen[start / 64] |= std::uint64_t{1} << (start % 64);
    std::size_t top = 0;
    frontier[top++] = start;
    while (top > 0) {
      const std::size_t p = frontier[--top];
      const std::uint64_t* row = link_row(v, p);
      for (std::size_t word = 0; word < w; ++word) {
        std::uint64_t fresh = row[word] & ~seen[word];
        seen[word] |= fresh;
        while (fresh) {
          frontier[top++] = word * 64 +
                            static_cast<std::size_t>(__builtin_ctzll(fresh));
          fresh &= fresh - 1;
        }
      }
    }
  }
  return components;
}

std::vector<std::vector<VertexId>> CompiledComplex::link_components(Local v) const {
  const std::size_t deg = degree(v);
  std::vector<std::vector<VertexId>> components;
  if (deg == 0) return components;
  const std::size_t w = link_words_per_row(v);
  std::vector<std::uint64_t> seen(w, 0);
  std::vector<std::size_t> frontier(deg);
  const Local* row_verts = neighbors(v);
  // Starting from ascending positions keeps components ordered by smallest
  // vertex (positions are in raw-id order), matching connected_components.
  for (std::size_t start = 0; start < deg; ++start) {
    if (seen[start / 64] & (std::uint64_t{1} << (start % 64))) continue;
    seen[start / 64] |= std::uint64_t{1} << (start % 64);
    std::vector<std::size_t> members{start};
    std::size_t top = 0;
    frontier[top++] = start;
    while (top > 0) {
      const std::size_t p = frontier[--top];
      const std::uint64_t* row = link_row(v, p);
      for (std::size_t word = 0; word < w; ++word) {
        std::uint64_t fresh = row[word] & ~seen[word];
        seen[word] |= fresh;
        while (fresh) {
          const std::size_t q =
              word * 64 + static_cast<std::size_t>(__builtin_ctzll(fresh));
          fresh &= fresh - 1;
          members.push_back(q);
          frontier[top++] = q;
        }
      }
    }
    std::sort(members.begin(), members.end());
    std::vector<VertexId> ids;
    ids.reserve(members.size());
    for (std::size_t p : members) {
      ids.push_back(verts_[static_cast<std::size_t>(row_verts[p])]);
    }
    components.push_back(std::move(ids));
  }
  return components;
}

std::size_t CompiledComplex::component_count() const {
  const std::size_t nv = verts_.size();
  if (nv == 0) return 0;
  std::vector<Local> parent(nv);
  for (std::size_t i = 0; i < nv; ++i) parent[i] = static_cast<Local>(i);
  auto find = [&parent](Local x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (std::size_t e = 0; e < edge_keys_.size(); ++e) {
    const auto [u, v] = edge(e);
    const Local ru = find(u), rv = find(v);
    if (ru != rv) parent[static_cast<std::size_t>(ru)] = rv;
  }
  std::size_t roots = 0;
  for (std::size_t i = 0; i < nv; ++i) {
    if (find(static_cast<Local>(i)) == static_cast<Local>(i)) ++roots;
  }
  return roots;
}

std::vector<Simplex> CompiledComplex::facets() const {
  std::vector<Simplex> out;
  auto global = [this](Local l) { return verts_[static_cast<std::size_t>(l)]; };
  // Vertices: maximal iff isolated.
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    if (degree(static_cast<Local>(i)) == 0) {
      out.push_back(Simplex::single(verts_[i]));
    }
  }
  // Edges: maximal iff in no triangle — i.e. the two endpoints are not
  // link-adjacent at either end; check via the bitset of the first endpoint.
  for (std::size_t e = 0; e < edge_keys_.size(); ++e) {
    const auto [u, v] = edge(e);
    const Local* row = neighbors(u);
    const std::size_t deg = degree(u);
    const std::size_t pu = static_cast<std::size_t>(
        std::lower_bound(row, row + deg, v) - row);
    const std::uint64_t* words = link_row(u, pu);
    bool in_triangle = false;
    const std::size_t w = link_words_per_row(u);
    for (std::size_t word = 0; word < w && !in_triangle; ++word) {
      in_triangle = words[word] != 0;
    }
    if (!in_triangle) out.push_back(Simplex{global(u), global(v)});
  }
  // Dimension >= 2 cells: maximal iff not a face of any (d+1)-cell.
  for (int d = 2; d <= dimension_; ++d) {
    const Local* flat = cells_flat(d);
    const std::size_t cells = count(d);
    const std::size_t stride = static_cast<std::size_t>(d) + 1;
    const std::size_t upper = count(d + 1);
    const Local* upper_flat = cells_flat(d + 1);
    for (std::size_t i = 0; i < cells; ++i) {
      const Local* cell = flat + i * stride;
      bool maximal = true;
      for (std::size_t j = 0; j < upper && maximal; ++j) {
        const Local* big = upper_flat + j * (stride + 1);
        // subset test over two sorted runs
        std::size_t a = 0, b = 0;
        while (a < stride && b < stride + 1) {
          if (cell[a] == big[b]) {
            ++a;
            ++b;
          } else if (cell[a] > big[b]) {
            ++b;
          } else {
            break;
          }
        }
        if (a == stride) maximal = false;
      }
      if (maximal) {
        std::vector<VertexId> ids;
        ids.reserve(stride);
        for (std::size_t j = 0; j < stride; ++j) ids.push_back(global(cell[j]));
        out.emplace_back(std::move(ids));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CompiledComplex::debug_verify_against(const SimplicialComplex& k) const {
#ifdef NDEBUG
  (void)k;
#else
  // Same per-dimension counts and every source simplex present: together
  // these prove the stored sets are equal.
  assert(dimension_ == k.dimension());
  for (int d = 0; d <= dimension_; ++d) {
    assert(count(d) == k.count(d));
  }
  k.for_each([this](const Simplex& s) { assert(contains(s)); });
#endif
}

}  // namespace trichroma
