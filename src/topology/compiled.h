#pragma once
// CompiledComplex: a frozen, flat snapshot of a SimplicialComplex for the
// hot solver paths.
//
// SimplicialComplex is the mutable authoring API: per-dimension hash sets of
// heap-allocated Simplex keys, ideal for closure-complete editing but poor
// for the tight loops of the verdict pipeline (decision-map CSP compilation,
// LAP detection, link-connectivity checks), which only ever *read* a complex
// that has stopped changing. compile() freezes such a complex into:
//
//   - a dense int32 vertex renumbering ("locals"), sorted by raw VertexId,
//     so local order == the deterministic global order every consumer
//     already iterates in;
//   - a sorted flat edge table of packed (u,v) local pairs with binary
//     lookup, plus CSR vertex->edge, vertex->triangle, and vertex->neighbor
//     incidence arrays;
//   - per-vertex *link adjacency bitmasks*: the paper fixes dimension <= 2,
//     so the link of a vertex is just a graph over its neighbor row, stored
//     as ceil(deg/64) words per neighbor — link component counting becomes
//     a BFS over machine words instead of building a SimplicialComplex;
//   - flat sorted tables for any dimension >= 3 cells (n > 3 process
//     tasks), so contains() stays exact on every input;
//   - a monotonic arena (std::pmr) owning all of the above, so teardown is
//     O(1) chunk release rather than per-simplex destruction.
//
// The snapshot is immutable and non-movable (the arena pins addresses);
// share it via the shared_ptr the factory returns. Debug builds can verify
// a snapshot against its source with debug_verify_against.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <utility>
#include <vector>

#include "topology/complex.h"
#include "topology/simplex.h"
#include "topology/vertex.h"

namespace trichroma {

class CompiledComplex {
 public:
  /// Dense vertex index into the snapshot; kAbsent marks "not a vertex".
  using Local = std::int32_t;
  static constexpr Local kAbsent = -1;

  CompiledComplex(const CompiledComplex&) = delete;
  CompiledComplex& operator=(const CompiledComplex&) = delete;

  /// Freezes `k`. The snapshot is independent of `k` afterwards.
  static std::shared_ptr<const CompiledComplex> compile(const SimplicialComplex& k);

  /// Streaming construction: feed simplices (duplicates fine, closure not
  /// required), then finish(). Lets producers like subdivide_once emit
  /// facets directly into the flat form without a second pass over hash
  /// sets.
  class Builder {
   public:
    /// Adds `s` and (implicitly) every face of it.
    void add(const Simplex& s);
    /// Adds `s` alone; the caller promises the stream is closure-complete
    /// (used by compile(), whose source already stores every face).
    void add_closed(const Simplex& s);
    /// Steals every cell `other` has accumulated. Because finish() sorts and
    /// deduplicates globally, a builder assembled by absorbing per-chunk
    /// builders produces a snapshot byte-identical to one fed the same cells
    /// sequentially, in any order — the merge step of the parallel
    /// subdivision build relies on exactly that. `other` is left empty.
    void absorb(Builder&& other);
    std::shared_ptr<const CompiledComplex> finish();

   private:
    // Scratch cells by dimension, as raw vertex ids; deduplicated at finish.
    std::vector<std::uint32_t> verts_;
    std::vector<std::uint64_t> edges_;  // packed (raw_u << 32) | raw_v, u < v
    std::vector<std::array<std::uint32_t, 3>> tris_;
    std::vector<std::vector<std::uint32_t>> high_;  // high_[i]: dim 3+i cells, flat
  };

  // --- vertices -----------------------------------------------------------

  std::size_t num_vertices() const { return verts_.size(); }
  /// Global id of local index `i` (locals are sorted by raw id).
  VertexId vertex(Local i) const { return verts_[static_cast<std::size_t>(i)]; }
  /// Local index of `v`, or kAbsent.
  Local local(VertexId v) const {
    const std::uint32_t r = raw(v);
    return r < dense_.size() ? dense_[r] : kAbsent;
  }
  bool contains_vertex(VertexId v) const { return local(v) != kAbsent; }

  // --- edges --------------------------------------------------------------

  std::size_t num_edges() const { return edge_keys_.size(); }
  std::pair<Local, Local> edge(std::size_t e) const {
    const std::uint64_t k = edge_keys_[e];
    return {static_cast<Local>(k >> 32),
            static_cast<Local>(k & 0xffffffffu)};
  }
  /// Index into the edge table, or -1. Requires u < v (locals).
  std::ptrdiff_t edge_index(Local u, Local v) const;
  bool contains_edge(Local u, Local v) const { return edge_index(u, v) >= 0; }

  // --- triangles ----------------------------------------------------------

  std::size_t num_triangles() const { return tri_verts_.size() / 3; }
  std::array<Local, 3> triangle(std::size_t t) const {
    return {tri_verts_[3 * t], tri_verts_[3 * t + 1], tri_verts_[3 * t + 2]};
  }
  bool contains_triangle(Local a, Local b, Local c) const;

  // --- generic cells ------------------------------------------------------

  int dimension() const { return dimension_; }
  std::size_t count(int d) const;
  std::size_t total_count() const;
  /// Flat vertex array of the d-cells, stride d + 1, cells sorted
  /// lexicographically; d >= 2. Empty when there are none.
  const Local* cells_flat(int d) const;
  /// Exact membership test for any simplex (locals resolved internally).
  bool contains(const Simplex& s) const;

  // --- incidence (CSR rows) -----------------------------------------------

  std::size_t degree(Local v) const {
    const auto i = static_cast<std::size_t>(v);
    return nbr_off_[i + 1] - nbr_off_[i];
  }
  /// Neighbors of `v` as locals, sorted ascending.
  const Local* neighbors(Local v) const { return nbr_.data() + nbr_off_[static_cast<std::size_t>(v)]; }
  /// Edge indices incident to `v`, ascending.
  const std::uint32_t* edges_of(Local v) const { return v2e_.data() + v2e_off_[static_cast<std::size_t>(v)]; }
  std::size_t edges_of_count(Local v) const {
    const auto i = static_cast<std::size_t>(v);
    return v2e_off_[i + 1] - v2e_off_[i];
  }
  /// Triangle indices incident to `v`, ascending.
  const std::uint32_t* triangles_of(Local v) const { return v2t_.data() + v2t_off_[static_cast<std::size_t>(v)]; }
  std::size_t triangles_of_count(Local v) const {
    const auto i = static_cast<std::size_t>(v);
    return v2t_off_[i + 1] - v2t_off_[i];
  }
  /// Number of d-simplices containing vertex(v) (the open star).
  std::size_t star_count(Local v, int d) const;

  // --- links (dimension <= 2 structure) -----------------------------------

  /// True iff lk(v) is the empty complex (v is isolated).
  bool link_empty(Local v) const { return degree(v) == 0; }
  /// Number of connected components of lk(v); 0 when the link is empty.
  std::size_t link_component_count(Local v) const;
  /// Components of lk(v) in the format of graph.h's connected_components:
  /// each a sorted vector of global ids, components ordered by smallest id.
  std::vector<std::vector<VertexId>> link_components(Local v) const;
  /// True iff lk(v) is non-empty and connected.
  bool link_connected(Local v) const {
    return degree(v) > 0 && link_component_count(v) == 1;
  }

  // --- whole-complex queries ----------------------------------------------

  /// Connected components of the 1-skeleton (isolated vertices count).
  std::size_t component_count() const;
  /// Maximal simplices, sorted — matches SimplicialComplex::facets().
  std::vector<Simplex> facets() const;

  /// Asserts (debug builds) that this snapshot stores exactly the simplices
  /// of `k`. No-op under NDEBUG.
  void debug_verify_against(const SimplicialComplex& k) const;

 private:
  friend class Builder;
  CompiledComplex() = default;

  /// Words per neighbor-row bitset of `v`: ceil(degree / 64).
  std::size_t link_words_per_row(Local v) const { return (degree(v) + 63) / 64; }
  const std::uint64_t* link_row(Local v, std::size_t position) const {
    return link_words_.data() + link_off_[static_cast<std::size_t>(v)] +
           position * link_words_per_row(v);
  }

  // All storage below lives in (or is sized once and never reallocates out
  // of) the arena; declaration order matters: the arena must outlive the
  // containers.
  std::pmr::monotonic_buffer_resource arena_;

  std::pmr::vector<VertexId> verts_{&arena_};      // local -> global, sorted
  std::pmr::vector<Local> dense_{&arena_};         // raw(global) -> local
  std::pmr::vector<std::uint64_t> edge_keys_{&arena_};  // sorted (u<<32)|v
  std::pmr::vector<Local> tri_verts_{&arena_};     // stride 3, sorted triples

  // CSR incidence.
  std::pmr::vector<std::uint32_t> nbr_off_{&arena_};
  std::pmr::vector<Local> nbr_{&arena_};
  std::pmr::vector<std::uint32_t> v2e_off_{&arena_};
  std::pmr::vector<std::uint32_t> v2e_{&arena_};
  std::pmr::vector<std::uint32_t> v2t_off_{&arena_};
  std::pmr::vector<std::uint32_t> v2t_{&arena_};

  // Link adjacency bitsets: for vertex v with degree g and w = ceil(g/64),
  // positions p in [0, g) own words link_words_[link_off_[v] + p*w, ... +w):
  // bit q set iff neighbors p and q are joined in lk(v) (share a triangle
  // with v).
  std::pmr::vector<std::size_t> link_off_{&arena_};
  std::pmr::vector<std::uint64_t> link_words_{&arena_};

  // Cells of dimension >= 3 (n > 3 process tasks): flat sorted tables.
  struct HighTable {
    std::size_t offset = 0;  // into high_flat_
    std::size_t cells = 0;
  };
  std::vector<HighTable> high_;  // high_[i] describes dim 3+i
  std::pmr::vector<Local> high_flat_{&arena_};

  int dimension_ = -1;
};

}  // namespace trichroma
