#include "topology/complex.h"

#include <algorithm>
#include <cassert>

namespace trichroma {

std::unordered_set<Simplex, SimplexHash>* SimplicialComplex::level(int d) {
  if (d < 0 || static_cast<std::size_t>(d) >= by_dim_.size()) return nullptr;
  return &by_dim_[static_cast<std::size_t>(d)];
}

const std::unordered_set<Simplex, SimplexHash>* SimplicialComplex::level(int d) const {
  if (d < 0 || static_cast<std::size_t>(d) >= by_dim_.size()) return nullptr;
  return &by_dim_[static_cast<std::size_t>(d)];
}

void SimplicialComplex::add(const Simplex& s) {
  assert(!s.empty());
  if (contains(s)) return;
  const auto d = static_cast<std::size_t>(s.dim());
  if (by_dim_.size() <= d) by_dim_.resize(d + 1);
  for (const Simplex& face : s.faces()) {
    by_dim_[static_cast<std::size_t>(face.dim())].insert(face);
  }
}

void SimplicialComplex::add_all(const SimplicialComplex& other) {
  // Adding only facets suffices: `add` closes under faces.
  for (const Simplex& f : other.facets()) add(f);
}

void SimplicialComplex::merge_from(SimplicialComplex&& other) {
  if (by_dim_.size() < other.by_dim_.size()) by_dim_.resize(other.by_dim_.size());
  for (std::size_t d = 0; d < other.by_dim_.size(); ++d) {
    auto& src = other.by_dim_[d];
    auto& dst = by_dim_[d];
    if (dst.empty()) {
      dst = std::move(src);
    } else {
      // Node splice: duplicates stay behind in `src` and are dropped with it.
      dst.merge(src);
    }
    src.clear();
  }
  other.by_dim_.clear();
}

void SimplicialComplex::remove_with_cofaces(const Simplex& s) {
  if (!contains(s)) return;
  for (int d = s.dim(); d < static_cast<int>(by_dim_.size()); ++d) {
    auto& lvl = by_dim_[static_cast<std::size_t>(d)];
    for (auto it = lvl.begin(); it != lvl.end();) {
      if (it->contains_all(s)) {
        it = lvl.erase(it);
      } else {
        ++it;
      }
    }
  }
  while (!by_dim_.empty() && by_dim_.back().empty()) by_dim_.pop_back();
}

bool SimplicialComplex::contains(const Simplex& s) const {
  const auto* lvl = level(s.dim());
  return lvl != nullptr && lvl->count(s) > 0;
}

bool SimplicialComplex::empty() const {
  for (const auto& lvl : by_dim_)
    if (!lvl.empty()) return false;
  return true;
}

int SimplicialComplex::dimension() const {
  for (int d = static_cast<int>(by_dim_.size()) - 1; d >= 0; --d)
    if (!by_dim_[static_cast<std::size_t>(d)].empty()) return d;
  return -1;
}

std::size_t SimplicialComplex::count(int d) const {
  const auto* lvl = level(d);
  return lvl == nullptr ? 0 : lvl->size();
}

std::size_t SimplicialComplex::total_count() const {
  std::size_t total = 0;
  for (const auto& lvl : by_dim_) total += lvl.size();
  return total;
}

std::vector<Simplex> SimplicialComplex::simplices(int d) const {
  std::vector<Simplex> out;
  const auto* lvl = level(d);
  if (lvl == nullptr) return out;
  out.assign(lvl->begin(), lvl->end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Simplex> SimplicialComplex::all_simplices() const {
  std::vector<Simplex> out;
  for (int d = 0; d <= dimension(); ++d) {
    auto lvl = simplices(d);
    out.insert(out.end(), lvl.begin(), lvl.end());
  }
  return out;
}

std::vector<VertexId> SimplicialComplex::vertex_ids() const {
  std::vector<VertexId> out;
  const auto* lvl = level(0);
  if (lvl == nullptr) return out;
  out.reserve(lvl->size());
  for (const Simplex& s : *lvl) out.push_back(s[0]);
  std::sort(out.begin(), out.end(),
            [](VertexId a, VertexId b) { return raw(a) < raw(b); });
  return out;
}

std::vector<Simplex> SimplicialComplex::facets() const {
  std::vector<Simplex> out;
  for (int d = 0; d < static_cast<int>(by_dim_.size()); ++d) {
    for (const Simplex& s : by_dim_[static_cast<std::size_t>(d)]) {
      // s is maximal iff no simplex one dimension up contains it.
      bool maximal = true;
      const auto* up = level(d + 1);
      if (up != nullptr) {
        for (const Simplex& t : *up) {
          if (t.contains_all(s)) {
            maximal = false;
            break;
          }
        }
      }
      if (maximal) out.push_back(s);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SimplicialComplex::is_pure() const {
  const int d = dimension();
  if (d < 0) return true;
  for (const Simplex& f : facets())
    if (f.dim() != d) return false;
  return true;
}

SimplicialComplex SimplicialComplex::skeleton(int k) const {
  SimplicialComplex out;
  for (int d = 0; d <= std::min(k, dimension()); ++d) {
    const auto* lvl = level(d);
    if (lvl == nullptr) continue;
    for (const Simplex& s : *lvl) out.add(s);
  }
  return out;
}

SimplicialComplex SimplicialComplex::link(VertexId v) const {
  SimplicialComplex out;
  for (const auto& lvl : by_dim_) {
    for (const Simplex& s : lvl) {
      if (s.contains(v) && s.size() > 1) out.add(s.without(v));
    }
  }
  return out;
}

SimplicialComplex SimplicialComplex::star(VertexId v) const {
  SimplicialComplex out;
  for (const auto& lvl : by_dim_) {
    for (const Simplex& s : lvl) {
      if (s.contains(v)) out.add(s);
    }
  }
  return out;
}

SimplicialComplex SimplicialComplex::induced(
    const std::unordered_set<VertexId, VertexIdHash>& allowed) const {
  SimplicialComplex out;
  for (const auto& lvl : by_dim_) {
    for (const Simplex& s : lvl) {
      bool ok = true;
      for (VertexId v : s) {
        if (allowed.count(v) == 0) {
          ok = false;
          break;
        }
      }
      if (ok) out.add(s);
    }
  }
  return out;
}

long long SimplicialComplex::euler_characteristic() const {
  long long chi = 0;
  for (int d = 0; d < static_cast<int>(by_dim_.size()); ++d) {
    const long long c = static_cast<long long>(by_dim_[static_cast<std::size_t>(d)].size());
    chi += (d % 2 == 0) ? c : -c;
  }
  return chi;
}

bool SimplicialComplex::operator==(const SimplicialComplex& other) const {
  return subcomplex_of(other) && other.subcomplex_of(*this);
}

bool SimplicialComplex::subcomplex_of(const SimplicialComplex& other) const {
  for (const auto& lvl : by_dim_) {
    for (const Simplex& s : lvl) {
      if (!other.contains(s)) return false;
    }
  }
  return true;
}

std::string SimplicialComplex::to_string(const VertexPool& pool) const {
  std::string out;
  for (const Simplex& f : facets()) {
    out += f.to_string(pool);
    out += "\n";
  }
  return out;
}

}  // namespace trichroma
