#pragma once
// SimplicialComplex: a closure-complete, dimension-indexed simplex store.
//
// The complex stores *every* simplex explicitly (not just facets), because
// all the paper's operations — links, stars, skeletons, carrier-map images,
// LAP splitting — are set manipulations over simplices of every dimension.
// Complexes in this codebase are small (hundreds to a few hundred thousand
// simplices), so explicit storage is both simplest and fast enough.

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "topology/simplex.h"
#include "topology/vertex.h"

namespace trichroma {

class SimplicialComplex {
 public:
  SimplicialComplex() = default;

  /// Adds a simplex and all of its non-empty faces (closure completion).
  void add(const Simplex& s);
  /// Adds every simplex of `other`.
  void add_all(const SimplicialComplex& other);

  /// Moves every simplex of `other` into this complex without recomputing
  /// faces: both sides must already be closure-complete (the union of two
  /// closed complexes is closed). This is the merge step of the chunked
  /// parallel subdivision build — each chunk closes its own facets, so the
  /// merge is pure node splicing. `other` is left empty.
  void merge_from(SimplicialComplex&& other);

  /// Removes a simplex and every simplex containing it (star removal),
  /// keeping the complex closed under inclusion.
  void remove_with_cofaces(const Simplex& s);

  bool contains(const Simplex& s) const;
  bool contains_vertex(VertexId v) const { return contains(Simplex::single(v)); }

  bool empty() const;
  /// Dimension of the complex: max dimension of any simplex; -1 if empty.
  int dimension() const;
  /// Number of simplices of dimension `d`.
  std::size_t count(int d) const;
  /// Total number of simplices (all dimensions).
  std::size_t total_count() const;

  /// All simplices of dimension `d`, in deterministic (sorted) order.
  std::vector<Simplex> simplices(int d) const;
  /// All simplices of every dimension, in deterministic order.
  std::vector<Simplex> all_simplices() const;
  /// All vertices, sorted by id.
  std::vector<VertexId> vertex_ids() const;

  /// Maximal simplices (not contained in any other simplex), sorted.
  std::vector<Simplex> facets() const;

  /// True iff every facet has dimension == dimension().
  bool is_pure() const;

  /// The k-skeleton: all simplices of dimension <= k.
  SimplicialComplex skeleton(int k) const;

  /// The link of `v`: { σ : v ∉ σ and σ ∪ {v} ∈ K }.
  SimplicialComplex link(VertexId v) const;

  /// The closed star of `v`: all simplices containing v, plus their faces.
  SimplicialComplex star(VertexId v) const;

  /// Subcomplex of all simplices whose vertices lie in `allowed`.
  SimplicialComplex induced(const std::unordered_set<VertexId, VertexIdHash>& allowed) const;

  /// Euler characteristic: Σ_d (-1)^d · count(d).
  long long euler_characteristic() const;

  /// True iff the two complexes contain exactly the same simplices.
  bool operator==(const SimplicialComplex& other) const;

  /// True iff every simplex of this complex is in `other`.
  bool subcomplex_of(const SimplicialComplex& other) const;

  /// Multi-line listing of facets, for diagnostics.
  std::string to_string(const VertexPool& pool) const;

  /// Visits every stored simplex (unspecified order); the callback must not
  /// mutate the complex.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& level : by_dim_)
      for (const Simplex& s : level) f(s);
  }

 private:
  // by_dim_[d] holds the simplices of dimension d.
  std::vector<std::unordered_set<Simplex, SimplexHash>> by_dim_;

  std::unordered_set<Simplex, SimplexHash>* level(int d);
  const std::unordered_set<Simplex, SimplexHash>* level(int d) const;
};

}  // namespace trichroma
