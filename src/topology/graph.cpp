#include "topology/graph.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace trichroma {

std::unordered_map<VertexId, std::vector<VertexId>, VertexIdHash> adjacency(
    const SimplicialComplex& k) {
  std::unordered_map<VertexId, std::vector<VertexId>, VertexIdHash> adj;
  for (VertexId v : k.vertex_ids()) adj[v];  // ensure isolated vertices appear
  for (const Simplex& e : k.simplices(1)) {
    adj[e[0]].push_back(e[1]);
    adj[e[1]].push_back(e[0]);
  }
  for (auto& [v, nbrs] : adj) {
    (void)v;
    std::sort(nbrs.begin(), nbrs.end(),
              [](VertexId a, VertexId b) { return raw(a) < raw(b); });
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

std::vector<std::vector<VertexId>> connected_components(const SimplicialComplex& k) {
  const auto adj = adjacency(k);
  std::unordered_map<VertexId, bool, VertexIdHash> seen;
  std::vector<std::vector<VertexId>> components;
  for (VertexId root : k.vertex_ids()) {
    if (seen[root]) continue;
    std::vector<VertexId> comp;
    std::deque<VertexId> queue{root};
    seen[root] = true;
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      comp.push_back(v);
      for (VertexId u : adj.at(v)) {
        if (!seen[u]) {
          seen[u] = true;
          queue.push_back(u);
        }
      }
    }
    std::sort(comp.begin(), comp.end(),
              [](VertexId a, VertexId b) { return raw(a) < raw(b); });
    components.push_back(std::move(comp));
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return raw(a[0]) < raw(b[0]); });
  return components;
}

std::size_t component_count(const SimplicialComplex& k) {
  return connected_components(k).size();
}

bool is_connected(const SimplicialComplex& k) { return component_count(k) == 1; }

bool same_component(const SimplicialComplex& k, VertexId a, VertexId b) {
  for (const auto& comp : connected_components(k)) {
    const bool has_a = std::binary_search(
        comp.begin(), comp.end(), a,
        [](VertexId x, VertexId y) { return raw(x) < raw(y); });
    if (has_a) {
      return std::binary_search(comp.begin(), comp.end(), b,
                                [](VertexId x, VertexId y) { return raw(x) < raw(y); });
    }
  }
  return false;
}

std::optional<std::vector<VertexId>> lex_min_shortest_path_symmetric(
    const SimplicialComplex& k, VertexId from, VertexId to) {
  // Canonicalize by orienting from the smaller endpoint, comparing the two
  // greedy candidates, and reversing back if needed.
  if (raw(to) < raw(from)) {
    auto path = lex_min_shortest_path_symmetric(k, to, from);
    if (path.has_value()) std::reverse(path->begin(), path->end());
    return path;
  }
  auto forward = lex_min_shortest_path(k, from, to);
  auto backward = lex_min_shortest_path(k, to, from);
  if (!forward.has_value() || !backward.has_value()) return std::nullopt;
  std::reverse(backward->begin(), backward->end());
  return std::min(*forward, *backward,
                  [](const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
                    return std::lexicographical_compare(
                        a.begin(), a.end(), b.begin(), b.end(),
                        [](VertexId x, VertexId y) { return raw(x) < raw(y); });
                  });
}

std::optional<std::size_t> path_distance(const SimplicialComplex& k, VertexId from,
                                         VertexId to) {
  const auto adj = adjacency(k);
  if (adj.count(from) == 0 || adj.count(to) == 0) return std::nullopt;
  std::unordered_map<VertexId, std::size_t, VertexIdHash> dist;
  std::deque<VertexId> queue{from};
  dist[from] = 0;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    if (v == to) return dist[v];
    for (VertexId u : adj.at(v)) {
      if (dist.count(u) == 0) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::vector<VertexId>> lex_min_shortest_path(const SimplicialComplex& k,
                                                           VertexId from, VertexId to) {
  const auto adj = adjacency(k);
  if (adj.count(from) == 0 || adj.count(to) == 0) return std::nullopt;
  if (from == to) return std::vector<VertexId>{from};

  // BFS from `to` gives every vertex its distance to the target; then the
  // lexicographically-smallest shortest path is built greedily from `from`,
  // always stepping to the smallest neighbor one step closer to the target.
  std::unordered_map<VertexId, std::size_t, VertexIdHash> dist_to;
  std::deque<VertexId> queue{to};
  dist_to[to] = 0;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : adj.at(v)) {
      if (dist_to.count(u) == 0) {
        dist_to[u] = dist_to[v] + 1;
        queue.push_back(u);
      }
    }
  }
  if (dist_to.count(from) == 0) return std::nullopt;

  std::vector<VertexId> path{from};
  VertexId cur = from;
  while (cur != to) {
    const std::size_t d = dist_to.at(cur);
    VertexId best{std::numeric_limits<std::uint32_t>::max()};
    bool found = false;
    for (VertexId u : adj.at(cur)) {  // sorted, so first hit is lex-min
      auto it = dist_to.find(u);
      if (it != dist_to.end() && it->second + 1 == d) {
        best = u;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;  // unreachable: dist structure is consistent
    path.push_back(best);
    cur = best;
  }
  return path;
}

}  // namespace trichroma
