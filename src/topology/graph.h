#pragma once
// Graph-level topology of 1-dimensional complexes.
//
// Links of vertices in 2-dimensional complexes are graphs; the paper's core
// notion (local articulation points) and its Figure-7 algorithm (shortest
// lexicographically-smallest link paths) both reduce to elementary graph
// computations, implemented here over SimplicialComplex's 0/1-skeleton.

#include <optional>
#include <unordered_map>
#include <vector>

#include "topology/complex.h"

namespace trichroma {

/// Connected components of the 1-skeleton of `k` (isolated vertices form
/// their own components). Each component is a sorted vector of vertex ids;
/// components are sorted by their smallest vertex.
std::vector<std::vector<VertexId>> connected_components(const SimplicialComplex& k);

/// Number of connected components of `k`'s 1-skeleton.
std::size_t component_count(const SimplicialComplex& k);

/// True iff `k` is non-empty and has exactly one connected component.
bool is_connected(const SimplicialComplex& k);

/// True iff `a` and `b` are in the same component of `k` (both must be
/// vertices of `k`).
bool same_component(const SimplicialComplex& k, VertexId a, VertexId b);

/// The lexicographically-smallest shortest path from `from` to `to` along
/// edges of `k` (inclusive of endpoints; a solo vertex yields {from}).
/// Lexicographic order compares the sequences of raw vertex ids, matching
/// the paper's "assign a unique number to each vertex" convention.
/// Returns nullopt if no path exists.
std::optional<std::vector<VertexId>> lex_min_shortest_path(const SimplicialComplex& k,
                                                           VertexId from, VertexId to);

/// Direction-independent canonical shortest path: both endpoints compute the
/// same path regardless of argument order (the result is reversed as needed
/// so it runs from `from` to `to`). This is the path Π of the paper's
/// Figure-7 algorithm, where the two negotiating processes must agree on
/// one path while naming its endpoints in opposite orders.
std::optional<std::vector<VertexId>> lex_min_shortest_path_symmetric(
    const SimplicialComplex& k, VertexId from, VertexId to);

/// Distance (edge count) between two vertices in `k`, or nullopt.
std::optional<std::size_t> path_distance(const SimplicialComplex& k, VertexId from,
                                         VertexId to);

/// Adjacency list of `k`'s 1-skeleton with sorted neighbor lists.
std::unordered_map<VertexId, std::vector<VertexId>, VertexIdHash> adjacency(
    const SimplicialComplex& k);

}  // namespace trichroma
