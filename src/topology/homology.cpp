#include "topology/homology.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>

#include "topology/graph.h"

namespace trichroma {

namespace {

/// Dense GF(2) matrix with 64-bit packed rows; supports rank computation and
/// membership-in-column-span queries via incremental row reduction.
class Gf2Matrix {
 public:
  Gf2Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), words_((cols + 63) / 64),
        data_(rows * words_, 0) {}

  void set(std::size_t r, std::size_t c) {
    data_[r * words_ + c / 64] |= (std::uint64_t{1} << (c % 64));
  }

  /// Rank via Gaussian elimination (destructive on a copy).
  std::size_t rank() const {
    std::vector<std::vector<std::uint64_t>> rows;
    rows.reserve(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      rows.emplace_back(data_.begin() + static_cast<long>(r * words_),
                        data_.begin() + static_cast<long>((r + 1) * words_));
    }
    std::size_t rank = 0;
    for (std::size_t c = 0; c < cols_ && rank < rows.size(); ++c) {
      const std::size_t w = c / 64;
      const std::uint64_t bit = std::uint64_t{1} << (c % 64);
      std::size_t pivot = rank;
      while (pivot < rows.size() && (rows[pivot][w] & bit) == 0) ++pivot;
      if (pivot == rows.size()) continue;
      std::swap(rows[rank], rows[pivot]);
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r != rank && (rows[r][w] & bit)) {
          for (std::size_t k = 0; k < words_; ++k) rows[r][k] ^= rows[rank][k];
        }
      }
      ++rank;
    }
    return rank;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::vector<std::uint64_t> row(std::size_t r) const {
    return {data_.begin() + static_cast<long>(r * words_),
            data_.begin() + static_cast<long>((r + 1) * words_)};
  }

 private:
  std::size_t rows_, cols_, words_;
  std::vector<std::uint64_t> data_;
};

/// Row-echelon basis over GF(2); supports adding vectors and testing
/// membership in the span.
class Gf2Span {
 public:
  explicit Gf2Span(std::size_t dim) : words_((dim + 63) / 64) {}

  /// Reduces `v` against the basis; if nonzero remains, adds it and returns
  /// true (dimension grew).
  bool add(std::vector<std::uint64_t> v) {
    reduce(v);
    if (is_zero(v)) return false;
    basis_.push_back(std::move(v));
    normalize_last();
    return true;
  }

  bool contains(std::vector<std::uint64_t> v) const {
    reduce(v);
    return is_zero(v);
  }

 private:
  static bool is_zero(const std::vector<std::uint64_t>& v) {
    for (std::uint64_t w : v)
      if (w != 0) return false;
    return true;
  }

  static int leading_bit(const std::vector<std::uint64_t>& v) {
    for (std::size_t w = 0; w < v.size(); ++w) {
      if (v[w] != 0) {
        return static_cast<int>(w * 64 + static_cast<std::size_t>(__builtin_ctzll(v[w])));
      }
    }
    return -1;
  }

  void reduce(std::vector<std::uint64_t>& v) const {
    for (const auto& b : basis_) {
      const int lb = leading_bit(b);
      if (lb >= 0 && (v[static_cast<std::size_t>(lb) / 64] &
                      (std::uint64_t{1} << (lb % 64)))) {
        for (std::size_t k = 0; k < v.size(); ++k) v[k] ^= b[k];
      }
    }
  }

  void normalize_last() {
    // Keep basis rows mutually reduced for a canonical echelon form.
    auto& last = basis_.back();
    for (std::size_t i = 0; i + 1 < basis_.size(); ++i) {
      const int lb = leading_bit(last);
      if (lb >= 0 && (basis_[i][static_cast<std::size_t>(lb) / 64] &
                      (std::uint64_t{1} << (lb % 64)))) {
        for (std::size_t k = 0; k < last.size(); ++k) basis_[i][k] ^= last[k];
      }
    }
  }

  std::size_t words_;
  std::vector<std::vector<std::uint64_t>> basis_;
};

/// Index mapping for the d-simplices of a complex.
struct SimplexIndex {
  std::vector<Simplex> list;
  std::unordered_map<Simplex, std::size_t, SimplexHash> at;

  explicit SimplexIndex(const SimplicialComplex& k, int d) : list(k.simplices(d)) {
    for (std::size_t i = 0; i < list.size(); ++i) at.emplace(list[i], i);
  }
};

Gf2Matrix boundary_matrix(const SimplexIndex& lower, const SimplexIndex& upper) {
  Gf2Matrix m(lower.list.size(), upper.list.size());
  for (std::size_t c = 0; c < upper.list.size(); ++c) {
    for (const Simplex& face : upper.list[c].boundary_faces()) {
      m.set(lower.at.at(face), c);
    }
  }
  return m;
}

std::vector<std::uint64_t> chain_to_bits(const Chain& c, const SimplexIndex& idx) {
  std::vector<std::uint64_t> bits((idx.list.size() + 63) / 64, 0);
  for (const Simplex& s : c) {
    const std::size_t i = idx.at.at(s);
    bits[i / 64] ^= (std::uint64_t{1} << (i % 64));
  }
  return bits;
}

}  // namespace

Chain chain_add(const Chain& a, const Chain& b) {
  // Multiset symmetric difference with GF(2) cancellation.
  std::unordered_map<Simplex, int, SimplexHash> count;
  for (const Simplex& s : a) count[s] ^= 1;
  for (const Simplex& s : b) count[s] ^= 1;
  Chain out;
  for (const auto& [s, c] : count) {
    if (c) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Chain boundary(const Chain& c) {
  Chain acc;
  for (const Simplex& s : c) {
    Chain faces;
    for (const Simplex& f : s.boundary_faces()) faces.push_back(f);
    acc = chain_add(acc, faces);
  }
  return acc;
}

bool is_one_cycle(const Chain& c) {
  for (const Simplex& s : c) {
    if (s.dim() != 1) return false;
  }
  return boundary(c).empty();
}

Chain loop_to_chain(const std::vector<VertexId>& closed_path) {
  Chain edges;
  if (closed_path.size() < 2) return edges;
  for (std::size_t i = 0; i + 1 < closed_path.size(); ++i) {
    if (closed_path[i] != closed_path[i + 1]) {
      edges.push_back(Simplex{closed_path[i], closed_path[i + 1]});
    }
  }
  if (closed_path.back() != closed_path.front()) {
    edges.push_back(Simplex{closed_path.back(), closed_path.front()});
  }
  // Cancel duplicate edges over GF(2).
  return chain_add(edges, Chain{});
}

BettiNumbers betti_numbers(const SimplicialComplex& k) {
  BettiNumbers out;
  if (k.empty()) return out;
  const SimplexIndex v0(k, 0), v1(k, 1), v2(k, 2);
  const std::size_t rank_d1 =
      v1.list.empty() ? 0 : boundary_matrix(v0, v1).rank();
  const std::size_t rank_d2 =
      v2.list.empty() ? 0 : boundary_matrix(v1, v2).rank();
  out.b0 = static_cast<long long>(v0.list.size() - rank_d1);
  out.b1 = static_cast<long long>(v1.list.size() - rank_d1 - rank_d2);
  out.b2 = static_cast<long long>(v2.list.size() - rank_d2);
  return out;
}

bool bounds_in(const SimplicialComplex& k, const Chain& cycle) {
  return bounds_modulo(k, cycle, {});
}

bool bounds_modulo(const SimplicialComplex& k, const Chain& cycle,
                   const std::vector<Chain>& generators) {
  assert(is_one_cycle(cycle));
  const SimplexIndex v1(k, 1), v2(k, 2);
  for (const Simplex& e : cycle) {
    if (v1.at.count(e) == 0) return false;  // cycle leaves the complex
  }
  Gf2Span span(v1.list.size());
  // Span of ∂2 columns (the boundary space B1)...
  for (const Simplex& t : v2.list) {
    Chain b;
    for (const Simplex& f : t.boundary_faces()) b.push_back(f);
    span.add(chain_to_bits(b, v1));
  }
  // ... plus the allowed adjustment generators.
  for (const Chain& g : generators) {
    for (const Simplex& e : g) {
      if (v1.at.count(e) == 0) return false;
    }
    span.add(chain_to_bits(g, v1));
  }
  return span.contains(chain_to_bits(cycle, v1));
}

std::vector<Chain> cycle_basis(const SimplicialComplex& k) {
  // Spanning forest via BFS; each non-tree edge closes one fundamental cycle.
  const auto adj = adjacency(k);
  std::unordered_map<VertexId, VertexId, VertexIdHash> parent;
  std::unordered_map<VertexId, bool, VertexIdHash> seen;
  std::vector<Chain> out;

  auto tree_path_to_root = [&](VertexId v) {
    std::vector<VertexId> path{v};
    while (parent.count(v) > 0 && parent.at(v) != v) {
      v = parent.at(v);
      path.push_back(v);
    }
    return path;
  };

  for (VertexId root : k.vertex_ids()) {
    if (seen[root]) continue;
    parent[root] = root;
    seen[root] = true;
    std::vector<VertexId> queue{root};
    std::size_t head = 0;
    while (head < queue.size()) {
      VertexId v = queue[head++];
      for (VertexId u : adj.at(v)) {
        if (!seen[u]) {
          seen[u] = true;
          parent[u] = v;
          queue.push_back(u);
        }
      }
    }
  }

  for (const Simplex& e : k.simplices(1)) {
    const VertexId a = e[0], b = e[1];
    if (parent.count(a) > 0 && (parent.at(a) == b || parent.at(b) == a)) continue;
    // Fundamental cycle: tree path a→root + edge {a,b} + tree path b→root;
    // shared prefix cancels over GF(2).
    Chain c{e};
    auto add_path = [&](const std::vector<VertexId>& p) {
      Chain edges;
      for (std::size_t i = 0; i + 1 < p.size(); ++i)
        edges.push_back(Simplex{p[i], p[i + 1]});
      c = chain_add(c, edges);
    };
    add_path(tree_path_to_root(a));
    add_path(tree_path_to_root(b));
    if (is_one_cycle(c)) out.push_back(std::move(c));
  }
  return out;
}


// ---------------------------------------------------------------------------
// Oriented (mod-p) homology.
// ---------------------------------------------------------------------------

void oriented_add_edge(OrientedChain& chain, VertexId from, VertexId to,
                       long long delta) {
  if (from == to) return;
  const bool forward = raw(from) < raw(to);
  const Simplex edge{from, to};
  const long long signed_delta = forward ? delta : -delta;
  auto it = chain.find(edge);
  if (it == chain.end()) {
    if (signed_delta != 0) chain.emplace(edge, signed_delta);
    return;
  }
  it->second += signed_delta;
  if (it->second == 0) chain.erase(it);
}

OrientedChain oriented_path_chain(const std::vector<VertexId>& path) {
  OrientedChain chain;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    oriented_add_edge(chain, path[i], path[i + 1]);
  }
  return chain;
}

OrientedChain oriented_add(const OrientedChain& a, const OrientedChain& b) {
  OrientedChain out = a;
  for (const auto& [edge, coeff] : b) {
    auto it = out.find(edge);
    if (it == out.end()) {
      out.emplace(edge, coeff);
    } else {
      it->second += coeff;
      if (it->second == 0) out.erase(it);
    }
  }
  return out;
}

bool is_oriented_cycle(const OrientedChain& c) {
  std::unordered_map<VertexId, long long, VertexIdHash> boundary;
  for (const auto& [edge, coeff] : c) {
    // ∂(u→v) = v - u with u < v by the orientation convention.
    boundary[edge[1]] += coeff;
    boundary[edge[0]] -= coeff;
  }
  for (const auto& [v, b] : boundary) {
    (void)v;
    if (b != 0) return false;
  }
  return true;
}

namespace {

long long mod_p(long long x, long long p) {
  const long long r = x % p;
  return r < 0 ? r + p : r;
}

long long mod_inverse(long long a, long long p) {
  // Fermat: p is prime and a != 0 mod p.
  long long result = 1, base = mod_p(a, p), exp = p - 2;
  while (exp > 0) {
    if (exp & 1) result = (result * base) % p;
    base = (base * base) % p;
    exp >>= 1;
  }
  return result;
}

}  // namespace

bool bounds_modulo_p(const SimplicialComplex& k, const OrientedChain& cycle,
                     const std::vector<OrientedChain>& generators, long long p) {
  // Index the edges of k.
  const std::vector<Simplex> edges = k.simplices(1);
  std::unordered_map<Simplex, std::size_t, SimplexHash> edge_index;
  for (std::size_t i = 0; i < edges.size(); ++i) edge_index.emplace(edges[i], i);
  const std::size_t n = edges.size();

  auto to_vector = [&](const OrientedChain& c,
                       std::vector<long long>& out) -> bool {
    out.assign(n, 0);
    for (const auto& [edge, coeff] : c) {
      auto it = edge_index.find(edge);
      if (it == edge_index.end()) return false;  // chain leaves the complex
      out[it->second] = mod_p(coeff, p);
    }
    return true;
  };

  // Span basis (row echelon over GF(p)) of ∂2-columns plus generators.
  std::vector<std::vector<long long>> basis;
  std::vector<std::size_t> pivot_of;  // pivot column per basis row
  auto reduce = [&](std::vector<long long>& v) {
    for (std::size_t r = 0; r < basis.size(); ++r) {
      const std::size_t piv = pivot_of[r];
      if (v[piv] != 0) {
        const long long factor = v[piv];
        for (std::size_t j = 0; j < n; ++j) {
          v[j] = mod_p(v[j] - factor * basis[r][j], p);
        }
      }
    }
  };
  auto add_to_span = [&](std::vector<long long> v) {
    reduce(v);
    for (std::size_t j = 0; j < n; ++j) {
      if (v[j] != 0) {
        const long long inv = mod_inverse(v[j], p);
        for (std::size_t i = 0; i < n; ++i) v[i] = (v[i] * inv) % p;
        basis.push_back(std::move(v));
        pivot_of.push_back(j);
        return;
      }
    }
  };

  for (const Simplex& t : k.simplices(2)) {
    // ∂{a,b,c} = (b,c) - (a,c) + (a,b) with a < b < c.
    OrientedChain b;
    oriented_add_edge(b, t[1], t[2], 1);
    oriented_add_edge(b, t[0], t[2], -1);
    oriented_add_edge(b, t[0], t[1], 1);
    std::vector<long long> v;
    if (!to_vector(b, v)) return false;
    add_to_span(std::move(v));
  }
  for (const OrientedChain& g : generators) {
    std::vector<long long> v;
    if (!to_vector(g, v)) return false;
    add_to_span(std::move(v));
  }

  std::vector<long long> target;
  if (!to_vector(cycle, target)) return false;
  reduce(target);
  for (long long x : target) {
    if (x != 0) return false;
  }
  return true;
}

std::vector<OrientedChain> oriented_cycle_basis(const SimplicialComplex& k) {
  std::vector<OrientedChain> out;
  for (const Chain& c : cycle_basis(k)) {
    // A fundamental cycle is a simple closed walk; orient it by walking it.
    // Build adjacency within the cycle's edge set.
    std::unordered_map<VertexId, std::vector<VertexId>, VertexIdHash> adj;
    for (const Simplex& e : c) {
      adj[e[0]].push_back(e[1]);
      adj[e[1]].push_back(e[0]);
    }
    OrientedChain oriented;
    if (c.empty()) continue;
    const VertexId start = c.front()[0];
    VertexId prev = start, cur = c.front()[1];
    oriented_add_edge(oriented, prev, cur);
    while (cur != start) {
      const auto& nbrs = adj.at(cur);
      const VertexId next = nbrs[0] == prev ? nbrs[1] : nbrs[0];
      oriented_add_edge(oriented, cur, next);
      prev = cur;
      cur = next;
    }
    out.push_back(std::move(oriented));
  }
  return out;
}

}  // namespace trichroma
