#pragma once
// Simplicial homology over GF(2) for low-dimensional complexes.
//
// Used for two purposes in this reproduction:
//  1. Diagnostic reporting of output-complex shape (Betti numbers b0/b1/b2)
//     in the benchmark harness and the characterization report.
//  2. The homological impossibility engine: deciding whether a carrier-
//     respecting boundary loop is null-homologous in |Δ'(σ)| — the
//     computable, sound sufficient condition for the paper's "no continuous
//     map" (contractibility-type) obstruction (§6.2, pinwheel; 2-set
//     agreement). A loop extending over the input disk must bound over any
//     coefficient field, so "never bounds over GF(2)" certifies impossibility.

#include <optional>
#include <vector>

#include "topology/complex.h"

namespace trichroma {

/// A GF(2) chain of d-simplices, represented as the sorted list of simplices
/// with odd coefficient.
using Chain = std::vector<Simplex>;

/// Symmetric difference (GF(2) sum) of two chains.
Chain chain_add(const Chain& a, const Chain& b);

/// Boundary of a chain of d-simplices (d >= 1) as a chain of (d-1)-simplices.
Chain boundary(const Chain& c);

/// True iff `c` consists of 1-simplices and has zero boundary.
bool is_one_cycle(const Chain& c);

/// The chain of edges traced by a closed vertex path v0 v1 ... vk v0
/// (consecutive duplicates and backtracking edges cancel over GF(2)).
Chain loop_to_chain(const std::vector<VertexId>& closed_path);

/// Betti numbers over GF(2). b[d] = dim H_d(k; GF(2)).
struct BettiNumbers {
  long long b0 = 0;
  long long b1 = 0;
  long long b2 = 0;
};
BettiNumbers betti_numbers(const SimplicialComplex& k);

/// Decides whether the 1-cycle `cycle` is a GF(2) boundary in `k`, i.e.
/// whether there exists a 2-chain x with ∂x = cycle. Precondition: every
/// edge of `cycle` is in `k` and `cycle` is a cycle.
bool bounds_in(const SimplicialComplex& k, const Chain& cycle);

/// Decides whether `cycle` lies in the GF(2) span of `generators` modulo
/// boundaries of `k`, i.e. whether cycle + Σ S ⊆ B1(k) for some subset S of
/// generators. This is the workhorse of the homological obstruction test:
/// the achievable boundary-loop classes form base + span(generators), and
/// solvability requires one of them to bound.
bool bounds_modulo(const SimplicialComplex& k, const Chain& cycle,
                   const std::vector<Chain>& generators);

/// A basis of the 1-cycle space Z1 of `k` (as edge chains), computed from a
/// spanning forest: one fundamental cycle per non-tree edge.
std::vector<Chain> cycle_basis(const SimplicialComplex& k);

// ---------------------------------------------------------------------------
// Oriented (mod-p) homology.
//
// GF(2) bounding is blind to *torsion-type* failures: a boundary loop that
// winds twice around a hole is 2·γ, which vanishes over GF(2) but not over
// GF(3). A null-homotopic loop bounds over every coefficient field, so
// "does not bound mod p" is a sound impossibility certificate for ANY prime
// p; checking p = 2 and p = 3 together catches every obstruction the
// examples in this repository can exhibit (see zoo::twisted_hourglass).
// Oriented chains carry integer coefficients on edges oriented from the
// smaller to the larger vertex id.
// ---------------------------------------------------------------------------

/// A 1-chain with integer coefficients; keys are edges (2-vertex simplices),
/// values are coefficients w.r.t. the small→large orientation. Zero
/// coefficients are absent.
using OrientedChain = std::unordered_map<Simplex, long long, SimplexHash>;

/// Adds `delta` times the oriented edge (from, to) to the chain.
void oriented_add_edge(OrientedChain& chain, VertexId from, VertexId to,
                       long long delta = 1);

/// The oriented chain traced by walking `path` (consecutive vertices).
OrientedChain oriented_path_chain(const std::vector<VertexId>& path);

/// Sum of two oriented chains.
OrientedChain oriented_add(const OrientedChain& a, const OrientedChain& b);

/// True iff the chain's boundary (over Z) vanishes.
bool is_oriented_cycle(const OrientedChain& c);

/// Decides whether `cycle` lies, modulo the prime `p`, in the span of the
/// 2-simplex boundaries of `k` plus the given generator cycles. Sound
/// impossibility certificate: a loop that extends over a disk bounds over
/// every field, so returning false for any p refutes extendability.
bool bounds_modulo_p(const SimplicialComplex& k, const OrientedChain& cycle,
                     const std::vector<OrientedChain>& generators, long long p);

/// Oriented version of cycle_basis (same fundamental cycles, ±1 coeffs).
std::vector<OrientedChain> oriented_cycle_basis(const SimplicialComplex& k);

}  // namespace trichroma
