#pragma once
// Simplex: an immutable, canonically sorted, non-empty set of vertices.
//
// Simplices are small (dimension <= 2 throughout the paper, i.e. at most
// three vertices), so they are stored inline in a sorted std::vector and
// compared element-wise. The empty set is representable (Simplex{}) and is
// used as "no simplex" in a few algorithms, but never stored in a complex.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "topology/vertex.h"

namespace trichroma {

class Simplex {
 public:
  Simplex() = default;

  /// Builds a simplex from vertices; sorts and deduplicates.
  explicit Simplex(std::vector<VertexId> vertices) : verts_(std::move(vertices)) {
    normalize();
  }
  Simplex(std::initializer_list<VertexId> vertices)
      : verts_(vertices.begin(), vertices.end()) {
    normalize();
  }

  static Simplex single(VertexId v) { return Simplex{{v}}; }

  bool empty() const { return verts_.empty(); }
  std::size_t size() const { return verts_.size(); }
  /// Dimension = |σ| - 1; the empty simplex reports -1.
  int dim() const { return static_cast<int>(verts_.size()) - 1; }

  const std::vector<VertexId>& vertices() const { return verts_; }
  auto begin() const { return verts_.begin(); }
  auto end() const { return verts_.end(); }
  VertexId operator[](std::size_t i) const { return verts_[i]; }

  bool contains(VertexId v) const {
    return std::binary_search(verts_.begin(), verts_.end(), v,
                              [](VertexId a, VertexId b) { return raw(a) < raw(b); });
  }

  /// True iff `other` is a (not necessarily proper) face of this simplex.
  bool contains_all(const Simplex& other) const {
    return std::includes(verts_.begin(), verts_.end(), other.verts_.begin(),
                         other.verts_.end(),
                         [](VertexId a, VertexId b) { return raw(a) < raw(b); });
  }

  /// This simplex with `v` added (no-op if already present).
  Simplex with(VertexId v) const {
    std::vector<VertexId> out = verts_;
    out.push_back(v);
    return Simplex(std::move(out));
  }

  /// This simplex with `v` removed (no-op if absent).
  Simplex without(VertexId v) const {
    std::vector<VertexId> out;
    out.reserve(verts_.size());
    for (VertexId u : verts_)
      if (u != v) out.push_back(u);
    return Simplex(std::move(out));
  }

  Simplex unite(const Simplex& other) const {
    std::vector<VertexId> out = verts_;
    out.insert(out.end(), other.verts_.begin(), other.verts_.end());
    return Simplex(std::move(out));
  }

  Simplex intersect(const Simplex& other) const {
    std::vector<VertexId> out;
    std::set_intersection(verts_.begin(), verts_.end(), other.verts_.begin(),
                          other.verts_.end(), std::back_inserter(out),
                          [](VertexId a, VertexId b) { return raw(a) < raw(b); });
    return Simplex(std::move(out));
  }

  /// All non-empty faces, including the simplex itself. Bounded at 16
  /// vertices (2^16 faces); larger simplices throw rather than silently
  /// overflowing the subset mask in release builds.
  std::vector<Simplex> faces() const {
    std::vector<Simplex> out;
    const std::size_t n = verts_.size();
    if (n > 16) {
      throw std::length_error("Simplex::faces: more than 16 vertices");
    }
    for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
      std::vector<VertexId> face;
      for (std::size_t i = 0; i < n; ++i)
        if (mask & (std::size_t{1} << i)) face.push_back(verts_[i]);
      out.emplace_back(std::move(face));
    }
    return out;
  }

  /// The codimension-1 faces (boundary facets).
  std::vector<Simplex> boundary_faces() const {
    std::vector<Simplex> out;
    if (verts_.size() < 2) return out;
    for (std::size_t i = 0; i < verts_.size(); ++i) {
      std::vector<VertexId> face;
      face.reserve(verts_.size() - 1);
      for (std::size_t j = 0; j < verts_.size(); ++j)
        if (j != i) face.push_back(verts_[j]);
      out.emplace_back(std::move(face));
    }
    return out;
  }

  bool operator==(const Simplex& other) const = default;

  /// Total order (lexicographic on sorted vertex ids), for deterministic
  /// iteration and for the paper's lexicographically-smallest path rule.
  bool operator<(const Simplex& other) const {
    return std::lexicographical_compare(
        verts_.begin(), verts_.end(), other.verts_.begin(), other.verts_.end(),
        [](VertexId a, VertexId b) { return raw(a) < raw(b); });
  }

  std::string to_string(const VertexPool& pool) const {
    std::string out = "[";
    for (std::size_t i = 0; i < verts_.size(); ++i) {
      if (i > 0) out += " ";
      out += pool.name(verts_[i]);
    }
    out += "]";
    return out;
  }

 private:
  void normalize() {
    std::sort(verts_.begin(), verts_.end(),
              [](VertexId a, VertexId b) { return raw(a) < raw(b); });
    verts_.erase(std::unique(verts_.begin(), verts_.end()), verts_.end());
  }

  std::vector<VertexId> verts_;
};

struct SimplexHash {
  std::size_t operator()(const Simplex& s) const noexcept {
    std::size_t h = 0x9e3779b97f4a7c15ull;
    for (VertexId v : s.vertices()) {
      h ^= raw(v) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace trichroma
