#include "topology/subdivision.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/executor.h"

namespace trichroma {

Simplex SubdividedComplex::carrier_of(const Simplex& s) const {
  Simplex out;
  for (VertexId v : s) out = out.unite(carrier.at(v));
  return out;
}

SubdividedComplex identity_subdivision(const SimplicialComplex& base) {
  SubdividedComplex out;
  out.complex = base;
  for (VertexId v : base.vertex_ids()) {
    out.carrier.emplace(v, Simplex::single(v));
  }
  out.compiled = CompiledComplex::compile(out.complex);
  return out;
}

namespace {

void ordered_partitions_rec(const std::vector<VertexId>& items,
                            std::vector<std::vector<VertexId>>& prefix,
                            std::vector<std::vector<std::vector<VertexId>>>& out) {
  if (items.empty()) {
    out.push_back(prefix);
    return;
  }
  const std::size_t n = items.size();
  // Enumerate non-empty first blocks as bitmasks, in increasing mask order
  // for determinism.
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    std::vector<VertexId> block, rest;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        block.push_back(items[i]);
      } else {
        rest.push_back(items[i]);
      }
    }
    prefix.push_back(std::move(block));
    ordered_partitions_rec(rest, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<std::vector<std::vector<VertexId>>> ordered_partitions(
    const std::vector<VertexId>& items) {
  std::vector<std::vector<std::vector<VertexId>>> out;
  std::vector<std::vector<VertexId>> prefix;
  if (items.size() > 8) {
    throw std::length_error("ordered_partitions: more than 8 items");
  }
  ordered_partitions_rec(items, prefix, out);
  return out;
}

SubdividedComplex subdivide_once_reference(VertexPool& pool,
                                           const SubdividedComplex& prev) {
  TRI_SPAN("topology/subdivide_once");
  SubdividedComplex out;
  ValuePool& values = pool.values();
  const ValueId view_tag = values.of_string("view");

  // Interns the subdivision vertex for (process-vertex u, view V).
  auto subdivision_vertex = [&](VertexId u, const Simplex& view) {
    std::vector<ValueId> members;
    members.reserve(view.size());
    for (VertexId w : view) {
      members.push_back(values.of_int(static_cast<std::int64_t>(raw(w))));
    }
    const ValueId view_value =
        values.of_tuple({view_tag, values.of_set(std::move(members))});
    const VertexId nv = pool.vertex(pool.color(u), view_value);
    if (out.carrier.count(nv) == 0) {
      out.carrier.emplace(nv, prev.carrier_of(view));
    }
    return nv;
  };

  // Subdivide every simplex; the union glues correctly along shared faces
  // because subdivision vertices are interned by (color, view). Each facet
  // streams both into the mutable hash-set form and into the flat compiled
  // builder, so the snapshot costs one sort instead of a second traversal.
  // Simplices are enumerated in canonical (sorted) order, not hash-set
  // order: the intern sequence of the new level's vertices must be a
  // function of `prev`'s *content* so that a level reconstructed from a
  // stored artifact (io/store.h) extends to the identical pool state a
  // cold build reaches.
  CompiledComplex::Builder builder;
  for (const Simplex& sigma : prev.complex.all_simplices()) {
    for (const auto& partition : ordered_partitions(sigma.vertices())) {
      Simplex view;  // running union B1 ∪ ... ∪ Bj
      std::vector<VertexId> facet_vertices;
      facet_vertices.reserve(sigma.size());
      for (const auto& block : partition) {
        for (VertexId u : block) view = view.with(u);
        for (VertexId u : block) {
          facet_vertices.push_back(subdivision_vertex(u, view));
        }
      }
      Simplex facet(std::move(facet_vertices));
      builder.add(facet);
      out.complex.add(facet);
    }
  }
  out.compiled = builder.finish();
#ifndef NDEBUG
  out.compiled->debug_verify_against(out.complex);
#endif
  return out;
}

ChTemplate build_ch_template(std::size_t n) {
  ChTemplate tpl;
  tpl.n = n;
  // (position, view-mask) → uniq index; views fit 8 bits for n <= 8.
  std::vector<std::int16_t> seen(n << 8, -1);
  std::vector<std::uint16_t> facet;
  // Mirrors ordered_partitions_rec over positions instead of vertices: the
  // traversal (first blocks as ascending bitmasks over the remaining items,
  // block members in item order) and therefore the vertex first-occurrence
  // order and facet order are identical to the reference enumeration.
  auto rec = [&](auto&& self, const std::vector<std::uint8_t>& rem,
                 std::uint8_t view) -> void {
    if (rem.empty()) {
      tpl.slots.insert(tpl.slots.end(), facet.begin(), facet.end());
      ++tpl.num_facets;
      return;
    }
    const std::size_t m = rem.size();
    for (std::size_t mask = 1; mask < (std::size_t{1} << m); ++mask) {
      std::vector<std::uint8_t> rest;
      std::uint8_t next_view = view;
      for (std::size_t i = 0; i < m; ++i) {
        if (mask & (std::size_t{1} << i)) {
          next_view = static_cast<std::uint8_t>(next_view | (1u << rem[i]));
        }
      }
      const std::size_t base = facet.size();
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint8_t pos = rem[i];
        if (mask & (std::size_t{1} << i)) {
          const std::size_t key = (std::size_t{pos} << 8) | next_view;
          if (seen[key] < 0) {
            seen[key] = static_cast<std::int16_t>(tpl.uniq.size());
            tpl.uniq.push_back({pos, next_view});
          }
          facet.push_back(static_cast<std::uint16_t>(seen[key]));
        } else {
          rest.push_back(pos);
        }
      }
      self(self, rest, next_view);
      facet.resize(base);
    }
  };
  std::vector<std::uint8_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::uint8_t>(i);
  rec(rec, all, 0);
  return tpl;
}

const ChTemplate& ch_template(std::size_t n) {
  switch (n) {
    case 0: {
      static const ChTemplate t = build_ch_template(0);
      return t;
    }
    case 1: {
      static const ChTemplate t = build_ch_template(1);
      return t;
    }
    case 2: {
      static const ChTemplate t = build_ch_template(2);
      return t;
    }
    case 3: {
      static const ChTemplate t = build_ch_template(3);
      return t;
    }
    case 4: {
      static const ChTemplate t = build_ch_template(4);
      return t;
    }
    case 5: {
      static const ChTemplate t = build_ch_template(5);
      return t;
    }
    case 6: {
      static const ChTemplate t = build_ch_template(6);
      return t;
    }
    case 7: {
      static const ChTemplate t = build_ch_template(7);
      return t;
    }
    case 8: {
      static const ChTemplate t = build_ch_template(8);
      return t;
    }
    default:
      throw std::length_error("ordered_partitions: more than 8 items");
  }
}

namespace {

// The sequential stamped build: the threads = 1 path, and the oracle the
// parallel path is asserted against in debug builds.
SubdividedComplex subdivide_once_sequential(VertexPool& pool,
                                            const SubdividedComplex& prev) {
  obs::MetricsRegistry::global().counter("topology.subdivide.builds").add();
  SubdividedComplex out;
  ValuePool& values = pool.values();
  const ValueId view_tag = values.of_string("view");
  std::size_t stamps = 0;

  // Stamp the per-dimension template onto every simplex. Pool-state
  // equivalence with the reference enumeration: uniq is in first-occurrence
  // order of the same traversal, a vertex's (of_int members, of_set,
  // of_tuple, vertex) intern sequence is reproduced per uniq entry, and
  // repeated interning is a no-op — so every pool id comes out identical.
  CompiledComplex::Builder builder;
  std::vector<VertexId> verts;     // uniq index → interned vertex, per σ
  std::vector<ValueId> members;
  std::array<ValueId, 8> pos_int;  // of_int(raw(σ[i])), per σ
  // Canonical (sorted) enumeration, mirroring the reference: warm-started
  // ladders (io/store.h) rebuild `prev` from content, so the stamp order —
  // and with it every interned id of the next level — must not depend on
  // the hash-set's insertion history.
  for (const Simplex& sigma : prev.complex.all_simplices()) {
    const std::vector<VertexId>& sv = sigma.vertices();
    const std::size_t m = sv.size();
    const ChTemplate& tpl = ch_template(m);
    // First facet of the enumeration is the all-singletons partition in
    // ascending order, so upfront ascending of_int interning matches the
    // reference's first-occurrence order.
    for (std::size_t i = 0; i < m; ++i) {
      pos_int[i] = values.of_int(static_cast<std::int64_t>(raw(sv[i])));
    }
    verts.clear();
    for (const ChTemplate::TVert& tv : tpl.uniq) {
      members.clear();
      for (std::size_t i = 0; i < m; ++i) {
        if (tv.view & (1u << i)) members.push_back(pos_int[i]);
      }
      const ValueId view_value = values.of_tuple(
          {view_tag, values.of_set({members.begin(), members.end()})});
      const VertexId nv = pool.vertex(pool.color(sv[tv.pos]), view_value);
      if (out.carrier.count(nv) == 0) {
        Simplex carrier;
        for (std::size_t i = 0; i < m; ++i) {
          if (tv.view & (1u << i)) carrier = carrier.unite(prev.carrier.at(sv[i]));
        }
        out.carrier.emplace(nv, std::move(carrier));
      }
      verts.push_back(nv);
    }
    const std::uint16_t* slot = tpl.slots.data();
    for (std::size_t f = 0; f < tpl.num_facets; ++f, slot += m) {
      std::vector<VertexId> facet_vertices(m);
      for (std::size_t i = 0; i < m; ++i) facet_vertices[i] = verts[slot[i]];
      Simplex facet(std::move(facet_vertices));
      builder.add(facet);
      out.complex.add(facet);
    }
    stamps += tpl.num_facets;
  }
  obs::MetricsRegistry::global().counter("ladder.template.stamps").add(stamps);
  out.compiled = builder.finish();
#ifndef NDEBUG
  out.compiled->debug_verify_against(out.complex);
#endif
  return out;
}

/// Key for the phase-1 view-value memo: the member values of one view, in
/// the canonical (ascending position) order phase 1 encounters them. Two
/// occurrences of the same subdivision view always produce the same member
/// vector, so the memo collapses the of_set/of_tuple string-key interning of
/// every repeat occurrence into one small-array hash.
struct ViewKey {
  std::array<std::uint32_t, 8> m;
  std::uint8_t n = 0;

  bool operator==(const ViewKey& o) const { return n == o.n && m == o.m; }
};

struct ViewKeyHash {
  std::size_t operator()(const ViewKey& k) const noexcept {
    std::size_t h = k.n;
    for (std::uint8_t i = 0; i < k.n; ++i) {
      h ^= k.m[i] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

// The two-phase parallel build (threads >= 2). Phase 1 runs the canonical
// interning walk sequentially — vertex/value ids are pool insertion order,
// so id assignment is the irreducibly ordered part — while deferring all
// carrier unions. Phase 2 fans facet stamping and carrier construction out
// over weighted chunks of the canonical simplex order, each chunk filling a
// private builder and a private (closure-complete) complex. Phase 3 merges
// the chunks back in chunk order; both merge targets are canonicalizing
// (Builder::finish sorts + dedups, SimplicialComplex is a set), so the
// result is independent of the chunking and identical to the sequential
// build.
//
// Pool-state equivalence with the sequential path: phase 1 performs the
// first-occurrence intern sequence of every new value at exactly the point
// the sequential walk would (the memos only skip *repeat* interns, which are
// pool no-ops), so every ValueId and VertexId comes out identical — which is
// what keeps warm-started ladders (io/store.h) and parallel cold builds
// byte-compatible.
SubdividedComplex subdivide_once_parallel(VertexPool& pool,
                                          const SubdividedComplex& prev,
                                          int threads) {
  obs::MetricsRegistry::global().counter("topology.subdivide.builds").add();
  SubdividedComplex out;
  ValuePool& values = pool.values();
  const ValueId view_tag = values.of_string("view");

  const std::vector<Simplex> simplices = prev.complex.all_simplices();
  const std::size_t count = simplices.size();

  // ---- Phase 1: canonical-order interning (sequential). --------------------
  std::vector<VertexId> verts_flat;          // per σ: uniq index → vertex
  std::vector<std::uint32_t> vert_off(count + 1, 0);
  std::vector<std::uint32_t> facet_counts(count, 0);
  std::size_t total_facets = 0;
  /// One deferred carrier union: fill `slot` with the union of
  /// prev-carriers over `view`'s bits of simplex `sigma`. Slots are
  /// unordered_map values (node-stable), each written by exactly one task.
  struct CarrierTask {
    Simplex* slot;
    std::uint32_t sigma;
    std::uint8_t view;
  };
  std::vector<CarrierTask> carrier_tasks;
  {
    TRI_SPAN("ladder/intern");
    constexpr std::uint32_t kUnset = 0xffffffffu;
    // Dense of_int memo: arguments are raw ids of prev's vertices, all
    // interned before this build starts, so pool.size() bounds them.
    std::vector<std::uint32_t> int_memo(pool.size(), kUnset);
    std::unordered_map<ViewKey, ValueId, ViewKeyHash> view_memo;
    std::array<ValueId, 8> pos_int;
    std::vector<ValueId> members;
    for (std::size_t si = 0; si < count; ++si) {
      const std::vector<VertexId>& sv = simplices[si].vertices();
      const std::size_t m = sv.size();
      const ChTemplate& tpl = ch_template(m);
      facet_counts[si] = static_cast<std::uint32_t>(tpl.num_facets);
      total_facets += tpl.num_facets;
      for (std::size_t i = 0; i < m; ++i) {
        std::uint32_t& memo = int_memo[raw(sv[i])];
        if (memo == kUnset) {
          memo = raw(values.of_int(static_cast<std::int64_t>(raw(sv[i]))));
        }
        pos_int[i] = static_cast<ValueId>(memo);
      }
      for (const ChTemplate::TVert& tv : tpl.uniq) {
        ViewKey key;
        key.m.fill(kUnset);
        for (std::size_t i = 0; i < m; ++i) {
          if (tv.view & (1u << i)) key.m[key.n++] = raw(pos_int[i]);
        }
        ValueId view_value;
        const auto memo = view_memo.find(key);
        if (memo != view_memo.end()) {
          view_value = memo->second;
        } else {
          members.clear();
          for (std::size_t i = 0; i < m; ++i) {
            if (tv.view & (1u << i)) members.push_back(pos_int[i]);
          }
          view_value = values.of_tuple(
              {view_tag, values.of_set({members.begin(), members.end()})});
          view_memo.emplace(key, view_value);
        }
        const VertexId nv = pool.vertex(pool.color(sv[tv.pos]), view_value);
        const auto [slot, fresh] = out.carrier.emplace(nv, Simplex{});
        if (fresh) {
          carrier_tasks.push_back(
              {&slot->second, static_cast<std::uint32_t>(si), tv.view});
        }
        verts_flat.push_back(nv);
      }
      vert_off[si + 1] = static_cast<std::uint32_t>(verts_flat.size());
    }
  }

  // ---- Phase 2: chunked stamping + carrier unions (parallel). --------------
  Executor& executor = Executor::global();
  executor.ensure_workers(threads - 1);
  const std::size_t chunks = Executor::recommended_chunks(threads, count);
  // Facet-weighted chunk boundaries over the canonical order: a dim-2
  // simplex stamps 13 facets against a vertex's 1, and all_simplices() is
  // dimension-grouped, so equal-count chunks would serialize on the
  // triangle-heavy tail.
  std::vector<std::size_t> bounds(chunks + 1, count);
  bounds[0] = 0;
  {
    std::size_t acc = 0;
    std::size_t c = 1;
    for (std::size_t i = 0; i < count && c < chunks; ++i) {
      acc += facet_counts[i];
      if (acc * chunks >= total_facets * c) bounds[c++] = i + 1;
    }
  }

  struct Chunk {
    CompiledComplex::Builder builder;
    SimplicialComplex complex;
    std::size_t stamps = 0;
  };
  std::vector<Chunk> parts(chunks);
  const auto carrier_split = [&carrier_tasks](std::size_t sigma_bound) {
    return static_cast<std::size_t>(
        std::lower_bound(carrier_tasks.begin(), carrier_tasks.end(), sigma_bound,
                         [](const CarrierTask& t, std::size_t bound) {
                           return t.sigma < bound;
                         }) -
        carrier_tasks.begin());
  };
  {
    TRI_SPAN("ladder/stamp");
    const auto run_chunk = [&](std::size_t c) {
      TRI_SPAN("ladder/stamp-chunk");
      Chunk& part = parts[c];
      for (std::size_t si = bounds[c]; si < bounds[c + 1]; ++si) {
        const std::size_t m = simplices[si].size();
        const ChTemplate& tpl = ch_template(m);
        const VertexId* verts = verts_flat.data() + vert_off[si];
        const std::uint16_t* slot = tpl.slots.data();
        for (std::size_t f = 0; f < tpl.num_facets; ++f, slot += m) {
          std::vector<VertexId> facet_vertices(m);
          for (std::size_t i = 0; i < m; ++i) facet_vertices[i] = verts[slot[i]];
          Simplex facet(std::move(facet_vertices));
          part.builder.add(facet);
          part.complex.add(facet);
        }
        part.stamps += tpl.num_facets;
      }
      const std::size_t task_hi = carrier_split(bounds[c + 1]);
      for (std::size_t t = carrier_split(bounds[c]); t < task_hi; ++t) {
        const CarrierTask& task = carrier_tasks[t];
        const std::vector<VertexId>& sv = simplices[task.sigma].vertices();
        Simplex carrier;
        for (std::size_t i = 0; i < sv.size(); ++i) {
          if (task.view & (1u << i)) carrier = carrier.unite(prev.carrier.at(sv[i]));
        }
        *task.slot = std::move(carrier);
      }
    };
    JobGroup group(executor);
    for (std::size_t c = 1; c < chunks; ++c) {
      group.submit([&run_chunk, c] { run_chunk(c); });
    }
    if (chunks > 0) run_chunk(0);
    group.wait();
  }

  // ---- Phase 3: deterministic chunk-order merge (sequential). --------------
  std::size_t stamps = 0;
  {
    TRI_SPAN("ladder/merge");
    const auto merge_start = std::chrono::steady_clock::now();
    CompiledComplex::Builder builder;
    for (Chunk& part : parts) {
      builder.absorb(std::move(part.builder));
      out.complex.merge_from(std::move(part.complex));
      stamps += part.stamps;
    }
    out.compiled = builder.finish();
    const auto merge_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - merge_start)
                              .count();
    obs::MetricsRegistry::global()
        .counter("ladder.merge_ns")
        .add(static_cast<std::uint64_t>(merge_ns));
  }
  obs::MetricsRegistry::global().counter("ladder.template.stamps").add(stamps);
  obs::MetricsRegistry::global().counter("ladder.parallel_chunks").add(chunks);

#ifndef NDEBUG
  {
    // Equivalence oracle: the sequential build re-interns only values the
    // parallel phase 1 already created (re-interning is a pool no-op), so
    // the pool is untouched and any divergence is a chunked-build bug.
    const SubdividedComplex ref = subdivide_once_sequential(pool, prev);
    assert(out.complex == ref.complex);
    assert(out.carrier.size() == ref.carrier.size());
    for (const auto& [v, c] : ref.carrier) {
      assert(out.carrier.count(v) == 1);
      assert(out.carrier.at(v) == c);
    }
  }
  out.compiled->debug_verify_against(out.complex);
#endif
  return out;
}

}  // namespace

SubdividedComplex subdivide_once(VertexPool& pool, const SubdividedComplex& prev,
                                 int threads) {
  TRI_SPAN("topology/subdivide_once");
  SubdividedComplex out = threads <= 1 ? subdivide_once_sequential(pool, prev)
                                       : subdivide_once_parallel(pool, prev, threads);
  // Ch-level size distribution: one record per level actually built, at
  // every thread count (the facet count is schedule-independent). Kozlov's
  // growth rates make this checkable — a pure 2-dimensional level stamps 13
  // facets per facet, so consecutive levels land ~log2(13) buckets apart.
  static obs::Histogram& level_facets =
      obs::MetricsRegistry::global().histogram("ladder.level_facets");
  const int top = out.complex.dimension();
  level_facets.record(top < 0 ? 0 : out.complex.count(top));
  return out;
}

SubdividedComplex chromatic_subdivision(VertexPool& pool, const SimplicialComplex& base,
                                        int rounds, int threads) {
  SubdividedComplex cur = identity_subdivision(base);
  for (int r = 0; r < rounds; ++r) {
    cur = subdivide_once(pool, cur, threads);
  }
  return cur;
}

void SubdivisionLadder::seed(std::vector<SubdividedComplex> levels) {
  if (levels.empty()) return;
  levels_.clear();
  for (SubdividedComplex& level : levels) {
    levels_.push_back(
        std::make_shared<const SubdividedComplex>(std::move(level)));
  }
}

std::shared_ptr<const SubdividedComplex> SubdivisionLadder::share(int r) {
  assert(r >= 0);
  if (levels_.empty()) {
    levels_.push_back(
        std::make_shared<const SubdividedComplex>(identity_subdivision(base_)));
  }
  while (max_computed() < r) {
    // Per-radius Ch^r build: the dominant cost of deep probes (Kozlov-style
    // blowup), so each level gets its own span.
    TRI_SPAN("topology/ch/r=", static_cast<long long>(max_computed() + 1));
    levels_.push_back(std::make_shared<const SubdividedComplex>(
        subdivide_once(pool_, *levels_.back(), threads_)));
  }
  return levels_[static_cast<std::size_t>(r)];
}

}  // namespace trichroma
