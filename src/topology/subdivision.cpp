#include "topology/subdivision.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace trichroma {

Simplex SubdividedComplex::carrier_of(const Simplex& s) const {
  Simplex out;
  for (VertexId v : s) out = out.unite(carrier.at(v));
  return out;
}

SubdividedComplex identity_subdivision(const SimplicialComplex& base) {
  SubdividedComplex out;
  out.complex = base;
  for (VertexId v : base.vertex_ids()) {
    out.carrier.emplace(v, Simplex::single(v));
  }
  out.compiled = CompiledComplex::compile(out.complex);
  return out;
}

namespace {

void ordered_partitions_rec(const std::vector<VertexId>& items,
                            std::vector<std::vector<VertexId>>& prefix,
                            std::vector<std::vector<std::vector<VertexId>>>& out) {
  if (items.empty()) {
    out.push_back(prefix);
    return;
  }
  const std::size_t n = items.size();
  // Enumerate non-empty first blocks as bitmasks, in increasing mask order
  // for determinism.
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    std::vector<VertexId> block, rest;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        block.push_back(items[i]);
      } else {
        rest.push_back(items[i]);
      }
    }
    prefix.push_back(std::move(block));
    ordered_partitions_rec(rest, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<std::vector<std::vector<VertexId>>> ordered_partitions(
    const std::vector<VertexId>& items) {
  std::vector<std::vector<std::vector<VertexId>>> out;
  std::vector<std::vector<VertexId>> prefix;
  if (items.size() > 8) {
    throw std::length_error("ordered_partitions: more than 8 items");
  }
  ordered_partitions_rec(items, prefix, out);
  return out;
}

SubdividedComplex subdivide_once(VertexPool& pool, const SubdividedComplex& prev) {
  TRI_SPAN("topology/subdivide_once");
  obs::MetricsRegistry::global().counter("topology.subdivide.builds").add();
  SubdividedComplex out;
  ValuePool& values = pool.values();
  const ValueId view_tag = values.of_string("view");

  // Interns the subdivision vertex for (process-vertex u, view V).
  auto subdivision_vertex = [&](VertexId u, const Simplex& view) {
    std::vector<ValueId> members;
    members.reserve(view.size());
    for (VertexId w : view) {
      members.push_back(values.of_int(static_cast<std::int64_t>(raw(w))));
    }
    const ValueId view_value =
        values.of_tuple({view_tag, values.of_set(std::move(members))});
    const VertexId nv = pool.vertex(pool.color(u), view_value);
    if (out.carrier.count(nv) == 0) {
      out.carrier.emplace(nv, prev.carrier_of(view));
    }
    return nv;
  };

  // Subdivide every simplex; the union glues correctly along shared faces
  // because subdivision vertices are interned by (color, view). Each facet
  // streams both into the mutable hash-set form and into the flat compiled
  // builder, so the snapshot costs one sort instead of a second traversal.
  CompiledComplex::Builder builder;
  prev.complex.for_each([&](const Simplex& sigma) {
    for (const auto& partition : ordered_partitions(sigma.vertices())) {
      Simplex view;  // running union B1 ∪ ... ∪ Bj
      std::vector<VertexId> facet_vertices;
      facet_vertices.reserve(sigma.size());
      for (const auto& block : partition) {
        for (VertexId u : block) view = view.with(u);
        for (VertexId u : block) {
          facet_vertices.push_back(subdivision_vertex(u, view));
        }
      }
      Simplex facet(std::move(facet_vertices));
      builder.add(facet);
      out.complex.add(facet);
    }
  });
  out.compiled = builder.finish();
#ifndef NDEBUG
  out.compiled->debug_verify_against(out.complex);
#endif
  return out;
}

SubdividedComplex chromatic_subdivision(VertexPool& pool, const SimplicialComplex& base,
                                        int rounds) {
  SubdividedComplex cur = identity_subdivision(base);
  for (int r = 0; r < rounds; ++r) {
    cur = subdivide_once(pool, cur);
  }
  return cur;
}

std::shared_ptr<const SubdividedComplex> SubdivisionLadder::share(int r) {
  assert(r >= 0);
  if (levels_.empty()) {
    levels_.push_back(
        std::make_shared<const SubdividedComplex>(identity_subdivision(base_)));
  }
  while (max_computed() < r) {
    // Per-radius Ch^r build: the dominant cost of deep probes (Kozlov-style
    // blowup), so each level gets its own span.
    TRI_SPAN("topology/ch/r=", static_cast<long long>(max_computed() + 1));
    levels_.push_back(std::make_shared<const SubdividedComplex>(
        subdivide_once(pool_, *levels_.back())));
  }
  return levels_[static_cast<std::size_t>(r)];
}

}  // namespace trichroma
