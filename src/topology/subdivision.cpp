#include "topology/subdivision.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace trichroma {

Simplex SubdividedComplex::carrier_of(const Simplex& s) const {
  Simplex out;
  for (VertexId v : s) out = out.unite(carrier.at(v));
  return out;
}

SubdividedComplex identity_subdivision(const SimplicialComplex& base) {
  SubdividedComplex out;
  out.complex = base;
  for (VertexId v : base.vertex_ids()) {
    out.carrier.emplace(v, Simplex::single(v));
  }
  out.compiled = CompiledComplex::compile(out.complex);
  return out;
}

namespace {

void ordered_partitions_rec(const std::vector<VertexId>& items,
                            std::vector<std::vector<VertexId>>& prefix,
                            std::vector<std::vector<std::vector<VertexId>>>& out) {
  if (items.empty()) {
    out.push_back(prefix);
    return;
  }
  const std::size_t n = items.size();
  // Enumerate non-empty first blocks as bitmasks, in increasing mask order
  // for determinism.
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    std::vector<VertexId> block, rest;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        block.push_back(items[i]);
      } else {
        rest.push_back(items[i]);
      }
    }
    prefix.push_back(std::move(block));
    ordered_partitions_rec(rest, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<std::vector<std::vector<VertexId>>> ordered_partitions(
    const std::vector<VertexId>& items) {
  std::vector<std::vector<std::vector<VertexId>>> out;
  std::vector<std::vector<VertexId>> prefix;
  if (items.size() > 8) {
    throw std::length_error("ordered_partitions: more than 8 items");
  }
  ordered_partitions_rec(items, prefix, out);
  return out;
}

SubdividedComplex subdivide_once_reference(VertexPool& pool,
                                           const SubdividedComplex& prev) {
  TRI_SPAN("topology/subdivide_once");
  SubdividedComplex out;
  ValuePool& values = pool.values();
  const ValueId view_tag = values.of_string("view");

  // Interns the subdivision vertex for (process-vertex u, view V).
  auto subdivision_vertex = [&](VertexId u, const Simplex& view) {
    std::vector<ValueId> members;
    members.reserve(view.size());
    for (VertexId w : view) {
      members.push_back(values.of_int(static_cast<std::int64_t>(raw(w))));
    }
    const ValueId view_value =
        values.of_tuple({view_tag, values.of_set(std::move(members))});
    const VertexId nv = pool.vertex(pool.color(u), view_value);
    if (out.carrier.count(nv) == 0) {
      out.carrier.emplace(nv, prev.carrier_of(view));
    }
    return nv;
  };

  // Subdivide every simplex; the union glues correctly along shared faces
  // because subdivision vertices are interned by (color, view). Each facet
  // streams both into the mutable hash-set form and into the flat compiled
  // builder, so the snapshot costs one sort instead of a second traversal.
  // Simplices are enumerated in canonical (sorted) order, not hash-set
  // order: the intern sequence of the new level's vertices must be a
  // function of `prev`'s *content* so that a level reconstructed from a
  // stored artifact (io/store.h) extends to the identical pool state a
  // cold build reaches.
  CompiledComplex::Builder builder;
  for (const Simplex& sigma : prev.complex.all_simplices()) {
    for (const auto& partition : ordered_partitions(sigma.vertices())) {
      Simplex view;  // running union B1 ∪ ... ∪ Bj
      std::vector<VertexId> facet_vertices;
      facet_vertices.reserve(sigma.size());
      for (const auto& block : partition) {
        for (VertexId u : block) view = view.with(u);
        for (VertexId u : block) {
          facet_vertices.push_back(subdivision_vertex(u, view));
        }
      }
      Simplex facet(std::move(facet_vertices));
      builder.add(facet);
      out.complex.add(facet);
    }
  }
  out.compiled = builder.finish();
#ifndef NDEBUG
  out.compiled->debug_verify_against(out.complex);
#endif
  return out;
}

ChTemplate build_ch_template(std::size_t n) {
  ChTemplate tpl;
  tpl.n = n;
  // (position, view-mask) → uniq index; views fit 8 bits for n <= 8.
  std::vector<std::int16_t> seen(n << 8, -1);
  std::vector<std::uint16_t> facet;
  // Mirrors ordered_partitions_rec over positions instead of vertices: the
  // traversal (first blocks as ascending bitmasks over the remaining items,
  // block members in item order) and therefore the vertex first-occurrence
  // order and facet order are identical to the reference enumeration.
  auto rec = [&](auto&& self, const std::vector<std::uint8_t>& rem,
                 std::uint8_t view) -> void {
    if (rem.empty()) {
      tpl.slots.insert(tpl.slots.end(), facet.begin(), facet.end());
      ++tpl.num_facets;
      return;
    }
    const std::size_t m = rem.size();
    for (std::size_t mask = 1; mask < (std::size_t{1} << m); ++mask) {
      std::vector<std::uint8_t> rest;
      std::uint8_t next_view = view;
      for (std::size_t i = 0; i < m; ++i) {
        if (mask & (std::size_t{1} << i)) {
          next_view = static_cast<std::uint8_t>(next_view | (1u << rem[i]));
        }
      }
      const std::size_t base = facet.size();
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint8_t pos = rem[i];
        if (mask & (std::size_t{1} << i)) {
          const std::size_t key = (std::size_t{pos} << 8) | next_view;
          if (seen[key] < 0) {
            seen[key] = static_cast<std::int16_t>(tpl.uniq.size());
            tpl.uniq.push_back({pos, next_view});
          }
          facet.push_back(static_cast<std::uint16_t>(seen[key]));
        } else {
          rest.push_back(pos);
        }
      }
      self(self, rest, next_view);
      facet.resize(base);
    }
  };
  std::vector<std::uint8_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::uint8_t>(i);
  rec(rec, all, 0);
  return tpl;
}

const ChTemplate& ch_template(std::size_t n) {
  switch (n) {
    case 0: {
      static const ChTemplate t = build_ch_template(0);
      return t;
    }
    case 1: {
      static const ChTemplate t = build_ch_template(1);
      return t;
    }
    case 2: {
      static const ChTemplate t = build_ch_template(2);
      return t;
    }
    case 3: {
      static const ChTemplate t = build_ch_template(3);
      return t;
    }
    case 4: {
      static const ChTemplate t = build_ch_template(4);
      return t;
    }
    case 5: {
      static const ChTemplate t = build_ch_template(5);
      return t;
    }
    case 6: {
      static const ChTemplate t = build_ch_template(6);
      return t;
    }
    case 7: {
      static const ChTemplate t = build_ch_template(7);
      return t;
    }
    case 8: {
      static const ChTemplate t = build_ch_template(8);
      return t;
    }
    default:
      throw std::length_error("ordered_partitions: more than 8 items");
  }
}

SubdividedComplex subdivide_once(VertexPool& pool, const SubdividedComplex& prev) {
  TRI_SPAN("topology/subdivide_once");
  obs::MetricsRegistry::global().counter("topology.subdivide.builds").add();
  SubdividedComplex out;
  ValuePool& values = pool.values();
  const ValueId view_tag = values.of_string("view");
  std::size_t stamps = 0;

  // Stamp the per-dimension template onto every simplex. Pool-state
  // equivalence with the reference enumeration: uniq is in first-occurrence
  // order of the same traversal, a vertex's (of_int members, of_set,
  // of_tuple, vertex) intern sequence is reproduced per uniq entry, and
  // repeated interning is a no-op — so every pool id comes out identical.
  CompiledComplex::Builder builder;
  std::vector<VertexId> verts;     // uniq index → interned vertex, per σ
  std::vector<ValueId> members;
  std::array<ValueId, 8> pos_int;  // of_int(raw(σ[i])), per σ
  // Canonical (sorted) enumeration, mirroring the reference: warm-started
  // ladders (io/store.h) rebuild `prev` from content, so the stamp order —
  // and with it every interned id of the next level — must not depend on
  // the hash-set's insertion history.
  for (const Simplex& sigma : prev.complex.all_simplices()) {
    const std::vector<VertexId>& sv = sigma.vertices();
    const std::size_t m = sv.size();
    const ChTemplate& tpl = ch_template(m);
    // First facet of the enumeration is the all-singletons partition in
    // ascending order, so upfront ascending of_int interning matches the
    // reference's first-occurrence order.
    for (std::size_t i = 0; i < m; ++i) {
      pos_int[i] = values.of_int(static_cast<std::int64_t>(raw(sv[i])));
    }
    verts.clear();
    for (const ChTemplate::TVert& tv : tpl.uniq) {
      members.clear();
      for (std::size_t i = 0; i < m; ++i) {
        if (tv.view & (1u << i)) members.push_back(pos_int[i]);
      }
      const ValueId view_value = values.of_tuple(
          {view_tag, values.of_set({members.begin(), members.end()})});
      const VertexId nv = pool.vertex(pool.color(sv[tv.pos]), view_value);
      if (out.carrier.count(nv) == 0) {
        Simplex carrier;
        for (std::size_t i = 0; i < m; ++i) {
          if (tv.view & (1u << i)) carrier = carrier.unite(prev.carrier.at(sv[i]));
        }
        out.carrier.emplace(nv, std::move(carrier));
      }
      verts.push_back(nv);
    }
    const std::uint16_t* slot = tpl.slots.data();
    for (std::size_t f = 0; f < tpl.num_facets; ++f, slot += m) {
      std::vector<VertexId> facet_vertices(m);
      for (std::size_t i = 0; i < m; ++i) facet_vertices[i] = verts[slot[i]];
      Simplex facet(std::move(facet_vertices));
      builder.add(facet);
      out.complex.add(facet);
    }
    stamps += tpl.num_facets;
  }
  obs::MetricsRegistry::global().counter("ladder.template.stamps").add(stamps);
  out.compiled = builder.finish();
#ifndef NDEBUG
  out.compiled->debug_verify_against(out.complex);
#endif
  return out;
}

SubdividedComplex chromatic_subdivision(VertexPool& pool, const SimplicialComplex& base,
                                        int rounds) {
  SubdividedComplex cur = identity_subdivision(base);
  for (int r = 0; r < rounds; ++r) {
    cur = subdivide_once(pool, cur);
  }
  return cur;
}

void SubdivisionLadder::seed(std::vector<SubdividedComplex> levels) {
  if (levels.empty()) return;
  levels_.clear();
  for (SubdividedComplex& level : levels) {
    levels_.push_back(
        std::make_shared<const SubdividedComplex>(std::move(level)));
  }
}

std::shared_ptr<const SubdividedComplex> SubdivisionLadder::share(int r) {
  assert(r >= 0);
  if (levels_.empty()) {
    levels_.push_back(
        std::make_shared<const SubdividedComplex>(identity_subdivision(base_)));
  }
  while (max_computed() < r) {
    // Per-radius Ch^r build: the dominant cost of deep probes (Kozlov-style
    // blowup), so each level gets its own span.
    TRI_SPAN("topology/ch/r=", static_cast<long long>(max_computed() + 1));
    levels_.push_back(std::make_shared<const SubdividedComplex>(
        subdivide_once(pool_, *levels_.back())));
  }
  return levels_[static_cast<std::size_t>(r)];
}

}  // namespace trichroma
