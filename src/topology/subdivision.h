#pragma once
// The standard chromatic subdivision Ch(K) and its iterates Ch^r(K).
//
// Operationally, Ch(σ) is the complex of one-round immediate-snapshot
// executions by the processes of σ: its facets correspond to the *ordered
// set partitions* (B1, ..., Bk) of σ's vertices — processes in block Bj go
// "together", and each obtains the view B1 ∪ ... ∪ Bj. A subdivision vertex
// is therefore a pair (color, view), where the view is a face of σ
// containing the process's own vertex. Herlihy–Shavit show Ch(σ) is a
// chromatic subdivision of σ; this file builds it combinatorially, and the
// runtime simulator reproduces it operationally (cross-checked in tests).
//
// Every subdivision vertex tracks its *carrier*: the minimal simplex of the
// base complex whose geometric realization contains it. The carrier is what
// connects subdivisions to carrier maps: a simplicial map f from Ch^r(I) is
// "carried by Δ" iff f(ξ) ∈ Δ(carrier(ξ)) for every simplex ξ.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "topology/compiled.h"
#include "topology/complex.h"
#include "topology/vertex.h"

namespace trichroma {

/// A complex together with per-vertex carriers into some fixed base complex.
struct SubdividedComplex {
  SimplicialComplex complex;
  /// carrier[v] = minimal base simplex containing v.
  std::unordered_map<VertexId, Simplex, VertexIdHash> carrier;
  /// Frozen flat snapshot of `complex` (see topology/compiled.h). The
  /// library constructors (identity_subdivision, subdivide_once,
  /// chromatic_subdivision, SubdivisionLadder) always populate it; hand-built
  /// instances may leave it null, in which case consumers compile on demand
  /// via `compiled_view`.
  std::shared_ptr<const CompiledComplex> compiled;

  /// Carrier of a simplex: the union of its vertices' carriers.
  Simplex carrier_of(const Simplex& s) const;

  /// The compiled snapshot, compiling `complex` now if none is attached.
  /// The returned handle keeps the snapshot alive.
  std::shared_ptr<const CompiledComplex> compiled_view() const {
    return compiled != nullptr ? compiled : CompiledComplex::compile(complex);
  }
};

/// The identity subdivision (r = 0): each vertex is its own carrier.
SubdividedComplex identity_subdivision(const SimplicialComplex& base);

/// One round of standard chromatic subdivision applied to `prev`, with
/// carriers composed so they still point into the original base complex.
/// Every simplex of `prev.complex` must be chromatic.
///
/// `threads <= 1` runs the sequential stamped build. `threads > 1` runs the
/// two-phase parallel build on the shared executor (runtime/executor.h): a
/// sequential canonical-order interning pass assigns every vertex id in
/// exactly the sequential order (ids and pool state are part of the
/// determinism contract — warm-started ladders must extend to bit-identical
/// pool state), then facet stamping and carrier construction fan out over
/// weighted chunks of the canonical simplex order into private builders,
/// merged back in chunk order. The result — complex, carriers, compiled
/// snapshot, and pool state — is identical at every thread count (asserted
/// against the sequential path in debug builds).
SubdividedComplex subdivide_once(VertexPool& pool, const SubdividedComplex& prev,
                                 int threads = 1);

/// Ch^r(base): `rounds` iterations of the standard chromatic subdivision.
/// `threads` is forwarded to each `subdivide_once` (same contract: the
/// result is thread-count independent).
SubdividedComplex chromatic_subdivision(VertexPool& pool, const SimplicialComplex& base,
                                        int rounds, int threads = 1);

/// All ordered set partitions of `items` (each block non-empty, blocks
/// ordered). For |items| = 3 there are 13. Deterministic order.
std::vector<std::vector<std::vector<VertexId>>> ordered_partitions(
    const std::vector<VertexId>& items);

/// Compiled combinatorics of Ch(σ) for an abstract m-vertex simplex: the
/// standard chromatic subdivision is fixed combinatorics (Kozlov), so it is
/// derived once per dimension and *stamped* onto every concrete simplex
/// instead of re-enumerating ordered set partitions per simplex per task.
/// Positions index σ's vertices in ascending VertexId order; a subdivision
/// vertex is the pair (position, view) with the view a bitmask over
/// positions. `uniq` lists the distinct pairs in the exact first-occurrence
/// order of the partition enumeration — interning them in this order
/// reproduces the reference `subdivide_once`'s pool state bit for bit.
struct ChTemplate {
  struct TVert {
    std::uint8_t pos;   ///< whose vertex (position in σ, ascending ids)
    std::uint8_t view;  ///< bitmask over positions: B1 ∪ ... ∪ Bj
  };
  std::size_t n = 0;            ///< σ's vertex count
  std::vector<TVert> uniq;      ///< distinct vertices, first-occurrence order
  /// Facet slots, `num_facets × n`, each an index into `uniq`; facet f's
  /// vertices are slots[f*n .. f*n+n) in partition block order.
  std::vector<std::uint16_t> slots;
  std::size_t num_facets = 0;   ///< the ordered-Bell number of n
};

/// Derives the template for an m-vertex simplex (exposed for tests).
ChTemplate build_ch_template(std::size_t n);

/// Memoized template per dimension; same 8-vertex limit (and exception) as
/// `ordered_partitions`.
const ChTemplate& ch_template(std::size_t n);

/// The pre-template `subdivide_once` (per-simplex ordered-partition
/// enumeration), kept as the differential-testing oracle for the stamped
/// path. Produces identical complexes, carriers, and pool state.
SubdividedComplex subdivide_once_reference(VertexPool& pool,
                                           const SubdividedComplex& prev);

/// Incremental cache of the subdivision tower Ch^0, Ch^1, Ch^2, ... of one
/// base complex. Every cached level carries its CompiledComplex snapshot,
/// so the solver's hot paths (CSP compilation, LAP scans) get the flat form
/// for free alongside the hash-set form. `chromatic_subdivision(pool, base, r)` recomputes every
/// round from scratch; callers probing a radius ladder (the solvability
/// engine tries r = 0, 1, 2, ... up to three times per task) instead ask a
/// ladder, which derives Ch^{r+1} from the memoized Ch^r by a single
/// `subdivide_once` step. Because subdivision vertices are interned in the
/// shared pool by (color, view), the ladder's Ch^r is facet-for-facet equal
/// to a cold `chromatic_subdivision(pool, base, r)`.
///
/// The ladder borrows the pool; it must not outlive it. Not thread-safe:
/// `at` both grows the memo and interns vertices in the pool.
///
/// Levels are held by shared_ptr so a caller can keep a level alive past the
/// ladder (`share`) — a found decision map's witness domain outlives the
/// probe that produced it — without deep-copying the complex.
class SubdivisionLadder {
 public:
  SubdivisionLadder(VertexPool& pool, SimplicialComplex base)
      : pool_(pool), base_(std::move(base)) {}

  /// Ch^r(base). References stay valid as the ladder grows.
  const SubdividedComplex& at(int r) { return *share(r); }

  /// Ch^r(base) as a shareable handle; the level stays alive as long as any
  /// handle does.
  std::shared_ptr<const SubdividedComplex> share(int r);

  /// Replaces the memoized tower with externally materialized levels (warm
  /// start from a stored artifact, io/store.h). `levels[r]` must be
  /// Ch^r(base) with vertices already interned in `pool` in the same order
  /// a cold build would intern them; `share` then extends from the deepest
  /// seeded level and — because `subdivide_once` enumerates canonically —
  /// reaches exactly the pool state and levels of a cold tower. No-op on an
  /// empty vector.
  void seed(std::vector<SubdividedComplex> levels);

  /// Highest radius memoized so far; -1 before the first `at` call.
  int max_computed() const { return static_cast<int>(levels_.size()) - 1; }

  /// Worker threads for the `subdivide_once` builds behind `share`/`at`
  /// (<= 1 = sequential; see subdivide_once — every level is identical at
  /// every thread count, so this is a pure wall-clock knob).
  void set_threads(int threads) { threads_ = threads; }
  int threads() const { return threads_; }

 private:
  VertexPool& pool_;
  SimplicialComplex base_;
  int threads_ = 1;
  // levels_[r] == Ch^r(base_)
  std::deque<std::shared_ptr<const SubdividedComplex>> levels_;
};

}  // namespace trichroma
