#include "topology/value.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace trichroma {

ValueId ValuePool::of_int(std::int64_t v) {
  Node n;
  n.kind = Kind::Int;
  n.num = v;
  return intern(std::move(n));
}

ValueId ValuePool::of_string(std::string_view s) {
  Node n;
  n.kind = Kind::Str;
  n.str.assign(s);
  return intern(std::move(n));
}

ValueId ValuePool::of_tuple(std::span<const ValueId> elems) {
  Node n;
  n.kind = Kind::Tuple;
  n.kids.assign(elems.begin(), elems.end());
  return intern(std::move(n));
}

ValueId ValuePool::of_tuple(std::initializer_list<ValueId> elems) {
  return of_tuple(std::span<const ValueId>(elems.begin(), elems.size()));
}

ValueId ValuePool::of_set(std::vector<ValueId> elems) {
  std::sort(elems.begin(), elems.end(),
            [](ValueId a, ValueId b) { return raw(a) < raw(b); });
  elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  Node n;
  n.kind = Kind::Set;
  n.kids = std::move(elems);
  return intern(std::move(n));
}

ValuePool::Kind ValuePool::kind(ValueId id) const { return node(id).kind; }

std::int64_t ValuePool::as_int(ValueId id) const {
  const Node& n = node(id);
  if (n.kind != Kind::Int) throw std::logic_error("value is not an Int");
  return n.num;
}

const std::string& ValuePool::as_string(ValueId id) const {
  const Node& n = node(id);
  if (n.kind != Kind::Str) throw std::logic_error("value is not a Str");
  return n.str;
}

std::span<const ValueId> ValuePool::elements(ValueId id) const {
  const Node& n = node(id);
  if (n.kind != Kind::Tuple && n.kind != Kind::Set)
    throw std::logic_error("value has no elements");
  return n.kids;
}

std::string ValuePool::to_string(ValueId id) const {
  const Node& n = node(id);
  switch (n.kind) {
    case Kind::Int:
      return std::to_string(n.num);
    case Kind::Str:
      return n.str;
    case Kind::Tuple:
    case Kind::Set: {
      std::string out = n.kind == Kind::Tuple ? "(" : "{";
      for (std::size_t i = 0; i < n.kids.size(); ++i) {
        if (i > 0) out += ", ";
        out += to_string(n.kids[i]);
      }
      out += n.kind == Kind::Tuple ? ")" : "}";
      return out;
    }
  }
  return "<?>";
}

ValueId ValuePool::intern(Node n) {
  std::string key = key_of(n);
  auto it = index_.find(key);
  if (it != index_.end()) return ValueId{it->second};
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(std::move(n));
  index_.emplace(std::move(key), id);
  return ValueId{id};
}

std::string ValuePool::key_of(const Node& n) {
  // A canonical byte serialization of the node; children are already
  // interned, so their 4-byte ids identify them uniquely.
  std::string key;
  key.push_back(static_cast<char>(n.kind));
  switch (n.kind) {
    case Kind::Int:
      key.append(reinterpret_cast<const char*>(&n.num), sizeof(n.num));
      break;
    case Kind::Str:
      key.append(n.str);
      break;
    case Kind::Tuple:
    case Kind::Set:
      for (ValueId kid : n.kids) {
        const std::uint32_t r = raw(kid);
        key.append(reinterpret_cast<const char*>(&r), sizeof(r));
      }
      break;
  }
  return key;
}

const ValuePool::Node& ValuePool::node(ValueId id) const {
  assert(raw(id) < nodes_.size());
  return nodes_[raw(id)];
}

}  // namespace trichroma
