#pragma once
// Hash-consed structured values.
//
// Vertices of chromatic complexes carry a *value* besides their color: an
// input value, an output value, a protocol view (a set of other values), a
// canonical-form pair (input, output), or a split copy ("split", y, i).
// All of these are represented uniformly as immutable structured values
// interned in a ValuePool, so that equal values always receive the same
// ValueId and complexes built by different pipeline stages (canonicalization,
// splitting, subdivision) can share vertices without translation tables.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace trichroma {

/// Opaque handle to an interned value. Only meaningful together with the
/// ValuePool that produced it. Equality of handles == equality of values.
enum class ValueId : std::uint32_t {};

constexpr std::uint32_t raw(ValueId id) { return static_cast<std::uint32_t>(id); }

/// Interning pool for structured values.
///
/// Supported shapes:
///  - Int:    a 64-bit integer
///  - Str:    a string label
///  - Tuple:  an ordered sequence of values
///  - Set:    an unordered collection of values (canonically sorted, deduped)
///
/// The pool owns all value storage; ValueIds are stable for its lifetime.
class ValuePool {
 public:
  enum class Kind : std::uint8_t { Int, Str, Tuple, Set };

  ValuePool() = default;
  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Interns an integer value.
  ValueId of_int(std::int64_t v);
  /// Interns a string value.
  ValueId of_string(std::string_view s);
  /// Interns an ordered tuple of previously interned values.
  ValueId of_tuple(std::span<const ValueId> elems);
  ValueId of_tuple(std::initializer_list<ValueId> elems);
  /// Interns a set: elements are sorted and deduplicated canonically.
  ValueId of_set(std::vector<ValueId> elems);

  Kind kind(ValueId id) const;
  std::int64_t as_int(ValueId id) const;
  const std::string& as_string(ValueId id) const;
  /// Elements of a Tuple (in order) or Set (canonically sorted).
  std::span<const ValueId> elements(ValueId id) const;

  /// Human-readable rendering, e.g. `("split", 1, 2)` or `{0, 1}`.
  std::string to_string(ValueId id) const;

  /// Number of distinct values interned so far.
  std::size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    Kind kind;
    std::int64_t num = 0;          // Int payload
    std::string str;               // Str payload
    std::vector<ValueId> kids;     // Tuple/Set payload
  };

  ValueId intern(Node node);
  static std::string key_of(const Node& node);
  const Node& node(ValueId id) const;

  std::vector<Node> nodes_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

}  // namespace trichroma
