#include "topology/vertex.h"

#include <cassert>

namespace trichroma {

VertexId VertexPool::vertex(Color color, ValueId value) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint16_t>(color)) << 32) |
      raw(value);
  auto it = index_.find(key);
  if (it != index_.end()) return VertexId{it->second};
  const auto id = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(Entry{color, value});
  index_.emplace(key, id);
  return VertexId{id};
}

VertexId VertexPool::vertex(Color color, std::int64_t value) {
  return vertex(color, values_->of_int(value));
}

VertexId VertexPool::vertex(Color color, std::string_view value) {
  return vertex(color, values_->of_string(value));
}

Color VertexPool::color(VertexId v) const {
  assert(raw(v) < entries_.size());
  return entries_[raw(v)].color;
}

ValueId VertexPool::value(VertexId v) const {
  assert(raw(v) < entries_.size());
  return entries_[raw(v)].value;
}

std::string VertexPool::name(VertexId v) const {
  const Entry& e = entries_[raw(v)];
  std::string out;
  if (e.color == kNoColor) {
    out = "_:";
  } else {
    out = "P" + std::to_string(e.color) + ":";
  }
  out += values_->to_string(e.value);
  return out;
}

}  // namespace trichroma
