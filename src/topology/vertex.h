#pragma once
// Vertex interning for chromatic simplicial complexes.
//
// A vertex of a chromatic complex is a pair (color, value): the color is a
// process id (0-based), the value an interned structured value. Vertices are
// hash-consed in a VertexPool that also owns the ValuePool, so every complex
// participating in one task pipeline shares a single vertex universe.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/value.h"

namespace trichroma {

/// Process id / color of a vertex. Colorless constructions use kNoColor.
using Color = std::int16_t;
constexpr Color kNoColor = -1;

/// Opaque handle to an interned (color, value) vertex. Ids are dense,
/// starting at 0, and stable for the pool's lifetime; their numeric order
/// provides the "unique number per vertex" that the paper's Figure-7
/// algorithm uses for lexicographic path selection.
enum class VertexId : std::uint32_t {};

constexpr std::uint32_t raw(VertexId id) { return static_cast<std::uint32_t>(id); }

struct VertexIdHash {
  std::size_t operator()(VertexId id) const noexcept {
    return std::hash<std::uint32_t>{}(raw(id));
  }
};

/// Interning pool for chromatic vertices. Owns the underlying ValuePool.
class VertexPool {
 public:
  VertexPool() : values_(std::make_unique<ValuePool>()) {}
  VertexPool(const VertexPool&) = delete;
  VertexPool& operator=(const VertexPool&) = delete;

  /// Access to the value pool, for building structured vertex values.
  ValuePool& values() { return *values_; }
  const ValuePool& values() const { return *values_; }

  /// Interns the vertex (color, value).
  VertexId vertex(Color color, ValueId value);

  /// Convenience: vertex whose value is an integer / string.
  VertexId vertex(Color color, std::int64_t value);
  VertexId vertex(Color color, std::string_view value);

  Color color(VertexId v) const;
  ValueId value(VertexId v) const;

  /// Human-readable rendering, e.g. `P1:0` or `P0:("split", 1, 2)`.
  std::string name(VertexId v) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Color color;
    ValueId value;
  };

  std::unique_ptr<ValuePool> values_;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
};

}  // namespace trichroma
