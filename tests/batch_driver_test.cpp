// The parallel batch driver (solver/batch.h): the report set for the whole
// 21-task zoo catalog must be byte-identical — after timing redaction — for
// every --jobs value and every inner search thread count, and must come
// back in catalog order. This is the contract that makes `trichroma batch
// --report-dir` artifacts diffable across machines and worker counts.

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/report.h"
#include "solver/batch.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

std::vector<std::string> rendered_reports(const BatchResult& result) {
  io::ReportJsonOptions json;
  json.redact_timings = true;
  std::vector<std::string> out;
  out.reserve(result.tasks.size());
  for (const BatchTaskResult& t : result.tasks) {
    out.push_back(io::to_json(t.report, json));
  }
  return out;
}

TEST(BatchDriver, FullCatalogReportsByteIdenticalAcrossJobCounts) {
  BatchOptions base;
  base.jobs = 1;
  const BatchResult reference = run_batch(base);
  ASSERT_EQ(reference.tasks.size(), zoo::catalog().size());
  const std::vector<std::string> expected = rendered_reports(reference);

  for (int jobs : {2, 8}) {
    BatchOptions options;
    options.jobs = jobs;
    const BatchResult result = run_batch(options);
    ASSERT_EQ(result.tasks.size(), reference.tasks.size()) << jobs << " jobs";
    const std::vector<std::string> actual = rendered_reports(result);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.tasks[i].name, reference.tasks[i].name);
      EXPECT_EQ(actual[i], expected[i])
          << result.tasks[i].name << " differs at --jobs " << jobs;
    }
  }
}

TEST(BatchDriver, FullCatalogReportsByteIdenticalAcrossSearchThreadCounts) {
  // Inner search parallelism composes with outer batch parallelism; neither
  // may leak into the reports.
  BatchOptions base;
  base.jobs = 1;
  base.solve.threads = 1;
  const std::vector<std::string> expected = rendered_reports(run_batch(base));

  for (int threads : {2, 8}) {
    BatchOptions options;
    options.jobs = 2;
    options.solve.threads = threads;
    const BatchResult result = run_batch(options);
    const std::vector<std::string> actual = rendered_reports(result);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i])
          << result.tasks[i].name << " differs at --threads " << threads;
    }
  }
}

TEST(BatchDriver, ResultsComeBackInCatalogOrder) {
  const std::vector<zoo::CatalogEntry>& catalog = zoo::catalog();
  BatchOptions options;
  options.jobs = 4;
  const BatchResult result = run_batch(options);
  ASSERT_EQ(result.tasks.size(), catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(result.tasks[i].name, catalog[i].name);
  }
}

TEST(BatchDriver, SubsetFollowsCatalogOrderNotRequestOrder) {
  BatchOptions options;
  options.only = {"hourglass", "identity"};  // reversed relative to catalog
  const BatchResult result = run_batch(options);
  ASSERT_EQ(result.tasks.size(), 2u);
  EXPECT_EQ(result.tasks[0].name, "identity");
  EXPECT_EQ(result.tasks[1].name, "hourglass");
}

TEST(BatchDriver, UnknownTaskNameThrows) {
  BatchOptions options;
  options.only = {"no_such_task"};
  EXPECT_THROW(run_batch(options), std::invalid_argument);
}

TEST(BatchDriver, ReportsNeverUseTheRacingSchedule) {
  // The driver pins kLadder so engine statuses are schedule-independent;
  // two-process tasks report their exact branch.
  BatchOptions options;
  options.jobs = 8;
  options.solve.threads = 8;  // would race under kAuto
  const BatchResult result = run_batch(options);
  for (const BatchTaskResult& t : result.tasks) {
    EXPECT_TRUE(t.report.schedule == "ladder" || t.report.schedule == "exact")
        << t.name << " ran under " << t.report.schedule;
  }
}

TEST(BatchDriver, CountsUnknownVerdicts) {
  // A starved budget turns the searches inconclusive; the driver must
  // surface that in `unknown` (the CLI exit code depends on it).
  BatchOptions options;
  options.only = {"loop_filled"};
  options.solve.node_cap = 10;
  options.solve.use_characterization = false;
  const BatchResult result = run_batch(options);
  ASSERT_EQ(result.tasks.size(), 1u);
  EXPECT_EQ(result.tasks[0].report.verdict, Verdict::Unknown);
  EXPECT_EQ(result.unknown, 1);
}

}  // namespace
}  // namespace trichroma
