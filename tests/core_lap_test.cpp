// Tests for LAP detection (Section 4 definitions).

#include <gtest/gtest.h>

#include "core/lap.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/graph.h"

namespace trichroma {
namespace {

TEST(Lap, HourglassHasExactlyOneLap) {
  const Task t = zoo::hourglass();
  const auto laps = find_all_laps(t);
  ASSERT_EQ(laps.size(), 1u);
  EXPECT_EQ(t.pool->color(laps[0].vertex), 0);  // P0's vertex
  EXPECT_EQ(laps[0].link_components.size(), 2u);
  EXPECT_EQ(laps[0].link_components[0].size(), 2u);
  EXPECT_EQ(laps[0].link_components[1].size(), 2u);
}

TEST(Lap, PinwheelHasSixLaps) {
  const auto laps = find_all_laps(zoo::pinwheel());
  EXPECT_EQ(laps.size(), 6u);
  for (const auto& lap : laps) {
    EXPECT_EQ(lap.link_components.size(), 2u);
  }
}

TEST(Lap, SetAgreementHasNoLaps) {
  // Full 2-set agreement keeps all 21 triangles; every link is connected.
  EXPECT_TRUE(find_all_laps(zoo::set_agreement_32()).empty());
  EXPECT_TRUE(zoo::set_agreement_32().is_link_connected());
}

TEST(Lap, SubdivisionTaskHasNoLaps) {
  EXPECT_TRUE(find_all_laps(zoo::subdivision_task(1)).empty());
}

TEST(Lap, MajorityConsensusCanonicalHasLaps) {
  // The Fig. 1 story: after canonicalization, majority consensus has LAPs.
  const Task star = canonicalize(zoo::majority_consensus());
  EXPECT_FALSE(find_all_laps(star).empty());
}

TEST(Lap, FirstLapIsSmallestVertex) {
  const Task t = zoo::pinwheel();
  const Simplex sigma = t.input.facets().front();
  const auto laps = find_laps(t, sigma);
  ASSERT_GE(laps.size(), 2u);
  const auto first = first_lap(t, sigma);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->vertex, laps.front().vertex);
  for (const auto& lap : laps) {
    EXPECT_LE(raw(laps.front().vertex), raw(lap.vertex));
  }
}

TEST(Lap, LapsArePerFacet) {
  // A LAP is relative to a facet σ: a vertex may have a disconnected link
  // w.r.t. one facet but not another. In majority consensus (canonical),
  // count per-facet records and check each against its own image.
  const Task star = canonicalize(zoo::majority_consensus());
  for (const auto& lap : find_all_laps(star)) {
    const SimplicialComplex image = star.delta.image_complex(lap.facet);
    EXPECT_GE(connected_components(image.link(lap.vertex)).size(), 2u);
  }
}

}  // namespace
}  // namespace trichroma
