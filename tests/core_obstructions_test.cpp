// Tests for the impossibility engines: Corollaries 5.5 / 5.6, the
// connectivity CSP, and the GF(2) homological boundary obstruction.

#include <gtest/gtest.h>

#include "core/characterization.h"
#include "core/obstructions.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/graph.h"

namespace trichroma {
namespace {

TEST(Corollary55, FiresOnHourglass) {
  // §6.1: every Δ(x0) → Δ(x1) path crosses the LAP y.
  const CorollaryResult r = corollary_5_5(zoo::hourglass());
  EXPECT_TRUE(r.fires);
  EXPECT_FALSE(r.detail.empty());
}

TEST(Corollary55, MajorityConsensusSeparatesAtFacetLevel) {
  // Fig. 1's task. Pre-split, solo images are directly adjacent across
  // every single edge, so the literal (edge-level) Corollary 5.5 is silent
  // both before and after splitting; the paper's "two disconnected
  // components" argument chains across a whole facet, which is exactly the
  // connectivity CSP. Each mixed-input facet's split image indeed has two
  // components.
  EXPECT_FALSE(corollary_5_5(canonicalize(zoo::majority_consensus())).fires);
  const CharacterizationResult c = characterize(zoo::majority_consensus());
  const Task& tp = c.link_connected;
  std::size_t split_facets = 0;
  for (const Simplex& sigma : tp.input.simplices(2)) {
    const auto n = component_count(tp.delta.image_complex(sigma));
    if (n >= 2) ++split_facets;
  }
  EXPECT_EQ(split_facets, 6u);  // all but the two uniform-input facets
  EXPECT_FALSE(connectivity_csp(tp).feasible);
}

TEST(Corollary55, SilentOnSolvableTasks) {
  EXPECT_FALSE(corollary_5_5(zoo::identity_task()).fires);
  EXPECT_FALSE(corollary_5_5(zoo::subdivision_task(1)).fires);
  EXPECT_FALSE(corollary_5_5(canonicalize(zoo::approximate_agreement(2))).fires);
  EXPECT_FALSE(corollary_5_5(zoo::renaming(5)).fires);
}

TEST(Corollary55, SilentOnPinwheel) {
  // §6.2: "we cannot directly use Corollary 5.5, because there is still a
  // path between vertices in Δ(x) and Δ(x') for each input edge".
  EXPECT_FALSE(corollary_5_5(canonicalize(zoo::pinwheel())).fires);
}

TEST(Corollary56, FiresOnPinwheel) {
  // §6.2's argument: every cycle in Δ(Skel¹I) goes through a LAP, and no
  // crossing-free boundary walk closes up across the three blades.
  const CorollaryResult r = corollary_5_6(canonicalize(zoo::pinwheel()));
  EXPECT_TRUE(r.fires);
}

TEST(Corollary56, SilentOnHourglass) {
  // The hourglass's crossing-free skeleton still carries a cycle, so the
  // premise "every cycle goes through a LAP" fails.
  EXPECT_FALSE(corollary_5_6(zoo::hourglass()).fires);
}

TEST(Corollary56, SilentOnSolvableAndMultiFacetTasks) {
  EXPECT_FALSE(corollary_5_6(zoo::subdivision_task(1)).fires);
  EXPECT_FALSE(corollary_5_6(zoo::identity_task()).fires);
  // Multi-facet inputs: the corollary is stated for a single triangle.
  EXPECT_FALSE(corollary_5_6(canonicalize(zoo::consensus(3))).fires);
}

TEST(ConnectivityCsp, FeasibleOnSolvableTasks) {
  EXPECT_TRUE(connectivity_csp(zoo::identity_task()).feasible);
  EXPECT_TRUE(connectivity_csp(zoo::subdivision_task(1)).feasible);
  EXPECT_TRUE(connectivity_csp(zoo::approximate_agreement(2)).feasible);
}

TEST(ConnectivityCsp, InfeasibleOnConsensus) {
  // Mixed-input edges have disconnected images: consensus dies already at
  // the 1-dimensional level.
  const ConnectivityCsp csp = connectivity_csp(zoo::consensus(3));
  EXPECT_FALSE(csp.feasible);
  EXPECT_TRUE(csp.exhausted);
}

TEST(ConnectivityCsp, InfeasibleOnSplitHourglass) {
  const CharacterizationResult c = characterize(zoo::hourglass());
  EXPECT_FALSE(connectivity_csp(c.link_connected).feasible);
}

TEST(ConnectivityCsp, InfeasibleOnSplitPinwheel) {
  const CharacterizationResult c = characterize(zoo::pinwheel());
  EXPECT_FALSE(connectivity_csp(c.link_connected).feasible);
}

TEST(ConnectivityCsp, InfeasibleOnSplitMajorityConsensus) {
  const CharacterizationResult c = characterize(zoo::majority_consensus());
  EXPECT_FALSE(connectivity_csp(c.link_connected).feasible);
}

TEST(ConnectivityCsp, WitnessIsConsistent) {
  const Task t = zoo::approximate_agreement(2);
  const ConnectivityCsp csp = connectivity_csp(t);
  ASSERT_TRUE(csp.feasible);
  for (VertexId x : t.input.vertex_ids()) {
    ASSERT_TRUE(csp.witness.count(x) > 0);
    EXPECT_TRUE(t.delta.image_complex(Simplex::single(x))
                    .contains_vertex(csp.witness.at(x)));
  }
}

TEST(Homology, FeasibleOnSolvableTasks) {
  EXPECT_TRUE(homology_boundary_check(zoo::identity_task()).feasible);
  EXPECT_TRUE(homology_boundary_check(zoo::subdivision_task(1)).feasible);
  EXPECT_TRUE(homology_boundary_check(zoo::renaming(5)).feasible);
}

TEST(Homology, InfeasibleOnSetAgreement) {
  // The classic impossibility: the boundary loop of 2-set agreement wraps
  // the annular hole and never bounds — no LAPs involved.
  const HomologyObstruction h = homology_boundary_check(zoo::set_agreement_32());
  EXPECT_FALSE(h.feasible);
  EXPECT_TRUE(h.exhausted);
}

TEST(Homology, InfeasibleOnHollowLoopAgreement) {
  const HomologyObstruction h =
      homology_boundary_check(zoo::loop_agreement_hollow_triangle());
  EXPECT_FALSE(h.feasible);
}

TEST(Homology, FeasibleOnFilledLoopAgreement) {
  EXPECT_TRUE(homology_boundary_check(zoo::loop_agreement_filled_triangle()).feasible);
}

TEST(Homology, FeasibleOnHourglassPreSplit) {
  // The hourglass boundary loop is null-homotopic (the colorless ACT
  // condition holds), so the homological engine must not fire pre-split.
  EXPECT_TRUE(homology_boundary_check(zoo::hourglass()).feasible);
}

TEST(Homology, PinwheelPreSplitHasNoContinuousMap) {
  // §6.2: unlike the hourglass, the pinwheel has no continuous map even
  // colorlessly.
  const HomologyObstruction h = homology_boundary_check(zoo::pinwheel());
  EXPECT_FALSE(h.feasible);
}


TEST(Homology, TwistedHourglassNeedsGf3) {
  // The twisted hourglass's boundary walk is the square of the waist loop:
  // invisible over GF(2), refuted over GF(3). This is why the boundary
  // check runs over both primes.
  const Task t = zoo::twisted_hourglass();
  ASSERT_TRUE(t.validate().empty());
  const HomologyObstruction h = homology_boundary_check(t);
  EXPECT_FALSE(h.feasible);
  EXPECT_NE(h.detail.find("GF(3)"), std::string::npos) << h.detail;
}

TEST(Homology, UntwistedHourglassPassesBothPrimes) {
  // Control: the genuine hourglass's walk cancels (alpha^-1 beta beta^-1
  // alpha), so neither prime refutes it.
  EXPECT_TRUE(homology_boundary_check(zoo::hourglass()).feasible);
}


TEST(Homology, SurfaceLoopAgreementRefuted) {
  // The torus loop generates H1 (free part): refuted over both primes.
  EXPECT_FALSE(homology_boundary_check(zoo::loop_agreement_torus()).feasible);
  // RP2's essential loop is 2-torsion: H1(RP2; GF(2)) = Z2 sees it.
  EXPECT_FALSE(
      homology_boundary_check(zoo::loop_agreement_projective_plane()).feasible);
}

}  // namespace
}  // namespace trichroma
