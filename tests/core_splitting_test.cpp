// Tests for the splitting deformation (Section 4): Lemma 4.1 (LAP count
// strictly decreases, no new LAPs on clean facets), Claim 1 (canonicity
// preserved), Theorem 4.3 (termination in a link-connected task), and the
// carrier-map validity of every intermediate task.

#include <gtest/gtest.h>

#include "core/link_connected.h"
#include "core/splitting.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/graph.h"

namespace trichroma {
namespace {

TEST(Splitting, SplitCopyRoundTrip) {
  VertexPool pool;
  const VertexId y = pool.vertex(0, 7);
  const VertexId y1 = split_copy(pool, y, 1);
  const VertexId y2 = split_copy(pool, y, 2);
  EXPECT_NE(y1, y2);
  EXPECT_EQ(pool.color(y1), pool.color(y));
  EXPECT_TRUE(is_split_vertex(pool, y1));
  EXPECT_FALSE(is_split_vertex(pool, y));
  EXPECT_EQ(split_parent(pool, y1), y);
  // Nested splits unwrap fully.
  const VertexId y11 = split_copy(pool, y1, 1);
  EXPECT_EQ(split_parent(pool, y11), y1);
  EXPECT_EQ(split_root(pool, y11), y);
  EXPECT_EQ(split_root(pool, y), y);
}

TEST(Splitting, HourglassSplitMatchesFig2) {
  const Task t = zoo::hourglass();  // already canonical
  const auto laps = find_all_laps(t);
  ASSERT_EQ(laps.size(), 1u);
  const SplitResult split = split_lap(t, laps[0]);
  const Task& ty = split.task;

  EXPECT_TRUE(ty.validate().empty()) << ty.validate().front();
  EXPECT_TRUE(ty.is_canonical());
  EXPECT_TRUE(find_all_laps(ty).empty());  // the only LAP is gone
  EXPECT_EQ(split.copies.size(), 2u);

  // Same triangle count, one extra vertex (y replaced by two copies).
  EXPECT_EQ(ty.output.count(2), t.output.count(2));
  EXPECT_EQ(ty.output.count(0), t.output.count(0) + 1);
  EXPECT_FALSE(ty.output.contains_vertex(split.original));
  for (VertexId copy : split.copies) {
    EXPECT_TRUE(ty.output.contains_vertex(copy));
  }
  // The split task's two-process path for {x0, x1} is now disconnected
  // between the solo vertices (the Corollary 5.5 obstruction).
  const auto edges = ty.input.simplices(1);
  bool found_disconnected = false;
  for (const Simplex& e : edges) {
    const SimplicialComplex image = ty.delta.image_complex(e);
    if (component_count(image) > 1) found_disconnected = true;
  }
  EXPECT_TRUE(found_disconnected);
}

TEST(Splitting, Lemma41NoNewLapsOnCleanFacetsAndStrictDecrease) {
  // Pinwheel: six LAPs w.r.t. the unique facet; each split strictly
  // decreases the count and never resurrects one.
  Task t = zoo::pinwheel();
  std::size_t previous = find_all_laps(t).size();
  ASSERT_EQ(previous, 6u);
  while (previous > 0) {
    const Simplex sigma = t.input.facets().front();
    const auto lap = first_lap(t, sigma);
    ASSERT_TRUE(lap.has_value());
    const SplitResult split = split_lap(t, *lap);
    t = split.task;
    ASSERT_TRUE(t.validate(/*relax_vertex_monotonicity=*/true).empty())
        << t.validate(true).front();
    const std::size_t now = find_all_laps(t).size();
    EXPECT_LT(now, previous);
    previous = now;
  }
  EXPECT_TRUE(t.is_link_connected());
}

TEST(Splitting, PinwheelSplitsIntoThreeBlades) {
  // Figure 8: after eliminating all LAPs the output complex falls apart
  // into three components (the blades), pre-split it is connected.
  const Task t = zoo::pinwheel();
  EXPECT_TRUE(is_connected(t.output));
  const LinkConnectedResult lc = make_link_connected(t);
  EXPECT_EQ(lc.history.size(), 6u);
  EXPECT_EQ(component_count(lc.task.output), 3u);
  // Each blade: 3 triangles on 5 vertices (split copies replace the four
  // LAP vertices the blade touches; one interior vertex is unsplit).
  for (const auto& comp : connected_components(lc.task.output)) {
    EXPECT_EQ(comp.size(), 5u);
  }
}

TEST(Splitting, MakeLinkConnectedOnAllZooTasks) {
  const std::vector<Task> tasks = {
      canonicalize(zoo::consensus(3)),
      canonicalize(zoo::majority_consensus()),
      canonicalize(zoo::set_agreement_32()),
      zoo::hourglass(),
      canonicalize(zoo::pinwheel()),
      canonicalize(zoo::fig3_running_example()),
      canonicalize(zoo::subdivision_task(1)),
      canonicalize(zoo::approximate_agreement(2)),
  };
  for (const Task& t : tasks) {
    const LinkConnectedResult lc = make_link_connected(t);
    EXPECT_TRUE(lc.task.is_link_connected()) << t.name;
    EXPECT_TRUE(lc.task.is_canonical()) << t.name;  // Claim 1, iterated
    const auto errors = lc.task.validate(/*relax_vertex_monotonicity=*/true);
    EXPECT_TRUE(errors.empty()) << t.name << ": " << errors.front();
  }
}

TEST(Splitting, SplitRewiringRespectsComponents) {
  // For τ ⊆ σ, a rewired facet must use the copy of the component that
  // contains the rest of the facet.
  const Task t = zoo::hourglass();
  const auto laps = find_all_laps(t);
  const SplitResult split = split_lap(t, laps[0]);
  VertexPool& pool = *t.pool;

  std::unordered_map<VertexId, std::size_t, VertexIdHash> component_of;
  for (std::size_t i = 0; i < laps[0].link_components.size(); ++i) {
    for (VertexId z : laps[0].link_components[i]) component_of.emplace(z, i);
  }
  split.task.input.for_each([&](const Simplex& tau) {
    for (const Simplex& rho : split.task.delta.facet_images(tau)) {
      for (VertexId v : rho) {
        if (!is_split_vertex(pool, v)) continue;
        // The copy index is the 1-based component id.
        const auto idx = static_cast<std::size_t>(
            pool.values().as_int(pool.values().elements(pool.value(v))[2]));
        for (VertexId other : rho) {
          if (other == v) continue;
          auto it = component_of.find(other);
          if (it != component_of.end()) {
            EXPECT_EQ(it->second + 1, idx)
                << "facet " << rho.to_string(pool) << " straddles components";
          }
        }
      }
    }
  });
}

TEST(Splitting, RequiresCanonicalTask) {
  const Task t = zoo::majority_consensus();  // not canonical
  EXPECT_THROW(make_link_connected(t), std::logic_error);
}

TEST(Splitting, UnsplitVertexTranslatesBack) {
  const Task t = zoo::pinwheel();
  const LinkConnectedResult lc = make_link_connected(t);
  VertexPool& pool = *t.pool;
  for (VertexId v : lc.task.output.vertex_ids()) {
    const VertexId root = unsplit_vertex(pool, v);
    EXPECT_TRUE(t.output.contains_vertex(root)) << pool.name(v);
  }
}

}  // namespace
}  // namespace trichroma
