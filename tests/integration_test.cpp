// Integration tests: the engines must agree with each other and with the
// paper's worked examples, end to end.

#include <gtest/gtest.h>

#include "core/characterization.h"
#include "core/obstructions.h"
#include "protocols/pipeline.h"
#include "solver/solvability.h"
#include "tasks/canonical.h"
#include "tasks/zoo.h"
#include "topology/graph.h"
#include "topology/homology.h"

namespace trichroma {
namespace {

TEST(Integration, VerdictTableMatchesTheory) {
  struct Row {
    Task task;
    Verdict expected;
  };
  const std::vector<Row> table = {
      {zoo::identity_task(), Verdict::Solvable},
      {zoo::renaming(5), Verdict::Solvable},
      {zoo::subdivision_task(0), Verdict::Solvable},
      {zoo::subdivision_task(1), Verdict::Solvable},
      {zoo::approximate_agreement(2), Verdict::Solvable},
      {zoo::fig3_running_example(), Verdict::Solvable},
      {zoo::loop_agreement_filled_triangle(), Verdict::Solvable},
      {zoo::consensus(3), Verdict::Unsolvable},
      {zoo::set_agreement_32(), Verdict::Unsolvable},
      {zoo::majority_consensus(), Verdict::Unsolvable},
      {zoo::hourglass(), Verdict::Unsolvable},
      {zoo::pinwheel(), Verdict::Unsolvable},
      {zoo::loop_agreement_hollow_triangle(), Verdict::Unsolvable},
      {zoo::consensus_2(), Verdict::Unsolvable},
      {zoo::approximate_agreement_2(2), Verdict::Solvable},
  };
  for (const Row& row : table) {
    const SolvabilityResult r = decide_solvability(row.task);
    EXPECT_EQ(r.verdict, row.expected) << row.task.name << ": " << r.reason;
  }
}

TEST(Integration, Hourglass61Story) {
  // The complete §6.1 narrative in one place.
  const Task t = zoo::hourglass();
  // (a) the colorless ACT condition holds: a color-agnostic map exists;
  EXPECT_TRUE(colorless_probe(t, 2).found);
  // (b) yet the chromatic task is unsolvable;
  EXPECT_EQ(decide_solvability(t).verdict, Verdict::Unsolvable);
  // (c) the obstruction is the LAP: splitting it drops the impossibility
  //     "dimension" to a consensus-style disconnection (Corollary 5.5);
  const CharacterizationResult c = characterize(t);
  ASSERT_EQ(c.splits.size(), 1u);
  EXPECT_TRUE(corollary_5_5(c.canonical).fires);
  EXPECT_FALSE(connectivity_csp(c.link_connected).feasible);
  // (d) and the split complex has no hole left (the waist ring opened up).
  EXPECT_EQ(c.output_betti_before.b1, 1);
  EXPECT_EQ(c.output_betti_after.b1, 0);
}

TEST(Integration, Pinwheel62Story) {
  const Task t = zoo::pinwheel();
  // (a) no continuous map even colorlessly (contrast with the hourglass);
  EXPECT_FALSE(homology_boundary_check(t).feasible);
  // (b) Corollary 5.5 is silent, Corollary 5.6 fires;
  const Task star = canonicalize(t);
  EXPECT_FALSE(corollary_5_5(star).fires);
  EXPECT_TRUE(corollary_5_6(star).fires);
  // (c) splitting the six LAPs yields three blades;
  const CharacterizationResult c = characterize(t);
  EXPECT_EQ(c.splits.size(), 6u);
  EXPECT_EQ(c.output_components_after, 3u);
  // (d) and no blade contains an output for every process's input.
  EXPECT_FALSE(connectivity_csp(c.link_connected).feasible);
}

TEST(Integration, SplittingPreservesSolvabilityOnRandomTasks) {
  // Lemma 4.2, empirically: if the original task has a chromatic decision
  // map at radius <= 1, the split task must admit a color-agnostic one; if
  // the split task is obstructed, the original must have no map.
  int solvable_seen = 0, obstructed_seen = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    zoo::RandomTaskParams params;
    params.seed = seed;
    params.num_input_facets = 1 + static_cast<int>(seed % 3);
    const Task t = zoo::random_task(params);
    const SolvabilityOptions options{.max_radius = 1};
    const SolvabilityResult direct = decide_solvability(t, options);
    const CharacterizationResult c = characterize(t);
    const ConnectivityCsp csp = connectivity_csp(c.link_connected);
    const HomologyObstruction hom = homology_boundary_check(c.link_connected);
    if (direct.verdict == Verdict::Solvable) {
      ++solvable_seen;
      EXPECT_TRUE(csp.feasible) << t.name;
      EXPECT_TRUE(hom.feasible) << t.name;
    }
    if (!csp.feasible || !hom.feasible) {
      ++obstructed_seen;
      EXPECT_NE(direct.verdict, Verdict::Solvable) << t.name;
    }
  }
  // The sweep must actually exercise both sides.
  EXPECT_GT(solvable_seen, 0);
  EXPECT_GT(obstructed_seen, 0);
}

TEST(Integration, EndToEndSolverAgreesWithVerdict) {
  // Whenever decide_solvability says Solvable for a single-facet task, the
  // end-to-end protocol stack must execute correctly.
  const std::vector<Task> tasks = {zoo::subdivision_task(1), zoo::renaming(4),
                                   zoo::identity_task()};
  for (const Task& t : tasks) {
    ASSERT_EQ(decide_solvability(t).verdict, Verdict::Solvable) << t.name;
    const auto solver = protocols::build_end_to_end(t, 2);
    ASSERT_TRUE(solver.has_value()) << t.name;
    const Simplex facet = t.input.facets().front();
    std::vector<std::pair<int, VertexId>> inputs;
    for (int i = 0; i < 3; ++i) inputs.emplace_back(i, facet[static_cast<std::size_t>(i)]);
    for (int seed = 0; seed < 8; ++seed) {
      EXPECT_TRUE(protocols::run_end_to_end(*solver, t, inputs,
                                            static_cast<std::uint64_t>(seed))
                      .valid)
          << t.name << " seed " << seed;
    }
  }
}

TEST(Integration, CharacterizationIdempotentOnLinkConnectedTasks) {
  // Splitting a link-connected task is a no-op.
  const Task t = zoo::subdivision_task(1);
  const CharacterizationResult c = characterize(t);
  EXPECT_TRUE(c.splits.empty());
  EXPECT_EQ(c.output_components_before, c.output_components_after);
}

TEST(Integration, ReportsAreHumanReadable) {
  const CharacterizationResult c = characterize(zoo::pinwheel());
  const std::string report = c.report(*c.canonical.pool);
  EXPECT_NE(report.find("splits performed: 6"), std::string::npos);
  EXPECT_NE(report.find("components: 1 -> 3"), std::string::npos);
}

TEST(Integration, SolvableVerdictsComeWithProtocols) {
  // A Solvable verdict with a chromatic witness must validate as a
  // decision map — the verdict *is* an algorithm.
  const Task t = zoo::approximate_agreement(2);
  const SolvabilityResult r = decide_solvability(t);
  ASSERT_EQ(r.verdict, Verdict::Solvable);
  ASSERT_TRUE(r.has_chromatic_witness);
  ASSERT_NE(r.witness_domain, nullptr);
  EXPECT_TRUE(
      validate_decision_map(*t.pool, *r.witness_domain, t, r.witness, true));
}

}  // namespace
}  // namespace trichroma
