// The JSON pipeline report: schema stability (a checked-in golden file for
// the hourglass run) and the basic emitter invariants.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "io/report.h"
#include "solver/pipeline.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path = std::string(TRICHROMA_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Report, HourglassGoldenFile) {
  // threads = 1 makes the whole report deterministic (engine statuses and
  // node counts included); redacting timings makes it byte-stable.
  SolvabilityOptions options;
  options.threads = 1;
  const PipelineResult r = run_pipeline(zoo::hourglass(), options);
  io::ReportJsonOptions json;
  json.redact_timings = true;
  EXPECT_EQ(io::to_json(r.report, json), read_golden("hourglass_report.json"));
}

TEST(Report, SchemaFieldsPresentForEveryVerdictShape) {
  // One solvable (radius > 0), one two-process: the other report shapes.
  for (Task (*build)() : {+[] { return zoo::subdivision_task(1); },
                          +[] { return zoo::consensus_2(); }}) {
    SolvabilityOptions options;
    options.threads = 1;
    const PipelineResult r = run_pipeline(build(), options);
    const std::string json = io::to_json(r.report);
    EXPECT_NE(json.find("\"schema\": \"trichroma.pipeline-report/9\""),
              std::string::npos);
    EXPECT_NE(json.find("\"verdict\":"), std::string::npos);
    // Schema v6/v7: the verdict-store marker and rollup, each on one line so
    // `grep -v '"cache":'` strips every cache-dependent field.
    EXPECT_NE(json.find("\"cache\": \"off\""), std::string::npos);
    EXPECT_NE(json.find("\"cache\": { \"hits\": 0, \"misses\": 0, "
                        "\"seeded_levels\": 0, \"store_bytes\": 0 }"),
              std::string::npos);
    EXPECT_NE(json.find("\"engines\": ["), std::string::npos);
    EXPECT_NE(json.find("\"characterization\": "), std::string::npos);
    // Schema v4: the metrics section with its deterministic rollups and the
    // executor telemetry sub-object.
    EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
    EXPECT_NE(json.find("\"nodes_explored_total\":"), std::string::npos);
    EXPECT_NE(json.find("\"executor\": {"), std::string::npos);
    EXPECT_NE(json.find("\"max_queue_depth\":"), std::string::npos);
    // Schema v8: the parallel ladder-build telemetry sub-object.
    EXPECT_NE(json.find("\"ladder\": {"), std::string::npos);
    EXPECT_NE(json.find("\"parallel_chunks\":"), std::string::npos);
    EXPECT_NE(json.find("\"stripe_contention\":"), std::string::npos);
    // Schema v9: per-run attribution. The "run" object (phases, cache tier
    // on a `"cache":` line, deterministic rollups) and the per-engine
    // distributions, each rendered on a single line.
    EXPECT_NE(json.find("\"run\": {"), std::string::npos);
    EXPECT_NE(json.find("\"phases\": {"), std::string::npos);
    EXPECT_NE(json.find("\"consult_ms\":"), std::string::npos);
    EXPECT_NE(json.find("\"engines_ms\":"), std::string::npos);
    EXPECT_NE(json.find("\"publish_ms\":"), std::string::npos);
    EXPECT_NE(json.find("\"cache\": { \"tier\": \"off\", "
                        "\"seeded_levels\": 0 }"),
              std::string::npos);
    EXPECT_NE(json.find("\"domain_sizes\": { \"count\":"), std::string::npos);
    EXPECT_NE(json.find("\"ladder_levels\": ["), std::string::npos);
    EXPECT_NE(json.find("\"level_facets\": ["), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
  }
}

TEST(Report, CharacterizationMarkerIsExplicitNeverAbsent) {
  // The marker must be present with a concrete value in BOTH states — a
  // consumer should never have to interpret a missing field. With the
  // characterization route disabled the lane cannot run, so the report
  // must say "not-computed" (the same rendering covers the raced-out case
  // at threads >= 2, which is inherently timing-dependent).
  SolvabilityOptions off;
  off.threads = 1;
  off.use_characterization = false;
  const PipelineResult skipped = run_pipeline(zoo::hourglass(), off);
  EXPECT_EQ(skipped.characterization, nullptr);
  const std::string skipped_json = io::to_json(skipped.report);
  EXPECT_NE(skipped_json.find("\"characterization\": \"not-computed\""),
            std::string::npos);
  EXPECT_EQ(skipped_json.find("\"characterization\": null"),
            std::string::npos);

  // Hourglass at threads = 1 runs the impossibility ladder to completion,
  // so the payload exists and the marker flips.
  SolvabilityOptions on;
  on.threads = 1;
  const PipelineResult computed = run_pipeline(zoo::hourglass(), on);
  EXPECT_NE(computed.characterization, nullptr);
  EXPECT_NE(io::to_json(computed.report)
                .find("\"characterization\": \"computed\""),
            std::string::npos);
}

TEST(Report, RedactTimingsZeroesEveryWallClock) {
  SolvabilityOptions options;
  options.threads = 1;
  const PipelineResult r = run_pipeline(zoo::identity_task(), options);
  io::ReportJsonOptions json;
  json.redact_timings = true;
  const std::string text = io::to_json(r.report, json);
  EXPECT_EQ(text.find("wall_ms\": 0.000") == std::string::npos, false);
  // No non-zero wall_ms survives redaction.
  for (std::size_t pos = text.find("wall_ms"); pos != std::string::npos;
       pos = text.find("wall_ms", pos + 1)) {
    EXPECT_EQ(text.substr(pos, std::string("wall_ms\": 0.000").size()),
              "wall_ms\": 0.000");
  }
}

TEST(Report, RedactTimingsZeroesExecutorTelemetry) {
  // The executor sub-object is scheduling telemetry — as nondeterministic
  // as a wall clock — so redaction must zero it for byte-stable reports,
  // while the unredacted rendering keeps the sampled values.
  PipelineReport report;
  report.executor_stats = ExecutorStats{12, 3, 4, 7, 5};
  report.ladder_stats = PipelineReport::LadderBuildStats{9, 1234, 2};
  io::ReportJsonOptions redacted;
  redacted.redact_timings = true;
  const std::string text = io::to_json(report, redacted);
  EXPECT_NE(text.find("\"jobs_run\": 0"), std::string::npos);
  EXPECT_NE(text.find("\"steals\": 0"), std::string::npos);
  EXPECT_NE(text.find("\"max_queue_depth\": 0"), std::string::npos);
  EXPECT_NE(text.find("\"help_runs\": 0"), std::string::npos);
  // The ladder sub-object (schema v8) is equally scheduling-dependent.
  EXPECT_NE(text.find("\"parallel_chunks\": 0"), std::string::npos);
  EXPECT_NE(text.find("\"merge_ns\": 0"), std::string::npos);
  EXPECT_NE(text.find("\"stripe_contention\": 0"), std::string::npos);
  const std::string raw = io::to_json(report);
  EXPECT_NE(raw.find("\"jobs_run\": 12"), std::string::npos);
  EXPECT_NE(raw.find("\"steals\": 3"), std::string::npos);
  EXPECT_NE(raw.find("\"injections\": 4"), std::string::npos);
  EXPECT_NE(raw.find("\"max_queue_depth\": 7"), std::string::npos);
  EXPECT_NE(raw.find("\"help_runs\": 5"), std::string::npos);
  EXPECT_NE(raw.find("\"parallel_chunks\": 9"), std::string::npos);
  EXPECT_NE(raw.find("\"merge_ns\": 1234"), std::string::npos);
  EXPECT_NE(raw.find("\"stripe_contention\": 2"), std::string::npos);
}

TEST(Report, JsonEscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(io::json_escape("plain"), "plain");
  EXPECT_EQ(io::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(io::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(io::json_escape(std::string(1, '\x01')), "\\u0001");
  // UTF-8 payloads (the reasons contain Δ and ') pass through untouched.
  EXPECT_EQ(io::json_escape("Δ'"), "Δ'");
}

}  // namespace
}  // namespace trichroma
