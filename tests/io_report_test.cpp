// The JSON pipeline report: schema stability (a checked-in golden file for
// the hourglass run) and the basic emitter invariants.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "io/report.h"
#include "solver/pipeline.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path = std::string(TRICHROMA_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Report, HourglassGoldenFile) {
  // threads = 1 makes the whole report deterministic (engine statuses and
  // node counts included); redacting timings makes it byte-stable.
  SolvabilityOptions options;
  options.threads = 1;
  const PipelineResult r = run_pipeline(zoo::hourglass(), options);
  io::ReportJsonOptions json;
  json.redact_timings = true;
  EXPECT_EQ(io::to_json(r.report, json), read_golden("hourglass_report.json"));
}

TEST(Report, SchemaFieldsPresentForEveryVerdictShape) {
  // One solvable (radius > 0), one two-process: the other report shapes.
  for (Task (*build)() : {+[] { return zoo::subdivision_task(1); },
                          +[] { return zoo::consensus_2(); }}) {
    SolvabilityOptions options;
    options.threads = 1;
    const PipelineResult r = run_pipeline(build(), options);
    const std::string json = io::to_json(r.report);
    EXPECT_NE(json.find("\"schema\": \"trichroma.pipeline-report/1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"verdict\":"), std::string::npos);
    EXPECT_NE(json.find("\"engines\": ["), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
  }
}

TEST(Report, RedactTimingsZeroesEveryWallClock) {
  SolvabilityOptions options;
  options.threads = 1;
  const PipelineResult r = run_pipeline(zoo::identity_task(), options);
  io::ReportJsonOptions json;
  json.redact_timings = true;
  const std::string text = io::to_json(r.report, json);
  EXPECT_EQ(text.find("wall_ms\": 0.000") == std::string::npos, false);
  // No non-zero wall_ms survives redaction.
  for (std::size_t pos = text.find("wall_ms"); pos != std::string::npos;
       pos = text.find("wall_ms", pos + 1)) {
    EXPECT_EQ(text.substr(pos, std::string("wall_ms\": 0.000").size()),
              "wall_ms\": 0.000");
  }
}

TEST(Report, JsonEscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(io::json_escape("plain"), "plain");
  EXPECT_EQ(io::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(io::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(io::json_escape(std::string(1, '\x01')), "\\u0001");
  // UTF-8 payloads (the reasons contain Δ and ') pass through untouched.
  EXPECT_EQ(io::json_escape("Δ'"), "Δ'");
}

}  // namespace
}  // namespace trichroma
