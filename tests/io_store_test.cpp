// Tests for the content-addressed verdict/artifact store (io/store.h):
// container integrity (corruption, truncation, version skew ⇒ miss, never a
// crash), verdict-record round trips, and artifact round trips across
// chromatic isomorphism.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "io/report.h"
#include "io/store.h"
#include "solver/pipeline.h"
#include "tasks/fingerprint.h"
#include "tasks/zoo.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

namespace fs = std::filesystem;

// Same helper as tasks_fingerprint_test: a chromatically isomorphic copy in
// a fresh pool with scrambled values and insertion orders.
Task relabel(const Task& task, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Task out;
  out.pool = std::make_shared<VertexPool>();
  out.name = task.name + "-relabeled";
  out.num_processes = task.num_processes;
  std::vector<VertexId> verts = task.input.vertex_ids();
  for (VertexId v : task.output.vertex_ids()) verts.push_back(v);
  std::sort(verts.begin(), verts.end(),
            [](VertexId a, VertexId b) { return raw(a) < raw(b); });
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  std::shuffle(verts.begin(), verts.end(), rng);
  std::map<VertexId, VertexId> m;
  std::int64_t next = 1000 + static_cast<std::int64_t>(rng() % 100000);
  for (VertexId v : verts) {
    m[v] = out.pool->vertex(task.pool->color(v), next++);
  }
  const auto ms = [&m](const Simplex& s) {
    std::vector<VertexId> vs;
    for (VertexId v : s) vs.push_back(m.at(v));
    return Simplex(std::move(vs));
  };
  std::vector<Simplex> ifacets = task.input.facets();
  std::vector<Simplex> ofacets = task.output.facets();
  std::shuffle(ifacets.begin(), ifacets.end(), rng);
  std::shuffle(ofacets.begin(), ofacets.end(), rng);
  for (const Simplex& f : ifacets) out.input.add(ms(f));
  for (const Simplex& f : ofacets) out.output.add(ms(f));
  std::vector<Simplex> domain = task.delta.domain();
  std::shuffle(domain.begin(), domain.end(), rng);
  for (const Simplex& sigma : domain) {
    std::vector<Simplex> images;
    for (const Simplex& tau : task.delta.facet_images(sigma)) {
      images.push_back(ms(tau));
    }
    std::shuffle(images.begin(), images.end(), rng);
    for (const Simplex& tau : images) out.delta.add(ms(sigma), tau);
  }
  return out;
}

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string dir =
      testing::TempDir() + "trichroma-store-" + tag + "-" +
      std::to_string(++counter);
  fs::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

// The single verdict-record file inside a one-entry store.
std::string record_path(const io::VerdictStore& store,
                        const TaskFingerprint& fp) {
  for (const auto& e : fs::directory_iterator(store.entry_dir(fp))) {
    const std::string name = e.path().filename().string();
    if (name.rfind("verdict-", 0) == 0) return e.path().string();
  }
  return {};
}

TEST(Store, Fnv1a64KnownValues) {
  EXPECT_EQ(io::fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(io::fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
}

TEST(Store, WrapUnwrapRoundTrip) {
  const std::string body = "line one\nline two\n\x01\x02 binary-ish\n";
  const std::string wrapped = io::wrap_record("test-kind", body);
  std::string out;
  ASSERT_TRUE(io::unwrap_record(wrapped, "test-kind", &out));
  EXPECT_EQ(out, body);
  // Wrong kind, truncation, flipped byte, wrong schema: all misses.
  EXPECT_FALSE(io::unwrap_record(wrapped, "other-kind", &out));
  EXPECT_FALSE(io::unwrap_record(wrapped.substr(0, wrapped.size() - 4),
                                 "test-kind", &out));
  std::string flipped = wrapped;
  flipped[flipped.size() - 3] ^= 0x20;
  EXPECT_FALSE(io::unwrap_record(flipped, "test-kind", &out));
  std::string skewed = wrapped;
  skewed.replace(skewed.find("/1 "), 3, "/9 ");
  EXPECT_FALSE(io::unwrap_record(skewed, "test-kind", &out));
  EXPECT_FALSE(io::unwrap_record("", "test-kind", &out));
}

TEST(Store, OptionsDigestSeparatesBudgets) {
  SolvabilityOptions a;
  const std::string base = io::options_digest(a, "ladder");
  EXPECT_EQ(io::options_digest(a, "ladder"), base);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_NE(io::options_digest(a, "racing"), base);
  SolvabilityOptions b = a;
  b.max_radius = a.max_radius + 1;
  EXPECT_NE(io::options_digest(b, "ladder"), base);
  SolvabilityOptions c = a;
  c.node_cap = a.node_cap / 2;
  EXPECT_NE(io::options_digest(c, "ladder"), base);
  // Thread count is explicitly NOT part of the key.
  SolvabilityOptions d = a;
  d.threads = 7;
  EXPECT_EQ(io::options_digest(d, "ladder"), base);
  // Neither is the store location itself.
  SolvabilityOptions e = a;
  e.cache_dir = "/somewhere/else";
  EXPECT_EQ(io::options_digest(e, "ladder"), base);
}

TEST(Store, VerdictRecordRoundTripsTheDeterministicSlice) {
  const Task task = zoo::hourglass();
  SolvabilityOptions options;
  options.threads = 1;
  const PipelineReport cold = run_pipeline(task, options).report;
  ASSERT_FALSE(cold.engines.empty());

  PipelineReport parsed;
  ASSERT_TRUE(
      io::parse_verdict_record(io::serialize_verdict_record(cold), &parsed));
  // Options and cache outcome live in the store key / the consulting run,
  // not in the record: copy them over, then demand byte-identical JSON
  // under redacted timings (the record never stores wall clocks).
  parsed.options = cold.options;
  parsed.cache = cold.cache;
  io::ReportJsonOptions json;
  json.redact_timings = true;
  EXPECT_EQ(io::to_json(parsed, json), io::to_json(cold, json));
}

TEST(Store, VerdictRecordVersionMismatchIsAMiss) {
  const PipelineReport cold =
      run_pipeline(zoo::consensus_2(), SolvabilityOptions{}).report;
  std::string body = io::serialize_verdict_record(cold);
  const auto pos = body.find("trichroma.verdict-record/3");
  ASSERT_NE(pos, std::string::npos);
  body.replace(pos, 26, "trichroma.verdict-record/9");
  PipelineReport parsed;
  EXPECT_FALSE(io::parse_verdict_record(body, &parsed));
}

TEST(Store, StoreAndLoadVerdict) {
  const Task task = zoo::consensus_2();
  const TaskFingerprint fp = fingerprint_of(task);
  SolvabilityOptions options;
  const std::string digest = io::options_digest(options, "exact");
  const PipelineReport cold = run_pipeline(task, options).report;

  io::VerdictStore store(fresh_dir("roundtrip"));
  PipelineReport loaded;
  EXPECT_FALSE(store.load_verdict(fp, digest, &loaded));  // empty store
  ASSERT_TRUE(store.store_verdict(fp, digest, cold));
  EXPECT_GT(store.bytes_written(), 0u);
  ASSERT_TRUE(store.load_verdict(fp, digest, &loaded));
  EXPECT_EQ(loaded.verdict, cold.verdict);
  EXPECT_EQ(loaded.reason, cold.reason);
  EXPECT_EQ(loaded.schedule, cold.schedule);
  EXPECT_EQ(loaded.engines.size(), cold.engines.size());
  // A different budget digest misses even with the record present.
  EXPECT_FALSE(store.load_verdict(fp, "0123456789abcdef", &loaded));
}

TEST(Store, CorruptOrTruncatedEntryIsAMiss) {
  const Task task = zoo::consensus_2();
  const TaskFingerprint fp = fingerprint_of(task);
  SolvabilityOptions options;
  const std::string digest = io::options_digest(options, "exact");
  const PipelineReport cold = run_pipeline(task, options).report;

  io::VerdictStore store(fresh_dir("corrupt"));
  ASSERT_TRUE(store.store_verdict(fp, digest, cold));
  const std::string path = record_path(store, fp);
  ASSERT_FALSE(path.empty());
  const std::string pristine = read_file(path);

  std::string corrupt = pristine;
  corrupt[corrupt.size() / 2] ^= 0x01;
  write_file(path, corrupt);
  PipelineReport loaded;
  EXPECT_FALSE(store.load_verdict(fp, digest, &loaded));

  write_file(path, pristine.substr(0, pristine.size() / 2));
  EXPECT_FALSE(store.load_verdict(fp, digest, &loaded));

  write_file(path, "");
  EXPECT_FALSE(store.load_verdict(fp, digest, &loaded));

  write_file(path, pristine);
  EXPECT_TRUE(store.load_verdict(fp, digest, &loaded));
}

TEST(Store, StoreSchemaMismatchIsAMiss) {
  const Task task = zoo::consensus_2();
  const TaskFingerprint fp = fingerprint_of(task);
  SolvabilityOptions options;
  const std::string digest = io::options_digest(options, "exact");
  io::VerdictStore store(fresh_dir("schema"));
  ASSERT_TRUE(
      store.store_verdict(fp, digest,
                          run_pipeline(task, options).report));
  const std::string path = record_path(store, fp);
  std::string skewed = read_file(path);
  const auto pos = skewed.find("trichroma.store/1");
  ASSERT_NE(pos, std::string::npos);
  skewed.replace(pos, 17, "trichroma.store/9");
  write_file(path, skewed);
  PipelineReport loaded;
  EXPECT_FALSE(store.load_verdict(fp, digest, &loaded));
}

TEST(Store, UnwritableRootDegradesToMisses) {
  io::VerdictStore store("/proc/definitely/not/writable");
  const TaskFingerprint fp = fingerprint_of(zoo::consensus_2());
  PipelineReport report;
  EXPECT_FALSE(store.store_verdict(fp, "0000000000000000", report));
  EXPECT_FALSE(store.load_verdict(fp, "0000000000000000", &report));
  EXPECT_EQ(store.bytes_written(), 0u);
}

TEST(Store, ArtifactRoundTripAndCorruption) {
  io::VerdictStore store(fresh_dir("artifact"));
  const TaskFingerprint fp = fingerprint_of(zoo::hourglass());
  const std::string body = "artifact payload\nwith lines\n";
  ASSERT_TRUE(store.store_artifact(fp, "probe.data", body));
  std::string loaded;
  ASSERT_TRUE(store.load_artifact(fp, "probe.data", &loaded));
  EXPECT_EQ(loaded, body);
  EXPECT_FALSE(store.load_artifact(fp, "missing.data", &loaded));
}

// The tentpole artifact property: a ladder tower serialized from one task
// loads against a chromatically isomorphic task and is facet-for-facet AND
// carrier-for-carrier identical to that task's own cold subdivision.
TEST(Store, LadderLevelsRoundTripAcrossIsomorphism) {
  const Task a = zoo::hourglass();
  const FingerprintResult fa = fingerprint_task(a);
  SubdivisionLadder ladder(*a.pool, a.input);
  std::vector<std::shared_ptr<const SubdividedComplex>> levels;
  for (int r = 0; r <= 2; ++r) levels.push_back(ladder.share(r));
  const std::string body = io::serialize_ladder_levels(a, fa.labeling, levels);

  const Task b = relabel(a, 99);
  const FingerprintResult fb = fingerprint_task(b);
  ASSERT_EQ(fa.fingerprint.hex(), fb.fingerprint.hex());
  std::vector<SubdividedComplex> loaded;
  ASSERT_TRUE(io::load_ladder_levels(b, fb.labeling, body, &loaded));
  ASSERT_EQ(loaded.size(), 3u);

  const auto facet_key = [](const SimplicialComplex& c) {
    std::vector<std::vector<std::uint32_t>> rows;
    for (const Simplex& f : c.facets()) {
      std::vector<std::uint32_t> row;
      for (VertexId v : f) row.push_back(raw(v));
      std::sort(row.begin(), row.end());
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  for (int r = 1; r <= 2; ++r) {
    const SubdividedComplex cold = chromatic_subdivision(*b.pool, b.input, r);
    EXPECT_EQ(facet_key(loaded[static_cast<std::size_t>(r)].complex),
              facet_key(cold.complex))
        << "level " << r;
    const auto& warm_carrier = loaded[static_cast<std::size_t>(r)].carrier;
    ASSERT_EQ(warm_carrier.size(), cold.carrier.size()) << "level " << r;
    for (const auto& [v, carrier] : cold.carrier) {
      const auto it = warm_carrier.find(v);
      ASSERT_NE(it, warm_carrier.end());
      EXPECT_TRUE(it->second == carrier);
    }
  }
}

TEST(Store, LadderLevelsRejectMalformedBodies) {
  const Task a = zoo::hourglass();
  const FingerprintResult fa = fingerprint_task(a);
  std::vector<SubdividedComplex> out;
  EXPECT_FALSE(io::load_ladder_levels(a, fa.labeling, "", &out));
  EXPECT_FALSE(io::load_ladder_levels(a, fa.labeling, "garbage\n", &out));
  SubdivisionLadder ladder(*a.pool, a.input);
  std::vector<std::shared_ptr<const SubdividedComplex>> levels{ladder.share(0),
                                                               ladder.share(1)};
  std::string body = io::serialize_ladder_levels(a, fa.labeling, levels);
  body.resize(body.size() * 2 / 3);  // mid-row truncation
  EXPECT_FALSE(io::load_ladder_levels(a, fa.labeling, body, &out));
}

TEST(Store, VerdictRecordBudgetRoundTrips) {
  const PipelineReport cold =
      run_pipeline(zoo::consensus_2(), SolvabilityOptions{}).report;
  io::VerdictRecordBudget budget;
  budget.max_radius = 5;
  budget.node_cap = 123456;
  budget.use_characterization = false;
  budget.reuse_subdivisions = true;
  budget.reuse_images = false;
  const std::string body = io::serialize_verdict_record(cold, budget);
  PipelineReport parsed;
  io::VerdictRecordBudget out;
  ASSERT_TRUE(io::parse_verdict_record(body, &parsed, &out));
  EXPECT_EQ(out.max_radius, 5);
  EXPECT_EQ(out.node_cap, 123456u);
  EXPECT_FALSE(out.use_characterization);
  EXPECT_TRUE(out.reuse_subdivisions);
  EXPECT_FALSE(out.reuse_images);
}

TEST(Store, SiblingScanEnumeratesRecordsAcrossDigests) {
  const Task task = zoo::consensus_2();
  const TaskFingerprint fp = fingerprint_of(task);
  const PipelineReport cold =
      run_pipeline(task, SolvabilityOptions{}).report;
  const io::VerdictStore store(fresh_dir("siblings"));
  EXPECT_TRUE(store.scan_siblings(fp).empty());

  io::VerdictRecordBudget shallow;
  shallow.max_radius = 1;
  io::VerdictRecordBudget deep;
  deep.max_radius = 3;
  ASSERT_TRUE(store.store_verdict(fp, "000000000000000a", cold, shallow));
  ASSERT_TRUE(store.store_verdict(fp, "000000000000000b", cold, deep));

  const std::vector<io::SiblingVerdict> siblings = store.scan_siblings(fp);
  ASSERT_EQ(siblings.size(), 2u);
  // Digest order: the scan is deterministic regardless of write order.
  EXPECT_EQ(siblings[0].opt_digest, "000000000000000a");
  EXPECT_EQ(siblings[0].budget.max_radius, 1);
  EXPECT_EQ(siblings[1].opt_digest, "000000000000000b");
  EXPECT_EQ(siblings[1].budget.max_radius, 3);
  EXPECT_EQ(siblings[0].report.verdict, cold.verdict);

  // A corrupted sibling is skipped, not fatal — the scan returns the rest.
  const std::string rec_path = std::string(store.root()) + "/" +
                               fp.hex().substr(0, 2) + "/" + fp.hex() +
                               "/verdict-000000000000000a.rec";
  std::ofstream(rec_path, std::ios::binary) << "torn write";
  const std::vector<io::SiblingVerdict> after = store.scan_siblings(fp);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].opt_digest, "000000000000000b");
}

TEST(Store, LadderLevelsLoadTruncatesToRequestedDepth) {
  const Task a = zoo::hourglass();
  const FingerprintResult fa = fingerprint_task(a);
  SubdivisionLadder ladder(*a.pool, a.input);
  std::vector<std::shared_ptr<const SubdividedComplex>> levels;
  for (int r = 0; r <= 2; ++r) levels.push_back(ladder.share(r));
  const std::string body = io::serialize_ladder_levels(a, fa.labeling, levels);
  ASSERT_EQ(io::ladder_levels_count(body), 3u);

  // A fresh twin pool per load: truncated materialization must intern ONLY
  // the vertices of the levels it returns (the warm-start precondition —
  // deeper stored rows would pollute the pool with ids a cold run at the
  // smaller radius never creates).
  const Task b = relabel(a, 41);
  const FingerprintResult fb = fingerprint_task(b);
  std::vector<SubdividedComplex> truncated;
  ASSERT_TRUE(io::load_ladder_levels(b, fb.labeling, body, &truncated, 2));
  ASSERT_EQ(truncated.size(), 2u);

  const Task c = relabel(a, 41);
  const FingerprintResult fc = fingerprint_task(c);
  std::vector<SubdividedComplex> full;
  ASSERT_TRUE(io::load_ladder_levels(c, fc.labeling, body, &full));
  ASSERT_EQ(full.size(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(truncated[r].complex.count(2), full[r].complex.count(2));
  }
  EXPECT_LT(b.pool->size(), c.pool->size());

  // Zero levels is a refusal, not an empty success.
  std::vector<SubdividedComplex> none;
  EXPECT_FALSE(io::load_ladder_levels(b, fb.labeling, body, &none, 0));
}

TEST(Store, StatsClassifiesRecordsAndArtifacts) {
  const Task task = zoo::consensus_2();
  const TaskFingerprint fp = fingerprint_of(task);
  const PipelineReport cold =
      run_pipeline(task, SolvabilityOptions{}).report;
  const io::VerdictStore store(fresh_dir("stats"));
  const io::VerdictStore::Stats empty = store.stats();
  EXPECT_EQ(empty.entries, 0u);
  EXPECT_EQ(empty.total_bytes(), 0u);

  ASSERT_TRUE(store.store_verdict(fp, "0000000000000001", cold));
  ASSERT_TRUE(store.store_verdict(fp, "0000000000000002", cold));
  ASSERT_TRUE(store.store_artifact(fp, "ladder.levels", "ladder-levels/2\n"));
  const io::VerdictStore::Stats stats = store.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.verdict_records, 2u);
  EXPECT_EQ(stats.artifact_files, 1u);
  EXPECT_EQ(stats.other_files, 0u);
  EXPECT_GT(stats.verdict_bytes, 0u);
  EXPECT_GT(stats.artifact_bytes, 0u);
  EXPECT_EQ(stats.total_bytes(), stats.verdict_bytes + stats.artifact_bytes);
}

TEST(Store, PruneEvictsWholeEntriesOldestFirst) {
  const Task old_task = zoo::consensus_2();
  const Task new_task = zoo::hourglass();
  const TaskFingerprint old_fp = fingerprint_of(old_task);
  const TaskFingerprint new_fp = fingerprint_of(new_task);
  const PipelineReport old_report =
      run_pipeline(old_task, SolvabilityOptions{}).report;
  const PipelineReport new_report =
      run_pipeline(new_task, SolvabilityOptions{}).report;

  const io::VerdictStore store(fresh_dir("prune"));
  ASSERT_TRUE(store.store_verdict(old_fp, "0000000000000001", old_report));
  ASSERT_TRUE(store.store_artifact(old_fp, "ladder.levels", "old"));
  ASSERT_TRUE(store.store_verdict(new_fp, "0000000000000002", new_report));
  ASSERT_TRUE(store.store_artifact(new_fp, "ladder.levels", "new"));

  // Filesystem timestamp granularity can be coarse: age the first entry
  // explicitly so "oldest" is unambiguous.
  const fs::path old_dir = fs::path(store.root()) /
                           old_fp.hex().substr(0, 2) / old_fp.hex();
  const auto past = fs::file_time_type::clock::now() - std::chrono::hours(2);
  for (const auto& f : fs::directory_iterator(old_dir)) {
    fs::last_write_time(f.path(), past);
  }

  const std::uint64_t total = store.stats().total_bytes();
  const io::VerdictStore::PruneResult pruned = store.prune(total - 1);
  EXPECT_EQ(pruned.evicted_entries, 1u);
  EXPECT_GT(pruned.evicted_bytes, 0u);
  EXPECT_EQ(pruned.remaining_bytes, total - pruned.evicted_bytes);

  // Whole-entry eviction: the oldest task lost its record AND artifact; the
  // survivor kept both — a surviving verdict is never stranded without the
  // artifacts published beside it.
  PipelineReport loaded;
  std::string body;
  EXPECT_FALSE(store.load_verdict(old_fp, "0000000000000001", &loaded));
  EXPECT_FALSE(store.load_artifact(old_fp, "ladder.levels", &body));
  EXPECT_TRUE(store.load_verdict(new_fp, "0000000000000002", &loaded));
  EXPECT_TRUE(store.load_artifact(new_fp, "ladder.levels", &body));

  // Pruning to zero clears everything; an empty store prunes to a no-op.
  const io::VerdictStore::PruneResult all = store.prune(0);
  EXPECT_EQ(all.evicted_entries, 1u);
  EXPECT_EQ(all.remaining_bytes, 0u);
  EXPECT_EQ(store.prune(0).evicted_entries, 0u);
}

TEST(Store, DeltaImagesRoundTripAcrossIsomorphism) {
  const Task a = zoo::fig3_running_example();
  const FingerprintResult fa = fingerprint_task(a);
  const std::string body = io::serialize_delta_images(a, fa.labeling);

  const Task b = relabel(a, 123);
  const FingerprintResult fb = fingerprint_task(b);
  std::vector<std::pair<Simplex, std::vector<Simplex>>> rows;
  ASSERT_TRUE(io::load_delta_images(b, fb.labeling, body, &rows));
  ASSERT_EQ(rows.size(), b.delta.domain().size());
  for (auto& [sigma, images] : rows) {
    std::vector<Simplex> expected = b.delta.facet_images(sigma);
    std::sort(expected.begin(), expected.end());
    std::sort(images.begin(), images.end());
    EXPECT_EQ(images, expected) << "Δ(" << sigma.to_string(*b.pool) << ")";
  }
}

}  // namespace
}  // namespace trichroma
