// Tests for the task text format and DOT export.

#include <gtest/gtest.h>

#include "io/task_format.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

TEST(Io, ParseMinimalTask) {
  const Task t = io::parse_task(R"(
# a 2-process one-shot task
task tiny
processes 2
input P0:a P1:b
delta P0:a -> P0:x
delta P1:b -> P1:y
delta P0:a P1:b -> P0:x P1:y
)");
  EXPECT_EQ(t.name, "tiny");
  EXPECT_EQ(t.num_processes, 2);
  EXPECT_TRUE(t.validate().empty()) << t.validate().front();
  EXPECT_EQ(t.output.count(1), 1u);
}

TEST(Io, ParseMultipleImages) {
  const Task t = io::parse_task(R"(
task choice
processes 2
input P0:0 P1:0
delta P0:0 -> P0:0 | P0:1
delta P1:0 -> P1:0
delta P0:0 P1:0 -> P0:0 P1:0 | P0:1 P1:0
)");
  EXPECT_EQ(t.delta.facet_images(t.input.facets().front()).size(), 2u);
  EXPECT_TRUE(t.validate().empty());
}

TEST(Io, ParseErrorsCarryLineNumbers) {
  EXPECT_THROW(io::parse_task("processes 3\n"), io::ParseError);
  try {
    io::parse_task("task x\nprocesses 3\ninput P0:0 P1:1 P2:2\nbogus line\n");
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.line(), 4);
  }
  // Color out of range.
  EXPECT_THROW(io::parse_task("task x\nprocesses 2\ninput P5:0 P1:1\n"),
               io::ParseError);
  // Delta before its input simplex is declared.
  EXPECT_THROW(io::parse_task("task x\nprocesses 2\ndelta P0:0 -> P0:1\n"),
               io::ParseError);
  // Image dimension mismatch.
  EXPECT_THROW(io::parse_task("task x\nprocesses 2\ninput P0:0 P1:0\n"
                              "delta P0:0 P1:0 -> P0:1\n"),
               io::ParseError);
  // Missing arrow.
  EXPECT_THROW(io::parse_task("task x\nprocesses 2\ninput P0:0 P1:0\n"
                              "delta P0:0 P1:0 P0:1 P1:1\n"),
               io::ParseError);
}

TEST(Io, RoundTripPreservesStructureAndVerdicts) {
  const std::vector<Task> tasks = {
      zoo::consensus(3),    zoo::hourglass(),           zoo::pinwheel(),
      zoo::identity_task(), zoo::majority_consensus(),  zoo::fan_task(4),
      zoo::consensus_2(),   zoo::fig3_running_example(),
  };
  for (const Task& t : tasks) {
    const Task back = io::parse_task(io::serialize_task(t));
    EXPECT_EQ(back.num_processes, t.num_processes) << t.name;
    EXPECT_EQ(back.input.count(0), t.input.count(0)) << t.name;
    EXPECT_EQ(back.input.count(2), t.input.count(2)) << t.name;
    EXPECT_EQ(back.output.count(0), t.output.count(0)) << t.name;
    EXPECT_EQ(back.output.count(2), t.output.count(2)) << t.name;
    EXPECT_TRUE(back.validate().empty()) << t.name;
    EXPECT_EQ(decide_solvability(back).verdict, decide_solvability(t).verdict)
        << t.name;
  }
}

TEST(Io, SerializeIsStable) {
  const std::string once = io::serialize_task(zoo::hourglass());
  const std::string twice = io::serialize_task(io::parse_task(once));
  EXPECT_EQ(once, twice);
}

TEST(Io, DotOutputMentionsEveryVertexAndEdge) {
  const Task t = zoo::hourglass();
  const std::string dot = io::to_dot(*t.pool, t.output, "hourglass");
  EXPECT_NE(dot.find("graph \"hourglass\""), std::string::npos);
  for (VertexId v : t.output.vertex_ids()) {
    EXPECT_NE(dot.find("v" + std::to_string(raw(v)) + " ["), std::string::npos);
  }
  // 16 edges → 16 " -- " connections.
  std::size_t count = 0, pos = 0;
  while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_EQ(count, t.output.count(1));
}

TEST(Io, CommentsAndWhitespaceIgnored) {
  const Task t = io::parse_task(
      "  # leading comment\n\n"
      "task   padded\n"
      "processes 2\n"
      "input P0:0 P1:0   # trailing comment\n"
      "delta P0:0 -> P0:0\n"
      "delta P1:0 -> P1:0\n"
      "delta P0:0 P1:0 -> P0:0 P1:0\n");
  EXPECT_TRUE(t.validate().empty());
}

}  // namespace
}  // namespace trichroma
