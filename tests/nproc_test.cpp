// Four-process support (the paper's §7 future-work direction): the generic
// engines — subdivision, LAP detection, connectivity CSP, decision-map
// search with n-ary constraints — work for any n; the splitting
// characterization stays three-process-only.

#include <gtest/gtest.h>

#include "core/lap.h"
#include "solver/solvability.h"
#include "tasks/zoo.h"
#include "topology/chromatic.h"
#include "topology/subdivision.h"

namespace trichroma {
namespace {

Task identity_4() {
  zoo::ValueTaskSpec spec;
  spec.name = "identity-4";
  spec.num_processes = 4;
  for (int i = 0; i < 4; ++i) {
    spec.input_domain.push_back({i});
    spec.output_domain.push_back({i});
  }
  spec.allowed = [](const std::vector<Color>&, const std::vector<std::int64_t>& in,
                    const std::vector<std::int64_t>& out) { return in == out; };
  return zoo::make_value_task(spec);
}

TEST(FourProcess, SubdivisionOfTetrahedron) {
  VertexPool pool;
  SimplicialComplex base;
  base.add(Simplex{pool.vertex(0, 0), pool.vertex(1, 1), pool.vertex(2, 2),
                   pool.vertex(3, 3)});
  const SubdividedComplex sub = chromatic_subdivision(pool, base, 1);
  // Fubini number a(4) = 75 one-round immediate-snapshot executions.
  EXPECT_EQ(sub.complex.count(3), 75u);
  EXPECT_EQ(sub.complex.euler_characteristic(), 1);  // still a 3-ball
  EXPECT_TRUE(is_chromatic_complex(pool, sub.complex));
  EXPECT_TRUE(sub.complex.is_pure());
  // 4 views per process in dimension-3 corners... every vertex's carrier is
  // a face of the base simplex.
  const Simplex sigma = base.facets().front();
  for (VertexId v : sub.complex.vertex_ids()) {
    EXPECT_TRUE(sigma.contains_all(sub.carrier.at(v)));
  }
}

TEST(FourProcess, TasksValidate) {
  EXPECT_TRUE(zoo::consensus(4).validate().empty());
  EXPECT_TRUE(zoo::set_agreement(4, 3).validate().empty());
  EXPECT_TRUE(identity_4().validate().empty());
}

TEST(FourProcess, IdentitySolvableAtRadiusZero) {
  const SolvabilityResult r = decide_solvability(identity_4());
  EXPECT_EQ(r.verdict, Verdict::Solvable);
  EXPECT_EQ(r.radius, 0);
}

TEST(FourProcess, ConsensusUnsolvableViaConnectivity) {
  SolvabilityOptions options;
  options.max_radius = 0;  // the CSP decides; no search needed
  const SolvabilityResult r = decide_solvability(zoo::consensus(4), options);
  EXPECT_EQ(r.verdict, Verdict::Unsolvable);
}

TEST(FourProcess, SetAgreementHonestlyUnknown) {
  // (4,3)-set agreement is unsolvable, but the obstruction is the
  // 3-dimensional Sperner argument, outside the generic engines' reach;
  // the ladder must return Unknown rather than a wrong verdict.
  SolvabilityOptions options;
  options.max_radius = 0;  // r=1 takes ~minutes to exhaust; r=0 suffices here
  const SolvabilityResult r = decide_solvability(zoo::set_agreement(4, 3), options);
  EXPECT_EQ(r.verdict, Verdict::Unknown);
}

TEST(FourProcess, SetAgreementWithSlackSolvable) {
  // (4,4)-set agreement is trivial: everyone decides its own input.
  const SolvabilityResult r = decide_solvability(zoo::set_agreement(4, 4));
  EXPECT_EQ(r.verdict, Verdict::Solvable);
  EXPECT_EQ(r.radius, 0);
}

TEST(FourProcess, QuaternaryConstraintsAreEnforced) {
  // A task whose facet images disallow a combination that every proper
  // face allows: without 4-ary constraints the solver would wrongly accept
  // the all-zeros map at radius 0.
  zoo::ValueTaskSpec spec;
  spec.name = "parity-4";
  spec.num_processes = 4;
  spec.input_domain.assign(4, {0});
  spec.output_domain.assign(4, {0, 1});
  spec.allowed = [](const std::vector<Color>& ids, const std::vector<std::int64_t>&,
                    const std::vector<std::int64_t>& out) {
    if (ids.size() < 4) return true;  // faces: anything goes
    long long sum = 0;
    for (std::int64_t v : out) sum += v;
    return sum % 2 == 1;  // full participation: odd parity required
  };
  const Task t = zoo::make_value_task(spec);
  ASSERT_TRUE(t.validate().empty());
  const SubdividedComplex domain = chromatic_subdivision(*t.pool, t.input, 0);
  MapSearchOptions options;
  const MapSearchResult res = find_decision_map(*t.pool, domain, t, options);
  ASSERT_TRUE(res.found);
  // The map's image on the full facet must satisfy the parity rule.
  EXPECT_TRUE(validate_decision_map(*t.pool, domain, t, res.map, true));
}

TEST(FourProcess, LapDetectionWorksInDimensionThree) {
  // LAP detection (link connectivity) is dimension-generic; the full
  // (4,3)-set agreement image is link-connected.
  const Task t = zoo::set_agreement(4, 3);
  EXPECT_TRUE(find_all_laps(t).empty());
}

}  // namespace
}  // namespace trichroma
