// Telemetry v2 (src/obs): log-bucketed histograms and gauges, the
// Prometheus exposition (sanitized names, loud collision detection),
// rename-atomic snapshot publication, the batch heartbeat — including
// surviving a SIGKILL mid-run — and the trace-stats analytics over a
// checked-in mini trace plus a live capture.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_stats.h"
#include "solver/batch.h"
#include "solver/pipeline.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

// Minimal recursive-descent JSON syntax checker (same approach as
// obs_trace_test.cpp) — enough to assert the writers emit well-formed
// documents without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      pos_ += s_[pos_] == '\\' ? 2 : 1;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("trichroma-telemetry-" + tag + "-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, BucketBoundariesAreBase2) {
  using H = obs::Histogram;
  // Bucket i holds values in (2^(i-1), 2^i]; 0 and 1 share bucket 0.
  EXPECT_EQ(H::bucket_index(0), 0u);
  EXPECT_EQ(H::bucket_index(1), 0u);
  EXPECT_EQ(H::bucket_index(2), 1u);
  EXPECT_EQ(H::bucket_index(3), 2u);
  EXPECT_EQ(H::bucket_index(4), 2u);
  EXPECT_EQ(H::bucket_index(5), 3u);
  EXPECT_EQ(H::bucket_index(8), 3u);
  EXPECT_EQ(H::bucket_index(9), 4u);
  EXPECT_EQ(H::bucket_index(std::uint64_t{1} << 31), 31u);
  // Past the largest finite bound: the +Inf bucket.
  EXPECT_EQ(H::bucket_index((std::uint64_t{1} << 31) + 1), H::kFiniteBuckets);
  EXPECT_EQ(H::bucket_index(~std::uint64_t{0}), H::kFiniteBuckets);
  EXPECT_EQ(H::bucket_upper_bound(5), 32u);
  for (const std::uint64_t v :
       std::vector<std::uint64_t>{0, 1, 2, 3, 7, 63, 64, 65, 1000, 4096}) {
    const std::size_t i = H::bucket_index(v);
    EXPECT_LE(v, H::bucket_upper_bound(i)) << v;
    if (i > 0) EXPECT_GT(v, H::bucket_upper_bound(i - 1)) << v;
  }
}

TEST(Histogram, SnapshotIndependentOfRecordOrderAndThreadCount) {
  std::vector<std::uint64_t> samples;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 10000; ++i) samples.push_back(rng() % 100000);

  obs::Histogram in_order;
  for (const std::uint64_t v : samples) in_order.record(v);

  std::vector<std::uint64_t> shuffled = samples;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  obs::Histogram reordered;
  for (const std::uint64_t v : shuffled) reordered.record(v);

  obs::Histogram threaded;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&threaded, &samples, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < samples.size();
           i += 4) {
        threaded.record(samples[i]);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(in_order.count(), reordered.count());
  EXPECT_EQ(in_order.sum(), reordered.sum());
  EXPECT_EQ(in_order.count(), threaded.count());
  EXPECT_EQ(in_order.sum(), threaded.sum());
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(in_order.bucket(i), reordered.bucket(i)) << i;
    EXPECT_EQ(in_order.bucket(i), threaded.bucket(i)) << i;
  }
}

TEST(Histogram, MergeMatchesPerSampleRecord) {
  // The hot-path idiom: tally locally, flush once.
  const std::vector<std::uint64_t> samples{0, 1, 1, 2, 5, 64, 65, 1 << 20};
  std::array<std::uint64_t, obs::Histogram::kBuckets> local{};
  std::uint64_t sum = 0;
  for (const std::uint64_t v : samples) {
    ++local[obs::Histogram::bucket_index(v)];
    sum += v;
  }
  obs::Histogram merged;
  merged.merge(local, samples.size(), sum);
  obs::Histogram recorded;
  for (const std::uint64_t v : samples) recorded.record(v);
  EXPECT_EQ(merged.count(), recorded.count());
  EXPECT_EQ(merged.sum(), recorded.sum());
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(merged.bucket(i), recorded.bucket(i)) << i;
  }
}

TEST(Gauge, SetAddValueReset) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

// ----------------------------------------------------------------- registry

TEST(Metrics, CrossKindNameReuseThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x"), std::logic_error);
  registry.histogram("h");
  EXPECT_THROW(registry.counter("h"), std::logic_error);
  EXPECT_THROW(registry.gauge("h"), std::logic_error);
  // Same-kind lookups stay the interned-reference fast path.
  EXPECT_EQ(&registry.counter("x"), &registry.counter("x"));
  EXPECT_EQ(&registry.histogram("h"), &registry.histogram("h"));
}

TEST(Metrics, ToJsonCarriesGaugesAndHistograms) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(2);
  registry.gauge("b.level").set(-4);
  registry.histogram("c.sizes").record(3);
  const std::string json = registry.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"schema\": \"trichroma.metrics/2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"b.level\": -4"), std::string::npos);
  EXPECT_NE(json.find("\"c.sizes\": { \"count\": 1, \"sum\": 3, "
                      "\"buckets\": [0, 0, 1] }"),
            std::string::npos);
}

TEST(Metrics, PrometheusNameSanitization) {
  EXPECT_EQ(obs::prometheus_name("cache.delta.stripe_contention"),
            "trichroma_cache_delta_stripe_contention");
  EXPECT_EQ(obs::prometheus_name("ladder.level-facets"),
            "trichroma_ladder_level_facets");
  EXPECT_EQ(obs::prometheus_name("Executor.QueueDepth9"),
            "trichroma_Executor_QueueDepth9");
}

TEST(Metrics, ToPrometheusGolden) {
  obs::MetricsRegistry registry;
  registry.counter("cache.delta.stripe_contention").add(7);
  registry.gauge("executor.queue_depth").set(3);
  obs::Histogram& h = registry.histogram("search.csp.domain_size");
  h.record(1);
  h.record(3);
  h.record(3);
  h.record(300);  // bucket 9 (256 < 300 <= 512)
  const std::string expected =
      "# TYPE trichroma_cache_delta_stripe_contention counter\n"
      "trichroma_cache_delta_stripe_contention 7\n"
      "# TYPE trichroma_executor_queue_depth gauge\n"
      "trichroma_executor_queue_depth 3\n"
      "# TYPE trichroma_search_csp_domain_size histogram\n"
      "trichroma_search_csp_domain_size_bucket{le=\"1\"} 1\n"
      "trichroma_search_csp_domain_size_bucket{le=\"2\"} 1\n"
      "trichroma_search_csp_domain_size_bucket{le=\"4\"} 3\n"
      "trichroma_search_csp_domain_size_bucket{le=\"8\"} 3\n"
      "trichroma_search_csp_domain_size_bucket{le=\"16\"} 3\n"
      "trichroma_search_csp_domain_size_bucket{le=\"32\"} 3\n"
      "trichroma_search_csp_domain_size_bucket{le=\"64\"} 3\n"
      "trichroma_search_csp_domain_size_bucket{le=\"128\"} 3\n"
      "trichroma_search_csp_domain_size_bucket{le=\"256\"} 3\n"
      "trichroma_search_csp_domain_size_bucket{le=\"512\"} 4\n"
      "trichroma_search_csp_domain_size_bucket{le=\"+Inf\"} 4\n"
      "trichroma_search_csp_domain_size_sum 307\n"
      "trichroma_search_csp_domain_size_count 4\n";
  EXPECT_EQ(registry.to_prometheus(), expected);
}

TEST(Metrics, ToPrometheusCollisionIsLoud) {
  // "a.b" and "a_b" sanitize to the same series — silently merging two
  // instruments would corrupt both, so the exporter must throw, naming them.
  obs::MetricsRegistry registry;
  registry.counter("a.b").add(1);
  registry.counter("a_b").add(2);
  EXPECT_THROW(registry.to_prometheus(), std::runtime_error);
  try {
    registry.to_prometheus();
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("a.b"), std::string::npos);
    EXPECT_NE(what.find("a_b"), std::string::npos);
  }
  // A histogram's synthesized _sum/_count/_bucket series are claims too.
  obs::MetricsRegistry synth;
  synth.histogram("x").record(1);
  synth.counter("x.sum").add(1);
  EXPECT_THROW(synth.to_prometheus(), std::runtime_error);
}

// ---------------------------------------------------------------- heartbeat

TEST(Heartbeat, AtomicWriteFilePublishesAndOverwrites) {
  const std::string dir = fresh_dir("atomic");
  const std::string path = dir + "/out.json";
  obs::atomic_write_file(path, "{\"v\": 1}\n");
  EXPECT_EQ(slurp(path), "{\"v\": 1}\n");
  obs::atomic_write_file(path, "{\"v\": 2}\n");
  EXPECT_EQ(slurp(path), "{\"v\": 2}\n");
  // No temporary litter after a successful publish.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  EXPECT_THROW(
      obs::atomic_write_file(dir + "/no-such-subdir/out.json", "x"),
      std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(Heartbeat, RenderedDocumentIsValidAndInlinesTheRegistry) {
  obs::MetricsRegistry registry;
  registry.counter("batch.tasks").add(2);
  registry.histogram("ladder.level_facets").record(13);
  const obs::HeartbeatProgress progress{17, 21};
  const std::string doc = obs::render_heartbeat(3, 1234, progress, registry);
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"schema\": \"trichroma.heartbeat/1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"seq\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"uptime_ms\": 1234"), std::string::npos);
  EXPECT_NE(doc.find("\"rss_bytes\":"), std::string::npos);
  EXPECT_NE(doc.find("\"done\": 17"), std::string::npos);
  EXPECT_NE(doc.find("\"total\": 21"), std::string::npos);
  // The registry document is inlined, not stringified.
  EXPECT_NE(doc.find("\"schema\": \"trichroma.metrics/2\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"batch.tasks\": 2"), std::string::npos);
}

TEST(Heartbeat, PeriodicWriterPublishesMidRunAndFlushesOnStop) {
  const std::string dir = fresh_dir("periodic");
  const std::string path = dir + "/snap.json";
  std::atomic<int> renders{0};
  obs::PeriodicSnapshotWriter writer(path, 0.005, [&renders] {
    return "{\"render\": " +
           std::to_string(renders.fetch_add(1, std::memory_order_relaxed)) +
           "}\n";
  });
  // Mid-run: wait for at least two interval ticks, then read — the file
  // must always be a complete document (rename-atomic publication).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (writer.writes() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(writer.writes(), 2u);
  const std::string mid = slurp(path);
  EXPECT_TRUE(JsonChecker(mid).valid()) << mid;
  writer.stop();
  const std::uint64_t after_stop = writer.writes();
  writer.stop();  // idempotent: no extra flush
  EXPECT_EQ(writer.writes(), after_stop);
  // The final flush published the last render.
  const std::string final_doc = slurp(path);
  EXPECT_TRUE(JsonChecker(final_doc).valid());
  EXPECT_EQ(final_doc, "{\"render\": " +
                           std::to_string(renders.load() - 1) + "}\n");
  std::filesystem::remove_all(dir);
}

TEST(Heartbeat, BatchPublishesProgressOverSelectedTasks) {
  const std::string dir = fresh_dir("batch-hb");
  BatchOptions options;
  options.solve.threads = 1;
  options.solve.max_radius = 1;
  options.jobs = 1;
  options.only = {"identity", "consensus_2"};
  options.heartbeat_file = dir + "/heartbeat.json";
  options.heartbeat_interval_s = 0.005;
  const BatchResult result = run_batch(options);
  EXPECT_EQ(result.tasks.size(), 2u);
  const std::string doc = slurp(options.heartbeat_file);
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  // The final flush runs after the drive joins: progress is complete.
  EXPECT_NE(doc.find("\"done\": 2"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"total\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"schema\": \"trichroma.heartbeat/1\""),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

#if !defined(_WIN32) && !defined(TRICHROMA_TSAN_BUILD)
// TSan intercepts fork+threads aggressively; the rename-atomicity being
// pinned here is platform behavior, so the plain builds cover it.
TEST(Heartbeat, SigkilledWriterLeavesAValidSnapshot) {
  const std::string dir = fresh_dir("sigkill");
  const std::string path = dir + "/heartbeat.json";
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: a PRIVATE registry — the parent's global registry mutex may
    // have been mid-acquire at fork time in some other thread, and the
    // child must never touch inherited locks. Backstop alarm so an
    // orphaned child cannot outlive a crashed parent.
    ::alarm(60);
    obs::MetricsRegistry registry;
    registry.counter("child.alive").add(1);
    std::atomic<std::uint64_t> ticks{0};
    obs::HeartbeatWriter writer(
        path, 0.002,
        [&ticks] {
          return obs::HeartbeatProgress{
              ticks.fetch_add(1, std::memory_order_relaxed), 1000};
        },
        registry);
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  // Parent: wait until the child has published at least one tick, let a few
  // more land, then SIGKILL it mid-flight.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    std::error_code ec;
    if (std::filesystem::exists(path, ec) &&
        std::filesystem::file_size(path, ec) > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  // Rename-atomic publication: whatever tick was last completed, the file
  // is a whole valid document — never a torn prefix.
  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"schema\": \"trichroma.heartbeat/1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"child.alive\": 1"), std::string::npos);
  std::filesystem::remove_all(dir);
}
#endif

// -------------------------------------------------------------- trace-stats

std::string read_golden(const std::string& name) {
  const std::string path = std::string(TRICHROMA_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TraceStats, MiniTraceAggregatesPinned) {
  const obs::TraceStats s = obs::analyze_trace(read_golden("mini_trace.json"));
  EXPECT_EQ(s.events, 10u);
  EXPECT_EQ(s.spans_paired, 5u);
  EXPECT_NEAR(s.wall_ms, 10.5, 1e-9);

  ASSERT_GE(s.spans.size(), 4u);
  EXPECT_EQ(s.spans[0].name, "pipeline/run");
  EXPECT_EQ(s.spans[0].count, 1u);
  EXPECT_NEAR(s.spans[0].total_ms, 10.0, 1e-9);
  EXPECT_EQ(s.spans[1].name, "map_search/prefix");
  EXPECT_NEAR(s.spans[1].total_ms, 6.0, 1e-9);
  EXPECT_EQ(s.spans[2].name, "executor/job");
  EXPECT_EQ(s.spans[2].count, 2u);
  EXPECT_NEAR(s.spans[2].total_ms, 4.0, 1e-9);
  EXPECT_NEAR(s.spans[2].p50_ms, 2.0, 1e-9);
  EXPECT_NEAR(s.spans[2].p99_ms, 2.0, 1e-9);
  EXPECT_EQ(s.spans[3].name, "topology/subdivide_once");
  EXPECT_NEAR(s.spans[3].total_ms, 1.0, 1e-9);

  // Critical path descends across tids: run -> its longest contained span
  // -> the executor job nested inside THAT.
  ASSERT_EQ(s.critical_path.size(), 3u);
  EXPECT_EQ(s.critical_path[0].name, "pipeline/run");
  EXPECT_EQ(s.critical_path[1].name, "map_search/prefix");
  EXPECT_EQ(s.critical_path[2].name, "executor/job");
  EXPECT_NEAR(s.critical_path[2].dur_ms, 2.0, 1e-9);

  ASSERT_EQ(s.workers.size(), 1u);
  EXPECT_EQ(s.workers[0].tid, 2u);
  EXPECT_EQ(s.workers[0].jobs, 2u);
  EXPECT_NEAR(s.workers[0].busy_ms, 4.0, 1e-9);
  EXPECT_NEAR(s.workers[0].utilization, 4.0 / 10.5, 1e-9);

  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters.at("pipeline.runs"), 1u);
  EXPECT_EQ(s.counters.at("executor.jobs"), 2u);

  const std::string text = obs::format_trace_stats(s);
  EXPECT_NE(text.find("pipeline/run"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("executor workers:"), std::string::npos);
}

TEST(TraceStats, RejectsDocumentsWithoutTraceEvents) {
  EXPECT_THROW(obs::analyze_trace("{}"), std::runtime_error);
  EXPECT_THROW(obs::analyze_trace("not json at all"), std::runtime_error);
}

TEST(TraceStats, LiveCaptureSpanCountsMatchRegistryCounters) {
  // End-to-end: solve under tracing, then demand the analytics agree with
  // the registry snapshot embedded in the very same trace. `pipeline/run`
  // spans come 1:1 from run_pipeline, `topology/subdivide_once` spans from
  // ladder builds.
  obs::MetricsRegistry::global().reset();
  obs::trace_start();
  SolvabilityOptions options;
  options.threads = 1;
  run_pipeline(zoo::subdivision_task(1), options);
  obs::trace_stop();
  const obs::TraceStats s = obs::analyze_trace(obs::trace_to_json());
  ASSERT_EQ(obs::trace_dropped(), 0u);

  std::uint64_t run_spans = 0, subdiv_spans = 0;
  for (const obs::SpanAggregate& agg : s.spans) {
    if (agg.name == "pipeline/run") run_spans = agg.count;
    if (agg.name == "topology/subdivide_once") subdiv_spans = agg.count;
  }
  EXPECT_EQ(run_spans, s.counters.at("pipeline.runs"));
  EXPECT_EQ(subdiv_spans, s.counters.at("topology.subdivide.builds"));
  EXPECT_GE(run_spans, 1u);
  // The live trace also exercises the critical-path extractor.
  ASSERT_FALSE(s.critical_path.empty());
  EXPECT_EQ(s.critical_path[0].name, "pipeline/run");
}

}  // namespace
}  // namespace trichroma
