// The tracing + metrics subsystem (src/obs): disabled-by-default behavior,
// Chrome trace-event export validity, the B/E pairing guarantee (spans drop
// whole, never half), session restarts, overflow accounting, and the
// metrics registry. The pipeline property test runs a real multi-threaded
// solve under tracing, so the TSan job exercises the exporter/writer
// handshake.

#include <cctype>
#include <cstddef>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/pipeline.h"
#include "tasks/zoo.h"

namespace trichroma {
namespace {

// Minimal recursive-descent JSON syntax checker — enough to assert the
// exporter emits well-formed documents without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    const bool ok = value();
    ws();
    return ok && i_ == s_.size();
  }

 private:
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\t' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  bool eat(char c) {
    ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++i_) {
      if (i_ >= s_.size() || s_[i_] != *p) return false;
    }
    return true;
  }
  bool string_lit() {
    if (!eat('"')) return false;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    return eat('"');
  }
  bool number() {
    ws();
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                              s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }
  bool value() {
    ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': {
        ++i_;
        if (eat('}')) return true;
        do {
          if (!string_lit() || !eat(':') || !value()) return false;
        } while (eat(','));
        return eat('}');
      }
      case '[': {
        ++i_;
        if (eat(']')) return true;
        do {
          if (!value()) return false;
        } while (eat(','));
        return eat(']');
      }
      case '"':
        return string_lit();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

// One trace event as scraped from the exporter's line-per-event layout.
struct ScrapedEvent {
  std::string name;
  char phase = '?';
  long tid = -1;
};

std::string field(const std::string& line, const std::string& key) {
  const std::string tag = "\"" + key + "\": ";
  const std::size_t at = line.find(tag);
  if (at == std::string::npos) return {};
  std::size_t from = at + tag.size();
  std::size_t to = from;
  if (line[from] == '"') {
    ++from;
    to = line.find('"', from);
  } else {
    while (to < line.size() && line[to] != ',' && line[to] != '}') ++to;
  }
  return line.substr(from, to - from);
}

std::vector<ScrapedEvent> scrape_events(const std::string& json) {
  std::vector<ScrapedEvent> out;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    const std::string ph = field(line, "ph");
    if (ph.empty()) continue;
    ScrapedEvent e;
    e.phase = ph[0];
    e.name = field(line, "name");
    e.tid = std::stol(field(line, "tid"));
    out.push_back(std::move(e));
  }
  return out;
}

/// The pairing property: per thread, B/E events form a well-nested stack
/// with matching names (buffer order preserves nesting — see trace.h).
void expect_spans_pair(const std::vector<ScrapedEvent>& events) {
  std::map<long, std::vector<std::string>> stacks;
  for (const ScrapedEvent& e : events) {
    if (e.phase == 'B') {
      stacks[e.tid].push_back(e.name);
    } else if (e.phase == 'E') {
      auto& stack = stacks[e.tid];
      ASSERT_FALSE(stack.empty()) << "unmatched E event: " << e.name;
      EXPECT_EQ(stack.back(), e.name);
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

bool has_event_with_prefix(const std::vector<ScrapedEvent>& events,
                           const std::string& prefix) {
  for (const ScrapedEvent& e : events) {
    if (e.name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

TEST(Trace, DisabledByDefaultAndSpansAreNoOps) {
  EXPECT_FALSE(obs::trace_enabled());
  {
    TRI_SPAN("should/never/appear");
    obs::trace_instant("also/never");
    obs::trace_counter("nor/this", 1.0);
  }
  // Export with no session: still a valid document (just the trailing
  // metrics instant), and nothing of the above in it.
  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json.find("should/never/appear"), std::string::npos);
}

TEST(Trace, SessionCollectsSpansInstantsAndCounters) {
  obs::trace_start();
  {
    TRI_SPAN("outer");
    {
      TRI_SPAN("prefix/", "suffix");
      TRI_SPAN("numbered/r=", static_cast<long long>(3));
    }
    obs::trace_instant("point");
    obs::trace_counter("gauge", 42.5);
  }
  obs::trace_stop();
  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  const auto events = scrape_events(json);
  expect_spans_pair(events);
  EXPECT_TRUE(has_event_with_prefix(events, "outer"));
  EXPECT_TRUE(has_event_with_prefix(events, "prefix/suffix"));
  EXPECT_TRUE(has_event_with_prefix(events, "numbered/r=3"));
  EXPECT_TRUE(has_event_with_prefix(events, "point"));
  EXPECT_TRUE(has_event_with_prefix(events, "gauge"));
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

TEST(Trace, TracedPipelineRunEmitsValidPairedEventsFromAllLayers) {
  // The property test: a real racing pipeline solve under tracing. Workers
  // write their own buffers; the export afterwards must be valid JSON and
  // every span must pair up on its own thread.
  obs::trace_start();
  SolvabilityOptions options;
  options.threads = 2;
  const PipelineResult r = run_pipeline(zoo::hourglass(), options);
  obs::trace_stop();
  EXPECT_EQ(r.report.verdict, Verdict::Unsolvable);

  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  const auto events = scrape_events(json);
  expect_spans_pair(events);
  // All four instrumented layers speak up: pipeline lanes, map search,
  // topology substrate, and the executor (job spans or queue counters —
  // which one depends on who won the tickets).
  EXPECT_TRUE(has_event_with_prefix(events, "pipeline/"));
  EXPECT_TRUE(has_event_with_prefix(events, "map_search/"));
  EXPECT_TRUE(has_event_with_prefix(events, "topology/"));
  EXPECT_TRUE(has_event_with_prefix(events, "executor/"));
}

TEST(Trace, OverflowDropsWholeSpansAndCounts) {
  // Capacity 4 = two spans; everything past that drops whole (no orphan B
  // events) and is counted.
  obs::trace_start(4);
  for (int i = 0; i < 10; ++i) {
    TRI_SPAN("tiny");
  }
  obs::trace_stop();
  EXPECT_GT(obs::trace_dropped(), 0u);
  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  const auto events = scrape_events(json);
  expect_spans_pair(events);
  std::size_t recorded = 0;
  for (const ScrapedEvent& e : events) recorded += e.phase == 'B' ? 1 : 0;
  EXPECT_EQ(recorded, 2u);
  EXPECT_NE(json.find("\"dropped_events\": \"16\""), std::string::npos);
}

TEST(Trace, RestartDiscardsThePreviousSession) {
  obs::trace_start();
  { TRI_SPAN("first_session_span"); }
  obs::trace_stop();
  obs::trace_start();
  { TRI_SPAN("second_session_span"); }
  obs::trace_stop();
  const std::string json = obs::trace_to_json();
  EXPECT_EQ(json.find("first_session_span"), std::string::npos);
  EXPECT_NE(json.find("second_session_span"), std::string::npos);
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

TEST(Trace, NamesAreEscapedInTheExport) {
  obs::trace_start();
  obs::trace_instant("quote\"and\\slash");
  obs::trace_stop();
  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
}

TEST(Metrics, CounterAddValueReset) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Metrics, RegistryInternsByNameAndSnapshotsSorted) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("zzz.last");
  obs::Counter& b = registry.counter("aaa.first");
  obs::Counter& a2 = registry.counter("zzz.last");
  EXPECT_EQ(&a, &a2);  // stable interned reference
  a.add(3);
  b.add(1);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "aaa.first");
  EXPECT_EQ(snapshot[0].second, 1u);
  EXPECT_EQ(snapshot[1].first, "zzz.last");
  EXPECT_EQ(snapshot[1].second, 3u);
  registry.reset();
  EXPECT_EQ(registry.counter("zzz.last").value(), 0u);
  EXPECT_EQ(registry.snapshot().size(), 2u);  // reset keeps registrations
}

TEST(Metrics, ToJsonIsValidAndCarriesTheSchema) {
  obs::MetricsRegistry registry;
  registry.counter("cache.image.hits").add(7);
  const std::string json = registry.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"schema\": \"trichroma.metrics/2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cache.image.hits\": 7"), std::string::npos);
  // The empty registry renders as an empty counters object, still valid.
  obs::MetricsRegistry empty;
  EXPECT_TRUE(JsonChecker(empty.to_json()).valid());
}

TEST(Metrics, GlobalRegistryAccumulatesSolverCounters) {
  obs::MetricsRegistry::global().reset();
  SolvabilityOptions options;
  options.threads = 1;
  run_pipeline(zoo::hourglass(), options);
  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  std::map<std::string, std::uint64_t> counters(snapshot.begin(),
                                                snapshot.end());
  EXPECT_GE(counters["pipeline.runs"], 1u);
  EXPECT_GE(counters["pipeline.engines_run"], 1u);
  EXPECT_GE(counters["topology.compiles"], 1u);
  EXPECT_GE(counters["topology.lap_scans"], 1u);
}

}  // namespace
}  // namespace trichroma
